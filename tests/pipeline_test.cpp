#include "core/pipeline.h"

#include <gtest/gtest.h>

namespace poetbin {
namespace {

// One shared tiny pipeline run (training three nets is the expensive part).
const PipelineResult& tiny_run() {
  static const PipelineResult result = [] {
    PipelineConfig config;
    config.data.family = SyntheticFamily::kDigits;
    config.data.seed = 5;
    config.n_train = 1000;
    config.n_test = 300;
    config.net.conv1_channels = 6;
    config.net.conv2_channels = 16;  // 16 x 4x4 = 256 binary features
    config.net.hidden_dim = 96;
    config.net.train.epochs = 10;
    config.poetbin.rinc = {.lut_inputs = 4, .levels = 2, .total_dts = 8};
    config.poetbin.output.epochs = 120;
    config.seed = 9;
    return run_pipeline(config);
  }();
  return result;
}

TEST(Pipeline, AllStagesBeatChance) {
  const PipelineResult& result = tiny_run();
  EXPECT_GT(result.a1, 0.7);
  EXPECT_GT(result.a2, 0.5);
  EXPECT_GT(result.a3, 0.5);
  EXPECT_GT(result.a4, 0.4);
}

TEST(Pipeline, FeatureBitsShapes) {
  const PipelineResult& result = tiny_run();
  EXPECT_EQ(result.train_bits.size(), 1000u);
  EXPECT_EQ(result.test_bits.size(), 300u);
  EXPECT_EQ(result.train_bits.n_features(), 256u);
  EXPECT_EQ(result.teacher_train_bits.cols(), 10u * 4u);
  EXPECT_EQ(result.teacher_test_bits.rows(), 300u);
}

TEST(Pipeline, FeaturesAreInformative) {
  // Binary features must not be degenerate: some columns vary.
  const PipelineResult& result = tiny_run();
  const auto means = column_means(result.train_bits.features);
  std::size_t varying = 0;
  for (const double m : means) {
    if (m > 0.02 && m < 0.98) ++varying;
  }
  EXPECT_GT(varying, means.size() / 8);
}

TEST(Pipeline, FidelityAboveChance) {
  const PipelineResult& result = tiny_run();
  EXPECT_GT(result.fidelity_train, 0.7);
  EXPECT_GT(result.fidelity_test, 0.6);
}

TEST(Pipeline, StudentTracksTeacher) {
  // A4 should be within a reasonable band of A3 (the paper sees drops of
  // ~1% and occasionally gains); at tiny scale allow a wide band but
  // catastrophic collapse must fail.
  const PipelineResult& result = tiny_run();
  EXPECT_GT(result.a4, result.a3 - 0.25);
}

TEST(Pipeline, SkippingA2YieldsNan) {
  PipelineConfig config;
  config.data.family = SyntheticFamily::kDigits;
  config.data.seed = 6;
  config.n_train = 500;
  config.n_test = 150;
  config.net.conv1_channels = 6;
  config.net.conv2_channels = 12;
  config.net.hidden_dim = 48;
  config.net.train.epochs = 8;
  config.poetbin.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
  config.poetbin.output.epochs = 20;
  config.train_a2_network = false;
  const PipelineResult result = run_pipeline(config);
  EXPECT_TRUE(std::isnan(result.a2));
  EXPECT_GT(result.a1, 0.15);
}

TEST(Pipeline, BinaryHiddenExportsHiddenBits) {
  PipelineConfig config;
  config.data.family = SyntheticFamily::kDigits;
  config.data.seed = 8;
  config.n_train = 400;
  config.n_test = 120;
  config.net.conv1_channels = 4;
  config.net.conv2_channels = 8;
  config.net.hidden_dim = 24;
  config.net.train.epochs = 3;
  config.train_a2_network = false;
  config.binary_hidden = true;
  config.poetbin.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
  config.poetbin.output.epochs = 30;
  const PipelineResult result = run_pipeline(config);
  EXPECT_EQ(result.hidden_train_bits.rows(), 400u);
  EXPECT_EQ(result.hidden_train_bits.cols(), 24u);
  EXPECT_EQ(result.hidden_test_bits.rows(), 120u);
  // Without the flag the matrices stay empty.
  config.binary_hidden = false;
  const PipelineResult plain = run_pipeline(config);
  EXPECT_EQ(plain.hidden_train_bits.cols(), 0u);
}

TEST(Pipeline, PresetsMatchPaperTable1) {
  const PipelineConfig m1 = preset_m1();
  EXPECT_EQ(m1.poetbin.rinc.lut_inputs, 8u);
  EXPECT_EQ(m1.poetbin.rinc.total_dts, 32u);
  EXPECT_EQ(m1.poetbin.rinc.levels, 2u);
  EXPECT_EQ(m1.data.family, SyntheticFamily::kDigits);

  const PipelineConfig c1 = preset_c1();
  EXPECT_EQ(c1.poetbin.rinc.lut_inputs, 8u);
  EXPECT_EQ(c1.poetbin.rinc.total_dts, 40u);
  EXPECT_EQ(c1.data.family, SyntheticFamily::kTextures);

  const PipelineConfig s1 = preset_s1();
  EXPECT_EQ(s1.poetbin.rinc.lut_inputs, 6u);
  EXPECT_EQ(s1.poetbin.rinc.total_dts, 36u);
  EXPECT_EQ(s1.data.family, SyntheticFamily::kHouseNumbers);
  EXPECT_EQ(s1.poetbin.output.quant_bits, 8);

  // Scale parameter shrinks data sizes.
  const PipelineConfig small = preset_m1(0.25);
  EXPECT_EQ(small.n_train, 500u);
}

}  // namespace
}  // namespace poetbin
