// Serving-layer contract: a Runtime (loaded from disk or trained in
// memory) and a MicroBatcher on top of it must reproduce the scalar
// PoetBin reference bit for bit — under every SIMD word backend, at any
// thread count, fused or not, and under concurrent producers.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.h"
#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "serve/serve_stats.h"
#include "test_util.h"

namespace poetbin {
namespace {

struct ServeFixture {
  BinaryDataset data;
  PoetBin model;
  std::vector<int> scalar_preds;   // the oracle every path must match
  std::vector<BitVector> rows;     // per-example request bits
  double scalar_accuracy = 0.0;
};

// One trained model shared by every test in this file (training dominates
// the suite's runtime; the serving paths under test never mutate it).
const ServeFixture& fixture() {
  static const ServeFixture* fx = [] {
    auto* f = new ServeFixture;
    f->data = testing::prototype_dataset(600, 64, 21);
    const std::size_t p = 4;
    BitMatrix intermediate(f->data.size(), f->data.n_classes * p);
    Rng rng(31);
    for (std::size_t i = 0; i < f->data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        const bool is_class = f->data.labels[i] == static_cast<int>(j / p);
        intermediate.set(i, j, is_class != rng.next_bool(0.05));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
    config.n_classes = f->data.n_classes;
    config.output.epochs = 40;
    config.threads = 1;
    f->model = PoetBin::train(f->data.features, intermediate, f->data.labels,
                              config);
    f->scalar_preds = f->model.predict_dataset(f->data.features);
    f->scalar_accuracy = f->model.accuracy(f->data.features, f->data.labels);
    f->rows.reserve(f->data.size());
    for (std::size_t i = 0; i < f->data.size(); ++i) {
      f->rows.push_back(f->data.features.row(i));
    }
    return f;
  }();
  return *fx;
}

TEST(Runtime, PredictMatchesScalarFusedAndMaterialized) {
  const ServeFixture& fx = fixture();
  for (const bool fused : {true, false}) {
    const Runtime runtime(fx.model, {.threads = 2, .fused_argmax = fused});
    EXPECT_EQ(runtime.predict(fx.data.features), fx.scalar_preds)
        << "fused=" << fused;
    EXPECT_DOUBLE_EQ(runtime.accuracy(fx.data.features, fx.data.labels),
                     fx.scalar_accuracy);
  }
}

TEST(Runtime, PredictOneMatchesScalar) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(runtime.predict_one(fx.rows[i]), fx.scalar_preds[i]);
  }
}

TEST(Runtime, RincOutputsMatchScalar) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 3});
  EXPECT_EQ(runtime.rinc_outputs(fx.data.features),
            fx.model.rinc_outputs(fx.data.features));
}

// The satellite contract: save a trained model, reload it under each
// forced backend and several thread counts, and every Runtime (and a
// MicroBatcher on top of it) predicts bit-identically to the scalar
// PoetBin::predict_dataset of the original model.
TEST(Runtime, SerializedReloadIsBitIdenticalUnderEveryBackend) {
  const ServeFixture& fx = fixture();
  testing::BackendGuard guard;
  const std::string path = ::testing::TempDir() + "/runtime_model.txt";
  {
    const Runtime writer(fx.model, {.threads = 1});
    ASSERT_TRUE(writer.save(path).ok());
  }
  for (const WordBackend backend : available_word_backends()) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{5}}) {
      Runtime::LoadResult runtime =
          Runtime::load(path, {.threads = threads, .forced_backend = backend});
      ASSERT_TRUE(runtime.ok());
      EXPECT_EQ(runtime->backend(), backend);
      EXPECT_EQ(runtime->threads(), threads);
      EXPECT_EQ(runtime->predict(fx.data.features), fx.scalar_preds)
          << word_backend_name(backend) << " x " << threads << " threads";

      MicroBatcher batcher(*runtime, {.max_batch = 64});
      std::vector<MicroBatcher::Ticket> tickets;
      tickets.reserve(fx.rows.size());
      for (const BitVector& row : fx.rows) {
        tickets.push_back(batcher.submit(row));
      }
      batcher.flush();
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        ASSERT_EQ(tickets[i].get(), fx.scalar_preds[i])
            << word_backend_name(backend) << " x " << threads
            << " threads, example " << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Runtime, LoadMissingFileReturnsTypedError) {
  Runtime::LoadResult result = Runtime::load("/nonexistent/dir/model.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kFileNotFound);
  // The message names the offending path so callers can log it verbatim.
  EXPECT_NE(result.error().message.find("/nonexistent/dir/model.txt"),
            std::string::npos);
}

TEST(Runtime, RetrainOutputLayerMatchesScalarRetrain) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 2});
  runtime.retrain_output_layer(fx.data.features, fx.data.labels);

  PoetBin reference = fx.model;
  reference.retrain_output_layer(reference.rinc_outputs(fx.data.features),
                                 fx.data.labels, /*engine=*/nullptr);
  for (std::size_t c = 0; c < reference.n_classes(); ++c) {
    EXPECT_EQ(runtime.model().output_neurons()[c].codes,
              reference.output_neurons()[c].codes);
    EXPECT_EQ(runtime.model().output_neurons()[c].weights,
              reference.output_neurons()[c].weights);
  }
}

TEST(MicroBatcher, SubmitPacksFullWindows) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  MicroBatcher batcher(runtime, {.max_batch = 64});
  std::vector<MicroBatcher::Ticket> tickets;
  tickets.reserve(fx.rows.size());
  for (const BitVector& row : fx.rows) {
    tickets.push_back(batcher.submit(row));
  }
  batcher.flush();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_EQ(tickets[i].get(), fx.scalar_preds[i]) << "example " << i;
  }
  // 600 examples = 9 full 64-wide windows + one 24-example flush.
  const ServeStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, fx.rows.size());
  EXPECT_EQ(stats.batches, (fx.rows.size() + 63) / 64);
  EXPECT_EQ(stats.timeouts, 0u);  // flush() is not a leader timeout
  // Window-fill histogram: the 9 full windows land in the last bucket, the
  // 24/64 flush window in bucket ceil(24*8/64)-1 = 2.
  EXPECT_EQ(stats.window_fill[ServeStats::kFillBuckets - 1], 9u);
  EXPECT_EQ(stats.window_fill[2], 1u);
  EXPECT_DOUBLE_EQ(stats.mean_window_fill(), 600.0 / 10.0);
}

TEST(MicroBatcher, BlockingRequestTimesOutAlone) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  // Nobody else joins the window: the leader must dispatch its partial
  // batch after max_wait and still match the scalar path.
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(500)});
  EXPECT_EQ(batcher.predict_one(fx.rows[0]), fx.scalar_preds[0]);
  const ServeStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.timeouts, 1u);  // the partial window went out on max_wait
  EXPECT_EQ(stats.window_fill[0], 1u);  // 1/64 fill -> first bucket
}

TEST(MicroBatcher, BlockingRequestAfterAsyncSubmitStillTimesOut) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(500)});
  // A submit() opens the window, so the blocking request lands in slot 1.
  // It must still become the leader and dispatch the window after
  // max_wait — leadership follows the first *blocking* request, not
  // slot 0 (a slot-0-only rule left this predict_one waiting forever).
  MicroBatcher::Ticket ticket = batcher.submit(fx.rows[0]);
  EXPECT_EQ(batcher.predict_one(fx.rows[1]), fx.scalar_preds[1]);
  EXPECT_EQ(ticket.get(), fx.scalar_preds[0]);
  const ServeStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.timeouts, 1u);
}

TEST(MicroBatcher, ZeroWaitDispatchesImmediately) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(0)});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batcher.predict_one(fx.rows[i]), fx.scalar_preds[i]);
  }
}

TEST(MicroBatcher, WindowOfOne) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  MicroBatcher batcher(runtime, {.max_batch = 1});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batcher.predict_one(fx.rows[i]), fx.scalar_preds[i]);
  }
  const ServeStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 10u);
  EXPECT_EQ(stats.timeouts, 0u);  // windows of one fill instantly
}

TEST(MicroBatcher, FlushOnDestructionCompletesOutstandingTickets) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  std::vector<MicroBatcher::Ticket> tickets;
  {
    MicroBatcher batcher(runtime, {.max_batch = 64});
    for (std::size_t i = 0; i < 10; ++i) {
      tickets.push_back(batcher.submit(fx.rows[i]));
    }
    // Tickets for a dispatched batch may outlive the batcher; resolve them
    // before it dies (get() after destruction is a use-after-free by
    // contract, so pull the results while flushing).
    batcher.flush();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      EXPECT_EQ(tickets[i].get(), fx.scalar_preds[i]);
    }
  }
}

// The acceptance stress: >= 8 concurrent producers hammering predict_one
// must each get back exactly what scalar predict would return for their
// example, regardless of how requests interleave into windows.
TEST(MicroBatcher, ConcurrentProducersAreBitIdentical) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 1});
  MicroBatcher batcher(runtime,
                       {.max_batch = 32,
                        .max_wait = std::chrono::microseconds(2000)});
  const std::size_t n_producers = 8;
  const std::size_t n = fx.rows.size();
  std::vector<int> served(n, -1);
  std::vector<std::thread> producers;
  producers.reserve(n_producers);
  for (std::size_t t = 0; t < n_producers; ++t) {
    producers.emplace_back([&, t] {
      // Strided slices so producers interleave within the same windows.
      for (std::size_t i = t; i < n; i += n_producers) {
        served[i] = batcher.predict_one(fx.rows[i]);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(served, fx.scalar_preds);
  EXPECT_EQ(batcher.stats().requests, n);
}

// Same stress through the engine-threaded runtime and a second backend, in
// case dispatch overlaps engine parallelism in interesting ways.
TEST(MicroBatcher, ConcurrentProducersWithThreadedEngine) {
  const ServeFixture& fx = fixture();
  const Runtime runtime(fx.model, {.threads = 4});
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(1000)});
  const std::size_t n_producers = 12;
  const std::size_t n = fx.rows.size();
  std::vector<int> served(n, -1);
  std::vector<std::thread> producers;
  producers.reserve(n_producers);
  for (std::size_t t = 0; t < n_producers; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = t; i < n; i += n_producers) {
        served[i] = batcher.predict_one(fx.rows[i]);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(served, fx.scalar_preds);
}

// The caller-supplied-engine overloads match the scalar paths (these are
// the only batched entry points now that the n_threads shims are gone).
TEST(PoetBinEngineOverloads, CallerSuppliedEngineMatchesScalar) {
  const ServeFixture& fx = fixture();
  const BatchEngine engine(3);
  EXPECT_EQ(fx.model.predict_dataset_batched(fx.data.features, engine),
            fx.scalar_preds);
  EXPECT_EQ(fx.model.rinc_outputs_batched(fx.data.features, engine),
            fx.model.rinc_outputs(fx.data.features));
  EXPECT_DOUBLE_EQ(
      fx.model.accuracy_batched(fx.data.features, fx.data.labels, engine),
      fx.scalar_accuracy);
}

}  // namespace
}  // namespace poetbin
