#include "core/poetbin.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

// Builds an intermediate-target matrix from simple boolean functions of the
// features so PoetBin has clean per-neuron distillation targets, with the
// class recoverable from block majorities.
struct ToyProblem {
  BinaryDataset data;       // features + class labels
  BitMatrix intermediate;   // n x (nc * P) teacher bits
};

ToyProblem make_toy(std::size_t n, std::size_t p, std::size_t n_classes,
                    std::uint64_t seed) {
  ToyProblem toy;
  toy.data = testing::prototype_dataset(n, 64, seed);
  toy.data.n_classes = n_classes;
  for (auto& label : toy.data.labels) {
    label = label % static_cast<int>(n_classes);
  }
  // Teacher bit (c, j): "example belongs to class c" XOR a feature bit —
  // a distillable function correlated with the class.
  toy.intermediate = BitMatrix(n, n_classes * p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < n_classes; ++c) {
      const bool is_class = toy.data.labels[i] == static_cast<int>(c);
      for (std::size_t j = 0; j < p; ++j) {
        const bool feature_bit = toy.data.features.get(i, (c * p + j) % 64);
        toy.intermediate.set(i, c * p + j, is_class != (j % 2 == 0 && !feature_bit));
      }
    }
  }
  return toy;
}

PoetBinConfig toy_config(std::size_t p, std::size_t n_classes) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.rinc.levels = 1;
  config.rinc.total_dts = p;
  config.n_classes = n_classes;
  config.output.epochs = 150;
  return config;
}

TEST(PoetBin, ShapesAndLutCount) {
  const ToyProblem toy = make_toy(600, 4, 5, 1);
  const PoetBinConfig config = toy_config(4, 5);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, config);
  EXPECT_EQ(model.n_modules(), 20u);
  EXPECT_EQ(model.n_classes(), 5u);
  // Each RINC-1: 4 DTs + 1 MAT; output layer: 8 LUTs x 5 classes.
  EXPECT_EQ(model.lut_count(), 20u * 5u + 5u * 8u);
}

TEST(PoetBin, BeatsChanceComfortably) {
  const ToyProblem toy = make_toy(800, 4, 5, 2);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, toy_config(4, 5));
  EXPECT_GT(model.accuracy(toy.data.features, toy.data.labels), 0.8);
}

TEST(PoetBin, PredictDatasetMatchesSinglePredict) {
  const ToyProblem toy = make_toy(300, 3, 4, 3);
  PoetBinConfig config = toy_config(3, 4);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, config);
  const auto batch = model.predict_dataset(toy.data.features);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(batch[i], model.predict(toy.data.features.row(i))) << i;
  }
}

TEST(PoetBin, RincOutputsShapeAndFidelity) {
  const ToyProblem toy = make_toy(500, 4, 5, 4);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, toy_config(4, 5));
  const BitMatrix outputs = model.rinc_outputs(toy.data.features);
  EXPECT_EQ(outputs.rows(), 500u);
  EXPECT_EQ(outputs.cols(), 20u);
  const double fidelity =
      PoetBin::intermediate_fidelity(outputs, toy.intermediate);
  EXPECT_GT(fidelity, 0.8);  // RINC must substantially reproduce the teacher
}

TEST(PoetBin, IntermediateFidelityIdentityIsOne) {
  BitMatrix bits = testing::random_bits(40, 12, 5);
  EXPECT_DOUBLE_EQ(PoetBin::intermediate_fidelity(bits, bits), 1.0);
  BitMatrix flipped = bits;
  for (std::size_t c = 0; c < flipped.cols(); ++c) {
    flipped.column(c) = ~flipped.column(c);
  }
  EXPECT_DOUBLE_EQ(PoetBin::intermediate_fidelity(bits, flipped), 0.0);
}

TEST(PoetBin, OutputCodesAreWithinQuantRange) {
  const ToyProblem toy = make_toy(300, 4, 5, 6);
  PoetBinConfig config = toy_config(4, 5);
  config.output.quant_bits = 4;
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, config);
  for (const auto& neuron : model.output_neurons()) {
    EXPECT_EQ(neuron.codes.size(), std::size_t{1} << 4);
    for (const auto code : neuron.codes) EXPECT_LT(code, 16u);
  }
}

TEST(PoetBin, QuantizedCodesFollowActivations) {
  const ToyProblem toy = make_toy(300, 3, 4, 7);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, toy_config(3, 4));
  const QuantizerParams& q = model.quantizer();
  for (const auto& neuron : model.output_neurons()) {
    for (std::size_t combo = 0; combo < neuron.codes.size(); ++combo) {
      EXPECT_EQ(neuron.codes[combo], quantize_value(neuron.activation(combo), q));
    }
  }
}

TEST(PoetBin, BlockWiringIsContiguous) {
  const ToyProblem toy = make_toy(200, 4, 5, 8);
  const PoetBin model = PoetBin::train(toy.data.features, toy.intermediate,
                                       toy.data.labels, toy_config(4, 5));
  for (std::size_t c = 0; c < model.n_classes(); ++c) {
    const auto& inputs = model.output_neurons()[c].input_modules;
    ASSERT_EQ(inputs.size(), 4u);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(inputs[j], c * 4 + j);
  }
}

TEST(PoetBin, EightBitBeatsOneBitQuantization) {
  const ToyProblem toy = make_toy(700, 4, 5, 9);
  PoetBinConfig coarse = toy_config(4, 5);
  coarse.output.quant_bits = 1;
  PoetBinConfig fine = toy_config(4, 5);
  fine.output.quant_bits = 8;
  const PoetBin coarse_model = PoetBin::train(
      toy.data.features, toy.intermediate, toy.data.labels, coarse);
  const PoetBin fine_model = PoetBin::train(toy.data.features, toy.intermediate,
                                            toy.data.labels, fine);
  EXPECT_GE(fine_model.accuracy(toy.data.features, toy.data.labels) + 0.02,
            coarse_model.accuracy(toy.data.features, toy.data.labels));
}

TEST(PoetBin, RejectsMismatchedIntermediateWidth) {
  const ToyProblem toy = make_toy(100, 4, 5, 10);
  PoetBinConfig config = toy_config(4, 5);
  config.n_classes = 6;  // 6*4 != 20 columns
  EXPECT_DEATH(PoetBin::train(toy.data.features, toy.intermediate,
                              toy.data.labels, config),
               "");
}

}  // namespace
}  // namespace poetbin
