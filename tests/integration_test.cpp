// End-to-end integration: synthetic images -> teacher -> PoET-BiN ->
// netlist -> VHDL, with bit-exactness checks at every hand-off. This is the
// in-repo equivalent of the paper's FPGA testbench verification loop.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "hw/lut_decompose.h"
#include "hw/netlist_builder.h"
#include "hw/power_model.h"
#include "hw/vhdl.h"

namespace poetbin {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult r = [] {
      PipelineConfig config;
      config.data.family = SyntheticFamily::kHouseNumbers;
      config.data.seed = 17;
      config.n_train = 500;
      config.n_test = 200;
      config.net.conv1_channels = 6;
      config.net.conv2_channels = 16;
      config.net.hidden_dim = 64;
      config.net.train.epochs = 3;
      config.train_a2_network = false;
      config.poetbin.rinc = {.lut_inputs = 4, .levels = 2, .total_dts = 8};
      config.poetbin.output.epochs = 100;
      config.seed = 23;
      return run_pipeline(config);
    }();
    return r;
  }
};

TEST_F(EndToEnd, NetlistMatchesModelOnTestSet) {
  const PipelineResult& r = result();
  const PoetBinNetlist netlist =
      build_poetbin_netlist(r.model, r.test_bits.n_features());
  const auto model_predictions = r.model.predict_dataset(r.test_bits.features);
  const auto netlist_predictions =
      netlist.predict_dataset(r.test_bits.features);
  EXPECT_EQ(model_predictions, netlist_predictions);
}

TEST_F(EndToEnd, NetlistAccuracyEqualsModelAccuracy) {
  const PipelineResult& r = result();
  const PoetBinNetlist netlist =
      build_poetbin_netlist(r.model, r.test_bits.n_features());
  const auto predictions = netlist.predict_dataset(r.test_bits.features);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == r.test_bits.labels[i]) ++correct;
  }
  const double netlist_accuracy =
      static_cast<double>(correct) / static_cast<double>(predictions.size());
  EXPECT_DOUBLE_EQ(netlist_accuracy, r.a4);
}

TEST_F(EndToEnd, VhdlGeneratesForTrainedModel) {
  const PipelineResult& r = result();
  const PoetBinNetlist netlist =
      build_poetbin_netlist(r.model, r.test_bits.n_features());
  const std::string vhdl = generate_vhdl(netlist);
  EXPECT_GT(vhdl.size(), 10000u);
  EXPECT_NE(vhdl.find("entity poetbin_classifier"), std::string::npos);
  const std::string tb = generate_testbench(netlist, r.test_bits.features);
  EXPECT_NE(tb.find("assert score"), std::string::npos);
}

TEST_F(EndToEnd, LutAccountingConsistent) {
  const PipelineResult& r = result();
  const PoetBinNetlist netlist =
      build_poetbin_netlist(r.model, r.test_bits.n_features());
  EXPECT_EQ(netlist.netlist.n_luts(), r.model.lut_count());
  const PruneStats stats = prune_poetbin(r.model);
  EXPECT_EQ(stats.raw_luts, r.model.lut_count());
  EXPECT_LE(stats.kept_luts, stats.raw_luts);
}

TEST_F(EndToEnd, DepthMatchesRincStructure) {
  const PipelineResult& r = result();
  const PoetBinNetlist netlist =
      build_poetbin_netlist(r.model, r.test_bits.n_features());
  // RINC-2 -> 3 LUT levels + 1 output code LUT level.
  EXPECT_EQ(netlist.netlist.depth(), 4u);
}

TEST(HwSpecs, PaperConfigurationsSelfConsistent) {
  // The hardware model's closed forms must agree with the structural
  // formulas used by RincModule for the paper's three configurations.
  EXPECT_EQ(rinc_module_lut_units(hw_spec_svhn()), 43u);
  EXPECT_EQ(full_rinc_lut_count(6, 2), 43u);  // full tree == 36-DT budget here
  EXPECT_EQ(rinc_module_lut_units(hw_spec_mnist()), 37u);
}

}  // namespace
}  // namespace poetbin
