#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

// Minimise f(w) = 0.5 * ||w - target||^2 directly through the Param/grad
// machinery; both optimizers must converge.
template <typename Opt>
double optimize_quadratic(Opt&& optimizer, int steps) {
  Param param(Matrix(1, 4));
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  optimizer.attach({&param});
  for (int s = 0; s < steps; ++s) {
    optimizer.zero_grad();
    for (std::size_t i = 0; i < 4; ++i) {
      param.grad.vec()[i] = param.value.vec()[i] - target[i];
    }
    optimizer.step();
  }
  double err = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    err += std::fabs(param.value.vec()[i] - target[i]);
  }
  return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
  EXPECT_LT(optimize_quadratic(Sgd(0.1), 200), 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_LT(optimize_quadratic(Adam(0.05), 500), 1e-2);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  // With equal LR and step count, momentum should make at least as much
  // progress as plain SGD on a smooth quadratic.
  const double with_momentum = optimize_quadratic(Sgd(0.01, 0.9), 50);
  const double without = optimize_quadratic(Sgd(0.01, 0.0), 50);
  EXPECT_LE(with_momentum, without + 1e-9);
}

TEST(Optimizer, LearningRateDecay) {
  Sgd sgd(1.0);
  sgd.decay_learning_rate(0.5);
  sgd.decay_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.25);
}

TEST(Optimizer, ZeroGradClears) {
  Param param(Matrix(1, 2));
  param.grad.vec() = {3.0f, 4.0f};
  Sgd sgd(0.1);
  sgd.attach({&param});
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(param.grad.vec()[0], 0.0f);
  EXPECT_FLOAT_EQ(param.grad.vec()[1], 0.0f);
}

TEST(Adam, StepIsBoundedByLearningRate) {
  // Adam's per-step displacement is roughly bounded by lr regardless of
  // gradient magnitude.
  Param param(Matrix(1, 1));
  Adam adam(0.01);
  adam.attach({&param});
  param.grad.vec()[0] = 1e6f;
  adam.step();
  EXPECT_LT(std::fabs(param.value.vec()[0]), 0.1f);
}

}  // namespace
}  // namespace poetbin
