#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace poetbin {
namespace {

Matrix make(std::size_t rows, std::size_t cols,
            std::initializer_list<float> values) {
  Matrix m(rows, cols);
  std::size_t i = 0;
  for (const float v : values) m.vec()[i++] = v;
  return m;
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = make(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Matrix, MatmulTransposedMatchesExplicit) {
  Rng rng(1);
  const Matrix a = Matrix::randn(4, 6, rng, 1.0);
  const Matrix b = Matrix::randn(5, 6, rng, 1.0);
  const Matrix direct = a.matmul_transposed(b);
  const Matrix expected = a.matmul(b.transpose());
  ASSERT_EQ(direct.rows(), expected.rows());
  ASSERT_EQ(direct.cols(), expected.cols());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.vec()[i], expected.vec()[i], 1e-4);
  }
}

TEST(Matrix, TransposedMatmulMatchesExplicit) {
  Rng rng(2);
  const Matrix a = Matrix::randn(7, 3, rng, 1.0);
  const Matrix b = Matrix::randn(7, 4, rng, 1.0);
  const Matrix direct = a.transposed_matmul(b);
  const Matrix expected = a.transpose().matmul(b);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.vec()[i], expected.vec()[i], 1e-4);
  }
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(3);
  const Matrix a = Matrix::randn(5, 9, rng, 1.0);
  const Matrix back = a.transpose().transpose();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.vec()[i], back.vec()[i]);
  }
}

TEST(Matrix, AddRowVector) {
  Matrix m = make(2, 2, {1, 2, 3, 4});
  const Matrix bias = make(1, 2, {10, 20});
  m.add_row_vector(bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 24.0f);
}

TEST(Matrix, ColumnSums) {
  const Matrix m = make(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix sums = m.column_sums();
  EXPECT_FLOAT_EQ(sums(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(sums(0, 1), 12.0f);
}

TEST(Matrix, HadamardAndScale) {
  Matrix a = make(1, 3, {1, 2, 3});
  const Matrix b = make(1, 3, {4, 5, 6});
  const Matrix h = a.hadamard(b);
  EXPECT_FLOAT_EQ(h(0, 2), 18.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a(0, 1), 4.0f);
}

TEST(Matrix, PlusMinus) {
  Matrix a = make(1, 2, {1, 2});
  const Matrix b = make(1, 2, {3, 5});
  a += b;
  EXPECT_FLOAT_EQ(a(0, 1), 7.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(0, 1), 2.0f);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a = make(1, 2, {3, 4});
  EXPECT_NEAR(a.frobenius_norm(), 5.0, 1e-9);
}

TEST(Matrix, RandnStatistics) {
  Rng rng(4);
  const Matrix m = Matrix::randn(100, 100, rng, 0.5);
  double sum = 0.0;
  double sq = 0.0;
  for (const float v : m.vec()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / m.size(), 0.0, 0.02);
  EXPECT_NEAR(sq / m.size(), 0.25, 0.02);
}

}  // namespace
}  // namespace poetbin
