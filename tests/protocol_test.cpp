// The wire protocol's encode/decode helpers work on plain byte buffers, so
// the whole framing state machine is testable without a socket: round trips,
// split delivery, and every rejection path (truncated, oversized,
// zero-length input, inconsistent lengths, unknown type) must come back as
// a clean FrameResult — never a crash, never a silent desync.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/serve_stats.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace poetbin {
namespace wire {
namespace {

BitVector random_bits(std::size_t n_bits, std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n_bits);
  for (std::size_t w = 0; w < bits.word_count(); ++w) {
    bits.words()[w] = rng.next_u64();
  }
  bits.mask_tail_word();
  return bits;
}

// Decodes one request and expects a complete frame.
Request expect_frame(const std::vector<std::uint8_t>& buffer,
                     std::size_t* offset) {
  Request request;
  Status error = Status::kOk;
  bool fatal = false;
  EXPECT_EQ(decode_request(buffer.data(), buffer.size(), offset, &request,
                           &error, &fatal),
            FrameResult::kFrame);
  EXPECT_FALSE(fatal);
  return request;
}

// Decodes one request and expects a rejection with the given status.
void expect_reject(const std::vector<std::uint8_t>& buffer, Status expected,
                   bool expected_fatal = false) {
  std::size_t offset = 0;
  Request request;
  Status error = Status::kOk;
  bool fatal = false;
  EXPECT_EQ(decode_request(buffer.data(), buffer.size(), &offset, &request,
                           &error, &fatal),
            FrameResult::kReject);
  EXPECT_EQ(error, expected) << status_name(error);
  EXPECT_EQ(fatal, expected_fatal);
  // A non-fatal reject consumes exactly the bad frame, so the stream can
  // re-synchronise on the next one.
  if (!expected_fatal) {
    EXPECT_EQ(offset, kFrameHeaderSize + static_cast<std::size_t>(
                                             buffer[0] | (buffer[1] << 8) |
                                             (buffer[2] << 16) |
                                             (buffer[3] << 24)));
  }
}

TEST(ProtocolRequest, PredictRoundTripAcrossWidths) {
  // Widths straddling byte and word boundaries, including a single bit.
  for (const std::size_t n_bits :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{784}}) {
    const BitVector bits = random_bits(n_bits, 0xabc + n_bits);
    std::vector<std::uint8_t> buffer;
    const std::size_t frame = encode_predict_request(bits, &buffer);
    EXPECT_EQ(frame, buffer.size());
    std::size_t offset = 0;
    const Request request = expect_frame(buffer, &offset);
    EXPECT_EQ(offset, buffer.size());
    EXPECT_EQ(request.type, MsgType::kPredict);
    EXPECT_EQ(request.bits, bits) << n_bits << " bits";
  }
}

TEST(ProtocolRequest, InfoAndStatsRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode_info_request(&buffer);
  encode_stats_request(&buffer);
  std::size_t offset = 0;
  EXPECT_EQ(expect_frame(buffer, &offset).type, MsgType::kInfo);
  EXPECT_EQ(expect_frame(buffer, &offset).type, MsgType::kStats);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolRequest, BackToBackFramesDecodeInOrder) {
  std::vector<std::uint8_t> buffer;
  const BitVector a = random_bits(100, 1);
  const BitVector b = random_bits(100, 2);
  encode_predict_request(a, &buffer);
  encode_info_request(&buffer);
  encode_predict_request(b, &buffer);
  std::size_t offset = 0;
  EXPECT_EQ(expect_frame(buffer, &offset).bits, a);
  EXPECT_EQ(expect_frame(buffer, &offset).type, MsgType::kInfo);
  EXPECT_EQ(expect_frame(buffer, &offset).bits, b);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolRequest, EveryTruncationPointNeedsMore) {
  // A partial frame — cut anywhere, including mid-header — must request
  // more bytes and leave the offset untouched, never consume or reject.
  std::vector<std::uint8_t> buffer;
  encode_predict_request(random_bits(120, 3), &buffer);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t offset = 0;
    Request request;
    Status error = Status::kOk;
    bool fatal = false;
    EXPECT_EQ(decode_request(buffer.data(), cut, &offset, &request, &error,
                             &fatal),
              FrameResult::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(ProtocolRequest, OversizedDeclaredLengthIsFatal) {
  const std::uint32_t length = kMaxFramePayload + 1;
  std::vector<std::uint8_t> buffer = {
      static_cast<std::uint8_t>(length), static_cast<std::uint8_t>(length >> 8),
      static_cast<std::uint8_t>(length >> 16),
      static_cast<std::uint8_t>(length >> 24)};
  std::size_t offset = 0;
  Request request;
  Status error = Status::kOk;
  bool fatal = false;
  EXPECT_EQ(decode_request(buffer.data(), buffer.size(), &offset, &request,
                           &error, &fatal),
            FrameResult::kReject);
  EXPECT_EQ(error, Status::kOversized);
  EXPECT_TRUE(fatal);
  // The poisoned stream is drained: nothing left to parse.
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolRequest, ZeroLengthPayloadIsBadFrame) {
  // Declared length 0: no room for even the type byte.
  expect_reject({0, 0, 0, 0}, Status::kBadFrame);
}

TEST(ProtocolRequest, ZeroBitPredictIsEmptyInput) {
  // A syntactically valid predict frame asking for a 0-feature prediction.
  const std::vector<std::uint8_t> buffer = {5, 0, 0, 0,  // length
                                            1,           // kPredict
                                            0, 0, 0, 0}; // n_bits = 0
  expect_reject(buffer, Status::kEmptyInput);
}

TEST(ProtocolRequest, UnknownTypeTagIsRejected) {
  expect_reject({1, 0, 0, 0, 99}, Status::kUnknownType);
}

TEST(ProtocolRequest, InconsistentPredictLengthsAreBadFrames) {
  // n_bits = 16 needs exactly 2 packed bytes; one short and one long.
  const std::vector<std::uint8_t> shorter = {6, 0, 0, 0, 1, 16, 0, 0, 0, 0xff};
  expect_reject(shorter, Status::kBadFrame);
  const std::vector<std::uint8_t> longer = {8,    0, 0, 0, 1, 16,
                                            0,    0, 0, 0xff, 0xff,
                                            0xff};
  expect_reject(longer, Status::kBadFrame);
}

TEST(ProtocolRequest, TrailingBytesOnInfoAreBadFrames) {
  expect_reject({2, 0, 0, 0, 2, 7}, Status::kBadFrame);
}

TEST(ProtocolRequest, StrayPaddingBitsAreMasked) {
  // 4 bits need one packed byte; the high nibble is stray padding the
  // decoder must clear, or downstream LUT indexing would read garbage.
  const std::vector<std::uint8_t> buffer = {6, 0, 0, 0, 1, 4, 0, 0, 0, 0xff};
  std::size_t offset = 0;
  const Request request = expect_frame(buffer, &offset);
  ASSERT_EQ(request.bits.size(), 4u);
  EXPECT_EQ(request.bits.words()[0], 0x0fULL);
}

TEST(ProtocolRequest, FuzzRandomBuffersNeverCrash) {
  // Random garbage must always resolve to one of the three results with a
  // sane offset; the loop also re-syncs after non-fatal rejects.
  Rng rng(0xf522);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> buffer(rng.next_index(64) + 1);
    for (auto& byte : buffer) {
      byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    // Keep declared lengths small so non-fatal paths dominate. Buffers
    // shorter than the length prefix stay as drawn (header kNeedMore).
    if (buffer.size() >= 4) {
      buffer[2] = 0;
      buffer[3] = 0;
    }
    std::size_t offset = 0;
    while (offset < buffer.size()) {
      Request request;
      Status error = Status::kOk;
      bool fatal = false;
      const std::size_t before = offset;
      const FrameResult result = decode_request(
          buffer.data(), buffer.size(), &offset, &request, &error, &fatal);
      ASSERT_LE(offset, buffer.size());
      if (result == FrameResult::kNeedMore) {
        ASSERT_EQ(offset, before);
        break;
      }
      if (fatal) break;
      ASSERT_GT(offset, before);
    }
  }
}

TEST(ProtocolResponse, PredictRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode_predict_response(Status::kOk, 7, &buffer);
  encode_predict_response(Status::kWrongFeatureWidth, 0, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.type, MsgType::kPredict);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.prediction, 7);
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.status, Status::kWrongFeatureWidth);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolResponse, InfoRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode_info_response(784, 10, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.type, MsgType::kInfo);
  EXPECT_EQ(response.n_features, 784u);
  EXPECT_EQ(response.n_classes, 10u);
}

TEST(ProtocolResponse, StatsRoundTripPreservesEveryCounter) {
  ServeStats stats;
  stats.requests = 12345;
  stats.batches = 678;
  stats.timeouts = 9;
  stats.errors = 3;
  stats.connections = 17;
  for (std::size_t b = 0; b < ServeStats::kFillBuckets; ++b) {
    stats.window_fill[b] = 100 + b;
  }
  stats.cache_hits = 4001;
  stats.cache_misses = 4002;
  stats.cache_inserts = 4003;
  stats.cache_evictions = 4004;
  stats.cache_stale = 4005;
  std::vector<std::uint8_t> buffer;
  encode_stats_response(stats, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.type, MsgType::kStats);
  EXPECT_EQ(response.stats, stats);
}

TEST(ProtocolResponse, StatsAcceptsPreCacheLengthWithZeroCounters) {
  // A pre-cache-era server sends the shorter kStats body (no cache
  // counters). The decoder must accept it and report zeroed cache fields,
  // not reject the peer.
  ServeStats stats;
  stats.requests = 777;
  stats.cache_hits = 999;  // must NOT survive the legacy round trip
  std::vector<std::uint8_t> buffer;
  encode_stats_response(stats, &buffer);
  const std::size_t trimmed = 8 * 5;  // the five cache counters
  buffer.resize(buffer.size() - trimmed);
  const std::uint32_t body = static_cast<std::uint32_t>(buffer.size()) - 4;
  buffer[0] = static_cast<std::uint8_t>(body);
  buffer[1] = static_cast<std::uint8_t>(body >> 8);
  buffer[2] = static_cast<std::uint8_t>(body >> 16);
  buffer[3] = static_cast<std::uint8_t>(body >> 24);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(response.stats.requests, 777u);
  EXPECT_EQ(response.stats.cache_hits, 0u);
  EXPECT_EQ(response.stats.cache_misses, 0u);
  EXPECT_EQ(response.stats.cache_stale, 0u);
}

TEST(ProtocolResponse, StatsBetweenKnownLengthsIsRejected) {
  // Only the exact legacy and exact current body lengths are valid — a
  // body one counter short of current matches neither and must reject.
  ServeStats stats;
  std::vector<std::uint8_t> buffer;
  encode_stats_response(stats, &buffer);
  buffer.resize(buffer.size() - 8);
  const std::uint32_t body = static_cast<std::uint32_t>(buffer.size()) - 4;
  buffer[0] = static_cast<std::uint8_t>(body);
  buffer[1] = static_cast<std::uint8_t>(body >> 8);
  buffer[2] = static_cast<std::uint8_t>(body >> 16);
  buffer[3] = static_cast<std::uint8_t>(body >> 24);
  std::size_t offset = 0;
  Response response;
  EXPECT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kReject);
}

TEST(ProtocolResponse, TruncatedStatsResponseNeedsMore) {
  // Same contract as TruncatedResponseNeedsMore, for the (much longer)
  // cache-era kStats frame: every cut point asks for more bytes.
  ServeStats stats;
  stats.requests = 1;
  stats.cache_hits = 2;
  std::vector<std::uint8_t> buffer;
  encode_stats_response(stats, &buffer);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t offset = 0;
    Response response;
    EXPECT_EQ(decode_response(buffer.data(), cut, &offset, &response),
              FrameResult::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(ProtocolResponse, TruncatedResponseNeedsMore) {
  std::vector<std::uint8_t> buffer;
  encode_info_response(32, 5, &buffer);
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t offset = 0;
    Response response;
    EXPECT_EQ(decode_response(buffer.data(), cut, &offset, &response),
              FrameResult::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(ProtocolResponse, WrongBodyLengthIsRejected) {
  // A kOk predict response whose body is missing the u16 class.
  const std::vector<std::uint8_t> buffer = {2, 0, 0, 0, 1, 0};
  std::size_t offset = 0;
  Response response;
  EXPECT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kReject);
}

TEST(ProtocolRequest, ReloadAndModelInfoRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode_reload_request(&buffer);
  encode_model_info_request(&buffer);
  std::size_t offset = 0;
  EXPECT_EQ(expect_frame(buffer, &offset).type, MsgType::kReload);
  EXPECT_EQ(expect_frame(buffer, &offset).type, MsgType::kModelInfo);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolRequest, ReloadWithStrayPayloadIsBadFrame) {
  // The empty-body request types carry exactly the type byte; a stray
  // payload byte must reject without desyncing the stream.
  std::vector<std::uint8_t> buffer;
  encode_reload_request(&buffer);
  buffer[0] = 2;  // patch the length and grow the payload
  buffer.push_back(0xEE);
  expect_reject(buffer, Status::kBadFrame);
}

TEST(ProtocolResponse, ReloadRoundTripOkAndFailed) {
  std::vector<std::uint8_t> buffer;
  encode_reload_response(Status::kOk, 42, &buffer);
  encode_reload_response(Status::kReloadFailed, 999, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.type, MsgType::kReload);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.model_version, 42u);
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.status, Status::kReloadFailed);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolResponse, ModelInfoRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode_model_info_response(7, 1, 784, 10, WireConvShape{}, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.type, MsgType::kModelInfo);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.model_version, 7u);
  EXPECT_EQ(response.model_format, 1);
  EXPECT_EQ(response.n_features, 784u);
  EXPECT_EQ(response.n_classes, 10u);
  EXPECT_EQ(response.conv.has_conv, 0);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolResponse, ModelInfoConvShapeRoundTrip) {
  const WireConvShape shape = {1, 3, 8, 8, 4, 8, 8};
  std::vector<std::uint8_t> buffer;
  encode_model_info_response(9, 1, 3 * 8 * 8, 10, shape, &buffer);
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.conv.has_conv, 1);
  EXPECT_EQ(response.conv.in_channels, 3u);
  EXPECT_EQ(response.conv.in_height, 8u);
  EXPECT_EQ(response.conv.in_width, 8u);
  EXPECT_EQ(response.conv.out_channels, 4u);
  EXPECT_EQ(response.conv.out_height, 8u);
  EXPECT_EQ(response.conv.out_width, 8u);
  EXPECT_EQ(response.n_features, 3u * 8u * 8u);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ProtocolResponse, ModelInfoLegacyBodyStillDecodes) {
  // The pre-conv layout stops after n_classes (19-byte body). A new client
  // must decode it with the conv fields read as zero — and reject any
  // in-between length.
  std::vector<std::uint8_t> full;
  encode_model_info_response(7, 0, 784, 10, WireConvShape{1, 1, 28, 28, 2,
                                                          28, 28},
                             &full);
  const std::size_t legacy_payload = 2 + 8 + 1 + 4 + 4;
  std::vector<std::uint8_t> legacy(full.begin(),
                                   full.begin() + 4 + legacy_payload);
  legacy[0] = static_cast<std::uint8_t>(legacy_payload);  // shrink the frame
  std::size_t offset = 0;
  Response response;
  ASSERT_EQ(decode_response(legacy.data(), legacy.size(), &offset, &response),
            FrameResult::kFrame);
  EXPECT_EQ(response.model_version, 7u);
  EXPECT_EQ(response.n_features, 784u);
  EXPECT_EQ(response.n_classes, 10u);
  EXPECT_EQ(response.conv.has_conv, 0);
  EXPECT_EQ(offset, legacy.size());

  // One byte longer than legacy but shorter than the conv layout: reject.
  std::vector<std::uint8_t> between(full.begin(),
                                    full.begin() + 4 + legacy_payload + 1);
  between[0] = static_cast<std::uint8_t>(legacy_payload + 1);
  offset = 0;
  EXPECT_EQ(decode_response(between.data(), between.size(), &offset,
                            &response),
            FrameResult::kReject);
}

TEST(ProtocolResponse, TruncatedReloadAndModelInfoNeedMore) {
  for (const bool model_info : {false, true}) {
    std::vector<std::uint8_t> buffer;
    if (model_info) {
      encode_model_info_response(3, 0, 16, 3, WireConvShape{}, &buffer);
    } else {
      encode_reload_response(Status::kOk, 3, &buffer);
    }
    for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
      std::size_t offset = 0;
      Response response;
      EXPECT_EQ(decode_response(buffer.data(), cut, &offset, &response),
                FrameResult::kNeedMore)
          << (model_info ? "model_info" : "reload") << " cut at " << cut;
    }
  }
}

TEST(ProtocolResponse, WrongReloadBodyLengthIsRejected) {
  // A kOk reload response whose version field is truncated to 4 bytes.
  const std::vector<std::uint8_t> buffer = {6, 0, 0, 0, 4, 0, 1, 2, 3, 4};
  std::size_t offset = 0;
  Response response;
  EXPECT_EQ(decode_response(buffer.data(), buffer.size(), &offset, &response),
            FrameResult::kReject);
}

}  // namespace
}  // namespace wire
}  // namespace poetbin
