// PredictCache contract: a hit is never a wrong answer. Covers the XOR
// key-verification (deliberate hash collisions must read as misses, never
// as another key's prediction), epoch invalidation and the 2^32 wraparound
// clear, the bucketed replace-on-collision victim policy, and value
// integrity under concurrent probe/insert/clear traffic. Runtime-level
// tests pin the library default (cache off) and the predict_one
// probe-insert path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/predict_cache.h"
#include "serve/runtime.h"
#include "test_util.h"
#include "util/bitvector.h"

namespace poetbin {
namespace {

BitVector bits_from_seed(std::uint64_t seed, std::size_t n_bits = 192) {
  BitVector bits(n_bits);
  Rng rng(seed);
  for (std::size_t w = 0; w < bits.word_count(); ++w) {
    bits.words()[w] = rng.next_u64();
  }
  bits.mask_tail_word();
  return bits;
}

// A single-shard, single-bucket (4-entry) cache: every key lands in the
// same bucket, which is what the collision and eviction tests need.
PredictCacheOptions tiny() {
  return PredictCacheOptions{.capacity_bytes = 64, .shards = 1};
}

TEST(PredictCache, InsertProbeRoundTripAndCounters) {
  PredictCache cache({.capacity_bytes = 1u << 16, .shards = 4});
  const PredictCache::Key key = PredictCache::make_key(bits_from_seed(1));
  int prediction = -1;
  EXPECT_FALSE(cache.probe(key, &prediction));
  cache.insert(key, 7, /*version=*/0);
  EXPECT_TRUE(cache.probe(key, &prediction));
  EXPECT_EQ(prediction, 7);
  const PredictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.stale, 0u);
}

TEST(PredictCache, MakeKeyIsDeterministicAndBitSensitive) {
  const BitVector a = bits_from_seed(2);
  BitVector b = bits_from_seed(2);
  const PredictCache::Key ka = PredictCache::make_key(a);
  const PredictCache::Key kb = PredictCache::make_key(b);
  EXPECT_EQ(ka.hash, kb.hash);
  EXPECT_EQ(ka.verify, kb.verify);
  b.set(17, !b.get(17));
  const PredictCache::Key kc = PredictCache::make_key(b);
  EXPECT_TRUE(kc.hash != ka.hash || kc.verify != ka.verify);
}

TEST(PredictCache, EpochBumpInvalidatesAndReinsertRecovers) {
  PredictCache cache(tiny());
  cache.set_epoch(1);
  const PredictCache::Key key = PredictCache::make_key(bits_from_seed(3));
  cache.insert(key, 4, /*version=*/1);
  int prediction = -1;
  ASSERT_TRUE(cache.probe(key, &prediction));

  cache.set_epoch(2);  // a reload/retrain published
  EXPECT_FALSE(cache.probe(key, &prediction));
  EXPECT_EQ(cache.stats().stale, 1u);

  cache.insert(key, 9, /*version=*/2);
  ASSERT_TRUE(cache.probe(key, &prediction));
  EXPECT_EQ(prediction, 9);
}

TEST(PredictCache, InsertTaggedWithOldVersionNeverHits) {
  // A result computed on a pre-publish snapshot may be inserted after the
  // publish; its old version tag must keep it un-servable.
  PredictCache cache(tiny());
  cache.set_epoch(5);
  const PredictCache::Key key = PredictCache::make_key(bits_from_seed(4));
  cache.insert(key, 2, /*version=*/3);
  int prediction = -1;
  EXPECT_FALSE(cache.probe(key, &prediction));
  EXPECT_EQ(cache.stats().stale, 1u);
}

TEST(PredictCache, HashCollisionReadsAsMissNeverWrongAnswer) {
  PredictCache cache(tiny());
  cache.set_epoch(1);
  // Same full 64-bit hash (same bucket, same stored tag), different verify
  // words: the adversarial collision the XOR check exists for.
  const PredictCache::Key k1{0x1234567890ABCDEFULL, 0x1111111111111111ULL};
  const PredictCache::Key k2{0x1234567890ABCDEFULL, 0x2222222222222222ULL};
  cache.insert(k1, 5, /*version=*/1);
  int prediction = -1;
  EXPECT_FALSE(cache.probe(k2, &prediction));  // never k1's 5
  cache.insert(k2, 9, /*version=*/1);
  ASSERT_TRUE(cache.probe(k2, &prediction));
  EXPECT_EQ(prediction, 9);
  ASSERT_TRUE(cache.probe(k1, &prediction));
  EXPECT_EQ(prediction, 5);
}

TEST(PredictCache, FullBucketReplacesHashChosenVictim) {
  PredictCache cache(tiny());
  ASSERT_EQ(cache.capacity_entries(), 4u);
  cache.set_epoch(1);
  // Six distinct-tag keys in the one bucket. Keys 1..4 fill the empty
  // slots; keys 5 and 6 both choose victim slot (hash >> 46) & 3 == 0.
  auto key_n = [](std::uint64_t n) {
    return PredictCache::Key{n << 48, 0x9999000000000000ULL + n};
  };
  for (std::uint64_t n = 1; n <= 6; ++n) {
    cache.insert(key_n(n), static_cast<int>(n), /*version=*/1);
  }
  const PredictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 6u);
  EXPECT_EQ(stats.evictions, 2u);
  int prediction = -1;
  EXPECT_FALSE(cache.probe(key_n(1), &prediction));  // evicted by 5 then 6
  EXPECT_FALSE(cache.probe(key_n(5), &prediction));
  ASSERT_TRUE(cache.probe(key_n(6), &prediction));
  EXPECT_EQ(prediction, 6);
  for (std::uint64_t n = 2; n <= 4; ++n) {
    ASSERT_TRUE(cache.probe(key_n(n), &prediction));
    EXPECT_EQ(prediction, static_cast<int>(n));
  }
}

TEST(PredictCache, EpochWraparoundClearsInsteadOfAliasing) {
  PredictCache cache(tiny());
  cache.set_epoch(3);
  const PredictCache::Key key = PredictCache::make_key(bits_from_seed(5));
  cache.insert(key, 8, /*version=*/3);
  int prediction = -1;
  ASSERT_TRUE(cache.probe(key, &prediction));

  // (1 << 32) + 3 truncates to the same 32-bit entry tag as version 3 — a
  // lazy stale check would serve version-3 answers as current. The cache
  // must clear the table on the high-half change instead.
  cache.set_epoch((std::uint64_t{1} << 32) + 3);
  EXPECT_FALSE(cache.probe(key, &prediction));
  // The entry was wiped, not matched-and-rejected: no stale count.
  EXPECT_EQ(cache.stats().stale, 0u);
}

TEST(PredictCache, ClearDropsEverything) {
  PredictCache cache({.capacity_bytes = 1u << 12, .shards = 2});
  cache.set_epoch(1);
  for (std::uint64_t s = 0; s < 32; ++s) {
    cache.insert(PredictCache::make_key(bits_from_seed(100 + s)),
                 static_cast<int>(s % 10), /*version=*/1);
  }
  cache.clear();
  int prediction = -1;
  for (std::uint64_t s = 0; s < 32; ++s) {
    EXPECT_FALSE(
        cache.probe(PredictCache::make_key(bits_from_seed(100 + s)),
                    &prediction));
  }
}

TEST(PredictCache, CapacityAndShardsRoundToPowersOfTwo) {
  const PredictCache cache({.capacity_bytes = 1000, .shards = 3});
  EXPECT_EQ(cache.capacity_entries(), 32u);  // floor_pow2(1000 / 16)
  EXPECT_EQ(cache.n_shards(), 4u);           // 3 rounds UP
  // Tiny table: shards collapse until every shard holds a full bucket.
  const PredictCache one({.capacity_bytes = 64, .shards = 16});
  EXPECT_EQ(one.capacity_entries(), 4u);
  EXPECT_EQ(one.n_shards(), 1u);
}

TEST(PredictCache, ConcurrentProbeInsertClearNeverServesWrongValue) {
  // 4 writers + 4 readers over 512 keys with a fixed key -> value mapping,
  // while a chaos thread clears and re-pins the epoch. Any hit must return
  // the mapped value — torn entries and clears may only cause misses.
  PredictCache cache({.capacity_bytes = 1u << 14, .shards = 4});
  cache.set_epoch(1);
  constexpr std::size_t kKeys = 512;
  std::vector<BitVector> inputs;
  std::vector<PredictCache::Key> keys;
  inputs.reserve(kKeys);
  keys.reserve(kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) {
    inputs.push_back(bits_from_seed(1000 + k));
    keys.push_back(PredictCache::make_key(inputs.back()));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> wrong{0};
  std::atomic<std::size_t> hits{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t k = rng.next_index(kKeys);
        cache.insert(keys[k], static_cast<int>(k % 7), /*version=*/1);
      }
    });
    threads.emplace_back([&, t] {
      Rng rng(177 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t k = rng.next_index(kKeys);
        int prediction = -1;
        if (cache.probe(keys[k], &prediction)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (prediction != static_cast<int>(k % 7)) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      cache.clear();
    }
    stop.store(true);
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

TEST(RuntimeCache, DisabledByDefaultAndPredictOneUsesIt) {
  const BinaryDataset data = testing::prototype_dataset(200, 48, 11);
  const std::size_t p = 4;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  Rng rng(13);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      const bool is_class = data.labels[i] == static_cast<int>(j / p);
      intermediate.set(i, j, is_class != rng.next_bool(0.05));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
  config.n_classes = data.n_classes;
  config.output.epochs = 10;
  config.threads = 1;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);

  const Runtime plain(model, {.threads = 1});
  EXPECT_EQ(plain.cache(), nullptr);

  const Runtime cached(model, {.threads = 1, .cache_bytes = 1u << 16});
  ASSERT_NE(cached.cache(), nullptr);
  const BitVector row = data.features.row(0);
  const int expected = model.predict(row);
  EXPECT_EQ(cached.predict_one(row), expected);  // miss + insert
  EXPECT_EQ(cached.predict_one(row), expected);  // hit
  const PredictCacheStats stats = cached.cache()->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);

  // Retrain publishes a new version; the stale entry must not serve, and
  // the refreshed answer must match the new model's scalar predict.
  Runtime mutated(model, {.threads = 1, .cache_bytes = 1u << 16});
  (void)mutated.predict_one(row);
  mutated.retrain_output_layer(data.features, data.labels);
  EXPECT_EQ(mutated.predict_one(row), mutated.model().predict(row));
}

}  // namespace
}  // namespace poetbin
