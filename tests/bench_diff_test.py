#!/usr/bin/env python3
"""Exit-code contract tests for tools/bench_diff.py.

Run as: bench_diff_test.py /path/to/bench_diff.py

The gate's exit codes are load-bearing for CI: 0 = clean, 1 = genuine
regression, 2 = unusable input (a truncated or corrupt previous-run
artifact must not masquerade as a perf failure)."""

import json
import os
import subprocess
import sys
import tempfile


def run(bench_diff, previous, current):
    proc = subprocess.run(
        [sys.executable, bench_diff, previous, current],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def artifact(path, eval_ms):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([{"bench": "batch_eval", "scale": 1.0,
                    "metrics": {"eval_ms": eval_ms}}], handle)


def main():
    if len(sys.argv) != 2:
        print("usage: bench_diff_test.py /path/to/bench_diff.py",
              file=sys.stderr)
        return 2
    bench_diff = sys.argv[1]
    failures = []

    def expect(name, code, want_code, text, want_text):
        if code != want_code:
            failures.append(f"{name}: exit {code}, want {want_code}")
        if want_text not in text:
            failures.append(f"{name}: output missing {want_text!r}: {text!r}")

    with tempfile.TemporaryDirectory() as tmp:
        prev = os.path.join(tmp, "prev.json")
        curr = os.path.join(tmp, "curr.json")
        artifact(curr, eval_ms=10.0)

        # Clean diff: same numbers, exit 0.
        artifact(prev, eval_ms=10.0)
        code, out, _ = run(bench_diff, prev, curr)
        expect("clean", code, 0, out, "OK:")

        # Real regression: exit 1, names the metric.
        artifact(prev, eval_ms=1.0)
        code, out, _ = run(bench_diff, prev, curr)
        expect("regression", code, 1, out, "REGRESSION")

        # Truncated download: valid JSON prefix, cut mid-array.
        with open(prev, "w", encoding="utf-8") as handle:
            handle.write('[{"bench": "batch_eval", "metr')
        code, _, err = run(bench_diff, prev, curr)
        expect("truncated", code, 2, err, "malformed bench artifact")
        expect("truncated names file", code, 2, err, prev)

        # Wrong shape: JSON object instead of the entry array.
        with open(prev, "w", encoding="utf-8") as handle:
            json.dump({"bench": "batch_eval"}, handle)
        code, _, err = run(bench_diff, prev, curr)
        expect("non-array", code, 2, err, "expected a JSON array")

        # Array of non-objects.
        with open(prev, "w", encoding="utf-8") as handle:
            json.dump(["batch_eval"], handle)
        code, _, err = run(bench_diff, prev, curr)
        expect("non-object entry", code, 2, err, "not an object")

    if failures:
        print("FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("bench_diff_test OK: exit codes 0/1/2 behave as documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
