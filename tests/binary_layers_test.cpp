#include "nn/binary_layers.h"

#include <gtest/gtest.h>

namespace poetbin {
namespace {

TEST(SignActivation, ForwardIsPlusMinusOne) {
  SignActivation sign;
  Matrix input(1, 3);
  input.vec() = {-0.5f, 0.0f, 2.0f};
  const Matrix out = sign.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 1.0f);
}

TEST(SignActivation, GradientGatedBySaturation) {
  SignActivation sign;
  Matrix input(1, 3);
  input.vec() = {0.5f, -2.0f, 0.9f};
  sign.forward(input, true);
  Matrix grad(1, 3, 1.0f);
  const Matrix gin = sign.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(gin(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(gin(0, 2), 1.0f);
}

TEST(BinaryDense, ForwardUsesSignOfLatentWeights) {
  Rng rng(1);
  BinaryDense dense(2, 1, rng);
  dense.latent().value(0, 0) = 0.3f;
  dense.latent().value(1, 0) = -0.7f;
  Matrix input(1, 2);
  input.vec() = {1.0f, 1.0f};
  const Matrix out = dense.forward(input, false);
  // sign(0.3)=+1, sign(-0.7)=-1 -> 1*1 + 1*(-1) = 0.
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
}

TEST(BinaryDense, ClipKeepsLatentInUnitBox) {
  Rng rng(2);
  BinaryDense dense(4, 4, rng);
  dense.latent().value(0, 0) = 5.0f;
  dense.latent().value(1, 1) = -5.0f;
  dense.clip_latent_weights();
  EXPECT_FLOAT_EQ(dense.latent().value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dense.latent().value(1, 1), -1.0f);
}

TEST(BinaryDense, XnorPopcountPathMatchesFloatForward) {
  Rng rng(3);
  const std::size_t in_dim = 64;
  const std::size_t out_dim = 8;
  BinaryDense dense(in_dim, out_dim, rng);

  // Random ±1 input, encoded both as floats and as bits.
  Matrix input(1, in_dim);
  BitVector input_bits(in_dim);
  Rng bits_rng(4);
  for (std::size_t i = 0; i < in_dim; ++i) {
    const bool bit = bits_rng.next_bool();
    input(0, i) = bit ? 1.0f : -1.0f;
    input_bits.set(i, bit);
  }

  const Matrix float_out = dense.forward(input, false);
  const auto packed = dense.packed_weights();
  ASSERT_EQ(packed.size(), out_dim);
  for (std::size_t j = 0; j < out_dim; ++j) {
    const long preact = xnor_preactivation(input_bits, packed[j]);
    EXPECT_FLOAT_EQ(float_out(0, j), static_cast<float>(preact)) << "neuron " << j;
  }
}

TEST(XnorPreactivation, KnownValues) {
  BitVector a(4);
  BitVector b(4);
  // all disagree: sum of (2a-1)(2b-1) = -4
  a.fill(true);
  EXPECT_EQ(xnor_preactivation(a, b), -4);
  // all agree: +4
  b.fill(true);
  EXPECT_EQ(xnor_preactivation(a, b), 4);
  // half agree: 0
  b.set(0, false);
  b.set(1, false);
  EXPECT_EQ(xnor_preactivation(a, b), 0);
}

}  // namespace
}  // namespace poetbin
