#include "util/bit_matrix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace poetbin {
namespace {

TEST(BitMatrix, ShapeAndDefault) {
  BitMatrix m(5, 7);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 7u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) EXPECT_FALSE(m.get(r, c));
  }
}

TEST(BitMatrix, SetGet) {
  BitMatrix m(4, 4);
  m.set(2, 3, true);
  EXPECT_TRUE(m.get(2, 3));
  EXPECT_FALSE(m.get(3, 2));
}

TEST(BitMatrix, ColumnIsFeatureMajor) {
  BitMatrix m(100, 3);
  for (std::size_t r = 0; r < 100; r += 2) m.set(r, 1, true);
  EXPECT_EQ(m.column(1).popcount(), 50u);
  EXPECT_EQ(m.column(0).popcount(), 0u);
}

TEST(BitMatrix, RowGathersAcrossColumns) {
  BitMatrix m(3, 5);
  m.set(1, 0, true);
  m.set(1, 4, true);
  const BitVector row = m.row(1);
  EXPECT_EQ(row.size(), 5u);
  EXPECT_TRUE(row.get(0));
  EXPECT_TRUE(row.get(4));
  EXPECT_EQ(row.popcount(), 2u);
}

TEST(BitMatrix, SelectRowsReordersAndDuplicates) {
  BitMatrix m(4, 2);
  m.set(0, 0, true);
  m.set(3, 1, true);
  const BitMatrix sub = m.select_rows({3, 0, 0});
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_TRUE(sub.get(0, 1));
  EXPECT_TRUE(sub.get(1, 0));
  EXPECT_TRUE(sub.get(2, 0));
  EXPECT_FALSE(sub.get(0, 0));
}

TEST(BitMatrix, AppendRow) {
  BitMatrix m(0, 3);
  m.append_row({true, false, true});
  m.append_row({false, true, false});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_TRUE(m.get(0, 2));
  EXPECT_FALSE(m.get(1, 2));
}

TEST(BitMatrix, RowColumnConsistencyProperty) {
  Rng rng(5);
  BitMatrix m(67, 13);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m.set(r, c, rng.next_bool());
    }
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const BitVector row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(row.get(c), m.get(r, c));
      EXPECT_EQ(m.column(c).get(r), m.get(r, c));
    }
  }
}

}  // namespace
}  // namespace poetbin
