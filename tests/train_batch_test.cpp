// Word-parallel training paths vs their scalar references: bit-identical
// LevelDT fits and Adaboost weight trajectories on ragged dataset sizes,
// empty-weight-span defaulting, and tail-word hygiene after raw-word writes.
#include <gtest/gtest.h>

#include <vector>

#include "boost/adaboost.h"
#include "core/batch_eval.h"
#include "core/rinc.h"
#include "dt/level_dt.h"
#include "test_util.h"

namespace poetbin {
namespace {

using testing::random_bits;
using testing::targets_from;

std::vector<double> lognormal_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  double total = 0.0;
  for (auto& w : weights) {
    w = std::exp(rng.gaussian(0.0, 1.0));
    total += w;
  }
  for (auto& w : weights) w /= total;
  return weights;
}

void expect_same_fit(const LevelDtResult& scalar, const LevelDtResult& sliced,
                     std::size_t n) {
  EXPECT_EQ(scalar.lut, sliced.lut) << "n=" << n;
  EXPECT_EQ(scalar.final_entropy, sliced.final_entropy) << "n=" << n;
  EXPECT_EQ(scalar.weighted_error, sliced.weighted_error) << "n=" << n;
}

// The ragged sweep: sizes around the word boundary plus a multi-word size.
class WordParallelRaggedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WordParallelRaggedTest, LevelDtFitsBitIdentical) {
  const std::size_t n = GetParam();
  const BitMatrix features = random_bits(n, 24, 100 + n);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(1) != x.get(5); }, 0.1,
      n);
  const std::vector<double> weights = lognormal_weights(n, 7 + n);

  const LevelDtResult scalar = train_level_dt(
      features, targets, weights, {.n_inputs = 5, .word_parallel = false});
  const LevelDtResult sliced = train_level_dt(
      features, targets, weights, {.n_inputs = 5, .word_parallel = true});
  expect_same_fit(scalar, sliced, n);
}

TEST_P(WordParallelRaggedTest, LevelDtThreadedScanMatchesSerial) {
  const std::size_t n = GetParam();
  const BitMatrix features = random_bits(n, 20, 200 + n);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(0) && x.get(3); }, 0.05,
      n);
  const std::vector<double> weights = lognormal_weights(n, 9 + n);

  const LevelDtConfig config{.n_inputs = 4, .word_parallel = true};
  const LevelDtResult serial =
      train_level_dt(features, targets, weights, config);
  const BatchEngine engine(4);
  const LevelDtResult threaded =
      train_level_dt(features, targets, weights, config, &engine);
  expect_same_fit(serial, threaded, n);

  const LevelDtResult scalar = train_level_dt(
      features, targets, weights, {.n_inputs = 4, .word_parallel = false});
  expect_same_fit(scalar, threaded, n);
}

TEST_P(WordParallelRaggedTest, AdaboostTrajectoriesBitIdentical) {
  const std::size_t n = GetParam();
  const BitMatrix features = random_bits(n, 9, 300 + n);
  const BitVector targets = targets_from(
      features,
      [](const BitVector& x) {
        return static_cast<int>(x.get(0)) + x.get(1) + x.get(2) >= 2;
      },
      0.05, n);

  // The probe records every weight vector each path's weak learner sees.
  auto run_with = [&](bool word_parallel,
                      std::vector<std::vector<double>>& seen) {
    auto probe = [&](std::span<const double> weights, std::size_t round) {
      seen.emplace_back(weights.begin(), weights.end());
      LevelDtConfig config{.n_inputs = 1, .word_parallel = word_parallel};
      // Rotate the stump's candidate pool so rounds differ.
      config.candidate_features = {round % 9, (round + 3) % 9, (round + 6) % 9};
      return train_level_dt(features, targets, weights, config)
          .lut.eval_dataset(features);
    };
    return run_adaboost(targets, probe,
                        {.n_rounds = 4, .word_parallel = word_parallel});
  };

  std::vector<std::vector<double>> scalar_seen, word_seen;
  const AdaboostResult scalar = run_with(false, scalar_seen);
  const AdaboostResult word = run_with(true, word_seen);

  ASSERT_EQ(scalar.rounds.size(), word.rounds.size());
  for (std::size_t r = 0; r < scalar.rounds.size(); ++r) {
    EXPECT_EQ(scalar.rounds[r].alpha, word.rounds[r].alpha) << "round " << r;
    EXPECT_EQ(scalar.rounds[r].weighted_error, word.rounds[r].weighted_error)
        << "round " << r;
  }
  ASSERT_EQ(scalar_seen.size(), word_seen.size());
  for (std::size_t r = 0; r < scalar_seen.size(); ++r) {
    EXPECT_EQ(scalar_seen[r], word_seen[r]) << "weights at round " << r;
  }
  EXPECT_EQ(scalar.mat.weights(), word.mat.weights());
  EXPECT_TRUE(scalar.train_predictions == word.train_predictions);
  EXPECT_EQ(scalar.train_error, word.train_error);
}

INSTANTIATE_TEST_SUITE_P(RaggedSizes, WordParallelRaggedTest,
                         ::testing::Values(1, 63, 64, 65, 1000));

TEST(WordParallelTraining, EmptyWeightSpanDefaultsToUniform) {
  const BitMatrix features = random_bits(500, 16, 11);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(2); }, 0.1, 12);
  const std::vector<double> uniform(500, 1.0 / 500.0);

  for (const bool word_parallel : {false, true}) {
    const LevelDtConfig config{.n_inputs = 4, .word_parallel = word_parallel};
    const LevelDtResult defaulted =
        train_level_dt(features, targets, {}, config);
    const LevelDtResult explicit_uniform =
        train_level_dt(features, targets, uniform, config);
    EXPECT_EQ(defaulted.lut, explicit_uniform.lut);
    EXPECT_EQ(defaulted.weighted_error, explicit_uniform.weighted_error);
  }
}

TEST(WordParallelTraining, RincModulesIdenticalAcrossPaths) {
  const BitMatrix features = random_bits(800, 40, 21);
  const BitVector targets = targets_from(
      features,
      [](const BitVector& x) {
        return static_cast<int>(x.get(3)) + x.get(11) + x.get(29) >= 2;
      },
      0.08, 22);

  RincConfig scalar_config{.lut_inputs = 4, .levels = 2, .total_dts = 10,
                           .word_parallel_training = false};
  RincConfig word_config = scalar_config;
  word_config.word_parallel_training = true;

  const RincModule scalar =
      RincModule::train(features, targets, {}, scalar_config);
  const RincModule word = RincModule::train(features, targets, {}, word_config);

  EXPECT_EQ(scalar.train_error(), word.train_error());
  EXPECT_TRUE(scalar.eval_dataset(features) == word.eval_dataset(features));
  const auto scalar_leaves = scalar.leaf_luts();
  const auto word_leaves = word.leaf_luts();
  ASSERT_EQ(scalar_leaves.size(), word_leaves.size());
  for (std::size_t i = 0; i < scalar_leaves.size(); ++i) {
    EXPECT_EQ(*scalar_leaves[i], *word_leaves[i]) << "leaf " << i;
  }
  EXPECT_EQ(scalar.mat().weights(), word.mat().weights());
}

TEST(WordParallelTraining, RincTrainWithEngineMatchesSerial) {
  const BitMatrix features = random_bits(600, 32, 31);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(7) != x.get(15); }, 0.1,
      32);

  const RincConfig config{.lut_inputs = 4, .levels = 1, .total_dts = 4};
  const RincModule serial = RincModule::train(features, targets, {}, config);
  const BatchEngine engine(4);
  const RincModule threaded =
      RincModule::train(features, targets, {}, config, &engine);
  EXPECT_EQ(serial.train_error(), threaded.train_error());
  EXPECT_TRUE(serial.eval_dataset(features) == threaded.eval_dataset(features));
}

TEST(WordParallelTraining, ToleratesDirtyColumnTailWords) {
  // Raw-word writers that skip mask_tail_word() leave garbage beyond
  // rows(); the scalar scan never reads past n, and the word-parallel scan
  // must mask the tail instead of indexing cell/weight arrays out of
  // bounds (caught under ASan) or counting phantom examples.
  const std::size_t n = 70;  // 6 live bits in the tail word
  BitMatrix clean = random_bits(n, 12, 41);
  const BitVector targets = targets_from(
      clean, [](const BitVector& x) { return x.get(4); }, 0.1, 42);
  BitMatrix dirty = clean;
  for (std::size_t c = 0; c < dirty.cols(); ++c) {
    dirty.column(c).words()[dirty.word_count() - 1] |= ~0ULL << (n % 64);
  }
  const std::vector<double> weights = lognormal_weights(n, 43);

  const LevelDtResult reference = train_level_dt(
      clean, targets, weights, {.n_inputs = 4, .word_parallel = false});
  const LevelDtResult sliced = train_level_dt(
      dirty, targets, weights, {.n_inputs = 4, .word_parallel = true});
  expect_same_fit(reference, sliced, n);
}

TEST(WordParallelTraining, HugeArityFallsBackWithoutCarriedBuffers) {
  // 600 candidates x 2^16 cells of carried masses would be ~300 MiB; the
  // dispatch must fall back to the scalar scan (identical results) instead
  // of allocating that.
  const std::size_t n = 64;
  const BitMatrix features = random_bits(n, 600, 51);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(10); }, 0.2, 52);
  const LevelDtResult scalar = train_level_dt(
      features, targets, {}, {.n_inputs = 16, .word_parallel = false});
  const LevelDtResult word = train_level_dt(
      features, targets, {}, {.n_inputs = 16, .word_parallel = true});
  expect_same_fit(scalar, word, n);
}

TEST(WordParallelTraining, TailWordMaskingAfterRawWordWrites) {
  // Raw-word writers may leave garbage beyond size(); mask_tail_word() must
  // restore the invariant, and the word-span consumers (xor_into, masked
  // weighted sums) must not see phantom bits.
  const std::size_t n = 65;
  BitVector a(n), b(n);
  a.words()[0] = 0xDEADBEEFDEADBEEFULL;
  a.words()[1] = ~0ULL;  // 63 garbage bits beyond n
  a.mask_tail_word();
  b.words()[0] = 0x0123456789ABCDEFULL;
  b.words()[1] = ~0ULL;
  b.mask_tail_word();

  EXPECT_EQ(a.popcount(), a.popcount_prefix(n));
  std::size_t expected_pop = 0;
  for (std::size_t i = 0; i < n; ++i) expected_pop += a.get(i);
  EXPECT_EQ(a.popcount(), expected_pop);

  BitVector x;
  a.xor_into(b, x);
  ASSERT_EQ(x.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x.get(i), a.get(i) != b.get(i)) << "bit " << i;
  }
  EXPECT_EQ(x.popcount(), a.hamming(b));

  // All-ones weights turn the masked sum into a popcount; phantom tail bits
  // would inflate it (or read out of bounds).
  const std::vector<double> ones(n, 1.0);
  EXPECT_EQ(x.masked_weighted_sum(ones), static_cast<double>(x.popcount()));

  // The raw-word-span variant must also ignore bits beyond n_bits even when
  // handed a dirty tail word directly: bits 1..63 of the second word are all
  // out of range for n = 65, so the sum must not change.
  std::vector<std::uint64_t> dirty(x.words(), x.words() + x.word_count());
  dirty.back() |= ~0ULL << 1;
  EXPECT_EQ(masked_weighted_sum_words(dirty, ones, n),
            static_cast<double>(x.popcount()));
}

}  // namespace
}  // namespace poetbin
