#include "core/rinc_conv.h"

#include <gtest/gtest.h>

#include "core/batch_eval.h"
#include "dt/lut.h"
#include "test_util.h"

namespace poetbin {
namespace {

// Binary input maps with a known boolean teacher conv on top.
struct ConvProblem {
  BitMatrix inputs;   // n x C*H*W
  BitMatrix targets;  // n x out_c*oh*ow
  BinShape3 in_shape;
};

// Teacher channel 0: centre pixel of the 3x3 patch; channel 1: OR of the
// four edge-neighbours. Both are exact functions of <= 5 patch bits, so a
// P>=5 RINC-0 should learn them perfectly.
ConvProblem make_problem(std::size_t n, std::uint64_t seed) {
  ConvProblem problem;
  problem.in_shape = {1, 8, 8};
  Rng rng(seed);
  problem.inputs = BitMatrix(n, problem.in_shape.flat());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < problem.in_shape.flat(); ++k) {
      if (rng.next_bool()) problem.inputs.set(i, k, true);
    }
  }

  auto pixel = [&](std::size_t i, long r, long c) {
    if (r < 0 || c < 0 || r >= 8 || c >= 8) return false;
    return problem.inputs.get(i, static_cast<std::size_t>(r) * 8 +
                                     static_cast<std::size_t>(c));
  };
  problem.targets = BitMatrix(n, 2 * 8 * 8);
  for (std::size_t i = 0; i < n; ++i) {
    for (long r = 0; r < 8; ++r) {
      for (long c = 0; c < 8; ++c) {
        const std::size_t p = static_cast<std::size_t>(r) * 8 +
                              static_cast<std::size_t>(c);
        problem.targets.set(i, p, pixel(i, r, c));
        const bool any_edge = pixel(i, r - 1, c) || pixel(i, r + 1, c) ||
                              pixel(i, r, c - 1) || pixel(i, r, c + 1);
        problem.targets.set(i, 64 + p, any_edge);
      }
    }
  }
  return problem;
}

RincConvConfig base_config() {
  RincConvConfig config;
  config.out_channels = 2;
  config.kernel = 3;
  config.stride = 1;
  config.padding = 1;
  config.rinc = {.lut_inputs = 5, .levels = 1, .total_dts = 5};
  return config;
}

TEST(RincConv, OutputShapes) {
  const ConvProblem problem = make_problem(20, 1);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());
  EXPECT_EQ(layer.output_shape(), (BinShape3{2, 8, 8}));
  EXPECT_EQ(layer.patch_bits(), 9u);
  const BitMatrix out = layer.eval_dataset(problem.inputs);
  EXPECT_EQ(out.rows(), 20u);
  EXPECT_EQ(out.cols(), 128u);
}

TEST(RincConv, LearnsExactPatchFunctions) {
  const ConvProblem problem = make_problem(60, 2);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());
  // Both teacher channels are functions of <= 5 patch bits; the pooled
  // patch dataset (60 x 64 rows) covers the space, so fidelity must be 1.
  EXPECT_DOUBLE_EQ(layer.fidelity(problem.inputs, problem.targets), 1.0);
}

TEST(RincConv, GeneralisesToFreshInputs) {
  const ConvProblem train_problem = make_problem(60, 3);
  const RincConvLayer layer =
      RincConvLayer::train(train_problem.inputs, train_problem.in_shape,
                           train_problem.targets, base_config());
  const ConvProblem test_problem = make_problem(30, 999);
  EXPECT_DOUBLE_EQ(layer.fidelity(test_problem.inputs, test_problem.targets),
                   1.0);
}

TEST(RincConv, WeightSharingIsTranslationEquivariant) {
  const ConvProblem problem = make_problem(40, 4);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());

  // One lit pixel at (3, 3) vs (4, 5): channel outputs must shift with it.
  BitMatrix a(1, 64);
  a.set(0, 3 * 8 + 3, true);
  BitMatrix b(1, 64);
  b.set(0, 4 * 8 + 5, true);
  const BitMatrix out_a = layer.eval_dataset(a);
  const BitMatrix out_b = layer.eval_dataset(b);
  for (std::size_t channel = 0; channel < 2; ++channel) {
    for (long dr = -1; dr <= 1; ++dr) {
      for (long dc = -1; dc <= 1; ++dc) {
        const std::size_t pa = static_cast<std::size_t>((3 + dr) * 8 + 3 + dc);
        const std::size_t pb = static_cast<std::size_t>((4 + dr) * 8 + 5 + dc);
        EXPECT_EQ(out_a.get(0, channel * 64 + pa),
                  out_b.get(0, channel * 64 + pb))
            << "channel " << channel << " offset " << dr << "," << dc;
      }
    }
  }
}

TEST(RincConv, StrideAndValidPadding) {
  const ConvProblem problem = make_problem(20, 5);
  RincConvConfig config = base_config();
  config.stride = 2;
  config.padding = 0;
  // Output 3x3 per channel: (8 - 3)/2 + 1.
  BitMatrix targets(problem.inputs.rows(), 2 * 3 * 3);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, targets, config);
  EXPECT_EQ(layer.output_shape(), (BinShape3{2, 3, 3}));
}

TEST(RincConv, LutCountIsPerChannelSum) {
  const ConvProblem problem = make_problem(20, 6);
  RincConvConfig config = base_config();
  config.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, config);
  // 2 channels x (3 DTs + 1 MAT).
  EXPECT_EQ(layer.lut_count_per_position(), 2u * 4u);
  EXPECT_EQ(layer.channel_modules().size(), 2u);
}

TEST(RincConv, PatchSubsamplingStillLearns) {
  const ConvProblem problem = make_problem(60, 7);
  RincConvConfig config = base_config();
  config.max_train_patches = 500;  // force subsampling (60*64 = 3840 rows)
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, config);
  EXPECT_GT(layer.fidelity(problem.inputs, problem.targets), 0.95);
}

// --- bitsliced path: bit-identity against the scalar oracle ---------------

struct ConvGeom {
  BinShape3 in_shape;
  std::size_t out_channels;
  std::size_t kernel;
  std::size_t stride;
  std::size_t padding;
};

// The acceptance bar for eval_dataset_batched: bit-identical to the scalar
// eval_dataset on every available word backend and several engine widths,
// across geometries that stress each indexing path (pointwise 1x1, strided,
// maximum padding, multi-channel, non-square) and example counts straddling
// the 64-bit word boundary.
TEST(RincConvBatched, BitIdenticalAcrossShapesBackendsAndThreads) {
  const std::vector<ConvGeom> geoms = {
      {{1, 8, 8}, 2, 3, 1, 1},  // canonical same-size conv
      {{2, 8, 8}, 2, 1, 1, 0},  // pointwise 1x1
      {{1, 8, 8}, 2, 3, 2, 0},  // kernel > stride, valid padding
      {{1, 8, 8}, 2, 3, 1, 2},  // padding = kernel - 1 (max legal)
      {{3, 6, 6}, 2, 2, 2, 0},  // multi-channel, stride = kernel
      {{2, 7, 5}, 3, 3, 2, 1},  // non-square frame, every knob odd
  };
  testing::BackendGuard guard;
  std::uint64_t seed = 500;
  for (const ConvGeom& geom : geoms) {
    RincConvConfig config;
    config.out_channels = geom.out_channels;
    config.kernel = geom.kernel;
    config.stride = geom.stride;
    config.padding = geom.padding;
    // The pointwise geometry exposes only 2 patch bits; shrink the module
    // to fit (RincConfig requires arity >= 2).
    const std::size_t patch_bits =
        geom.in_shape.channels * geom.kernel * geom.kernel;
    if (patch_bits >= 4) {
      config.rinc = {.lut_inputs = 4, .levels = 1, .total_dts = 4};
    } else {
      config.rinc = {.lut_inputs = 2, .levels = 0, .total_dts = 1};
    }
    const std::size_t out_h =
        (geom.in_shape.height + 2 * geom.padding - geom.kernel) / geom.stride +
        1;
    const std::size_t out_w =
        (geom.in_shape.width + 2 * geom.padding - geom.kernel) / geom.stride +
        1;
    // Random targets: fidelity is irrelevant here, the layer just has to be
    // a real trained artefact with non-trivial modules.
    const BitMatrix train_inputs =
        testing::random_bits(40, geom.in_shape.flat(), seed++);
    const BitMatrix targets = testing::random_bits(
        40, geom.out_channels * out_h * out_w, seed++);
    const RincConvLayer layer =
        RincConvLayer::train(train_inputs, geom.in_shape, targets, config);
    ASSERT_EQ(layer.output_shape(),
              (BinShape3{geom.out_channels, out_h, out_w}));

    for (const std::size_t n : {1u, 63u, 64u, 65u, 130u}) {
      const BitMatrix inputs =
          testing::random_bits(n, geom.in_shape.flat(), seed++);
      set_word_backend(WordBackend::kScalar64);
      const BitMatrix want = layer.eval_dataset(inputs);
      for (const WordBackend backend : available_word_backends()) {
        set_word_backend(backend);
        for (const std::size_t threads : {1u, 2u, 5u}) {
          const BatchEngine engine(threads);
          EXPECT_EQ(layer.eval_dataset_batched(inputs, engine), want)
              << word_backend_name(backend) << " x" << threads << " n=" << n
              << " kernel=" << geom.kernel << " stride=" << geom.stride
              << " padding=" << geom.padding;
        }
      }
    }
  }
}

// The fused ConvModel path (bitsliced conv pass + fused classifier argmax)
// against the scalar conv + scalar classifier oracle.
TEST(RincConvBatched, ConvModelFusedPredictMatchesScalar) {
  const ConvProblem problem = make_problem(90, 21);
  ConvModel model;
  model.conv = RincConvLayer::train(problem.inputs, problem.in_shape,
                                    problem.targets, base_config());
  const BitMatrix conv_out = model.conv.eval_dataset(problem.inputs);
  std::vector<int> labels(problem.inputs.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  BitMatrix intermediate(conv_out.rows(), 4 * 3);
  for (std::size_t i = 0; i < intermediate.rows(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, labels[i] == static_cast<int>(j / 3));
    }
  }
  PoetBinConfig classifier_config;
  classifier_config.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
  classifier_config.n_classes = 4;
  classifier_config.output.epochs = 10;
  model.classifier =
      PoetBin::train(conv_out, intermediate, labels, classifier_config);

  const std::vector<int> want = model.predict_dataset(problem.inputs);
  // Scalar single-frame path agrees with the dataset oracle.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(model.predict(problem.inputs.row(i)), want[i]);
  }
  testing::BackendGuard guard;
  for (const WordBackend backend : available_word_backends()) {
    set_word_backend(backend);
    for (const std::size_t threads : {1u, 2u, 5u}) {
      const BatchEngine engine(threads);
      EXPECT_EQ(model.predict_dataset_batched(problem.inputs, engine), want)
          << word_backend_name(backend) << " x" << threads;
    }
  }
}

// --- geometry validation: malformed configs abort with named contracts ----

TEST(RincConvValidateDeathTest, RejectsMalformedGeometry) {
  const BinShape3 shape{1, 8, 8};
  RincConvConfig config = base_config();
  config.kernel = 0;
  EXPECT_DEATH(RincConvLayer::validate(shape, config), "");
  config = base_config();
  config.stride = 0;
  EXPECT_DEATH(RincConvLayer::validate(shape, config), "");
  config = base_config();
  config.out_channels = 0;
  EXPECT_DEATH(RincConvLayer::validate(shape, config), "");
  config = base_config();
  config.padding = config.kernel;  // all-padding patches admitted
  EXPECT_DEATH(RincConvLayer::validate(shape, config), "");
  config = base_config();
  EXPECT_DEATH(RincConvLayer::validate({0, 8, 8}, config), "");
  EXPECT_DEATH(RincConvLayer::validate({1, 0, 8}, config), "");
  EXPECT_DEATH(RincConvLayer::validate({1, 8, 0}, config), "");
  // kernel 3 cannot fit an unpadded 2x2 frame.
  config.padding = 0;
  EXPECT_DEATH(RincConvLayer::validate({1, 2, 2}, config), "");
}

TEST(RincConvValidateDeathTest, FromPartsRejectsInconsistentModules) {
  BitVector id_table(2);
  id_table.set(1, true);
  const auto leaf_on = [&](std::size_t feature) {
    return RincModule::make_leaf(Lut({feature}, id_table));
  };
  RincConvConfig config = base_config();  // out_channels=2, patch_bits=9

  // Wrong module count: one module for two output channels.
  std::vector<RincModule> one;
  one.push_back(leaf_on(0));
  EXPECT_DEATH(
      RincConvLayer::from_parts({1, 8, 8}, config, std::move(one)), "");

  // A module wired beyond the patch width (feature 9 of a 9-bit patch).
  std::vector<RincModule> wired;
  wired.push_back(leaf_on(0));
  wired.push_back(leaf_on(9));
  EXPECT_DEATH(
      RincConvLayer::from_parts({1, 8, 8}, config, std::move(wired)), "");

  // The same parts with in-range wiring construct fine.
  std::vector<RincModule> good;
  good.push_back(leaf_on(0));
  good.push_back(leaf_on(8));
  const RincConvLayer layer =
      RincConvLayer::from_parts({1, 8, 8}, config, std::move(good));
  EXPECT_EQ(layer.output_shape(), (BinShape3{2, 8, 8}));
}

}  // namespace
}  // namespace poetbin
