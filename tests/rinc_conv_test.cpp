#include "core/rinc_conv.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

// Binary input maps with a known boolean teacher conv on top.
struct ConvProblem {
  BitMatrix inputs;   // n x C*H*W
  BitMatrix targets;  // n x out_c*oh*ow
  BinShape3 in_shape;
};

// Teacher channel 0: centre pixel of the 3x3 patch; channel 1: OR of the
// four edge-neighbours. Both are exact functions of <= 5 patch bits, so a
// P>=5 RINC-0 should learn them perfectly.
ConvProblem make_problem(std::size_t n, std::uint64_t seed) {
  ConvProblem problem;
  problem.in_shape = {1, 8, 8};
  Rng rng(seed);
  problem.inputs = BitMatrix(n, problem.in_shape.flat());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < problem.in_shape.flat(); ++k) {
      if (rng.next_bool()) problem.inputs.set(i, k, true);
    }
  }

  auto pixel = [&](std::size_t i, long r, long c) {
    if (r < 0 || c < 0 || r >= 8 || c >= 8) return false;
    return problem.inputs.get(i, static_cast<std::size_t>(r) * 8 +
                                     static_cast<std::size_t>(c));
  };
  problem.targets = BitMatrix(n, 2 * 8 * 8);
  for (std::size_t i = 0; i < n; ++i) {
    for (long r = 0; r < 8; ++r) {
      for (long c = 0; c < 8; ++c) {
        const std::size_t p = static_cast<std::size_t>(r) * 8 +
                              static_cast<std::size_t>(c);
        problem.targets.set(i, p, pixel(i, r, c));
        const bool any_edge = pixel(i, r - 1, c) || pixel(i, r + 1, c) ||
                              pixel(i, r, c - 1) || pixel(i, r, c + 1);
        problem.targets.set(i, 64 + p, any_edge);
      }
    }
  }
  return problem;
}

RincConvConfig base_config() {
  RincConvConfig config;
  config.out_channels = 2;
  config.kernel = 3;
  config.stride = 1;
  config.padding = 1;
  config.rinc = {.lut_inputs = 5, .levels = 1, .total_dts = 5};
  return config;
}

TEST(RincConv, OutputShapes) {
  const ConvProblem problem = make_problem(20, 1);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());
  EXPECT_EQ(layer.output_shape(), (BinShape3{2, 8, 8}));
  EXPECT_EQ(layer.patch_bits(), 9u);
  const BitMatrix out = layer.eval_dataset(problem.inputs);
  EXPECT_EQ(out.rows(), 20u);
  EXPECT_EQ(out.cols(), 128u);
}

TEST(RincConv, LearnsExactPatchFunctions) {
  const ConvProblem problem = make_problem(60, 2);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());
  // Both teacher channels are functions of <= 5 patch bits; the pooled
  // patch dataset (60 x 64 rows) covers the space, so fidelity must be 1.
  EXPECT_DOUBLE_EQ(layer.fidelity(problem.inputs, problem.targets), 1.0);
}

TEST(RincConv, GeneralisesToFreshInputs) {
  const ConvProblem train_problem = make_problem(60, 3);
  const RincConvLayer layer =
      RincConvLayer::train(train_problem.inputs, train_problem.in_shape,
                           train_problem.targets, base_config());
  const ConvProblem test_problem = make_problem(30, 999);
  EXPECT_DOUBLE_EQ(layer.fidelity(test_problem.inputs, test_problem.targets),
                   1.0);
}

TEST(RincConv, WeightSharingIsTranslationEquivariant) {
  const ConvProblem problem = make_problem(40, 4);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, base_config());

  // One lit pixel at (3, 3) vs (4, 5): channel outputs must shift with it.
  BitMatrix a(1, 64);
  a.set(0, 3 * 8 + 3, true);
  BitMatrix b(1, 64);
  b.set(0, 4 * 8 + 5, true);
  const BitMatrix out_a = layer.eval_dataset(a);
  const BitMatrix out_b = layer.eval_dataset(b);
  for (std::size_t channel = 0; channel < 2; ++channel) {
    for (long dr = -1; dr <= 1; ++dr) {
      for (long dc = -1; dc <= 1; ++dc) {
        const std::size_t pa = static_cast<std::size_t>((3 + dr) * 8 + 3 + dc);
        const std::size_t pb = static_cast<std::size_t>((4 + dr) * 8 + 5 + dc);
        EXPECT_EQ(out_a.get(0, channel * 64 + pa),
                  out_b.get(0, channel * 64 + pb))
            << "channel " << channel << " offset " << dr << "," << dc;
      }
    }
  }
}

TEST(RincConv, StrideAndValidPadding) {
  const ConvProblem problem = make_problem(20, 5);
  RincConvConfig config = base_config();
  config.stride = 2;
  config.padding = 0;
  // Output 3x3 per channel: (8 - 3)/2 + 1.
  BitMatrix targets(problem.inputs.rows(), 2 * 3 * 3);
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, targets, config);
  EXPECT_EQ(layer.output_shape(), (BinShape3{2, 3, 3}));
}

TEST(RincConv, LutCountIsPerChannelSum) {
  const ConvProblem problem = make_problem(20, 6);
  RincConvConfig config = base_config();
  config.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, config);
  // 2 channels x (3 DTs + 1 MAT).
  EXPECT_EQ(layer.lut_count_per_position(), 2u * 4u);
  EXPECT_EQ(layer.channel_modules().size(), 2u);
}

TEST(RincConv, PatchSubsamplingStillLearns) {
  const ConvProblem problem = make_problem(60, 7);
  RincConvConfig config = base_config();
  config.max_train_patches = 500;  // force subsampling (60*64 = 3840 rows)
  const RincConvLayer layer = RincConvLayer::train(
      problem.inputs, problem.in_shape, problem.targets, config);
  EXPECT_GT(layer.fidelity(problem.inputs, problem.targets), 0.95);
}

}  // namespace
}  // namespace poetbin
