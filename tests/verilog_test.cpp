#include "hw/verilog.h"

#include <gtest/gtest.h>

#include "hw/netlist_opt.h"
#include "test_util.h"

namespace poetbin {
namespace {

std::size_t count_occurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    ++count;
    pos += what.size();
  }
  return count;
}

RincNetlist trained_rinc() {
  const BitMatrix features = testing::random_bits(200, 16, 1);
  BitVector targets(200);
  for (std::size_t i = 0; i < 200; ++i) {
    targets.set(i, features.get(i, 2) && features.get(i, 9));
  }
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 3, .levels = 1, .total_dts = 3});
  return build_rinc_netlist(module, 16);
}

TEST(Verilog, RincModuleStructure) {
  const RincNetlist netlist = trained_rinc();
  const std::string verilog = generate_rinc_verilog(netlist, "my_rinc");
  EXPECT_NE(verilog.find("module my_rinc ("), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
  EXPECT_NE(verilog.find("input  wire [15:0] x"), std::string::npos);
  EXPECT_NE(verilog.find("output wire y"), std::string::npos);
  EXPECT_EQ(count_occurrences(verilog, "localparam"),
            netlist.netlist.n_luts());
}

TEST(Verilog, TableLiteralMsbFirst) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  BitVector table(2);
  table.set(0, true);  // inverter: address 0 -> 1, address 1 -> 0
  const auto inverter = netlist.add_lut({a}, table, "inv");
  netlist.mark_output(inverter);
  RincNetlist wrapper;
  wrapper.netlist = netlist;
  wrapper.n_features = 1;
  wrapper.output_node = inverter;
  const std::string verilog = generate_rinc_verilog(wrapper, "inv_mod");
  // MSB first: table bits "01" (bit1=0, bit0=1).
  EXPECT_NE(verilog.find("2'b01"), std::string::npos);
}

TEST(Verilog, ClassifierPorts) {
  const BinaryDataset data = testing::prototype_dataset(150, 20, 3);
  const std::size_t p = 3;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 3};
  config.n_classes = data.n_classes;
  config.output.epochs = 20;
  config.output.quant_bits = 4;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);
  const PoetBinNetlist netlist = build_poetbin_netlist(model, 20);
  const std::string verilog = generate_verilog(netlist);
  EXPECT_NE(verilog.find("module poetbin_classifier ("), std::string::npos);
  EXPECT_NE(verilog.find("input  wire [19:0] x"), std::string::npos);
  for (int c = 0; c < 10; ++c) {
    EXPECT_NE(verilog.find("output wire [3:0] score" + std::to_string(c)),
              std::string::npos);
  }
  EXPECT_EQ(count_occurrences(verilog, "assign score"), 40u);
}

TEST(Verilog, HandlesConstantNodesFromOptimizer) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto zero = netlist.add_lut({a}, BitVector(2), "z");
  netlist.mark_output(zero);
  const Netlist optimized = optimize_netlist(netlist);
  RincNetlist wrapper;
  wrapper.netlist = optimized;
  wrapper.n_features = 1;
  wrapper.output_node = optimized.outputs()[0];
  const std::string verilog = generate_rinc_verilog(wrapper, "const_mod");
  EXPECT_NE(verilog.find("= 1'b0;"), std::string::npos);
  EXPECT_EQ(verilog.find("localparam"), std::string::npos);
}

}  // namespace
}  // namespace poetbin
