#include "nn/conv.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv({3, 16, 16}, 8, 3, 1, 1, rng);
  EXPECT_EQ(conv.output_shape(), (Shape3{8, 16, 16}));
  Conv2d strided({3, 16, 16}, 4, 3, 2, 1, rng);
  EXPECT_EQ(strided.output_shape(), (Shape3{4, 8, 8}));
  Conv2d valid({1, 5, 5}, 2, 3, 1, 0, rng);
  EXPECT_EQ(valid.output_shape(), (Shape3{2, 3, 3}));
}

// A 1x1 kernel conv with identity-ish weights is a per-pixel linear map;
// verify against direct computation.
TEST(Conv2d, OneByOneKernelIsPointwise) {
  Rng rng(2);
  Conv2d conv({2, 4, 4}, 1, 1, 1, 0, rng);
  // weights: (in_c*1*1 x out_c) = (2 x 1)
  Matrix input(1, 2 * 4 * 4);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.vec()[i] = static_cast<float>(i) * 0.1f;
  }
  const Matrix out = conv.forward(input, false);
  ASSERT_EQ(out.cols(), 16u);
  // Recover weights via probing: output = w0*c0 + w1*c1 + b.
  Matrix zero(1, 32);
  const float bias = conv.forward(zero, false)(0, 0);
  Matrix e0(1, 32);
  e0.vec()[0] = 1.0f;  // channel 0, pixel (0,0)
  const float w0 = conv.forward(e0, false)(0, 0) - bias;
  Matrix e1(1, 32);
  e1.vec()[16] = 1.0f;  // channel 1, pixel (0,0)
  const float w1 = conv.forward(e1, false)(0, 0) - bias;
  EXPECT_NEAR(out(0, 0), w0 * input.vec()[0] + w1 * input.vec()[16] + bias, 1e-4);
  EXPECT_NEAR(out(0, 5), w0 * input.vec()[5] + w1 * input.vec()[21] + bias, 1e-4);
}

TEST(Conv2d, TranslationEquivarianceInterior) {
  Rng rng(3);
  Conv2d conv({1, 8, 8}, 3, 3, 1, 1, rng);
  Matrix a(1, 64);
  a.vec()[static_cast<std::size_t>(3 * 8 + 3)] = 1.0f;
  Matrix b(1, 64);
  b.vec()[static_cast<std::size_t>(4 * 8 + 4)] = 1.0f;
  const Matrix out_a = conv.forward(a, false);
  const Matrix out_b = conv.forward(b, false);
  // Responses at (3,3) for a and (4,4) for b must match channel-wise.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(out_a(0, c * 64 + 3 * 8 + 3), out_b(0, c * 64 + 4 * 8 + 4), 1e-5);
    EXPECT_NEAR(out_a(0, c * 64 + 2 * 8 + 3), out_b(0, c * 64 + 3 * 8 + 4), 1e-5);
  }
}

TEST(Conv2d, InputGradientNumeric) {
  Rng rng(4);
  Conv2d conv({1, 5, 5}, 2, 3, 1, 1, rng);
  Matrix input = Matrix::randn(2, 25, rng, 1.0);
  Matrix loss_weights = Matrix::randn(2, 2 * 25, rng, 1.0);

  conv.forward(input, true);
  const Matrix grad_input = conv.backward(loss_weights);

  const float epsilon = 1e-2f;
  for (std::size_t i = 0; i < input.size(); i += 7) {
    Matrix plus = input;
    Matrix minus = input;
    plus.vec()[i] += epsilon;
    minus.vec()[i] -= epsilon;
    const Matrix out_plus = conv.forward(plus, false);
    const Matrix out_minus = conv.forward(minus, false);
    double numeric = 0.0;
    for (std::size_t k = 0; k < out_plus.size(); ++k) {
      numeric += (out_plus.vec()[k] - out_minus.vec()[k]) * loss_weights.vec()[k];
    }
    numeric /= 2.0 * epsilon;
    EXPECT_NEAR(grad_input.vec()[i], numeric, 2e-2 * (1.0 + std::fabs(numeric)));
  }
}

TEST(Conv2d, WeightGradientNumeric) {
  Rng rng(5);
  Conv2d conv({1, 4, 4}, 1, 3, 1, 1, rng);
  Matrix input = Matrix::randn(1, 16, rng, 1.0);
  Matrix loss_weights = Matrix::randn(1, 16, rng, 1.0);

  conv.forward(input, true);
  conv.backward(loss_weights);
  std::vector<Param*> params;
  conv.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  const Matrix analytic = params[0]->grad;

  const float epsilon = 1e-2f;
  for (std::size_t i = 0; i < params[0]->value.size(); ++i) {
    float& w = params[0]->value.vec()[i];
    const float original = w;
    w = original + epsilon;
    const Matrix out_plus = conv.forward(input, false);
    w = original - epsilon;
    const Matrix out_minus = conv.forward(input, false);
    w = original;
    double numeric = 0.0;
    for (std::size_t k = 0; k < out_plus.size(); ++k) {
      numeric += (out_plus.vec()[k] - out_minus.vec()[k]) * loss_weights.vec()[k];
    }
    numeric /= 2.0 * epsilon;
    EXPECT_NEAR(analytic.vec()[i], numeric, 2e-2 * (1.0 + std::fabs(numeric)));
  }
}

TEST(MaxPool2d, ForwardPicksMaxima) {
  MaxPool2d pool({1, 4, 4}, 2);
  EXPECT_EQ(pool.output_shape(), (Shape3{1, 2, 2}));
  Matrix input(1, 16);
  for (std::size_t i = 0; i < 16; ++i) input.vec()[i] = static_cast<float>(i);
  const Matrix out = pool.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 13.0f);
  EXPECT_FLOAT_EQ(out(0, 3), 15.0f);
}

TEST(MaxPool2d, PreservesBinaryValues) {
  MaxPool2d pool({1, 4, 4}, 2);
  Matrix input(1, 16);
  input.vec()[3] = 1.0f;
  input.vec()[10] = 1.0f;
  const Matrix out = pool.forward(input, false);
  for (const float v : out.vec()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
  // Pixel 3 = (row 0, col 3) -> cell (0,1); pixel 10 = (row 2, col 2) ->
  // cell (1,1).
  EXPECT_FLOAT_EQ(out(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 3), 1.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool({1, 2, 2}, 2);
  Matrix input(1, 4);
  input.vec() = {0.1f, 0.9f, 0.3f, 0.2f};
  pool.forward(input, true);
  Matrix grad(1, 1, 5.0f);
  const Matrix gin = pool.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gin(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(gin(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(gin(0, 3), 0.0f);
}

}  // namespace
}  // namespace poetbin
