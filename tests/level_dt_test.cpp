#include "dt/level_dt.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

using testing::bit_accuracy;
using testing::random_bits;
using testing::targets_from;

TEST(LevelDt, LearnsSingleFeatureExactly) {
  const BitMatrix features = random_bits(200, 10, 1);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(4); });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 1});
  EXPECT_EQ(fit.weighted_error, 0.0);
  EXPECT_EQ(fit.lut.inputs()[0], 4u);
  EXPECT_EQ(bit_accuracy(fit.lut.eval_dataset(features), targets), 1.0);
}

TEST(LevelDt, LearnsConjunctionExactly) {
  const BitMatrix features = random_bits(500, 12, 2);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(1) && x.get(7) && x.get(9);
  });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 3});
  EXPECT_EQ(fit.weighted_error, 0.0);
  // The three relevant features must be among the selected ones.
  std::vector<std::size_t> selected = fit.lut.inputs();
  std::sort(selected.begin(), selected.end());
  EXPECT_EQ(selected, (std::vector<std::size_t>{1, 7, 9}));
}

TEST(LevelDt, LearnsXorGivenEnoughInputs) {
  // XOR of two features has zero marginal information per feature, but the
  // level-wise DT still fits it perfectly once both features are available
  // (any first split yields children where the second feature is decisive).
  const BitMatrix features = random_bits(600, 8, 3);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(2) != x.get(5);
  });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 8});
  EXPECT_EQ(fit.weighted_error, 0.0);
}

TEST(LevelDt, SelectsNoDuplicateFeatures) {
  const BitMatrix features = random_bits(300, 20, 4);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(0); });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 6});
  std::vector<std::size_t> selected = fit.lut.inputs();
  std::sort(selected.begin(), selected.end());
  EXPECT_EQ(std::adjacent_find(selected.begin(), selected.end()),
            selected.end());
  EXPECT_EQ(selected.size(), 6u);
}

TEST(LevelDt, CandidateRestrictionHonoured) {
  const BitMatrix features = random_bits(300, 16, 5);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(3); });
  LevelDtConfig config;
  config.n_inputs = 2;
  config.candidate_features = {8, 9, 10};  // the informative feature excluded
  const LevelDtResult fit = train_level_dt(features, targets, {}, config);
  for (const auto f : fit.lut.inputs()) {
    EXPECT_TRUE(f == 8 || f == 9 || f == 10);
  }
}

TEST(LevelDt, WeightsSteerFeatureChoice) {
  // Two candidate features, each perfectly predicting a disjoint half of the
  // examples; upweighting one half must make its feature win level 0.
  const std::size_t n = 400;
  BitMatrix features(n, 2);
  BitVector targets(n);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    const bool label = rng.next_bool();
    targets.set(i, label);
    if (i < n / 2) {
      features.set(i, 0, label);        // feature 0 predicts first half
      features.set(i, 1, rng.next_bool());
    } else {
      features.set(i, 1, label);        // feature 1 predicts second half
      features.set(i, 0, rng.next_bool());
    }
  }
  std::vector<double> weights(n, 1e-6);
  for (std::size_t i = n / 2; i < n; ++i) weights[i] = 1.0;
  const LevelDtResult fit =
      train_level_dt(features, targets, weights, {.n_inputs = 1});
  EXPECT_EQ(fit.lut.inputs()[0], 1u);
}

TEST(LevelDt, MajorityLeafLabellingOnNoise) {
  // With a noisy single informative feature, the LUT must still follow the
  // majority in each cell (i.e. reproduce the feature, not the noise).
  const BitMatrix features = random_bits(2000, 6, 7);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(2); }, 0.2, 8);
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 1});
  EXPECT_EQ(fit.lut.inputs()[0], 2u);
  // Error close to the noise floor.
  EXPECT_NEAR(fit.weighted_error, 0.2, 0.04);
}

TEST(LevelDt, DeterministicAcrossRuns) {
  const BitMatrix features = random_bits(300, 24, 9);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return (x.get(0) && x.get(5)) || x.get(11);
  });
  const LevelDtResult a = train_level_dt(features, targets, {}, {.n_inputs = 5});
  const LevelDtResult b = train_level_dt(features, targets, {}, {.n_inputs = 5});
  EXPECT_EQ(a.lut, b.lut);
}

TEST(LevelDt, EmptyCellsDefaultToClassOne) {
  // One example, one feature=0: the cell for feature=1 is empty and must be
  // labelled 1 per Algorithm 1's S0 <= S1 rule.
  BitMatrix features(1, 1);
  BitVector targets(1);  // class 0
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 1});
  EXPECT_FALSE(fit.lut.table().get(0));  // observed cell: majority class 0
  EXPECT_TRUE(fit.lut.table().get(1));   // empty cell: defaults to 1
}

TEST(LevelDt, ErrorNeverWorseThanMajorityGuess) {
  // Property: the trained LUT's weighted error can never exceed
  // min(p, 1-p) of the target distribution (it can always label all cells
  // with the majority class).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const BitMatrix features = random_bits(300, 10, 100 + seed);
    const BitVector targets = targets_from(
        features,
        [seed](const BitVector& x) {
          return x.popcount() % (2 + seed % 3) == 0;
        },
        0.1, seed);
    const LevelDtResult fit =
        train_level_dt(features, targets, {}, {.n_inputs = 4});
    const double p =
        static_cast<double>(targets.popcount()) / targets.size();
    EXPECT_LE(fit.weighted_error, std::min(p, 1.0 - p) + 1e-12)
        << "seed " << seed;
  }
}

// Sweep: a parity function of k features requires exactly k inputs; the
// level DT must fit it perfectly whenever n_inputs >= k and the sample
// covers the space.
class LevelDtParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelDtParityTest, FitsParityWithEnoughInputs) {
  const std::size_t k = GetParam();
  const BitMatrix features = random_bits(2000, 8, 10 + k);
  const BitVector targets = targets_from(features, [k](const BitVector& x) {
    return x.popcount_prefix(k) % 2 == 1;
  });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = 8});
  EXPECT_EQ(fit.weighted_error, 0.0) << "parity of " << k;
}

INSTANTIATE_TEST_SUITE_P(ParityWidths, LevelDtParityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Sweep over P: a majority-of-P function fits exactly in a P-input LUT, and
// the level DT must find precisely the P voter features among distractors.
class LevelDtAritySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelDtAritySweep, MajorityOfPFitsExactly) {
  const std::size_t p = GetParam();
  const BitMatrix features = random_bits(3000, 20, 200 + p);
  const BitVector targets = targets_from(features, [p](const BitVector& x) {
    return 2 * x.popcount_prefix(p) >= p;
  });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = p});
  EXPECT_EQ(fit.weighted_error, 0.0) << "P=" << p;
  std::vector<std::size_t> selected = fit.lut.inputs();
  std::sort(selected.begin(), selected.end());
  for (std::size_t j = 0; j < p; ++j) {
    EXPECT_EQ(selected[j], j) << "P=" << p;
  }
}

TEST_P(LevelDtAritySweep, LutHasExactlyPInputsAndFullTable) {
  const std::size_t p = GetParam();
  const BitMatrix features = random_bits(400, 16, 300 + p);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(0); });
  const LevelDtResult fit =
      train_level_dt(features, targets, {}, {.n_inputs = p});
  EXPECT_EQ(fit.lut.arity(), p);
  EXPECT_EQ(fit.lut.table_size(), std::size_t{1} << p);
}

INSTANTIATE_TEST_SUITE_P(Arities, LevelDtAritySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LevelDt, DuplicateCandidatesAreDeduplicated) {
  // Duplicated entries used to satisfy the candidate-count check yet run the
  // per-level scan out of unique features mid-way, dying on the opaque
  // sentinel check. Dedup keeps them harmless.
  const BitMatrix features = random_bits(300, 16, 12);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(9); });
  LevelDtConfig config;
  config.n_inputs = 3;
  config.candidate_features = {8, 8, 9, 9, 10, 10};
  const LevelDtResult fit = train_level_dt(features, targets, {}, config);
  std::vector<std::size_t> selected = fit.lut.inputs();
  std::sort(selected.begin(), selected.end());
  EXPECT_EQ(selected, (std::vector<std::size_t>{8, 9, 10}));
}

TEST(LevelDt, DuplicateCandidatesMatchUniqueCandidateRuns) {
  const BitMatrix features = random_bits(400, 12, 13);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(2) != x.get(7); }, 0.1,
      14);
  LevelDtConfig with_dups;
  with_dups.n_inputs = 4;
  with_dups.candidate_features = {2, 7, 2, 5, 7, 9, 5, 11, 9};
  LevelDtConfig unique = with_dups;
  unique.candidate_features = {2, 7, 5, 9, 11};
  const LevelDtResult a = train_level_dt(features, targets, {}, with_dups);
  const LevelDtResult b = train_level_dt(features, targets, {}, unique);
  EXPECT_EQ(a.lut, b.lut);
}

TEST(LevelDt, RefusesTooFewUniqueCandidates) {
  // Six entries but only three unique features cannot fill four levels; the
  // entry check must fire with an actionable message instead of the scan
  // dying mid-level.
  const BitMatrix features = random_bits(50, 16, 15);
  const BitVector targets(50);
  LevelDtConfig config;
  config.n_inputs = 4;
  config.candidate_features = {8, 8, 9, 9, 10, 10};
  EXPECT_DEATH(train_level_dt(features, targets, {}, config),
               "not enough candidate features");
}

TEST(LevelDt, RefusesOversizedArity) {
  const BitMatrix features = random_bits(10, 3, 11);
  const BitVector targets(10);
  EXPECT_DEATH(train_level_dt(features, targets, {}, {.n_inputs = 4}), "");
}

}  // namespace
}  // namespace poetbin
