// End-to-end contract for the TCP serving front end: a trained model served
// over loopback must reproduce the scalar PoetBin reference bit for bit
// under concurrent pipelined clients, answer kInfo/kStats, reject malformed
// and wrong-width requests with clean per-frame errors (keeping the
// connection alive), and shut down gracefully.
#include "serve/net_server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/net_client.h"
#include "serve/protocol.h"
#include "serve/runtime.h"
#include "test_util.h"

namespace poetbin {
namespace {

struct ServeFixture {
  BinaryDataset data;
  PoetBin model;
  std::vector<int> scalar_preds;
  std::vector<BitVector> rows;
};

// One trained model shared by every test in this file (training dominates
// the suite's runtime; the serving paths under test never mutate it).
const ServeFixture& fixture() {
  static const ServeFixture* fx = [] {
    auto* f = new ServeFixture;
    f->data = testing::prototype_dataset(400, 64, 23);
    const std::size_t p = 4;
    BitMatrix intermediate(f->data.size(), f->data.n_classes * p);
    Rng rng(37);
    for (std::size_t i = 0; i < f->data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        const bool is_class = f->data.labels[i] == static_cast<int>(j / p);
        intermediate.set(i, j, is_class != rng.next_bool(0.05));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
    config.n_classes = f->data.n_classes;
    config.output.epochs = 30;
    config.threads = 1;
    f->model = PoetBin::train(f->data.features, intermediate, f->data.labels,
                              config);
    f->scalar_preds = f->model.predict_dataset(f->data.features);
    f->rows.reserve(f->data.size());
    for (std::size_t i = 0; i < f->data.size(); ++i) {
      f->rows.push_back(f->data.features.row(i));
    }
    return f;
  }();
  return *fx;
}

NetServerOptions loopback_options(bool micro_batch) {
  NetServerOptions options;
  options.port = 0;  // ephemeral
  options.micro_batch = micro_batch;
  options.max_batch = 16;
  options.max_wait = std::chrono::microseconds(200);
  // The fixture's rows are dataset-width; force the served width to match
  // instead of deriving it from the model's referenced features.
  options.n_features = 64;
  return options;
}

TEST(NetServer, LoopbackPredictionsMatchScalarUnderConcurrency) {
  const ServeFixture& fx = fixture();
  for (const bool micro_batch : {true, false}) {
    Runtime runtime(fx.model, {.threads = 1});
    NetServer server(runtime, loopback_options(micro_batch));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr std::size_t kThreads = 8;
    std::vector<int> served(fx.rows.size(), -1);
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        NetClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        // Pipelined bursts over this thread's slice of the dataset.
        std::vector<const BitVector*> burst;
        std::vector<std::size_t> burst_rows;
        std::vector<wire::Response> responses;
        for (std::size_t i = t; i < fx.rows.size(); i += kThreads) {
          burst.push_back(&fx.rows[i]);
          burst_rows.push_back(i);
          if (burst.size() == 8 || i + kThreads >= fx.rows.size()) {
            ASSERT_TRUE(client.predict_pipelined(burst, &responses));
            ASSERT_EQ(responses.size(), burst.size());
            for (std::size_t b = 0; b < burst.size(); ++b) {
              ASSERT_EQ(responses[b].status, wire::Status::kOk);
              served[burst_rows[b]] = responses[b].prediction;
            }
            burst.clear();
            burst_rows.clear();
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    EXPECT_EQ(served, fx.scalar_preds) << "micro_batch=" << micro_batch;

    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.requests, fx.rows.size());
    EXPECT_EQ(stats.connections, kThreads);
    EXPECT_EQ(stats.errors, 0u);
    if (micro_batch) {
      EXPECT_GT(stats.batches, 0u);
    }
    server.stop();
  }
}

TEST(NetServer, InfoReportsServedShape) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServer server(runtime, loopback_options(true));
  ASSERT_TRUE(server.start());
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  wire::Response info;
  ASSERT_TRUE(client.info(&info));
  ASSERT_EQ(info.status, wire::Status::kOk);
  EXPECT_EQ(info.n_features, 64u);
  EXPECT_EQ(info.n_classes, fx.model.n_classes());
  server.stop();
}

TEST(NetServer, DerivedFeatureWidthCoversEveryReferencedFeature) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServerOptions options = loopback_options(true);
  options.n_features = 0;  // derive from the model
  NetServer server(runtime, options);
  ASSERT_TRUE(server.start());
  EXPECT_GT(server.n_features(), 0u);
  EXPECT_LE(server.n_features(), 64u);
  // A request of exactly the derived width is served.
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  wire::Response response;
  ASSERT_TRUE(client.predict(BitVector(server.n_features()), &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  server.stop();
}

TEST(NetServer, WrongWidthIsRejectedAndConnectionSurvives) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServer server(runtime, loopback_options(true));
  ASSERT_TRUE(server.start());
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  wire::Response response;
  ASSERT_TRUE(client.predict(BitVector(13), &response));
  EXPECT_EQ(response.status, wire::Status::kWrongFeatureWidth);

  // The rejection is per-frame: the same connection still serves.
  ASSERT_TRUE(client.predict(fx.rows[0], &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.prediction, fx.scalar_preds[0]);

  EXPECT_EQ(server.stats().errors, 1u);
  server.stop();
}

TEST(NetServer, MalformedFramesGetCleanErrorReplies) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServer server(runtime, loopback_options(true));
  ASSERT_TRUE(server.start());
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // Three bad frames in one write: unknown type, zero-bit predict, and an
  // info request with trailing bytes. Each gets its own error response.
  std::vector<std::uint8_t> bytes = {1, 0, 0, 0, 42};          // unknown type
  const std::vector<std::uint8_t> empty = {5, 0, 0, 0, 1, 0, 0, 0, 0};
  bytes.insert(bytes.end(), empty.begin(), empty.end());
  const std::vector<std::uint8_t> trailing = {2, 0, 0, 0, 2, 9};
  bytes.insert(bytes.end(), trailing.begin(), trailing.end());

  std::vector<wire::Response> responses;
  ASSERT_TRUE(client.roundtrip_raw(bytes, 3, &responses));
  EXPECT_EQ(responses[0].status, wire::Status::kUnknownType);
  EXPECT_EQ(responses[1].status, wire::Status::kEmptyInput);
  EXPECT_EQ(responses[2].status, wire::Status::kBadFrame);

  // Still alive afterwards.
  wire::Response response;
  ASSERT_TRUE(client.predict(fx.rows[1], &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.prediction, fx.scalar_preds[1]);
  EXPECT_EQ(server.stats().errors, 3u);
  server.stop();
}

TEST(NetServer, OversizedFrameAnswersThenCloses) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServer server(runtime, loopback_options(true));
  ASSERT_TRUE(server.start());
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  const std::uint32_t length = wire::kMaxFramePayload + 1;
  const std::vector<std::uint8_t> bytes = {
      static_cast<std::uint8_t>(length), static_cast<std::uint8_t>(length >> 8),
      static_cast<std::uint8_t>(length >> 16),
      static_cast<std::uint8_t>(length >> 24)};
  std::vector<wire::Response> responses;
  ASSERT_TRUE(client.roundtrip_raw(bytes, 1, &responses));
  EXPECT_EQ(responses[0].status, wire::Status::kOversized);

  // The stream cannot be re-synchronised, so the server hangs up; the next
  // round trip fails at the transport level.
  wire::Response response;
  EXPECT_FALSE(client.predict(fx.rows[0], &response));
  server.stop();
}

TEST(NetServer, StatsRequestReturnsLiveCounters) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  NetServer server(runtime, loopback_options(true));
  ASSERT_TRUE(server.start());
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  for (std::size_t i = 0; i < 5; ++i) {
    wire::Response response;
    ASSERT_TRUE(client.predict(fx.rows[i], &response));
    ASSERT_EQ(response.status, wire::Status::kOk);
  }
  wire::Response stats;
  ASSERT_TRUE(client.query_stats(&stats));
  ASSERT_EQ(stats.status, wire::Status::kOk);
  EXPECT_EQ(stats.stats.requests, 5u);
  EXPECT_EQ(stats.stats.connections, 1u);
  EXPECT_EQ(stats.stats.errors, 0u);
  server.stop();
}

TEST(NetServer, StopUnblocksIdleConnectionsAndIsRestartable) {
  const ServeFixture& fx = fixture();
  Runtime runtime(fx.model, {.threads = 1});
  std::uint16_t first_port = 0;
  {
    NetServer server(runtime, loopback_options(true));
    ASSERT_TRUE(server.start());
    first_port = server.port();
    // An idle connection (no request in flight) must not wedge stop().
    NetClient idle;
    ASSERT_TRUE(idle.connect("127.0.0.1", server.port()));
    server.stop();
  }
  // A fresh server instance starts cleanly afterwards.
  NetServer again(runtime, loopback_options(true));
  ASSERT_TRUE(again.start());
  EXPECT_NE(again.port(), 0);
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", again.port()));
  wire::Response response;
  ASSERT_TRUE(client.predict(fx.rows[2], &response));
  EXPECT_EQ(response.prediction, fx.scalar_preds[2]);
  again.stop();
  (void)first_port;
}

}  // namespace
}  // namespace poetbin
