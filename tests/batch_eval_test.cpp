// The batch engine's contract is exact: bitsliced and threaded paths must be
// bit-identical to the scalar eval_dataset/predict_dataset paths on any
// model and any dataset shape, including ragged tails (rows % 64 != 0) and
// empty inputs.
#include "core/batch_eval.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "nn/quantize.h"
#include "test_util.h"
#include "util/rng.h"

namespace poetbin {
namespace {

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) {
    table.set(a, rng.next_bool());
  }
  return Lut(std::move(inputs), std::move(table));
}

// Random RINC hierarchy of the given level with `fanin` children per node.
RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t n_features, Rng& rng) {
  if (level == 0) return RincModule::make_leaf(random_lut(fanin, n_features, rng));
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(random_rinc(level - 1, fanin, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

TEST(EvalLutWords, MatchesScalarAcrossAritiesAndShapes) {
  Rng rng(17);
  for (const std::size_t arity : {std::size_t{1}, std::size_t{3},
                                  std::size_t{6}, std::size_t{8}}) {
    for (const std::size_t rows :
         {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
          std::size_t{100}, std::size_t{128}, std::size_t{1000}}) {
      const BitMatrix features = testing::random_bits(rows, 32, rng.next_u64());
      const Lut lut = random_lut(arity, features.cols(), rng);
      EXPECT_EQ(lut.eval_dataset_bitsliced(features), lut.eval_dataset(features))
          << "arity " << arity << ", rows " << rows;
    }
  }
}

TEST(EvalLutWords, EmptyDataset) {
  Rng rng(18);
  const BitMatrix features(0, 16);
  const Lut lut = random_lut(4, 16, rng);
  const BitVector out = lut.eval_dataset_bitsliced(features);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(out, lut.eval_dataset(features));
}

TEST(EvalLutWords, ConstantTablesMaskTheTail) {
  // A constant-1 LUT exercises the ragged-tail masking: without it, the
  // output's popcount would count garbage bits beyond rows().
  const BitMatrix features = testing::random_bits(70, 8, 3);
  const Lut one({0, 1}, BitVector(4, true));
  const BitVector out = one.eval_dataset_bitsliced(features);
  EXPECT_EQ(out.popcount(), 70u);
}

TEST(EvalLutWords, PartialWordRange) {
  Rng rng(19);
  const BitMatrix features = testing::random_bits(400, 24, 21);
  const Lut lut = random_lut(6, features.cols(), rng);
  const BitVector full = lut.eval_dataset(features);
  // Evaluate words [2, 5) only and compare against the matching slice.
  std::vector<std::uint64_t> words(3);
  eval_lut_words(lut, features, 2, 5, words.data());
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(words[w], full.words()[2 + w]) << "word " << w;
  }
}

TEST(EvalRincWords, MatchesScalarOnRandomHierarchies) {
  Rng rng(23);
  for (const std::size_t level : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t rows : {std::size_t{65}, std::size_t{500}}) {
      const BitMatrix features = testing::random_bits(rows, 40, rng.next_u64());
      const RincModule module = random_rinc(level, 4, features.cols(), rng);
      EXPECT_EQ(module.eval_dataset_batched(features),
                module.eval_dataset(features))
          << "level " << level << ", rows " << rows;
    }
  }
}

TEST(EvalRincWords, MatchesScalarOnTrainedModule) {
  // A trained module exercises realistic (non-random) tables and repeated
  // feature selections.
  const BitMatrix features = testing::random_bits(300, 24, 31);
  const BitVector targets = testing::targets_from(
      features, [](const BitVector& row) { return row.get(3) ^ row.get(17); },
      /*noise=*/0.05);
  RincConfig config;
  config.lut_inputs = 4;
  config.levels = 1;
  config.total_dts = 4;
  const RincModule module =
      RincModule::train(features, targets, /*weights=*/{}, config);
  EXPECT_EQ(module.eval_dataset_batched(features), module.eval_dataset(features));
}

TEST(BatchEngine, ThreadCountsAgreeWithScalar) {
  Rng rng(29);
  const BitMatrix features = testing::random_bits(3000, 32, 37);
  const RincModule module = random_rinc(2, 3, features.cols(), rng);
  const BitVector scalar = module.eval_dataset(features);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    const BatchEngine engine(threads);
    EXPECT_EQ(engine.eval_dataset(module, features), scalar)
        << threads << " threads";
  }
}

TEST(BatchEngine, EngineIsReusableAcrossCalls) {
  Rng rng(31);
  const BatchEngine engine(4);
  for (int pass = 0; pass < 3; ++pass) {
    const BitMatrix features = testing::random_bits(700, 20, rng.next_u64());
    const RincModule module = random_rinc(1, 5, features.cols(), rng);
    EXPECT_EQ(engine.eval_dataset(module, features),
              module.eval_dataset(features));
  }
}

TEST(BatchEngine, EmptyDataset) {
  Rng rng(37);
  const RincModule module = random_rinc(1, 3, 16, rng);
  const BatchEngine engine(2);
  const BitMatrix features(0, 16);
  EXPECT_EQ(engine.eval_dataset(module, features).size(), 0u);
}

// A full PoetBin assembled from random parts: rinc_outputs / predict /
// accuracy must match the scalar paths exactly.
class BatchEnginePoetBin : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    config_.rinc.lut_inputs = 4;
    config_.rinc.levels = 1;
    config_.rinc.total_dts = 4;
    config_.n_classes = 5;
    config_.output.quant_bits = 6;

    const std::size_t n_modules = config_.n_classes * config_.rinc.lut_inputs;
    std::vector<RincModule> modules;
    for (std::size_t m = 0; m < n_modules; ++m) {
      modules.push_back(random_rinc(1, config_.rinc.lut_inputs, 32, rng));
    }

    const std::size_t n_combos = std::size_t{1} << config_.rinc.lut_inputs;
    Matrix activations(config_.n_classes, n_combos);
    std::vector<SparseOutputNeuron> neurons(config_.n_classes);
    for (std::size_t c = 0; c < config_.n_classes; ++c) {
      neurons[c].input_modules.resize(config_.rinc.lut_inputs);
      neurons[c].weights.resize(config_.rinc.lut_inputs);
      for (std::size_t j = 0; j < config_.rinc.lut_inputs; ++j) {
        neurons[c].input_modules[j] = c * config_.rinc.lut_inputs + j;
        neurons[c].weights[j] = static_cast<float>(rng.gaussian(0.0, 1.0));
      }
      neurons[c].bias = static_cast<float>(rng.gaussian(0.0, 0.5));
      for (std::size_t combo = 0; combo < n_combos; ++combo) {
        activations(c, combo) = neurons[c].activation(combo);
      }
    }
    const QuantizerParams quantizer =
        fit_quantizer(activations, config_.output.quant_bits);
    for (std::size_t c = 0; c < config_.n_classes; ++c) {
      neurons[c].codes.resize(n_combos);
      for (std::size_t combo = 0; combo < n_combos; ++combo) {
        neurons[c].codes[combo] =
            quantize_value(activations(c, combo), quantizer);
      }
    }
    model_ = PoetBin::from_parts(config_, std::move(modules),
                                 std::move(neurons), quantizer);
  }

  PoetBinConfig config_;
  PoetBin model_;
};

TEST_F(BatchEnginePoetBin, RincOutputsMatchScalar) {
  const BatchEngine engine(2);
  for (const std::size_t rows : {std::size_t{1}, std::size_t{64},
                                 std::size_t{129}, std::size_t{777}}) {
    const BitMatrix features = testing::random_bits(rows, 32, 43 + rows);
    EXPECT_EQ(model_.rinc_outputs_batched(features, engine),
              model_.rinc_outputs(features))
        << rows << " rows";
  }
}

TEST_F(BatchEnginePoetBin, PredictionsMatchScalarIncludingTies) {
  const BitMatrix features = testing::random_bits(1017, 32, 47);
  const std::vector<int> scalar = model_.predict_dataset(features);
  const BatchEngine inline_engine(1);
  const BatchEngine threaded_engine(4);
  EXPECT_EQ(model_.predict_dataset_batched(features, inline_engine), scalar);
  EXPECT_EQ(model_.predict_dataset_batched(features, threaded_engine), scalar);
}

TEST_F(BatchEnginePoetBin, AccuracyMatchesScalar) {
  const BitMatrix features = testing::random_bits(501, 32, 53);
  Rng rng(59);
  std::vector<int> labels(features.rows());
  for (auto& label : labels) {
    label = static_cast<int>(rng.next_index(config_.n_classes));
  }
  const BatchEngine engine(3);
  EXPECT_DOUBLE_EQ(model_.accuracy_batched(features, labels, engine),
                   model_.accuracy(features, labels));
}

TEST_F(BatchEnginePoetBin, EmptyDataset) {
  const BitMatrix features(0, 32);
  const BatchEngine engine(1);
  EXPECT_TRUE(model_.predict_dataset_batched(features, engine).empty());
  EXPECT_EQ(model_.accuracy_batched(features, {}, engine), 0.0);
}

// The engine documents "one dataset pass at a time"; since PR 3 that
// contract is enforced. Dispatching a parallel_for from inside a job of the
// same engine must abort with a clear message instead of corrupting the
// pool's single job slot.
TEST(BatchEngineDeathTest, RejectsReentrantParallelFor) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const BatchEngine engine(2);
  EXPECT_DEATH(engine.parallel_for(
                   8,
                   [&](std::size_t) {
                     engine.parallel_for(8, [](std::size_t) {});
                   }),
               "not re-entrant");
}

// Sequential reuse (the supported pattern) must stay untouched by the
// in-use check, including after many passes.
TEST(BatchEngine, SequentialReuseAfterGuardedPasses) {
  const BatchEngine engine(3);
  for (int pass = 0; pass < 5; ++pass) {
    std::atomic<int> hits{0};
    engine.parallel_for(16, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 16);
  }
}

}  // namespace
}  // namespace poetbin
