// Parallel distillation must be bit-identical to serial distillation: the
// per-neuron problems are independent and each module's training is
// deterministic, so the thread count is not allowed to leak into results.
#include <gtest/gtest.h>

#include "core/poetbin.h"
#include "test_util.h"

namespace poetbin {
namespace {

TEST(PoetBinThreads, ParallelEqualsSerial) {
  const BinaryDataset data = testing::prototype_dataset(500, 48, 13);
  const std::size_t p = 4;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  Rng rng(14);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      const bool is_class = data.labels[i] == static_cast<int>(j / p);
      intermediate.set(i, j, is_class != rng.next_bool(0.05));
    }
  }

  PoetBinConfig serial_config;
  serial_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
  serial_config.n_classes = data.n_classes;
  serial_config.output.epochs = 50;
  serial_config.threads = 1;

  PoetBinConfig parallel_config = serial_config;
  parallel_config.threads = 4;

  const PoetBin serial =
      PoetBin::train(data.features, intermediate, data.labels, serial_config);
  const PoetBin parallel = PoetBin::train(data.features, intermediate,
                                          data.labels, parallel_config);

  EXPECT_EQ(serial.rinc_outputs(data.features),
            parallel.rinc_outputs(data.features));
  EXPECT_EQ(serial.predict_dataset(data.features),
            parallel.predict_dataset(data.features));
  EXPECT_EQ(serial.lut_count(), parallel.lut_count());
  for (std::size_t c = 0; c < serial.n_classes(); ++c) {
    EXPECT_EQ(serial.output_neurons()[c].codes,
              parallel.output_neurons()[c].codes);
  }
}

TEST(PoetBinThreads, MoreThreadsThanModulesIsFine) {
  const BinaryDataset data = testing::prototype_dataset(150, 24, 15);
  const std::size_t p = 2;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 0, .total_dts = 1};
  config.n_classes = data.n_classes;
  config.output.epochs = 10;
  config.threads = 64;  // far more than 20 modules
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);
  EXPECT_EQ(model.n_modules(), 20u);
}

}  // namespace
}  // namespace poetbin
