#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace poetbin {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(10);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.next_below(8)];
  for (const int count : seen) EXPECT_GT(count, 300);  // ~500 expected
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(12);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(77);
  Rng fork = parent.fork(3);
  // The fork must not replay the parent's stream.
  Rng parent2(77);
  (void)parent2.next_u64();  // parent consumed one draw to make the fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (fork.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values.data(), values.size());
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  // And actually permutes something.
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[static_cast<size_t>(i)] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Rng, UniformRange) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.0);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 4.0);
  }
}

TEST(Rng, BoolProbability) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.2)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
}

}  // namespace
}  // namespace poetbin
