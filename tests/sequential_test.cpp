#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace poetbin {
namespace {

// Two Gaussian blobs, linearly separable.
void make_blobs(std::size_t n, Matrix& inputs, std::vector<int>& labels,
                std::uint64_t seed) {
  Rng rng(seed);
  inputs = Matrix(n, 2);
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    labels[i] = label;
    const double cx = label == 0 ? -1.5 : 1.5;
    inputs(i, 0) = static_cast<float>(rng.gaussian(cx, 0.6));
    inputs(i, 1) = static_cast<float>(rng.gaussian(-cx, 0.6));
  }
}

TEST(Sequential, LearnsLinearlySeparableBlobs) {
  Matrix inputs;
  std::vector<int> labels;
  make_blobs(400, inputs, labels, 1);

  Rng rng(2);
  Sequential net;
  net.add<Dense>(2, 8, rng);
  net.add<Relu>();
  net.add<Dense>(8, 2, rng);

  Adam adam(0.01);
  TrainConfig config;
  config.epochs = 20;
  config.batch_size = 32;
  net.fit(inputs, labels, adam, config);
  EXPECT_GT(net.evaluate_accuracy(inputs, labels), 0.97);
}

TEST(Sequential, LearnsXorWithHiddenLayer) {
  Matrix inputs(4, 2);
  inputs.vec() = {0, 0, 0, 1, 1, 0, 1, 1};
  const std::vector<int> labels = {0, 1, 1, 0};
  // Replicate the four points to make batches meaningful.
  Matrix train(200, 2);
  std::vector<int> train_labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    train(i, 0) = inputs(i % 4, 0);
    train(i, 1) = inputs(i % 4, 1);
    train_labels[i] = labels[i % 4];
  }

  Rng rng(3);
  Sequential net;
  net.add<Dense>(2, 16, rng);
  net.add<Relu>();
  net.add<Dense>(16, 2, rng);
  Adam adam(0.02);
  TrainConfig config;
  config.epochs = 60;
  config.batch_size = 16;
  config.loss = LossKind::kCrossEntropy;
  net.fit(train, train_labels, adam, config);
  EXPECT_EQ(net.predict(inputs), labels);
}

TEST(Sequential, ActivationsAtIntermediateLayer) {
  Rng rng(4);
  Sequential net;
  net.add<Dense>(3, 5, rng);
  net.add<Relu>();
  net.add<Dense>(5, 2, rng);

  Matrix input = Matrix::randn(7, 3, rng, 1.0);
  const Matrix hidden = net.activations_at(input, 1);
  EXPECT_EQ(hidden.rows(), 7u);
  EXPECT_EQ(hidden.cols(), 5u);
  for (const float v : hidden.vec()) EXPECT_GE(v, 0.0f);  // post-ReLU

  // activations_at at the last layer equals predict_logits.
  const Matrix logits = net.activations_at(input, 2);
  const Matrix direct = net.predict_logits(input);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(logits.vec()[i], direct.vec()[i]);
  }
}

TEST(Sequential, BatchedInferenceMatchesSingleBatch) {
  Rng rng(5);
  Sequential net;
  net.add<Dense>(4, 6, rng);
  net.add<Relu>();
  net.add<Dense>(6, 3, rng);
  Matrix input = Matrix::randn(50, 4, rng, 1.0);
  const Matrix big = net.predict_logits(input, 256);
  const Matrix small = net.predict_logits(input, 7);
  for (std::size_t i = 0; i < big.size(); ++i) {
    EXPECT_FLOAT_EQ(big.vec()[i], small.vec()[i]);
  }
}

TEST(Sequential, FitReturnsDecreasingLoss) {
  Matrix inputs;
  std::vector<int> labels;
  make_blobs(300, inputs, labels, 6);
  Rng rng(7);
  Sequential net;
  net.add<Dense>(2, 8, rng);
  net.add<Relu>();
  net.add<Dense>(8, 2, rng);
  Adam adam(0.01);
  TrainConfig config;
  config.epochs = 10;
  const auto history = net.fit(inputs, labels, adam, config);
  ASSERT_EQ(history.size(), 10u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().train_accuracy, history.front().train_accuracy - 0.05);
}

TEST(ImagesToMatrix, RescalesToPlusMinusOne) {
  const ImageDataset data = make_digits(10, 1);
  const Matrix m = images_to_matrix(data);
  EXPECT_EQ(m.rows(), 10u);
  EXPECT_EQ(m.cols(), data.image_size());
  for (const float v : m.vec()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Pixel 0 of image 0 maps to 2p-1.
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f * data.image(0)[0] - 1.0f);
}

}  // namespace
}  // namespace poetbin
