#include "hw/lut_decompose.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

TEST(SixLutCost, MatchesXilinxMapping) {
  EXPECT_EQ(six_lut_cost(1), 1u);
  EXPECT_EQ(six_lut_cost(6), 1u);
  EXPECT_EQ(six_lut_cost(7), 2u);
  EXPECT_EQ(six_lut_cost(8), 4u);  // the paper: "four 6-input LUTs"
}

TEST(SixLutLevels, DecompositionAddsALevel) {
  EXPECT_EQ(six_lut_levels(6), 1u);
  EXPECT_EQ(six_lut_levels(8), 2u);
}

TEST(Prune, NoPruningWhenAllWeightsMatter) {
  const BitMatrix features = testing::random_bits(400, 32, 1);
  BitVector targets(400);
  for (std::size_t i = 0; i < 400; ++i) {
    targets.set(i, features.get(i, 0) != features.get(i, 9));
  }
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 1, .total_dts = 4});
  const PruneStats stats = prune_rinc(module);
  EXPECT_EQ(stats.raw_luts, 5u);
  EXPECT_LE(stats.kept_luts, stats.raw_luts);
  EXPECT_LE(stats.kept_6luts, stats.raw_6luts);
}

TEST(Prune, EasyTargetCreatesRemovableMats) {
  // A near-deterministic target: the first boosted DT explains almost all
  // of it and gets a large alpha, the second round faces pure reweighted
  // noise and gets alpha ~ 0 — a dead MAT fanin the synthesizer (and our
  // pruner) removes, exactly the effect described in SS4.3.
  Rng rng(42);
  const BitMatrix features = testing::random_bits(800, 16, 2);
  BitVector targets(800);
  for (std::size_t i = 0; i < 800; ++i) {
    bool label = features.get(i, 5);
    if (rng.next_bool(0.1)) label = !label;
    targets.set(i, label);
  }
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 1, .total_dts = 2});
  const PruneStats stats = prune_rinc(module);
  EXPECT_LT(stats.kept_6luts, stats.raw_6luts);
  // Raw: 2 DTs + 1 MAT = 3; after pruning the dead DT and collapsing the
  // single-fanin MAT to a wire only 1 LUT remains.
  EXPECT_GT(stats.removed_fraction_6luts(), 0.3);

  // Pruning safety: the module's decisions still track the dominant DT.
  const BitVector predictions = module.eval_dataset(features);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 800; ++i) {
    if (predictions.get(i) == features.get(i, 5)) ++agree;
  }
  EXPECT_GT(agree, 700u);
}

TEST(Prune, PoetBinIncludesOutputLayer) {
  const BinaryDataset data = testing::prototype_dataset(300, 32, 3);
  const std::size_t p = 4;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
  config.n_classes = data.n_classes;
  config.output.epochs = 30;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);

  const PruneStats stats = prune_poetbin(model);
  // Raw: 40 modules x 5 LUTs + 80 output LUTs (all arity 4 -> cost 1).
  EXPECT_EQ(stats.raw_luts, 40u * 5u + 80u);
  EXPECT_EQ(stats.raw_6luts, stats.raw_luts);
  EXPECT_GE(stats.kept_6luts, 80u);  // output layer never pruned
}

TEST(Prune, EightInputModulesDecomposeByFour) {
  const BitMatrix features = testing::random_bits(300, 64, 4);
  BitVector targets(300);
  for (std::size_t i = 0; i < 300; ++i) {
    targets.set(i, features.get(i, 0) != features.get(i, 1));
  }
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 8, .levels = 1, .total_dts = 8});
  const PruneStats stats = prune_rinc(module);
  EXPECT_EQ(stats.raw_luts, 9u);
  EXPECT_EQ(stats.raw_6luts, 36u);  // 9 x 4
}

}  // namespace
}  // namespace poetbin
