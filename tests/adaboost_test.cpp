#include "boost/adaboost.h"

#include <gtest/gtest.h>

#include "dt/level_dt.h"
#include "test_util.h"

namespace poetbin {
namespace {

using testing::random_bits;
using testing::targets_from;

// Weak learner: depth-1 level DT (a decision stump restricted to one LUT
// input) — weak enough that boosting has something to do.
WeakTrainFn stump_trainer(const BitMatrix& features, const BitVector& targets,
                          std::vector<Lut>& store) {
  return [&features, &targets, &store](std::span<const double> weights,
                                       std::size_t) {
    const LevelDtResult fit =
        train_level_dt(features, targets, weights, {.n_inputs = 1});
    store.push_back(fit.lut);
    return fit.lut.eval_dataset(features);
  };
}

TEST(Adaboost, BoostedStumpsBeatSingleStumpOnMajorityFunction) {
  const BitMatrix features = random_bits(1200, 9, 1);
  // Majority of three features: each single feature is a weak predictor.
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return static_cast<int>(x.get(0)) + x.get(1) + x.get(2) >= 2;
  });

  std::vector<Lut> store;
  const AdaboostResult boosted = run_adaboost(
      targets, stump_trainer(features, targets, store), {.n_rounds = 5});

  const LevelDtResult single =
      train_level_dt(features, targets, {}, {.n_inputs = 1});
  EXPECT_LT(boosted.train_error, single.weighted_error);
  EXPECT_LT(boosted.train_error, 0.05);
}

TEST(Adaboost, RoundCountAndMatArityMatch) {
  const BitMatrix features = random_bits(300, 5, 2);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(0); });
  std::vector<Lut> store;
  const AdaboostResult boosted = run_adaboost(
      targets, stump_trainer(features, targets, store), {.n_rounds = 4});
  EXPECT_EQ(boosted.rounds.size(), 4u);
  EXPECT_EQ(boosted.mat.arity(), 4u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(boosted.train_predictions.size(), targets.size());
}

TEST(Adaboost, AlphaPositiveForBetterThanChanceWeak) {
  const BitMatrix features = random_bits(500, 6, 3);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.get(1); }, 0.1, 4);
  std::vector<Lut> store;
  const AdaboostResult boosted = run_adaboost(
      targets, stump_trainer(features, targets, store), {.n_rounds = 3});
  EXPECT_GT(boosted.rounds[0].alpha, 0.0);
  EXPECT_LT(boosted.rounds[0].weighted_error, 0.5);
}

TEST(Adaboost, PerfectWeakLearnerGetsCappedAlpha) {
  const BitMatrix features = random_bits(100, 4, 5);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(2); });
  std::vector<Lut> store;
  AdaboostConfig config;
  config.n_rounds = 2;
  config.epsilon_clamp = 1e-4;
  const AdaboostResult boosted =
      run_adaboost(targets, stump_trainer(features, targets, store), config);
  EXPECT_EQ(boosted.rounds[0].weighted_error, 0.0);
  // alpha = 0.5 ln((1-eps)/eps) with eps clamped to 1e-4.
  EXPECT_NEAR(boosted.rounds[0].alpha, 0.5 * std::log((1.0 - 1e-4) / 1e-4),
              1e-9);
  EXPECT_EQ(boosted.train_error, 0.0);
}

TEST(Adaboost, TrainPredictionsConsistentWithMatOverRounds) {
  const BitMatrix features = random_bits(400, 8, 6);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(0) != x.get(3);
  });
  std::vector<Lut> store;
  const AdaboostResult boosted = run_adaboost(
      targets, stump_trainer(features, targets, store), {.n_rounds = 6});
  // Recompute combined predictions from the stored weak LUTs + MAT.
  std::vector<BitVector> weak_outputs;
  for (const auto& lut : store) weak_outputs.push_back(lut.eval_dataset(features));
  for (std::size_t i = 0; i < features.rows(); ++i) {
    std::size_t combo = 0;
    for (std::size_t r = 0; r < weak_outputs.size(); ++r) {
      if (weak_outputs[r].get(i)) combo |= std::size_t{1} << r;
    }
    EXPECT_EQ(boosted.train_predictions.get(i), boosted.mat.eval_combo(combo));
  }
}

TEST(Adaboost, InitialWeightsRespected) {
  // Give all mass to the second half; the first-round stump must fit it.
  const std::size_t n = 200;
  BitMatrix features(n, 2);
  BitVector targets(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const bool label = rng.next_bool();
    targets.set(i, label);
    if (i < n / 2) {
      features.set(i, 0, label);
      features.set(i, 1, rng.next_bool());
    } else {
      features.set(i, 1, label);
      features.set(i, 0, rng.next_bool());
    }
  }
  std::vector<double> initial(n, 0.0);
  for (std::size_t i = n / 2; i < n; ++i) initial[i] = 2.0 / n;

  std::vector<Lut> store;
  run_adaboost(targets, stump_trainer(features, targets, store),
               {.n_rounds = 1}, initial);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store[0].inputs()[0], 1u);
}

TEST(Adaboost, RejectsMoreThan64Rounds) {
  // The combined prediction packs one bit per round into a 64-bit combo
  // mask; round 65 would shift out of range (undefined behavior before the
  // guard existed).
  const BitMatrix features = random_bits(50, 4, 9);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(0); });
  std::vector<Lut> store;
  EXPECT_DEATH(run_adaboost(targets, stump_trainer(features, targets, store),
                            {.n_rounds = 65}),
               "overflow the 64-bit combo");
}

TEST(Adaboost, RejectsAllZeroInitialWeights) {
  const BitMatrix features = random_bits(50, 4, 10);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(1); });
  std::vector<Lut> store;
  const std::vector<double> zeros(targets.size(), 0.0);
  EXPECT_DEATH(run_adaboost(targets, stump_trainer(features, targets, store),
                            {.n_rounds = 2}, zeros),
               "positive total mass");
}

TEST(Adaboost, RejectsNegativeInitialWeights) {
  const BitMatrix features = random_bits(50, 4, 11);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(2); });
  std::vector<Lut> store;
  std::vector<double> weights(targets.size(), 1.0 / targets.size());
  weights[17] = -0.25;
  EXPECT_DEATH(run_adaboost(targets, stump_trainer(features, targets, store),
                            {.n_rounds = 2}, weights),
               "non-negative");
}

TEST(Adaboost, ReweightingFocusesOnMistakes) {
  // After round 1 the misclassified examples' weights must have grown;
  // verify via a probe trainer that records the weights it sees.
  const BitMatrix features = random_bits(300, 6, 8);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return static_cast<int>(x.get(0)) + x.get(1) + x.get(2) >= 2;
  });

  std::vector<std::vector<double>> seen_weights;
  std::vector<Lut> store;
  auto probe = [&](std::span<const double> weights, std::size_t /*round*/) {
    seen_weights.emplace_back(weights.begin(), weights.end());
    const LevelDtResult fit =
        train_level_dt(features, targets, weights, {.n_inputs = 1});
    store.push_back(fit.lut);
    return fit.lut.eval_dataset(features);
  };
  run_adaboost(targets, probe, {.n_rounds = 2});
  ASSERT_EQ(seen_weights.size(), 2u);

  const BitVector round0 = store[0].eval_dataset(features);
  double wrong_mass = 0.0;
  double right_mass = 0.0;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    if (round0.get(i) != targets.get(i)) {
      wrong_mass += seen_weights[1][i];
    } else {
      right_mass += seen_weights[1][i];
    }
  }
  // Adaboost's reweighting equalises the two masses (each becomes 1/2).
  EXPECT_NEAR(wrong_mass, 0.5, 0.05);
  EXPECT_NEAR(right_mass, 0.5, 0.05);
}

}  // namespace
}  // namespace poetbin
