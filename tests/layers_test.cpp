#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

// Finite-difference check of dLoss/dInput for a layer, where the loss is a
// fixed random linear functional of the output (so dLoss/dOutput is known).
void check_input_gradient(Layer& layer, Matrix input, double tolerance = 2e-2) {
  Rng rng(17);
  Matrix output = layer.forward(input, /*train=*/true);
  const Matrix loss_weights = Matrix::randn(output.rows(), output.cols(), rng, 1.0);

  const Matrix grad_input = layer.backward(loss_weights);
  ASSERT_EQ(grad_input.rows(), input.rows());
  ASSERT_EQ(grad_input.cols(), input.cols());

  const float epsilon = 1e-2f;
  for (std::size_t i = 0; i < input.size(); i += 3) {  // sample every 3rd
    Matrix plus = input;
    Matrix minus = input;
    plus.vec()[i] += epsilon;
    minus.vec()[i] -= epsilon;
    const Matrix out_plus = layer.forward(plus, /*train=*/true);
    const Matrix out_minus = layer.forward(minus, /*train=*/true);
    double loss_plus = 0.0;
    double loss_minus = 0.0;
    for (std::size_t k = 0; k < out_plus.size(); ++k) {
      loss_plus += static_cast<double>(out_plus.vec()[k]) * loss_weights.vec()[k];
      loss_minus +=
          static_cast<double>(out_minus.vec()[k]) * loss_weights.vec()[k];
    }
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    // Re-run forward on the original input so cached state matches before
    // comparing (backward was computed for `input`).
    layer.forward(input, /*train=*/true);
    EXPECT_NEAR(grad_input.vec()[i], numeric,
                tolerance * (1.0 + std::fabs(numeric)))
        << "input index " << i;
  }
}

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(1);
  Dense dense(3, 2, rng);
  dense.bias().value(0, 0) = 5.0f;
  Matrix input(1, 3);
  const Matrix out = dense.forward(input, false);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);  // zero input -> bias only
}

TEST(Dense, InputGradient) {
  Rng rng(2);
  Dense dense(4, 3, rng);
  Matrix input = Matrix::randn(2, 4, rng, 1.0);
  check_input_gradient(dense, input);
}

TEST(Dense, WeightGradientAccumulates) {
  Rng rng(3);
  Dense dense(2, 2, rng);
  Matrix input = Matrix::randn(3, 2, rng, 1.0);
  Matrix grad(3, 2, 1.0f);
  dense.forward(input, true);
  dense.backward(grad);
  const Matrix first = dense.weights().grad;
  dense.forward(input, true);
  dense.backward(grad);
  EXPECT_NEAR(dense.weights().grad(0, 0), 2.0f * first(0, 0), 1e-4);
}

TEST(Dense, WeightGradientNumeric) {
  Rng rng(4);
  Dense dense(3, 2, rng);
  Matrix input = Matrix::randn(2, 3, rng, 1.0);
  Matrix loss_weights = Matrix::randn(2, 2, rng, 1.0);

  dense.forward(input, true);
  dense.backward(loss_weights);
  const Matrix analytic = dense.weights().grad;

  const float epsilon = 1e-2f;
  for (std::size_t i = 0; i < dense.weights().value.size(); ++i) {
    float& w = dense.weights().value.vec()[i];
    const float original = w;
    w = original + epsilon;
    const Matrix out_plus = dense.forward(input, false);
    w = original - epsilon;
    const Matrix out_minus = dense.forward(input, false);
    w = original;
    double numeric = 0.0;
    for (std::size_t k = 0; k < out_plus.size(); ++k) {
      numeric += (out_plus.vec()[k] - out_minus.vec()[k]) * loss_weights.vec()[k];
    }
    numeric /= 2.0 * epsilon;
    EXPECT_NEAR(analytic.vec()[i], numeric, 2e-2 * (1.0 + std::fabs(numeric)));
  }
}

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  Matrix input(1, 4);
  input.vec() = {-1.0f, 0.0f, 2.0f, -0.5f};
  const Matrix out = relu.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 2.0f);
}

TEST(Relu, BackwardMasks) {
  Relu relu;
  Matrix input(1, 3);
  input.vec() = {-1.0f, 1.0f, 3.0f};
  relu.forward(input, true);
  Matrix grad(1, 3, 1.0f);
  const Matrix gin = relu.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gin(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gin(0, 2), 1.0f);
}

TEST(BinarySigmoid, ForwardIsStep) {
  BinarySigmoid act;
  Matrix input(1, 4);
  input.vec() = {-0.1f, 0.0f, 0.1f, -5.0f};
  const Matrix out = act.forward(input, false);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 1.0f);  // >= 0 -> 1
  EXPECT_FLOAT_EQ(out(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 3), 0.0f);
}

TEST(BinarySigmoid, StraightThroughGradientGating) {
  BinarySigmoid act;
  Matrix input(1, 3);
  input.vec() = {0.5f, 1.5f, -0.9f};
  act.forward(input, true);
  Matrix grad(1, 3, 2.0f);
  const Matrix gin = act.backward(grad);
  EXPECT_FLOAT_EQ(gin(0, 0), 2.0f);  // inside [-1, 1]: pass through
  EXPECT_FLOAT_EQ(gin(0, 1), 0.0f);  // saturated: blocked
  EXPECT_FLOAT_EQ(gin(0, 2), 2.0f);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  BatchNorm bn(2);
  Rng rng(5);
  Matrix input = Matrix::randn(64, 2, rng, 3.0);
  for (std::size_t r = 0; r < input.rows(); ++r) input(r, 0) += 10.0f;
  const Matrix out = bn.forward(input, true);
  double mean0 = 0.0;
  double var0 = 0.0;
  for (std::size_t r = 0; r < out.rows(); ++r) mean0 += out(r, 0);
  mean0 /= out.rows();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    var0 += (out(r, 0) - mean0) * (out(r, 0) - mean0);
  }
  var0 /= out.rows();
  EXPECT_NEAR(mean0, 0.0, 1e-4);
  EXPECT_NEAR(var0, 1.0, 1e-2);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm bn(1);
  Rng rng(6);
  // Train on shifted data for a few batches so running stats adapt.
  for (int i = 0; i < 50; ++i) {
    Matrix batch = Matrix::randn(32, 1, rng, 1.0);
    for (auto& v : batch.vec()) v += 4.0f;
    bn.forward(batch, true);
  }
  Matrix probe(1, 1);
  probe(0, 0) = 4.0f;  // at the running mean -> output near beta = 0
  const Matrix out = bn.forward(probe, false);
  EXPECT_NEAR(out(0, 0), 0.0f, 0.2f);
}

TEST(BatchNorm, InputGradient) {
  BatchNorm bn(3);
  Rng rng(7);
  Matrix input = Matrix::randn(8, 3, rng, 2.0);
  check_input_gradient(bn, input, 5e-2);
}

TEST(BlockSparseDense, ForwardUsesOnlyOwnBlock) {
  Rng rng(20);
  BlockSparseDense layer(2, 3, rng);
  Matrix input(1, 6);
  input.vec() = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  const Matrix base = layer.forward(input, false);
  // Perturbing block 1's inputs must not change output 0.
  Matrix perturbed = input;
  perturbed(0, 3) += 10.0f;
  perturbed(0, 5) -= 3.0f;
  const Matrix out = layer.forward(perturbed, false);
  EXPECT_FLOAT_EQ(out(0, 0), base(0, 0));
  EXPECT_NE(out(0, 1), base(0, 1));
}

TEST(BlockSparseDense, ForwardMatchesManualComputation) {
  Rng rng(21);
  BlockSparseDense layer(2, 2, rng);
  Matrix input(1, 4);
  input.vec() = {1.0f, -1.0f, 0.5f, 2.0f};
  const Matrix out = layer.forward(input, false);
  const Matrix& w = layer.weights().value;
  EXPECT_NEAR(out(0, 0),
              w(0, 0) * 1.0f + w(0, 1) * -1.0f + layer.bias().value(0, 0), 1e-5);
  EXPECT_NEAR(out(0, 1),
              w(1, 0) * 0.5f + w(1, 1) * 2.0f + layer.bias().value(0, 1), 1e-5);
}

TEST(BlockSparseDense, InputGradient) {
  Rng rng(22);
  BlockSparseDense layer(3, 4, rng);
  Matrix input = Matrix::randn(5, 12, rng, 1.0);
  check_input_gradient(layer, input);
}

TEST(BlockSparseDense, GradientIsBlockLocal) {
  Rng rng(23);
  BlockSparseDense layer(2, 2, rng);
  Matrix input = Matrix::randn(3, 4, rng, 1.0);
  layer.forward(input, true);
  // Only output 0 receives gradient: block 1 weights must stay untouched.
  Matrix grad(3, 2);
  for (std::size_t r = 0; r < 3; ++r) grad(r, 0) = 1.0f;
  layer.backward(grad);
  std::vector<Param*> params;
  layer.collect_params(params);
  const Matrix& wgrad = params[0]->grad;
  EXPECT_NE(wgrad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(wgrad(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(wgrad(1, 1), 0.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(8);
  Dropout dropout(0.5, rng);
  Matrix input = Matrix::randn(4, 4, rng, 1.0);
  const Matrix out = dropout.forward(input, false);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(out.vec()[i], input.vec()[i]);
  }
}

TEST(Dropout, TrainingDropsAndRescales) {
  Rng rng(9);
  Dropout dropout(0.5, rng);
  Matrix input(1, 10000, 1.0f);
  const Matrix out = dropout.forward(input, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (const float v : out.vec()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - rate)
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.5, 0.03);
  EXPECT_NEAR(sum / out.size(), 1.0, 0.06);  // expectation preserved
}

}  // namespace
}  // namespace poetbin
