// Shared helpers for the test suite: small synthetic binary classification
// problems with known structure.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace poetbin::testing {

// Restores the active SIMD word backend on scope exit; tests that call
// set_word_backend() must not leak the switch into later tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_word_backend()) {}
  ~BackendGuard() { set_word_backend(saved_); }

  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  WordBackend saved_;
};

// Random binary feature matrix.
inline BitMatrix random_bits(std::size_t n_rows, std::size_t n_cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(n_rows, n_cols);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (rng.next_bool()) bits.set(r, c, true);
    }
  }
  return bits;
}

// Targets computed by an arbitrary boolean function of the row, optionally
// flipped with probability `noise`.
inline BitVector targets_from(const BitMatrix& features,
                              const std::function<bool(const BitVector&)>& fn,
                              double noise = 0.0, std::uint64_t seed = 9) {
  Rng rng(seed);
  BitVector targets(features.rows());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    bool label = fn(features.row(i));
    if (noise > 0.0 && rng.next_bool(noise)) label = !label;
    targets.set(i, label);
  }
  return targets;
}

inline double bit_accuracy(const BitVector& predictions, const BitVector& targets) {
  return static_cast<double>(predictions.xnor_popcount(targets)) /
         static_cast<double>(targets.size());
}

// 10-class linearly-separable-ish binary dataset: class = argmax over 10
// prototype agreement counts. Every classifier worth its salt should get
// well above chance on it.
inline BinaryDataset prototype_dataset(std::size_t n, std::size_t n_features,
                                       std::uint64_t seed,
                                       double flip_prob = 0.08) {
  Rng rng(seed);
  const std::size_t n_classes = 10;
  std::vector<BitVector> prototypes;
  for (std::size_t c = 0; c < n_classes; ++c) {
    BitVector proto(n_features);
    for (std::size_t f = 0; f < n_features; ++f) {
      if (rng.next_bool()) proto.set(f, true);
    }
    prototypes.push_back(std::move(proto));
  }

  BinaryDataset data;
  data.features = BitMatrix(n, n_features);
  data.labels.resize(n);
  data.n_classes = n_classes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng.next_index(n_classes);
    data.labels[i] = static_cast<int>(label);
    for (std::size_t f = 0; f < n_features; ++f) {
      bool bit = prototypes[label].get(f);
      if (rng.next_bool(flip_prob)) bit = !bit;
      if (bit) data.features.set(i, f, true);
    }
  }
  return data;
}

}  // namespace poetbin::testing
