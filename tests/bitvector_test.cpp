#include "util/bitvector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace poetbin {
namespace {

TEST(BitVector, StartsCleared) {
  BitVector bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.popcount(), 0u);
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_FALSE(bits.get(i));
}

TEST(BitVector, FillConstructor) {
  BitVector bits(70, true);
  EXPECT_EQ(bits.popcount(), 70u);
}

TEST(BitVector, SetGetRoundTrip) {
  BitVector bits(130);
  bits.set(0, true);
  bits.set(63, true);
  bits.set(64, true);
  bits.set(129, true);
  EXPECT_TRUE(bits.get(0));
  EXPECT_TRUE(bits.get(63));
  EXPECT_TRUE(bits.get(64));
  EXPECT_TRUE(bits.get(129));
  EXPECT_FALSE(bits.get(1));
  EXPECT_EQ(bits.popcount(), 4u);
  bits.set(63, false);
  EXPECT_FALSE(bits.get(63));
  EXPECT_EQ(bits.popcount(), 3u);
}

TEST(BitVector, TailBitsStayMasked) {
  BitVector bits(65, true);
  // Only 65 bits should count even though two words are allocated.
  EXPECT_EQ(bits.popcount(), 65u);
  const BitVector inverted = ~bits;
  EXPECT_EQ(inverted.popcount(), 0u);
}

TEST(BitVector, XorIntoMatchesOperatorXor) {
  Rng rng(5);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a.set(i, rng.next_bool());
      b.set(i, rng.next_bool());
    }
    BitVector dst;
    a.xor_into(b, dst);
    EXPECT_TRUE(dst == (a ^ b)) << "n=" << n;
    // Reuse with stale larger contents must still come out exact.
    BitVector stale(512, true);
    a.xor_into(b, stale);
    EXPECT_TRUE(stale == (a ^ b)) << "n=" << n;
  }
}

TEST(BitVector, MaskedWeightedSumMatchesScalarLoop) {
  Rng rng(6);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 300u}) {
    BitVector mask(n);
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      mask.set(i, rng.next_bool());
      weights[i] = rng.next_double();
    }
    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask.get(i)) expected += weights[i];
    }
    // Identical accumulation order, so the comparison is exact.
    EXPECT_EQ(mask.masked_weighted_sum(weights), expected) << "n=" << n;
  }
}

TEST(BitVector, LogicOps) {
  BitVector a(8);
  BitVector b(8);
  a.set(0, true);
  a.set(1, true);
  b.set(1, true);
  b.set(2, true);
  EXPECT_EQ((a & b).popcount(), 1u);
  EXPECT_EQ((a | b).popcount(), 3u);
  EXPECT_EQ((a ^ b).popcount(), 2u);
  EXPECT_TRUE((a & b).get(1));
}

TEST(BitVector, NotRespectsSize) {
  BitVector a(10);
  a.set(3, true);
  const BitVector b = ~a;
  EXPECT_EQ(b.popcount(), 9u);
  EXPECT_FALSE(b.get(3));
}

TEST(BitVector, PopcountPrefix) {
  BitVector bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i, true);
  for (const std::size_t prefix : {0u, 1u, 63u, 64u, 65u, 128u, 199u, 200u}) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < prefix; ++i) {
      if (bits.get(i)) ++expected;
    }
    EXPECT_EQ(bits.popcount_prefix(prefix), expected) << "prefix=" << prefix;
  }
}

TEST(BitVector, XnorPopcountMatchesDefinition) {
  Rng rng(77);
  BitVector a(150);
  BitVector b(150);
  for (std::size_t i = 0; i < 150; ++i) {
    a.set(i, rng.next_bool());
    b.set(i, rng.next_bool());
  }
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 150; ++i) {
    if (a.get(i) == b.get(i)) ++agree;
  }
  EXPECT_EQ(a.xnor_popcount(b), agree);
  EXPECT_EQ(a.hamming(b), 150u - agree);
}

TEST(BitVector, XnorPopcountSelfIsSize) {
  BitVector a(77, true);
  EXPECT_EQ(a.xnor_popcount(a), 77u);
  EXPECT_EQ(a.hamming(a), 0u);
}

TEST(BitVector, ResizeGrowsWithValue) {
  BitVector bits(10);
  bits.set(9, true);
  bits.resize(80, true);
  EXPECT_TRUE(bits.get(9));
  EXPECT_TRUE(bits.get(79));
  EXPECT_EQ(bits.popcount(), 71u);
  bits.resize(5);
  EXPECT_EQ(bits.size(), 5u);
  EXPECT_EQ(bits.popcount(), 0u);
}

TEST(BitVector, PushBack) {
  BitVector bits;
  for (int i = 0; i < 100; ++i) bits.push_back(i % 2 == 0);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.popcount(), 50u);
  EXPECT_TRUE(bits.get(0));
  EXPECT_FALSE(bits.get(99));
}

TEST(BitVector, EqualityConsidersSizeAndBits) {
  BitVector a(10);
  BitVector b(10);
  EXPECT_EQ(a, b);
  b.set(4, true);
  EXPECT_FALSE(a == b);
  BitVector c(11);
  EXPECT_FALSE(a == c);
}

TEST(BitVector, ToStringOrdersBitZeroFirst) {
  BitVector bits(4);
  bits.set(0, true);
  bits.set(3, true);
  EXPECT_EQ(bits.to_string(), "1001");
}

// Property sweep: word-parallel ops agree with the naive per-bit versions
// for many sizes straddling word boundaries.
class BitVectorPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorPropertyTest, OpsMatchNaive) {
  const std::size_t n = GetParam();
  Rng rng(n * 7919 + 1);
  BitVector a(n);
  BitVector b(n);
  std::vector<bool> na(n);
  std::vector<bool> nb(n);
  for (std::size_t i = 0; i < n; ++i) {
    na[i] = rng.next_bool();
    nb[i] = rng.next_bool();
    a.set(i, na[i]);
    b.set(i, nb[i]);
  }
  const BitVector and_bits = a & b;
  const BitVector or_bits = a | b;
  const BitVector xor_bits = a ^ b;
  std::size_t popcount = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_bits.get(i), na[i] && nb[i]);
    EXPECT_EQ(or_bits.get(i), na[i] || nb[i]);
    EXPECT_EQ(xor_bits.get(i), na[i] != nb[i]);
    if (na[i]) ++popcount;
  }
  EXPECT_EQ(a.popcount(), popcount);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 2, 31, 32, 63, 64, 65, 127, 128,
                                           129, 1000, 4096));

}  // namespace
}  // namespace poetbin
