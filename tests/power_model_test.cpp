#include "hw/power_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

// ---------------------------------------------------------------- Table 4

TEST(Table4, TotalsMatchPaper) {
  EXPECT_NEAR(op_power_mult16().total(), 0.058, 1e-9);
  EXPECT_NEAR(op_power_add16().total(), 0.062, 1e-9);
  EXPECT_NEAR(op_power_mult32().total(), 0.076, 1e-9);
  EXPECT_NEAR(op_power_add32().total(), 0.088, 1e-9);
  // The paper's float-mult row prints total 0.098 but its own columns sum
  // to 0.099 (a rounding slip in the paper); we keep the column values.
  EXPECT_NEAR(op_power_mult_float().total(), 0.099, 1e-9);
  EXPECT_NEAR(op_power_add_float().total(), 0.083, 1e-9);
}

TEST(Table4, ComputePowerIsLogicPlusSignal) {
  EXPECT_NEAR(op_power_mult_float().compute(), 0.011, 1e-9);
  EXPECT_NEAR(op_power_add_float().compute(), 0.008, 1e-9);
  EXPECT_NEAR(op_power_mult16().compute(), 0.001, 1e-9);
}

// ---------------------------------------------------------------- Table 5

TEST(Table5, OpCountsMatchPaperExactly) {
  EXPECT_EQ(count_classifier_ops(arch_m1()).mults, 267264u);
  EXPECT_EQ(count_classifier_ops(arch_m1()).adds, 267264u);
  EXPECT_EQ(count_classifier_ops(arch_c1()).mults, 18915328u);
  EXPECT_EQ(count_classifier_ops(arch_s1()).mults, 5263360u);
}

TEST(Table5, NeuronCounts) {
  EXPECT_EQ(count_classifier_neurons(arch_m1()), 522u);  // paper SS4.2
  EXPECT_EQ(count_classifier_neurons(arch_c1()), 8202u);
  EXPECT_EQ(count_classifier_neurons(arch_s1()), 4106u);
}

// ---------------------------------------------------------------- Table 6

TEST(Table6, VanillaEnergiesMatchPaperOrder) {
  // Paper: MNIST 8.0e-5, CIFAR-10 5.7e-3, SVHN 1.6e-3 (float, 16 ns clock).
  const double mnist = classifier_energy_joules(arch_m1(), Precision::kFloat32);
  const double cifar = classifier_energy_joules(arch_c1(), Precision::kFloat32);
  const double svhn = classifier_energy_joules(arch_s1(), Precision::kFloat32);
  EXPECT_NEAR(mnist, 8.0e-5, 0.15 * 8.0e-5);
  EXPECT_NEAR(cifar, 5.7e-3, 0.15 * 5.7e-3);
  EXPECT_NEAR(svhn, 1.6e-3, 0.15 * 1.6e-3);
}

TEST(Table6, QuantizedEnergiesMatchPaper) {
  EXPECT_NEAR(classifier_energy_joules(arch_m1(), Precision::kInt16), 8.5e-6,
              0.1 * 8.5e-6);
  EXPECT_NEAR(classifier_energy_joules(arch_m1(), Precision::kInt32), 1.7e-5,
              0.1 * 1.7e-5);
  EXPECT_NEAR(classifier_energy_joules(arch_c1(), Precision::kInt16), 6.0e-4,
              0.1 * 6.0e-4);
  EXPECT_NEAR(classifier_energy_joules(arch_s1(), Precision::kInt32), 3.6e-4,
              0.12 * 3.6e-4);
}

TEST(Table6, BinaryNeuronModelReproducesMnistExactly) {
  // Paper: 26 mW x 522 neurons = 13.572 W; x 16 ns = 2.17e-7 J.
  EXPECT_NEAR(binary_neuron_power_watts(512), 0.026, 1e-12);
  const double energy = classifier_energy_joules(arch_m1(), Precision::kBinary1);
  EXPECT_NEAR(energy, 2.17e-7, 0.02 * 2.17e-7);
}

TEST(Table6, BinaryEnergiesWithinOrderOfMagnitude) {
  // Paper: CIFAR-10 3.9e-5, SVHN 9.2e-6; the linear fan-in model lands in
  // the same decade (documented substitution, EXPERIMENTS.md).
  const double cifar = classifier_energy_joules(arch_c1(), Precision::kBinary1);
  const double svhn = classifier_energy_joules(arch_s1(), Precision::kBinary1);
  EXPECT_GT(cifar, 3.9e-6);
  EXPECT_LT(cifar, 3.9e-4);
  EXPECT_GT(svhn, 9.2e-7);
  EXPECT_LT(svhn, 9.2e-5);
}

TEST(Table6, PrecisionOrderingHolds) {
  // float > int32 > int16 > binary for every architecture.
  for (const auto& arch : {arch_m1(), arch_c1(), arch_s1()}) {
    const double f = classifier_energy_joules(arch, Precision::kFloat32);
    const double i32 = classifier_energy_joules(arch, Precision::kInt32);
    const double i16 = classifier_energy_joules(arch, Precision::kInt16);
    const double b = classifier_energy_joules(arch, Precision::kBinary1);
    EXPECT_GT(f, i32) << arch.name;
    EXPECT_GT(i32, i16) << arch.name;
    EXPECT_GT(i16, b) << arch.name;
  }
}

// ------------------------------------------------------------- Tables 3/7

TEST(Table7, ModuleLutUnitsMatchPaperHandCounts) {
  EXPECT_EQ(rinc_module_lut_units(hw_spec_mnist()), 37u);    // 32+4+1
  EXPECT_EQ(rinc_module_lut_units(hw_spec_cifar10()), 46u);  // 40+5+1
  EXPECT_EQ(rinc_module_lut_units(hw_spec_svhn()), 43u);     // 36+6+1
}

TEST(Table7, SvhnLutCountExact2660) {
  // The paper hand-verifies 43*60 + 80 = 2660 and reports the synthesizer
  // agrees exactly.
  EXPECT_EQ(poetbin_total_6luts(hw_spec_svhn()), 2660u);
}

TEST(Table7, MnistAndCifarLutCountsNearPaper) {
  // Paper: 11899 (MNIST), 9650 (CIFAR-10) post-synthesis.
  const auto mnist = static_cast<double>(poetbin_total_6luts(hw_spec_mnist()));
  const auto cifar = static_cast<double>(poetbin_total_6luts(hw_spec_cifar10()));
  EXPECT_NEAR(mnist, 11899.0, 0.02 * 11899.0);
  EXPECT_NEAR(cifar, 9650.0, 0.02 * 9650.0);
}

TEST(Table7, CriticalPathLevels) {
  EXPECT_EQ(poetbin_critical_path_levels(hw_spec_svhn()), 4u);   // P=6
  EXPECT_EQ(poetbin_critical_path_levels(hw_spec_mnist()), 8u);  // P=8 -> x2
}

TEST(Table7, LatencyMatchesPaper) {
  // Paper: 9.11 ns MNIST, 9.48 ns CIFAR-10, 5.85 ns SVHN.
  EXPECT_NEAR(poetbin_latency_ns(hw_spec_mnist()), 9.11, 0.05);
  EXPECT_NEAR(poetbin_latency_ns(hw_spec_svhn()), 5.85, 0.05);
  EXPECT_NEAR(poetbin_latency_ns(hw_spec_cifar10()), 9.48, 0.5);
}

TEST(Table3, MnistPowerCalibrated) {
  // Dynamic power calibrated on this very point: must reproduce 0.468 W.
  EXPECT_NEAR(poetbin_dynamic_power_watts(hw_spec_mnist()), 0.468, 0.01);
  EXPECT_NEAR(poetbin_static_power_watts(), 0.043, 0.005);
  EXPECT_NEAR(poetbin_total_power_watts(hw_spec_mnist()), 0.513, 0.015);
}

TEST(Table3, OtherDatasetsWithinFactorTwoish) {
  // Paper: CIFAR-10 total 0.341 W, SVHN total 0.417 W. The single-parameter
  // activity model predicts within ~2.5x (see EXPERIMENTS.md).
  const double cifar = poetbin_total_power_watts(hw_spec_cifar10());
  const double svhn = poetbin_total_power_watts(hw_spec_svhn());
  EXPECT_GT(cifar, 0.341 / 2.5);
  EXPECT_LT(cifar, 0.341 * 2.5);
  EXPECT_GT(svhn, 0.417 / 2.5);
  EXPECT_LT(svhn, 0.417 * 2.5);
}

TEST(Table6, PoetBinEnergyOrdersOfMagnitude) {
  // Paper: 8.2e-9 (MNIST), 5.4e-9 (CIFAR-10), 4.1e-9 (SVHN).
  EXPECT_NEAR(poetbin_energy_joules(hw_spec_mnist()), 8.2e-9, 0.3e-9);
  const double cifar = poetbin_energy_joules(hw_spec_cifar10());
  const double svhn = poetbin_energy_joules(hw_spec_svhn());
  EXPECT_GT(cifar, 1e-9);
  EXPECT_LT(cifar, 2e-8);
  EXPECT_GT(svhn, 1e-9);
  EXPECT_LT(svhn, 2e-8);
}

TEST(Table6, HeadlineClaimSixOrdersVsFloat) {
  // "up to six orders of magnitude compared to a floating point
  // implementation" — CIFAR-10 is the largest ratio.
  const double ratio =
      classifier_energy_joules(arch_c1(), Precision::kFloat32) /
      poetbin_energy_joules(hw_spec_cifar10());
  EXPECT_GT(ratio, 1e5);
  EXPECT_LT(ratio, 1e7);
}

TEST(Table6, HeadlineClaimThreeOrdersVsBinary) {
  const double ratio =
      classifier_energy_joules(arch_c1(), Precision::kBinary1) /
      poetbin_energy_joules(hw_spec_cifar10());
  EXPECT_GT(ratio, 1e2);  // paper reports 7e3 with its binary estimate
  EXPECT_LT(ratio, 1e5);
}

TEST(PrecisionNames, Stable) {
  EXPECT_STREQ(precision_name(Precision::kFloat32), "float32");
  EXPECT_STREQ(precision_name(Precision::kBinary1), "binary");
}

}  // namespace
}  // namespace poetbin
