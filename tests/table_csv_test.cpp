#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace poetbin {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "2.5"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name   |"), std::string::npos);
  EXPECT_NE(text.find("| longer |"), std::string::npos);
  // Header separator lines: top, below header, bottom.
  std::size_t separators = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++separators;
  }
  EXPECT_EQ(separators, 3u);
}

TEST(TablePrinter, FmtAndSci) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(98.5, 1), "98.5");
  EXPECT_EQ(TablePrinter::sci(8.2e-9, 1), "8.2e-09");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/poetbin_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"1", "two"});
    csv.add_row({"with,comma", "quote\"inside"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,two");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace poetbin
