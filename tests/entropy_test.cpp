#include "dt/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

TEST(Entropy, PureDistributionsAreZero) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
}

TEST(Entropy, MaximalAtHalf) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_LT(binary_entropy(0.3), 1.0);
  EXPECT_LT(binary_entropy(0.9), binary_entropy(0.6));
}

TEST(Entropy, Symmetric) {
  for (double p = 0.05; p < 0.5; p += 0.05) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1.0 - p), 1e-12);
  }
}

TEST(WeightedNodeEntropy, ScalesWithMass) {
  const double h = weighted_node_entropy(1.0, 3.0);
  EXPECT_NEAR(h, 4.0 * binary_entropy(0.75), 1e-12);
  EXPECT_NEAR(weighted_node_entropy(2.0, 6.0), 2.0 * h, 1e-12);
}

TEST(WeightedNodeEntropy, EmptyAndPureNodes) {
  EXPECT_DOUBLE_EQ(weighted_node_entropy(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(weighted_node_entropy(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(weighted_node_entropy(0.0, 5.0), 0.0);
}

TEST(WeightedEntropySum, MatchesPerNodeAccumulation) {
  // The batched form must be the exact per-node loop, init included —
  // chained calls reproduce one long accumulation bit for bit.
  const double pairs[] = {0.25, 0.75, 0.0, 0.0, 1.5, 0.5, 3.0, 3.0, 0.1, 0.0};
  const std::size_t n_pairs = 5;
  double expected = 0.125;
  for (std::size_t k = 0; k < n_pairs; ++k) {
    expected += weighted_node_entropy(pairs[2 * k], pairs[2 * k + 1]);
  }
  EXPECT_EQ(weighted_entropy_sum(pairs, n_pairs, 0.125), expected);
  // Chaining: first half, then second half seeded with the first result.
  const double head = weighted_entropy_sum(pairs, 2, 0.125);
  EXPECT_EQ(weighted_entropy_sum(pairs + 4, 3, head), expected);
}

TEST(WeightedEntropySum, EmptyRangeReturnsInit) {
  EXPECT_EQ(weighted_entropy_sum(nullptr, 0, 0.0), 0.0);
  EXPECT_EQ(weighted_entropy_sum(nullptr, 0, 2.5), 2.5);
}

TEST(WeightedNodeEntropy, SplitNeverIncreasesEntropy) {
  // Concavity: H(parent) >= H(left) + H(right) for any split of the mass.
  const double parent = weighted_node_entropy(4.0, 6.0);
  for (double l0 = 0.0; l0 <= 4.0; l0 += 1.0) {
    for (double l1 = 0.0; l1 <= 6.0; l1 += 1.0) {
      const double split = weighted_node_entropy(l0, l1) +
                           weighted_node_entropy(4.0 - l0, 6.0 - l1);
      EXPECT_LE(split, parent + 1e-9);
    }
  }
}

}  // namespace
}  // namespace poetbin
