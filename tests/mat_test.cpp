#include "boost/mat.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace poetbin {
namespace {

TEST(Mat, SingleInputIsIdentityForPositiveWeight) {
  const MatModule mat({1.0});
  EXPECT_FALSE(mat.eval_combo(0));
  EXPECT_TRUE(mat.eval_combo(1));
}

TEST(Mat, SingleInputNegativeWeightInverts) {
  const MatModule mat({-1.0});
  EXPECT_TRUE(mat.eval_combo(0));
  EXPECT_FALSE(mat.eval_combo(1));
}

TEST(Mat, MajorityOfEqualWeights) {
  const MatModule mat({1.0, 1.0, 1.0});
  // Majority with ties to 1: >= 1.5 of 3.
  EXPECT_FALSE(mat.eval_combo(0b000));
  EXPECT_FALSE(mat.eval_combo(0b001));
  EXPECT_TRUE(mat.eval_combo(0b011));
  EXPECT_TRUE(mat.eval_combo(0b111));
}

TEST(Mat, TieResolvesToOne) {
  const MatModule mat({1.0, 1.0});
  // combo 0b01: margin = 1 - 1 = 0 -> comparator outputs 1 (>=).
  EXPECT_TRUE(mat.eval_combo(0b01));
  EXPECT_TRUE(mat.eval_combo(0b10));
}

TEST(Mat, ThresholdFormulationMatchesSignFormulation) {
  // Paper formulation: sum w_i b_i >= (sum w_i)/2 must equal
  // sign(sum w_i (2b_i - 1)) >= 0 for every combo.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> weights(5);
    for (auto& w : weights) w = rng.uniform(-2.0, 3.0);
    const MatModule mat(weights);
    const double threshold = mat.threshold();
    for (std::size_t combo = 0; combo < 32; ++combo) {
      double weighted_sum = 0.0;
      for (std::size_t i = 0; i < 5; ++i) {
        if ((combo >> i) & 1) weighted_sum += weights[i];
      }
      EXPECT_EQ(mat.eval_combo(combo), weighted_sum >= threshold)
          << "trial " << trial << " combo " << combo;
    }
  }
}

TEST(Mat, TableMatchesEvalCombo) {
  const MatModule mat({0.5, -1.0, 2.0});
  const BitVector table = mat.to_table();
  ASSERT_EQ(table.size(), 8u);
  for (std::size_t combo = 0; combo < 8; ++combo) {
    EXPECT_EQ(table.get(combo), mat.eval_combo(combo));
  }
}

TEST(Mat, DominantWeightMakesOthersRemovable) {
  // |w0| exceeds the sum of all others: only input 0 matters.
  const MatModule mat({10.0, 0.5, 0.5, 0.5});
  const auto removable = mat.removable_inputs();
  EXPECT_FALSE(removable[0]);
  EXPECT_TRUE(removable[1]);
  EXPECT_TRUE(removable[2]);
  EXPECT_TRUE(removable[3]);
}

TEST(Mat, BalancedWeightsNothingRemovable) {
  const MatModule mat({1.0, 1.0, 1.0});
  const auto removable = mat.removable_inputs();
  for (const bool r : removable) EXPECT_FALSE(r);
}

TEST(Mat, RemovableInputTrulyNeverFlipsOutput) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> weights(6);
    for (auto& w : weights) w = rng.uniform(-1.0, 1.0);
    if (trial % 3 == 0) weights[0] = 8.0;  // force some removable cases
    const MatModule mat(weights);
    const auto removable = mat.removable_inputs();
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (!removable[i]) continue;
      for (std::size_t combo = 0; combo < 64; ++combo) {
        EXPECT_EQ(mat.eval_combo(combo),
                  mat.eval_combo(combo ^ (std::size_t{1} << i)));
      }
    }
  }
}

TEST(Mat, ZeroWeightInputIsRemovable) {
  const MatModule mat({1.0, 0.0, -1.0});
  EXPECT_TRUE(mat.removable_inputs()[1]);
}

}  // namespace
}  // namespace poetbin
