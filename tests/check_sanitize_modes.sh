#!/usr/bin/env bash
# Configure-time regression test for the POETBIN_SANITIZE cache variable:
#   thread  -> TSan mode
#   address -> ASan+UBSan mode
#   ON      -> legacy bool spelling still maps to address
#   bogus   -> hard configure error, never a silent fallback
#
# Registered from CMakeLists.txt as the `sanitize_modes_configure` ctest
# (only in non-sanitized builds, so the CI sanitizer legs don't recurse).
# Usage: check_sanitize_modes.sh <cmake-binary> <source-dir>
set -euo pipefail

cmake_bin="$1"
source_dir="$2"
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

configure() {
  local value="$1" out="$2"
  # Tests off: the probe only needs the configure step, not GTest.
  "${cmake_bin}" -S "${source_dir}" -B "${work}/${value}" \
    -DPOETBIN_BUILD_TESTS=OFF -DPOETBIN_SANITIZE="${value}" \
    > "${out}" 2>&1
}

expect_mode() {
  local value="$1" mode="$2"
  local out="${work}/log_${value}.txt"
  configure "${value}" "${out}"
  if ! grep -q "POETBIN_SANITIZE mode: ${mode}" "${out}"; then
    echo "FAIL: -DPOETBIN_SANITIZE=${value} did not report mode '${mode}'" >&2
    tail -20 "${out}" >&2
    exit 1
  fi
  echo "ok: ${value} -> ${mode}"
}

expect_mode thread thread
expect_mode address address
expect_mode ON address   # legacy bool spelling

out="${work}/log_bogus.txt"
if configure bogus "${out}"; then
  echo "FAIL: -DPOETBIN_SANITIZE=bogus configured successfully" >&2
  exit 1
fi
if ! grep -q "POETBIN_SANITIZE must be" "${out}"; then
  echo "FAIL: bogus value did not produce the expected error message" >&2
  tail -20 "${out}" >&2
  exit 1
fi
echo "ok: bogus -> configure error"
echo "check_sanitize_modes OK"
