#include "hw/memory_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

TEST(MemoryModel, MonolithicGrowsExponentially) {
  EXPECT_EQ(monolithic_table_bits(6), 64u);
  EXPECT_EQ(monolithic_table_bits(10), 1024u);
  // The paper's example: a 30-input LUT already needs one gigabit.
  EXPECT_EQ(monolithic_table_bits(30), std::uint64_t{1} << 30);
  EXPECT_EQ(monolithic_table_bits(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(MemoryModel, RincBitsMatchStructure) {
  // Full RINC-2 at P=6: 43 LUTs x 64 bits.
  EXPECT_EQ(rinc_table_bits(6, 2, 0), 43u * 64u);
  // MNIST config: 37 LUTs x 256 bits.
  EXPECT_EQ(rinc_table_bits(8, 2, 32), 37u * 256u);
}

TEST(MemoryModel, RincBitsFromTrainedModule) {
  const BitMatrix features = testing::random_bits(200, 32, 1);
  BitVector targets(200);
  for (std::size_t i = 0; i < 200; ++i) targets.set(i, features.get(i, 4));
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 2, .total_dts = 8});
  // 8 leaves + 2 subgroup MATs (arity 4) + 1 top MAT (arity 2).
  EXPECT_EQ(rinc_table_bits(module), 8u * 16u + 2u * 16u + 4u);
}

TEST(MemoryModel, RincBeatsMonolithicForWideInputs) {
  // Same effective input capacity, exponentially cheaper tables.
  const std::uint64_t capacity = rinc_input_capacity(6, 2);  // 216 inputs
  EXPECT_EQ(capacity, 216u);
  EXPECT_LT(rinc_table_bits(6, 2, 0),
            monolithic_table_bits(30));  // even 30 << 216 inputs is worse
}

TEST(MemoryModel, BlockRamPacking) {
  EXPECT_EQ(block_rams_required(0), 0u);
  EXPECT_EQ(block_rams_required(1), 1u);
  EXPECT_EQ(block_rams_required(kBlockRamBits), 1u);
  EXPECT_EQ(block_rams_required(kBlockRamBits + 1), 2u);
  // SVHN-style module: 43 x 64 bits = 2752 bits -> one BRAM.
  EXPECT_EQ(block_rams_required(rinc_table_bits(6, 2, 36)), 1u);
}

}  // namespace
}  // namespace poetbin
