#include "hw/netlist_opt.h"

#include <gtest/gtest.h>

#include "hw/vhdl.h"

#include "core/poetbin.h"
#include "hw/netlist_builder.h"
#include "test_util.h"

namespace poetbin {
namespace {

using testing::random_bits;

// All 2^k input combinations as a BitMatrix (for exhaustive equivalence).
BitMatrix exhaustive_vectors(std::size_t n_inputs) {
  const std::size_t n = std::size_t{1} << n_inputs;
  BitMatrix vectors(n, n_inputs);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t bit = 0; bit < n_inputs; ++bit) {
      vectors.set(row, bit, (row >> bit) & 1);
    }
  }
  return vectors;
}

TEST(LutInputRemovable, DetectsIgnoredInput) {
  // f(a, b) = a: input 1 (b) is removable, input 0 (a) is not.
  BitVector table(4);
  table.set(1, true);
  table.set(3, true);
  EXPECT_FALSE(lut_input_removable(table, 0));
  EXPECT_TRUE(lut_input_removable(table, 1));
}

TEST(OptimizeNetlist, RemovesDeadLogic) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto b = netlist.add_input(1, "b");
  BitVector and_table(4);
  and_table.set(3, true);
  const auto live = netlist.add_lut({a, b}, and_table, "live");
  netlist.add_lut({a, b}, and_table, "dead");  // never marked as output
  netlist.mark_output(live);

  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(netlist, &stats);
  EXPECT_EQ(stats.dead_removed, 1u);
  EXPECT_EQ(optimized.n_luts(), 1u);
  EXPECT_TRUE(verify_equivalent(netlist, optimized, exhaustive_vectors(2)));
}

TEST(OptimizeNetlist, DisconnectsRemovableInput) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto b = netlist.add_input(1, "b");
  // f(a, b) = a, wastefully encoded as a 2-input LUT.
  BitVector table(4);
  table.set(1, true);
  table.set(3, true);
  const auto lut = netlist.add_lut({a, b}, table, "wasteful");
  netlist.mark_output(lut);

  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(netlist, &stats);
  EXPECT_EQ(stats.inputs_disconnected, 1u);
  // After dropping b, the LUT is the identity on a -> collapses to a wire.
  EXPECT_EQ(stats.wires_collapsed, 1u);
  EXPECT_EQ(optimized.n_luts(), 0u);
  EXPECT_TRUE(verify_equivalent(netlist, optimized, exhaustive_vectors(2)));
}

TEST(OptimizeNetlist, FoldsConstantLut) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto b = netlist.add_input(1, "b");
  const auto constant = netlist.add_lut({a}, BitVector(2, true), "always1");
  BitVector and_table(4);
  and_table.set(3, true);
  // AND(always1, b) == b.
  const auto gate = netlist.add_lut({constant, b}, and_table, "and");
  netlist.mark_output(gate);

  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(netlist, &stats);
  EXPECT_TRUE(verify_equivalent(netlist, optimized, exhaustive_vectors(2)));
  EXPECT_EQ(optimized.n_luts(), 0u);  // gate collapses into a wire to b
}

TEST(OptimizeNetlist, ConstantOutputMaterialises) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  // XOR(a, a) via two wires would be constant 0; emulate with a LUT whose
  // table is all-zero.
  const auto zero = netlist.add_lut({a}, BitVector(2), "zero");
  netlist.mark_output(zero);
  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(netlist, &stats);
  ASSERT_EQ(optimized.outputs().size(), 1u);
  EXPECT_TRUE(verify_equivalent(netlist, optimized, exhaustive_vectors(1)));
}

TEST(OptimizeNetlist, KeepsInverters) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  BitVector not_table(2);
  not_table.set(0, true);
  const auto inverter = netlist.add_lut({a}, not_table, "inv");
  netlist.mark_output(inverter);
  const Netlist optimized = optimize_netlist(netlist);
  EXPECT_EQ(optimized.n_luts(), 1u);
  EXPECT_TRUE(verify_equivalent(netlist, optimized, exhaustive_vectors(1)));
}

TEST(OptimizeNetlist, TrainedModelStaysEquivalent) {
  // The real end-to-end property: optimizing a trained classifier netlist
  // changes nothing observable. Mirrors the paper's note that the removed
  // LUTs "do not affect the result".
  const BinaryDataset data = testing::prototype_dataset(400, 40, 5);
  const std::size_t p = 4;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  Rng rng(6);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      const bool is_class = data.labels[i] == static_cast<int>(j / p);
      intermediate.set(i, j, is_class != rng.next_bool(0.04));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 2, .total_dts = 8};
  config.n_classes = data.n_classes;
  config.output.epochs = 40;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);
  const PoetBinNetlist built = build_poetbin_netlist(model, 40);

  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(built.netlist, &stats);
  EXPECT_LE(optimized.n_luts(), built.netlist.n_luts());
  EXPECT_TRUE(verify_equivalent(built.netlist, optimized, data.features));
}

TEST(OptimizeNetlist, DepthNeverIncreases) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BitMatrix features = random_bits(64, 12, 100 + seed);
    BitVector targets(64);
    for (std::size_t i = 0; i < 64; ++i) {
      targets.set(i, features.get(i, seed % 12));
    }
    const RincModule module = RincModule::train(
        features, targets, {}, {.lut_inputs = 3, .levels = 2, .total_dts = 6});
    const RincNetlist built = build_rinc_netlist(module, 12);
    const Netlist optimized = optimize_netlist(built.netlist);
    EXPECT_LE(optimized.depth(), built.netlist.depth()) << "seed " << seed;
    EXPECT_TRUE(verify_equivalent(built.netlist, optimized, features));
  }
}

TEST(OptimizeNetlist, VhdlEmitsConstantsFromOptimizedNetlist) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto zero = netlist.add_lut({a}, BitVector(2), "z");
  netlist.mark_output(zero);
  const Netlist optimized = optimize_netlist(netlist);
  RincNetlist wrapper;
  wrapper.netlist = optimized;
  wrapper.n_features = 1;
  wrapper.output_node = optimized.outputs()[0];
  const std::string vhdl = generate_rinc_vhdl(wrapper, "const_entity");
  EXPECT_NE(vhdl.find("<= '0';"), std::string::npos);
  EXPECT_EQ(vhdl.find("constant TBL_"), std::string::npos);
}

TEST(SimulateDataset, MatchesScalarSimulation) {
  const BitMatrix features = random_bits(517, 24, 7);  // odd size: tail word
  BitVector targets(517);
  for (std::size_t i = 0; i < 517; ++i) {
    targets.set(i, features.get(i, 3) != features.get(i, 11));
  }
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 2, .total_dts = 8});
  const RincNetlist netlist = build_rinc_netlist(module, 24);

  const auto columns = netlist.netlist.simulate_dataset(features);
  ASSERT_EQ(columns.size(), netlist.netlist.n_nodes());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const auto scalar = netlist.netlist.simulate(features.row(i));
    for (std::size_t node = 0; node < scalar.size(); ++node) {
      ASSERT_EQ(columns[node].get(i), scalar[node])
          << "node " << node << " row " << i;
    }
  }
}

TEST(SimulateDataset, OutputsMatchAndTailIsMasked) {
  const BitMatrix features = random_bits(130, 8, 8);
  Netlist netlist;
  std::vector<std::size_t> inputs;
  for (std::size_t f = 0; f < 8; ++f) {
    inputs.push_back(netlist.add_input(f, "x" + std::to_string(f)));
  }
  Rng rng(9);
  BitVector table(16);
  for (std::size_t i = 0; i < 16; ++i) table.set(i, rng.next_bool());
  const auto lut =
      netlist.add_lut({inputs[0], inputs[2], inputs[5], inputs[7]}, table, "g");
  netlist.mark_output(lut);

  const auto outputs = netlist.simulate_dataset_outputs(features);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].size(), 130u);
  std::size_t expected_popcount = 0;
  for (std::size_t i = 0; i < 130; ++i) {
    const bool value = netlist.simulate_outputs(features.row(i))[0];
    EXPECT_EQ(outputs[0].get(i), value);
    if (value) ++expected_popcount;
  }
  // Tail masking: popcount must not see garbage beyond 130 bits.
  EXPECT_EQ(outputs[0].popcount(), expected_popcount);
}

}  // namespace
}  // namespace poetbin
