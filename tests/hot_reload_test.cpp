// Atomic hot reload under live traffic: Runtime's RCU version slots, the
// kReload/kModelInfo wire frames, the named-model registry, and the
// process-global forced_backend contract.
//
// The instrument is a version-tagged model: every output code is rigged so
// predict() returns one constant class regardless of input. Swapping
// between differently-tagged models while readers hammer predict_one makes
// torn or mixed-version reads visible as impossible predictions — each
// response must equal exactly one version's tag, and each thread must see
// the tags in publish order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/packed_model.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "core/serialize.h"
#include "dt/lut.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/runtime.h"
#include "test_util.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace poetbin {
namespace {

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 3;

// A model whose prediction is `tag` for every input: class `tag` gets the
// maximum output code everywhere, everyone else zero. The LUT tables also
// vary with the tag so differently-tagged files differ throughout, not
// just in the output layer.
PoetBin tagged_model(int tag, std::size_t n_classes = kClasses,
                     std::size_t n_features = kFeatures) {
  const std::size_t p = 2;
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = n_classes;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_classes * p; ++m) {
    // Always reference the last feature so every tag derives the same
    // n_features (reload's compatibility check compares shapes).
    std::vector<std::size_t> inputs = {
        (m + static_cast<std::size_t>(tag)) % (n_features - 1),
        n_features - 1};
    BitVector table(std::size_t{1} << p);
    for (std::size_t a = 0; a < table.size(); ++a) {
      table.set(a, ((m + a + static_cast<std::size_t>(tag)) % 3) == 0);
    }
    modules.push_back(
        RincModule::make_leaf(Lut(std::move(inputs), std::move(table))));
  }
  const QuantizerParams quantizer;  // 256 levels over [0, 1]
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.assign(
        n_combos, c == static_cast<std::size_t>(tag) ? quantizer.levels() - 1
                                                     : 0u);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

BitVector example_bits(std::uint64_t seed) {
  Rng rng(seed);
  BitVector bits(kFeatures);
  for (std::size_t f = 0; f < kFeatures; ++f) {
    if (rng.next_bool()) bits.set(f, true);
  }
  return bits;
}

TEST(HotReload, TaggedModelPredictsItsTagThroughBothFormats) {
  for (int tag = 0; tag < static_cast<int>(kClasses); ++tag) {
    const PoetBin model = tagged_model(tag);
    for (std::uint64_t s = 0; s < 16; ++s) {
      EXPECT_EQ(model.predict(example_bits(s)), tag);
    }
    const std::string text = temp_path("tagged.txt");
    const std::string packed = temp_path("tagged.pbm");
    ASSERT_TRUE(write_model_file(model, text).ok());
    ASSERT_TRUE(write_packed_model_file(model, packed).ok());
    const IoResult<PoetBin> from_text = read_model_file(text);
    const IoResult<PoetBin> from_packed = read_packed_model_file(packed);
    ASSERT_TRUE(from_text.ok());
    ASSERT_TRUE(from_packed.ok()) << from_packed.error().message;
    EXPECT_EQ(from_text->predict(example_bits(tag)), tag);
    EXPECT_EQ(from_packed->predict(example_bits(tag)), tag);
  }
}

// The tentpole invariant at the Runtime level: 8 threads hammer
// predict_one while the main thread publishes tag 0 -> 1 -> 2 via
// reload(). Every response must be some published tag, and each thread
// must observe tags in publish order (RCU swaps are totally ordered).
TEST(HotReload, ReloadIsAtomicUnderConcurrentPredictOne) {
  const std::string path = temp_path("hot_reload_rt.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(0), path).ok());
  Runtime::LoadResult loaded = Runtime::load(path, {.threads = 1});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  EXPECT_EQ(runtime.model_version(), 1u);
  EXPECT_EQ(runtime.model_format(), ModelFormat::kPacked);

  constexpr std::size_t kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> out_of_order{0};
  std::atomic<std::size_t> invalid{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      const BitVector bits = example_bits(t);
      int last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int tag = runtime.predict_one(bits);
        if (tag < 0 || tag >= static_cast<int>(kClasses)) {
          invalid.fetch_add(1, std::memory_order_relaxed);
        } else if (tag < last) {
          out_of_order.fetch_add(1, std::memory_order_relaxed);
        } else {
          last = tag;
        }
      }
    });
  }
  for (int tag = 1; tag < static_cast<int>(kClasses); ++tag) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(write_packed_model_file(tagged_model(tag), path).ok());
    const IoStatus swapped = runtime.reload();
    ASSERT_TRUE(swapped.ok()) << swapped.error().message;
    EXPECT_EQ(runtime.predict_one(example_bits(99)), tag);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(invalid.load(), 0u);
  EXPECT_EQ(out_of_order.load(), 0u);
  EXPECT_EQ(runtime.model_version(), 3u);
}

// The ISSUE acceptance at the wire level: a live kReload under 8
// concurrent client threads. Every served prediction must be the old tag
// or the new tag — exactly one model version per response — and the swap
// must be visible to model_info. A follow-up corrupt push must come back
// kReloadFailed with the good model still serving.
TEST(HotReload, NetServerKReloadUnderEightClientThreads) {
  const std::string path = temp_path("hot_reload_srv.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(0), path).ok());
  Runtime::LoadResult loaded = Runtime::load(path, {.threads = 1});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  NetServer server(runtime, {.port = 0,
                             .micro_batch = true,
                             .max_batch = 16,
                             .max_wait = std::chrono::microseconds(200),
                             .n_features = kFeatures});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRequestsPerThread = 300;
  std::atomic<std::size_t> transport_errors{0};
  std::atomic<std::size_t> bad_tags{0};
  std::atomic<std::size_t> out_of_order{0};
  std::atomic<std::size_t> saw_new_tag{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      NetClient client;
      if (!client.connect("127.0.0.1", server.port())) {
        transport_errors.fetch_add(1);
        return;
      }
      const BitVector bits = example_bits(100 + t);
      wire::Response response;
      int last = 0;
      for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
        if (!client.predict(bits, &response) ||
            response.status != wire::Status::kOk) {
          transport_errors.fetch_add(1);
          return;
        }
        const int tag = response.prediction;
        if (tag != 0 && tag != 1) {
          bad_tags.fetch_add(1);
        } else if (tag < last) {
          out_of_order.fetch_add(1);
        } else {
          last = tag;
        }
        if (tag == 1) saw_new_tag.fetch_add(1);
      }
    });
  }

  // Push the new version roughly mid-run and fire the live kReload.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path).ok());
  NetClient control;
  ASSERT_TRUE(control.connect("127.0.0.1", server.port()));
  wire::Response response;
  ASSERT_TRUE(control.reload(&response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.model_version, 2u);

  for (auto& client : clients) client.join();
  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(bad_tags.load(), 0u);
  EXPECT_EQ(out_of_order.load(), 0u);
  EXPECT_GT(saw_new_tag.load(), 0u);

  // kModelInfo reflects the swap.
  ASSERT_TRUE(control.model_info(&response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.model_version, 2u);
  EXPECT_EQ(response.model_format,
            static_cast<std::uint8_t>(ModelFormat::kPacked));
  EXPECT_EQ(response.n_classes, kClasses);

  // A corrupt push is rejected over the wire and the good model keeps
  // serving. Pushed via rename like a real deploy — overwriting a mapped
  // file in place is forbidden by the format contract.
  {
    const std::string staged = path + ".push";
    std::ofstream corrupt(staged, std::ios::binary | std::ios::trunc);
    corrupt << "PoETBiNP and then garbage";
    corrupt.close();
    ASSERT_EQ(std::rename(staged.c_str(), path.c_str()), 0);
  }
  ASSERT_TRUE(control.reload(&response));
  EXPECT_EQ(response.status, wire::Status::kReloadFailed);
  ASSERT_TRUE(control.predict(example_bits(7), &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.prediction, 1);
  ASSERT_TRUE(control.model_info(&response));
  EXPECT_EQ(response.model_version, 2u);
  server.stop();
}

// The Runtime-level reload invariant again, with the prediction cache ON:
// every response must still be a published tag, in publish order per
// thread. A cache that lagged a publication (epoch set after the slot
// store, or a missing release/acquire pair) would resurrect an old tag
// after a thread has already seen the new one.
TEST(HotReload, CacheOnReloadKeepsPerThreadTagOrder) {
  const std::string path = temp_path("hot_reload_cache.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(0), path).ok());
  Runtime::LoadResult loaded =
      Runtime::load(path, {.threads = 1, .cache_bytes = 1u << 16});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  ASSERT_NE(runtime.cache(), nullptr);

  constexpr std::size_t kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> out_of_order{0};
  std::atomic<std::size_t> invalid{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      // Few distinct keys per thread so the cache hits constantly.
      const BitVector keys[2] = {example_bits(t), example_bits(50 + t)};
      int last = 0;
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int tag = runtime.predict_one(keys[i++ & 1]);
        if (tag < 0 || tag >= static_cast<int>(kClasses)) {
          invalid.fetch_add(1, std::memory_order_relaxed);
        } else if (tag < last) {
          out_of_order.fetch_add(1, std::memory_order_relaxed);
        } else {
          last = tag;
        }
      }
    });
  }
  for (int tag = 1; tag < static_cast<int>(kClasses); ++tag) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(write_packed_model_file(tagged_model(tag), path).ok());
    ASSERT_TRUE(runtime.reload().ok());
    EXPECT_EQ(runtime.predict_one(example_bits(99)), tag);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(invalid.load(), 0u);
  EXPECT_EQ(out_of_order.load(), 0u);
  const PredictCacheStats stats = runtime.cache()->stats();
  EXPECT_GT(stats.hits, 0u);   // the cache actually served
  EXPECT_GT(stats.stale, 0u);  // and the publishes actually invalidated
}

// retrain_output_layer publishes mid-run while 8 cache-on threads hammer
// one key each. Per thread, the served value may switch from the old
// model's answer to the retrained model's answer exactly once — any third
// transition means a stale cached answer resurfaced after the swap.
TEST(HotReload, CacheOnRetrainSwitchesEachThreadAtMostOnce) {
  Runtime runtime(tagged_model(0), {.threads = 1, .cache_bytes = 1u << 16});
  ASSERT_NE(runtime.cache(), nullptr);

  constexpr std::size_t kThreads = 8;
  std::atomic<bool> stop{false};
  std::vector<std::vector<int>> transitions(kThreads);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      const BitVector bits = example_bits(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int got = runtime.predict_one(bits);
        if (transitions[t].empty() || transitions[t].back() != got) {
          transitions[t].push_back(got);
        }
      }
    });
  }

  // Retrain toward constant class 1 on a random feature matrix. What the
  // retrained model actually predicts per key is read back afterwards —
  // the invariant is single-switch, not any particular class.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::size_t n_train = 64;
  BitMatrix train(n_train, kFeatures);
  Rng rng(23);
  for (std::size_t i = 0; i < n_train; ++i) {
    for (std::size_t f = 0; f < kFeatures; ++f) {
      train.set(i, f, rng.next_bool());
    }
  }
  runtime.retrain_output_layer(train, std::vector<int>(n_train, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(runtime.model_version(), 2u);
  for (std::size_t t = 0; t < kThreads; ++t) {
    const int before = 0;  // tagged_model(0) predicts 0 everywhere
    const int after = runtime.model().predict(example_bits(t));
    ASSERT_LE(transitions[t].size(), 2u) << "thread " << t << " flapped";
    if (!transitions[t].empty()) {
      EXPECT_TRUE(transitions[t].front() == before ||
                  transitions[t].front() == after);
    }
    if (transitions[t].size() == 2) {
      EXPECT_EQ(transitions[t].front(), before);
      EXPECT_EQ(transitions[t].back(), after);
    }
  }
}

// End-to-end cache-on serving: a client hammering one key over the wire
// gets cache hits, a kReload mid-stream flips the answer immediately (the
// stale entry must not outlive the publish), and the kStats frame carries
// the cache counters back out.
TEST(HotReload, NetServerCacheOnReloadAndWireStats) {
  const std::string path = temp_path("hot_reload_cache_srv.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(0), path).ok());
  Runtime::LoadResult loaded =
      Runtime::load(path, {.threads = 1, .cache_bytes = 1u << 16});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  NetServer server(runtime, {.port = 0,
                             .micro_batch = true,
                             .max_batch = 16,
                             .max_wait = std::chrono::microseconds(200),
                             .n_features = kFeatures});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  const BitVector bits = example_bits(42);
  wire::Response response;
  for (int r = 0; r < 50; ++r) {
    ASSERT_TRUE(client.predict(bits, &response));
    ASSERT_EQ(response.status, wire::Status::kOk);
    EXPECT_EQ(response.prediction, 0);
  }

  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path).ok());
  ASSERT_TRUE(client.reload(&response));
  ASSERT_EQ(response.status, wire::Status::kOk);
  // The very first post-reload probe of the hot key must miss the cached
  // tag-0 entry and serve the new model.
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(client.predict(bits, &response));
    ASSERT_EQ(response.status, wire::Status::kOk);
    EXPECT_EQ(response.prediction, 1);
  }

  ASSERT_TRUE(client.query_stats(&response));
  ASSERT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.stats.requests, 60u);
  EXPECT_GT(response.stats.cache_hits, 0u);
  EXPECT_GT(response.stats.cache_inserts, 0u);
  EXPECT_GT(response.stats.cache_stale, 0u);
  EXPECT_EQ(response.stats.cache_hits, server.stats().cache_hits);
  server.stop();
}

// Every reload failure mode leaves the serving version untouched: missing
// file, corrupt bytes, and a valid-but-incompatible model.
TEST(HotReload, FailedReloadKeepsOldVersionServing) {
  const std::string path = temp_path("hot_reload_fail.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(2), path).ok());
  Runtime::LoadResult loaded = Runtime::load(path, {.threads = 1});
  ASSERT_TRUE(loaded.ok());
  Runtime runtime = std::move(loaded).value();
  const BitVector bits = example_bits(5);
  ASSERT_EQ(runtime.predict_one(bits), 2);

  IoStatus status = runtime.reload(temp_path("does_not_exist.pbm"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, ModelIoError::Kind::kFileNotFound);

  const std::string corrupt = temp_path("hot_reload_corrupt.pbm");
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << "PoETBiNP short";
  }
  status = runtime.reload(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, ModelIoError::Kind::kCorruptSection);

  const std::string incompatible = temp_path("hot_reload_incompat.pbm");
  ASSERT_TRUE(
      write_packed_model_file(tagged_model(1, kClasses + 1), incompatible)
          .ok());
  status = runtime.reload(incompatible);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, ModelIoError::Kind::kIncompatibleModel);

  EXPECT_EQ(runtime.predict_one(bits), 2);
  EXPECT_EQ(runtime.model_version(), 1u);
  EXPECT_EQ(runtime.source_path(), path);
}

// The named-model registry shares the engine but swaps independently of
// the primary slot.
TEST(HotReload, NamedModelRegistryPublishesAndReloads) {
  Runtime runtime(tagged_model(0), {.threads = 1});
  const BitVector bits = example_bits(11);
  EXPECT_FALSE(runtime.has_model("candidate"));
  EXPECT_EQ(runtime.snapshot("candidate"), nullptr);

  runtime.add_model("candidate", tagged_model(1));
  ASSERT_TRUE(runtime.has_model("candidate"));
  EXPECT_EQ(runtime.predict_one("candidate", bits), 1);
  EXPECT_EQ(runtime.predict_one(bits), 0);  // primary untouched

  const std::string path = temp_path("hot_reload_named.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(2), path).ok());
  ASSERT_TRUE(runtime.load_model("candidate", path).ok());
  EXPECT_EQ(runtime.predict_one("candidate", bits), 2);
  Runtime::Snapshot snap = runtime.snapshot("candidate");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->format, ModelFormat::kPacked);
  EXPECT_EQ(snap->source_path, path);

  // reload_model re-reads the recorded path after a push.
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path).ok());
  ASSERT_TRUE(runtime.reload_model("candidate").ok());
  EXPECT_EQ(runtime.predict_one("candidate", bits), 1);
  // The old snapshot still pins the version it captured.
  EXPECT_EQ(snap->model.predict(bits), 2);

  EXPECT_EQ(runtime.model_names(),
            std::vector<std::string>{"candidate"});
  EXPECT_TRUE(runtime.remove_model("candidate"));
  EXPECT_FALSE(runtime.remove_model("candidate"));
  EXPECT_FALSE(runtime.has_model("candidate"));
}

// A conv model whose classifier predicts `tag` everywhere: the conv front
// end is a real trained RINC conv over 1x4x4 frames (wire width kFeatures),
// the tagged classifier reads its 2x4x4 = 32 flattened output bits. The
// conv layer is trained once and shared so differently-tagged models stay
// reload-compatible (same wire width) while differing throughout the
// classifier.
ConvModel conv_tagged_model(int tag) {
  static const RincConvLayer* layer = [] {
    const BinShape3 in_shape{1, 4, 4};
    RincConvConfig config;
    config.out_channels = 2;
    config.kernel = 3;
    config.stride = 1;
    config.padding = 1;
    config.rinc = {.lut_inputs = 3, .levels = 1, .total_dts = 3};
    Rng rng(77);
    BitMatrix inputs(60, in_shape.flat());
    BitMatrix targets(60, 2 * 4 * 4);
    for (std::size_t i = 0; i < 60; ++i) {
      for (std::size_t k = 0; k < inputs.cols(); ++k) {
        if (rng.next_bool()) inputs.set(i, k, true);
      }
      for (std::size_t k = 0; k < targets.cols(); ++k) {
        if (rng.next_bool()) targets.set(i, k, true);
      }
    }
    return new RincConvLayer(
        RincConvLayer::train(inputs, in_shape, targets, config));
  }();
  ConvModel model;
  model.conv = *layer;
  model.classifier = tagged_model(tag, kClasses, /*n_features=*/2 * 4 * 4);
  return model;
}

// Conv models as first-class serving citizens: packed conv file behind
// Runtime + NetServer, frames on the wire at the conv input width, conv
// shape in kModelInfo, and dense <-> conv hot swaps allowed when the wire
// width matches.
TEST(HotReload, ConvModelServesAndHotSwapsWithDense) {
  static_assert(kFeatures == 16, "conv fixture assumes 1x4x4 frames");
  const std::string path = temp_path("hot_reload_conv.pbm");
  ASSERT_TRUE(write_packed_conv_model_file(conv_tagged_model(0), path).ok());
  Runtime::LoadResult loaded =
      Runtime::load(path, {.threads = 1, .cache_bytes = 1u << 16});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  Runtime::Snapshot snap = runtime.snapshot();
  ASSERT_TRUE(snap->is_conv());
  EXPECT_EQ(snap->n_features(), kFeatures);  // wire width = frame width
  EXPECT_EQ(snap->conv->output_shape(), (BinShape3{2, 4, 4}));

  // Scalar, cached-scalar, and dataset paths all see the tag through the
  // conv front end.
  const BitVector frame = example_bits(3);
  EXPECT_EQ(runtime.predict_one(frame), 0);
  EXPECT_EQ(runtime.predict_one(frame), 0);  // cache hit, same answer
  BitMatrix frames(130, kFeatures);
  for (std::size_t i = 0; i < frames.rows(); ++i) {
    const BitVector bits = example_bits(200 + i);
    for (std::size_t f = 0; f < kFeatures; ++f) {
      frames.set(i, f, bits.get(f));
    }
  }
  EXPECT_EQ(runtime.predict(frames), std::vector<int>(frames.rows(), 0));

  NetServer server(runtime, {.port = 0,
                             .micro_batch = true,
                             .max_batch = 16,
                             .max_wait = std::chrono::microseconds(200)});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // Frames at the conv input width predict; kModelInfo reports the shape.
  wire::Response response;
  ASSERT_TRUE(client.predict(frame, &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.prediction, 0);
  ASSERT_TRUE(client.model_info(&response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.n_features, kFeatures);
  EXPECT_EQ(response.conv.has_conv, 1);
  EXPECT_EQ(response.conv.in_channels, 1u);
  EXPECT_EQ(response.conv.in_height, 4u);
  EXPECT_EQ(response.conv.in_width, 4u);
  EXPECT_EQ(response.conv.out_channels, 2u);
  EXPECT_EQ(response.conv.out_height, 4u);
  EXPECT_EQ(response.conv.out_width, 4u);

  // A dense model with the same wire width hot-swaps in over the live
  // connection; has_conv drops back to zero.
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path).ok());
  ASSERT_TRUE(client.reload(&response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  ASSERT_TRUE(client.predict(frame, &response));
  EXPECT_EQ(response.prediction, 1);
  ASSERT_TRUE(client.model_info(&response));
  EXPECT_EQ(response.conv.has_conv, 0);

  // And the conv model swaps back, through the same slot.
  ASSERT_TRUE(write_packed_conv_model_file(conv_tagged_model(2), path).ok());
  ASSERT_TRUE(client.reload(&response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  ASSERT_TRUE(client.predict(frame, &response));
  EXPECT_EQ(response.prediction, 2);
  ASSERT_TRUE(client.model_info(&response));
  EXPECT_EQ(response.conv.has_conv, 1);
  server.stop();

  // The text conv format serves through the same loader.
  const std::string text_path = temp_path("hot_reload_conv.txt");
  ASSERT_TRUE(write_conv_model_file(conv_tagged_model(1), text_path).ok());
  Runtime::LoadResult text_loaded = Runtime::load(text_path, {.threads = 1});
  ASSERT_TRUE(text_loaded.ok()) << text_loaded.error().message;
  EXPECT_EQ(text_loaded->model_format(), ModelFormat::kText);
  EXPECT_TRUE(text_loaded->snapshot()->is_conv());
  EXPECT_EQ(text_loaded->predict_one(frame), 1);
}

// Conv save paths: a Runtime serving a conv model round-trips it through
// save() (text) and save_packed() with predictions intact.
TEST(HotReload, ConvRuntimeSaveRoundTrips) {
  const Runtime runtime(conv_tagged_model(1), {.threads = 1});
  ASSERT_TRUE(runtime.snapshot()->is_conv());
  const std::string text_path = temp_path("conv_save.txt");
  const std::string packed_path = temp_path("conv_save.pbm");
  ASSERT_TRUE(runtime.save(text_path).ok());
  ASSERT_TRUE(runtime.save_packed(packed_path).ok());
  for (const std::string& path : {text_path, packed_path}) {
    Runtime::LoadResult loaded = Runtime::load(path, {.threads = 1});
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_TRUE(loaded->snapshot()->is_conv());
    EXPECT_EQ(loaded->predict_one(example_bits(8)), 1);
    std::remove(path.c_str());
  }
}

// A conv model in the named registry: add_model(ConvModel) publishes, the
// named predict paths run the conv front end, and the slot swaps to a
// same-width dense model.
TEST(HotReload, NamedRegistryServesConvModels) {
  Runtime runtime(tagged_model(0), {.threads = 1});
  runtime.add_model("convnet", conv_tagged_model(2));
  Runtime::Snapshot snap = runtime.snapshot("convnet");
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->is_conv());
  EXPECT_EQ(snap->n_features(), kFeatures);
  EXPECT_EQ(runtime.predict_one("convnet", example_bits(4)), 2);
  EXPECT_EQ(runtime.predict_one(example_bits(4)), 0);  // primary untouched

  const std::string path = temp_path("named_conv_swap.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path).ok());
  ASSERT_TRUE(runtime.load_model("convnet", path).ok());
  EXPECT_EQ(runtime.predict_one("convnet", example_bits(4)), 1);
  EXPECT_FALSE(runtime.snapshot("convnet")->is_conv());
}

// A conv model whose wire width differs is an incompatible reload target.
TEST(HotReload, MismatchedConvWidthIsIncompatible) {
  Runtime runtime(tagged_model(0), {.threads = 1});  // 16-bit wire width
  ConvModel conv = conv_tagged_model(1);
  const std::string path = temp_path("conv_incompat.pbm");
  ASSERT_TRUE(write_packed_conv_model_file(conv, path).ok());
  // 16-bit conv wire width matches the dense model: reload succeeds.
  ASSERT_TRUE(runtime.reload(path).ok());
  ASSERT_TRUE(runtime.snapshot()->is_conv());
  // A dense model at the conv *output* width (32) is now incompatible.
  const std::string wide = temp_path("conv_incompat_wide.pbm");
  ASSERT_TRUE(
      write_packed_model_file(tagged_model(0, kClasses, 32), wide).ok());
  const IoStatus status = runtime.reload(wide);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, ModelIoError::Kind::kIncompatibleModel);
  EXPECT_TRUE(runtime.snapshot()->is_conv());  // old version keeps serving
}

// RuntimeOptions::forced_backend is process-global by contract: the last
// construction wins for every Runtime in the process, and predictions stay
// bit-identical regardless (the backends only differ in speed).
TEST(HotReload, ForcedBackendIsProcessGlobalLastConstructionWins) {
  const std::vector<WordBackend> backends = available_word_backends();
  if (backends.size() < 2) {
    GTEST_SKIP() << "only one word backend available";
  }
  testing::BackendGuard guard;
  const PoetBin model = tagged_model(1);
  const Runtime first(model, {.threads = 1, .forced_backend = backends[0]});
  EXPECT_EQ(active_word_backend(), backends[0]);
  EXPECT_EQ(first.backend(), backends[0]);
  const Runtime second(model, {.threads = 1, .forced_backend = backends[1]});
  // The second construction repinned dispatch for the whole process.
  EXPECT_EQ(active_word_backend(), backends[1]);
  for (std::uint64_t s = 0; s < 8; ++s) {
    const BitVector bits = example_bits(s);
    EXPECT_EQ(first.predict_one(bits), 1);
    EXPECT_EQ(second.predict_one(bits), 1);
  }
}

}  // namespace
}  // namespace poetbin
