#include "data/binarize.h"

#include <gtest/gtest.h>

namespace poetbin {
namespace {

TEST(Binarize, ThresholdAtZeroMatchesBinarySigmoid) {
  const std::vector<float> activations = {-1.0f, 0.0f, 0.5f, -0.1f, 2.0f, -3.0f};
  const BitMatrix bits = binarize_activations(activations, 2, 3);
  EXPECT_FALSE(bits.get(0, 0));
  EXPECT_TRUE(bits.get(0, 1));  // >= 0 maps to 1, as in Kwan's binary sigmoid
  EXPECT_TRUE(bits.get(0, 2));
  EXPECT_FALSE(bits.get(1, 0));
  EXPECT_TRUE(bits.get(1, 1));
  EXPECT_FALSE(bits.get(1, 2));
}

TEST(Binarize, CustomThreshold) {
  const std::vector<float> activations = {0.2f, 0.8f};
  const BitMatrix bits = binarize_activations(activations, 1, 2, 0.5f);
  EXPECT_FALSE(bits.get(0, 0));
  EXPECT_TRUE(bits.get(0, 1));
}

TEST(Binarize, PackTargets) {
  const BitVector bits = pack_targets({0, 1, 1, 0, 1});
  EXPECT_EQ(bits.size(), 5u);
  EXPECT_EQ(bits.popcount(), 3u);
  EXPECT_TRUE(bits.get(1));
  EXPECT_FALSE(bits.get(3));
}

TEST(Binarize, ColumnMeans) {
  BitMatrix bits(4, 2);
  bits.set(0, 0, true);
  bits.set(1, 0, true);
  const auto means = column_means(bits);
  EXPECT_DOUBLE_EQ(means[0], 0.5);
  EXPECT_DOUBLE_EQ(means[1], 0.0);
}

}  // namespace
}  // namespace poetbin
