#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace poetbin {
namespace {

TEST(SquaredHinge, PerfectMarginIsZeroLoss) {
  Matrix logits(1, 3);
  logits.vec() = {2.0f, -2.0f, -2.0f};
  const LossResult loss = squared_hinge_loss(logits, {0});
  EXPECT_DOUBLE_EQ(loss.value, 0.0);
  for (const float g : loss.grad.vec()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(SquaredHinge, KnownValue) {
  Matrix logits(1, 2);
  logits.vec() = {0.0f, 0.0f};
  // margins: true class 1-0=1 -> loss 1; other 1-0=1 -> loss 1; total 2.
  const LossResult loss = squared_hinge_loss(logits, {0});
  EXPECT_DOUBLE_EQ(loss.value, 2.0);
}

TEST(SquaredHinge, GradientNumeric) {
  Rng rng(1);
  Matrix logits = Matrix::randn(4, 5, rng, 1.0);
  const std::vector<int> labels = {0, 3, 2, 4};
  const LossResult loss = squared_hinge_loss(logits, labels);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.vec()[i] += epsilon;
    minus.vec()[i] -= epsilon;
    const double numeric = (squared_hinge_loss(plus, labels).value -
                            squared_hinge_loss(minus, labels).value) /
                           (2.0 * epsilon);
    EXPECT_NEAR(loss.grad.vec()[i], numeric, 1e-2);
  }
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(2);
  const Matrix logits = Matrix::randn(6, 10, rng, 3.0);
  const Matrix probs = softmax(logits);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs(r, c), 0.0f);
      sum += probs(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Matrix logits(1, 2);
  logits.vec() = {1000.0f, 999.0f};
  const Matrix probs = softmax(logits);
  EXPECT_FALSE(std::isnan(probs(0, 0)));
  EXPECT_GT(probs(0, 0), probs(0, 1));
}

TEST(CrossEntropy, KnownValue) {
  Matrix logits(1, 2);
  logits.vec() = {0.0f, 0.0f};
  const LossResult loss = cross_entropy_loss(logits, {1});
  EXPECT_NEAR(loss.value, std::log(2.0), 1e-6);
}

TEST(CrossEntropy, GradientNumeric) {
  Rng rng(3);
  Matrix logits = Matrix::randn(3, 4, rng, 1.0);
  const std::vector<int> labels = {1, 0, 3};
  const LossResult loss = cross_entropy_loss(logits, labels);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.vec()[i] += epsilon;
    minus.vec()[i] -= epsilon;
    const double numeric = (cross_entropy_loss(plus, labels).value -
                            cross_entropy_loss(minus, labels).value) /
                           (2.0 * epsilon);
    EXPECT_NEAR(loss.grad.vec()[i], numeric, 1e-2);
  }
}

TEST(ArgmaxRows, PicksLargest) {
  Matrix logits(2, 3);
  logits.vec() = {0.1f, 0.9f, 0.5f, 2.0f, -1.0f, 1.0f};
  EXPECT_EQ(argmax_rows(logits), (std::vector<int>{1, 0}));
}

TEST(Accuracy, Computes) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace poetbin
