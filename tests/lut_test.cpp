#include "dt/lut.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

TEST(Lut, AddressBitJComesFromInputJ) {
  // inputs = {feature 5, feature 2}: address = x5 + 2*x2.
  BitVector table(4);
  table.set(1, true);  // only x5=1, x2=0 fires
  const Lut lut({5, 2}, table);

  BitVector example(8);
  example.set(5, true);
  EXPECT_TRUE(lut.eval(example));
  example.set(2, true);
  EXPECT_FALSE(lut.eval(example));  // address 3
  example.set(5, false);
  EXPECT_FALSE(lut.eval(example));  // address 2
}

TEST(Lut, TableSizeMustMatchArity) {
  EXPECT_EQ(Lut({1, 2, 3}, BitVector(8)).table_size(), 8u);
  EXPECT_DEATH(Lut({1, 2}, BitVector(8)), "");
}

TEST(Lut, EvalDatasetMatchesPerExampleEval) {
  const BitMatrix features = testing::random_bits(97, 16, 5);
  BitVector table(16);
  Rng rng(6);
  for (std::size_t i = 0; i < 16; ++i) table.set(i, rng.next_bool());
  const Lut lut({3, 7, 11, 15}, table);

  const BitVector dataset_eval = lut.eval_dataset(features);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(dataset_eval.get(i), lut.eval(features.row(i))) << "row " << i;
  }
}

TEST(Lut, AddressesMatchAddressOf) {
  const BitMatrix features = testing::random_bits(40, 10, 7);
  const Lut lut({0, 9, 4}, BitVector(8));
  const auto addrs = lut.addresses(features);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(addrs[i], lut.address_of(features.row(i)));
  }
}

TEST(Lut, ConstantTables) {
  const BitMatrix features = testing::random_bits(20, 4, 8);
  const Lut zero({0, 1}, BitVector(4, false));
  const Lut one({0, 1}, BitVector(4, true));
  EXPECT_EQ(zero.eval_dataset(features).popcount(), 0u);
  EXPECT_EQ(one.eval_dataset(features).popcount(), 20u);
}

TEST(Lut, IdentityAndNegationOfSingleInput) {
  const BitMatrix features = testing::random_bits(64, 2, 9);
  BitVector identity(2);
  identity.set(1, true);
  BitVector negation(2);
  negation.set(0, true);
  const Lut id_lut({1}, identity);
  const Lut not_lut({1}, negation);
  const BitVector id_out = id_lut.eval_dataset(features);
  const BitVector not_out = not_lut.eval_dataset(features);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(id_out.get(i), features.get(i, 1));
    EXPECT_EQ(not_out.get(i), !features.get(i, 1));
  }
}

TEST(Lut, Equality) {
  BitVector t(2);
  t.set(0, true);
  EXPECT_EQ(Lut({4}, t), Lut({4}, t));
  BitVector t2(2);
  EXPECT_FALSE(Lut({4}, t) == Lut({4}, t2));
  EXPECT_FALSE(Lut({4}, t) == Lut({5}, t));
}

}  // namespace
}  // namespace poetbin
