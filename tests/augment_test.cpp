#include "data/augment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace poetbin {
namespace {

TEST(Augment, ShiftMovesPixels) {
  float image[16] = {};
  image[5] = 1.0f;  // (1, 1) in a 4x4 single-channel image
  shift_image(image, 1, 4, 4, 1, 2);
  EXPECT_FLOAT_EQ(image[5], 0.0f);
  EXPECT_FLOAT_EQ(image[2 * 4 + 3], 1.0f);  // (2, 3)
}

TEST(Augment, ShiftPadsWithZeros) {
  float image[16];
  std::fill(image, image + 16, 1.0f);
  shift_image(image, 1, 4, 4, 2, 0);
  // The top two rows came from outside the frame.
  for (int c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(image[c], 0.0f);
  for (int c = 8; c < 16; ++c) EXPECT_FLOAT_EQ(image[c], 1.0f);
}

TEST(Augment, ShiftHandlesChannelsIndependently) {
  float image[32] = {};
  image[0] = 1.0f;       // channel 0 (0,0)
  image[16 + 15] = 1.0f; // channel 1 (3,3)
  shift_image(image, 2, 4, 4, 0, 1);
  EXPECT_FLOAT_EQ(image[1], 1.0f);
  EXPECT_FLOAT_EQ(image[16 + 15], 0.0f);  // shifted out? no: (3,3)->(3,4) out
}

TEST(Augment, FlipReversesRows) {
  float image[8] = {1, 2, 3, 4, 5, 6, 7, 8};  // 1ch 2x4
  flip_image_horizontal(image, 1, 2, 4);
  EXPECT_FLOAT_EQ(image[0], 4.0f);
  EXPECT_FLOAT_EQ(image[3], 1.0f);
  EXPECT_FLOAT_EQ(image[4], 8.0f);
}

TEST(Augment, FlipIsInvolution) {
  ImageDataset data = make_digits(5, 3);
  ImageDataset copy = data;
  for (std::size_t i = 0; i < data.size(); ++i) {
    flip_image_horizontal(copy.image(i), copy.channels, copy.height, copy.width);
    flip_image_horizontal(copy.image(i), copy.channels, copy.height, copy.width);
  }
  EXPECT_EQ(copy.pixels, data.pixels);
}

TEST(Augment, DatasetPreservesLabelsAndShapes) {
  const ImageDataset data = make_digits(50, 4);
  const ImageDataset augmented = augment_dataset(data, {.padding = 2});
  EXPECT_EQ(augmented.labels, data.labels);
  EXPECT_EQ(augmented.size(), data.size());
  EXPECT_EQ(augmented.image_size(), data.image_size());
}

TEST(Augment, DatasetActuallyPerturbs) {
  const ImageDataset data = make_digits(50, 5);
  const ImageDataset augmented = augment_dataset(data, {.padding = 2});
  std::size_t changed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t k = 0; k < data.image_size(); ++k) {
      if (data.image(i)[k] != augmented.image(i)[k]) {
        ++changed;
        break;
      }
    }
  }
  EXPECT_GT(changed, 35u);  // ~24/25 get a nonzero shift
}

TEST(Augment, ZeroPaddingNoFlipIsIdentity) {
  const ImageDataset data = make_digits(10, 6);
  const ImageDataset augmented =
      augment_dataset(data, {.padding = 0, .horizontal_flip = false});
  EXPECT_EQ(augmented.pixels, data.pixels);
}

TEST(Augment, DeterministicInSeed) {
  const ImageDataset data = make_digits(20, 7);
  const ImageDataset a = augment_dataset(data, {.padding = 2, .seed = 9});
  const ImageDataset b = augment_dataset(data, {.padding = 2, .seed = 9});
  const ImageDataset c = augment_dataset(data, {.padding = 2, .seed = 10});
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_NE(a.pixels, c.pixels);
}

}  // namespace
}  // namespace poetbin
