#include "hw/netlist.h"

#include <gtest/gtest.h>

#include "core/poetbin.h"
#include "hw/netlist_builder.h"
#include "test_util.h"

namespace poetbin {
namespace {

using testing::random_bits;
using testing::targets_from;

TEST(Netlist, SimulatesAndGate) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto b = netlist.add_input(1, "b");
  BitVector and_table(4);
  and_table.set(3, true);
  const auto g = netlist.add_lut({a, b}, and_table, "and");
  netlist.mark_output(g);

  for (std::size_t combo = 0; combo < 4; ++combo) {
    BitVector input(2);
    input.set(0, combo & 1);
    input.set(1, (combo >> 1) & 1);
    EXPECT_EQ(netlist.simulate_outputs(input)[0], combo == 3);
  }
}

TEST(Netlist, DepthCountsLutLevels) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  BitVector id_table(2);
  id_table.set(1, true);
  const auto l1 = netlist.add_lut({a}, id_table, "l1");
  const auto l2 = netlist.add_lut({l1}, id_table, "l2");
  const auto l3 = netlist.add_lut({l2, a}, BitVector(4, true), "l3");
  netlist.mark_output(l3);
  EXPECT_EQ(netlist.depth(), 3u);
  EXPECT_EQ(netlist.n_luts(), 3u);
  EXPECT_EQ(netlist.n_inputs(), 1u);
}

TEST(Netlist, ArityHistogram) {
  Netlist netlist;
  const auto a = netlist.add_input(0, "a");
  const auto b = netlist.add_input(1, "b");
  netlist.add_lut({a}, BitVector(2), "u1");
  netlist.add_lut({a, b}, BitVector(4), "u2");
  netlist.add_lut({b, a}, BitVector(4), "u3");
  const auto histogram = netlist.arity_histogram();
  EXPECT_EQ(histogram.at(1), 1u);
  EXPECT_EQ(histogram.at(2), 2u);
}

TEST(Netlist, FaninMustPrecede) {
  Netlist netlist;
  netlist.add_input(0, "a");
  EXPECT_DEATH(netlist.add_lut({5}, BitVector(2), "bad"), "");
}

TEST(RincNetlist, MatchesModuleBitExactly) {
  const BitMatrix features = random_bits(300, 32, 1);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount_prefix(10) >= 5;
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 2, .total_dts = 12});
  const RincNetlist netlist = build_rinc_netlist(module, 32);
  EXPECT_EQ(netlist.netlist.n_luts(), module.lut_count());
  EXPECT_EQ(netlist.netlist.depth(), module.depth_in_luts());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const BitVector row = features.row(i);
    EXPECT_EQ(netlist.eval(row), module.eval(row)) << "row " << i;
  }
}

TEST(PoetBinNetlist, MatchesModelBitExactly) {
  // Small end-to-end model; netlist predictions must equal model predictions
  // on every test row — the paper's FPGA-vs-PyTorch testbench check.
  const BinaryDataset data = testing::prototype_dataset(500, 48, 2);
  const std::size_t p = 4;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  Rng rng(3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      const bool is_class =
          data.labels[i] == static_cast<int>(j / p);
      intermediate.set(i, j, is_class != (rng.next_double() < 0.05));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
  config.n_classes = data.n_classes;
  config.output.epochs = 100;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);

  const PoetBinNetlist netlist = build_poetbin_netlist(model, 48);
  EXPECT_EQ(netlist.netlist.n_luts(), model.lut_count());
  EXPECT_EQ(netlist.class_code_bits.size(), 10u);
  EXPECT_EQ(netlist.class_code_bits[0].size(), 8u);

  const auto model_predictions = model.predict_dataset(data.features);
  const auto netlist_predictions = netlist.predict_dataset(data.features);
  EXPECT_EQ(model_predictions, netlist_predictions);
}

TEST(PoetBinNetlist, CodeBitsReconstructNeuronCodes) {
  const BinaryDataset data = testing::prototype_dataset(200, 32, 4);
  const std::size_t p = 3;
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.features.get(i, j % 32));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = 0, .total_dts = 1};
  config.n_classes = data.n_classes;
  config.output.epochs = 50;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);
  const PoetBinNetlist netlist = build_poetbin_netlist(model, 32);

  // For each example, decode each class's code bits and compare with the
  // model's combo-indexed code table.
  const BitMatrix rinc_bits = model.rinc_outputs(data.features);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto values = netlist.netlist.simulate(data.features.row(i));
    for (std::size_t c = 0; c < model.n_classes(); ++c) {
      std::size_t combo = 0;
      for (std::size_t j = 0; j < p; ++j) {
        if (rinc_bits.get(i, c * p + j)) combo |= std::size_t{1} << j;
      }
      std::uint32_t code = 0;
      for (std::size_t k = 0; k < netlist.class_code_bits[c].size(); ++k) {
        if (values[netlist.class_code_bits[c][k]]) code |= 1u << k;
      }
      EXPECT_EQ(code, model.output_neurons()[c].codes[combo]);
    }
  }
}

}  // namespace
}  // namespace poetbin
