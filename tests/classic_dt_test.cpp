#include "dt/classic_dt.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

using testing::bit_accuracy;
using testing::random_bits;
using testing::targets_from;

TEST(ClassicDt, LearnsSingleFeature) {
  const BitMatrix features = random_bits(200, 8, 1);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(3); });
  const ClassicDt tree = ClassicDt::train(features, targets, {}, {});
  EXPECT_EQ(tree.weighted_error(features, targets, {}), 0.0);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_EQ(tree.distinct_features(), 1u);
}

TEST(ClassicDt, LearnsNestedFunction) {
  const BitMatrix features = random_bits(800, 10, 2);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(0) ? x.get(1) : x.get(2);
  });
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 4});
  EXPECT_EQ(tree.weighted_error(features, targets, {}), 0.0);
  EXPECT_LE(tree.depth(), 4u);
}

TEST(ClassicDt, RespectsDepthLimit) {
  const BitMatrix features = random_bits(500, 16, 3);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount() % 2 == 0;  // parity: needs full depth
  });
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 3});
  EXPECT_LE(tree.depth(), 3u);
}

TEST(ClassicDt, EvalDatasetMatchesEval) {
  const BitMatrix features = random_bits(150, 12, 4);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(1) || (x.get(4) && x.get(8));
  });
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 5});
  const BitVector batch = tree.eval_dataset(features);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(batch.get(i), tree.eval(features.row(i)));
  }
}

TEST(ClassicDt, PureNodeStopsEarly) {
  const BitMatrix features = random_bits(100, 5, 5);
  BitVector targets(100);  // all class 0
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 5});
  EXPECT_EQ(tree.node_count(), 1u);  // a single leaf
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.weighted_error(features, targets, {}), 0.0);
}

TEST(ClassicDt, UsesMoreDistinctFeaturesThanLevelDtDepth) {
  // The contrast the paper draws: a classic depth-d tree may consult up to
  // 2^d - 1 distinct features, a level-wise tree exactly d.
  const BitMatrix features = random_bits(1500, 24, 6);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(0) ? (x.get(1) != x.get(2)) : (x.get(3) && x.get(4));
  });
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 3});
  EXPECT_GT(tree.distinct_features(), 3u);
}

TEST(ClassicDt, WeightsChangeTheTree) {
  const std::size_t n = 400;
  BitMatrix features(n, 2);
  BitVector targets(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const bool label = rng.next_bool();
    targets.set(i, label);
    if (i < n / 2) {
      features.set(i, 0, label);
      features.set(i, 1, rng.next_bool());
    } else {
      features.set(i, 1, label);
      features.set(i, 0, rng.next_bool());
    }
  }
  std::vector<double> up_first(n, 1.0);
  std::vector<double> up_second(n, 1e-6);
  for (std::size_t i = n / 2; i < n; ++i) {
    up_first[i] = 1e-6;
    up_second[i] = 1.0;
  }
  const ClassicDt tree_first =
      ClassicDt::train(features, targets, up_first, {.max_depth = 1});
  const ClassicDt tree_second =
      ClassicDt::train(features, targets, up_second, {.max_depth = 1});
  // Each tree should favour the feature matching the upweighted half; their
  // weighted errors on "their" weights must be near zero.
  EXPECT_LT(tree_first.weighted_error(features, targets, up_first), 0.05);
  EXPECT_LT(tree_second.weighted_error(features, targets, up_second), 0.05);
}

TEST(ClassicDt, NoGainSplitBecomesLeaf) {
  // Constant features: no split can help.
  BitMatrix features(50, 4);
  BitVector targets(50);
  for (std::size_t i = 0; i < 25; ++i) targets.set(i, true);
  const ClassicDt tree =
      ClassicDt::train(features, targets, {}, {.max_depth = 6});
  EXPECT_EQ(tree.node_count(), 1u);
}

}  // namespace
}  // namespace poetbin
