#include "hw/vhdl.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

// Minimal trained classifier for generator tests.
struct Fixture {
  BinaryDataset data;
  PoetBin model;
  PoetBinNetlist netlist;

  Fixture() {
    data = testing::prototype_dataset(200, 24, 11);
    const std::size_t p = 3;
    BitMatrix intermediate(data.size(), data.n_classes * p);
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        intermediate.set(i, j,
                         data.labels[i] == static_cast<int>(j / p));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 3};
    config.n_classes = data.n_classes;
    config.output.epochs = 40;
    config.output.quant_bits = 4;
    model = PoetBin::train(data.features, intermediate, data.labels, config);
    netlist = build_poetbin_netlist(model, data.n_features());
  }
};

std::size_t count_occurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    ++count;
    pos += what.size();
  }
  return count;
}

TEST(Vhdl, EntityStructure) {
  const Fixture fx;
  const std::string vhdl = generate_vhdl(fx.netlist);
  EXPECT_NE(vhdl.find("entity poetbin_classifier is"), std::string::npos);
  EXPECT_NE(vhdl.find("end entity poetbin_classifier;"), std::string::npos);
  EXPECT_NE(vhdl.find("architecture lut_network"), std::string::npos);
  EXPECT_NE(vhdl.find("x : in  std_logic_vector(23 downto 0)"),
            std::string::npos);
  // One score port per class, 4-bit each.
  for (int c = 0; c < 10; ++c) {
    EXPECT_NE(vhdl.find("score" + std::to_string(c) +
                        " : out std_logic_vector(3 downto 0)"),
              std::string::npos);
  }
}

TEST(Vhdl, OneConstantPerLut) {
  const Fixture fx;
  const std::string vhdl = generate_vhdl(fx.netlist);
  EXPECT_EQ(count_occurrences(vhdl, "constant TBL_"),
            fx.netlist.netlist.n_luts());
  EXPECT_EQ(count_occurrences(vhdl, "to_integer(unsigned(a_"),
            fx.netlist.netlist.n_luts());
}

TEST(Vhdl, TableLiteralsMatchTables) {
  const Fixture fx;
  const std::string vhdl = generate_vhdl(fx.netlist);
  // Spot-check the first LUT node's table literal (MSB-first bit string).
  const Netlist& netlist = fx.netlist.netlist;
  for (std::size_t id = 0; id < netlist.n_nodes(); ++id) {
    const NetlistNode& node = netlist.node(id);
    if (node.kind != NetlistNode::Kind::kLut) continue;
    std::string expected;
    for (std::size_t i = node.table.size(); i-- > 0;) {
      expected.push_back(node.table.get(i) ? '1' : '0');
    }
    EXPECT_NE(vhdl.find("\"" + expected + "\";"), std::string::npos)
        << "table of " << node.name;
    break;
  }
}

TEST(Vhdl, RincEntityGenerates) {
  const BitMatrix features = testing::random_bits(100, 16, 12);
  BitVector targets(100);
  for (std::size_t i = 0; i < 100; ++i) targets.set(i, features.get(i, 3));
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 3, .levels = 1, .total_dts = 3});
  const RincNetlist netlist = build_rinc_netlist(module, 16);
  const std::string vhdl = generate_rinc_vhdl(netlist, "my_rinc");
  EXPECT_NE(vhdl.find("entity my_rinc is"), std::string::npos);
  EXPECT_NE(vhdl.find("y : out std_logic"), std::string::npos);
  EXPECT_EQ(count_occurrences(vhdl, "constant TBL_"), module.lut_count());
}

TEST(Vhdl, TestbenchEmbedsVectorsAndAssertions) {
  const Fixture fx;
  VhdlOptions options;
  options.testbench_vectors = 5;
  const std::string tb = generate_testbench(fx.netlist, fx.data.features, options);
  EXPECT_NE(tb.find("entity poetbin_classifier_tb is"), std::string::npos);
  EXPECT_EQ(count_occurrences(tb, "x <= \""), 5u);
  // 10 classes x 5 vectors assertions.
  EXPECT_EQ(count_occurrences(tb, "assert score"), 50u);
  EXPECT_NE(tb.find("report \"testbench completed: 5 vectors checked\""),
            std::string::npos);
}

TEST(Vhdl, TestbenchExpectationsMatchSimulator) {
  const Fixture fx;
  VhdlOptions options;
  options.testbench_vectors = 3;
  const std::string tb = generate_testbench(fx.netlist, fx.data.features, options);
  // The expected score for vector 0 / class 0 must equal the simulated code.
  const auto values = fx.netlist.netlist.simulate(fx.data.features.row(0));
  std::string expected;
  for (std::size_t k = fx.netlist.class_code_bits[0].size(); k-- > 0;) {
    expected.push_back(values[fx.netlist.class_code_bits[0][k]] ? '1' : '0');
  }
  EXPECT_NE(tb.find("assert score0 = \"" + expected + "\""), std::string::npos);
}

}  // namespace
}  // namespace poetbin
