#include "core/packed_model.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/batch_eval.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "test_util.h"

namespace poetbin {
namespace {

// Trains a small PoET-BiN model once for all packed-format tests.
struct Fixture {
  BinaryDataset data;
  PoetBin model;

  Fixture() {
    data = testing::prototype_dataset(400, 48, 91);
    const std::size_t p = 4;
    BitMatrix intermediate(data.size(), data.n_classes * p);
    Rng rng(5);
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        const bool is_class = data.labels[i] == static_cast<int>(j / p);
        intermediate.set(i, j, is_class != rng.next_bool(0.05));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 2, .total_dts = 8};
    config.n_classes = data.n_classes;
    config.output.epochs = 60;
    model = PoetBin::train(data.features, intermediate, data.labels, config);
  }
};

const Fixture& fixture() {
  return *[] {
    static const Fixture* fx = new Fixture;
    return fx;
  }();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Writes the fixture model once; every read-side test maps this file.
const std::string& packed_fixture_path() {
  static const std::string path = [] {
    const std::string p = temp_path("poetbin_fixture.pbm");
    const IoStatus status = write_packed_model_file(fixture().model, p);
    POETBIN_CHECK_MSG(status.ok(), "fixture pack failed");
    return p;
  }();
  return path;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Test-local CRC32 (same IEEE polynomial as the format) so structural
// corruptions can be re-checksummed — otherwise every mutation would stop at
// kChecksumMismatch and never reach the structural validators.
std::uint32_t test_crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : (crc >> 1);
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

void fix_crc(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 64u);
  const std::uint32_t crc = test_crc32(bytes.data() + 64, bytes.size() - 64);
  std::memcpy(bytes.data() + 20, &crc, sizeof(crc));
}

// Reads a u64 field of section-table entry `index` (0-based, id order).
std::uint64_t section_field(const std::vector<std::uint8_t>& bytes,
                            std::size_t index, std::size_t field_offset) {
  std::uint64_t value = 0;
  std::memcpy(&value, bytes.data() + 64 + index * 24 + field_offset,
              sizeof(value));
  return value;
}

// Applies `mutate` to a copy of the packed fixture, rewrites it, and returns
// the load result.
IoResult<PoetBin> load_mutated(
    const std::string& name,
    const std::function<void(std::vector<std::uint8_t>&)>& mutate,
    PackedVerify verify = PackedVerify::kFull) {
  std::vector<std::uint8_t> bytes = read_bytes(packed_fixture_path());
  mutate(bytes);
  const std::string path = temp_path(name);
  write_bytes(path, bytes);
  IoResult<PoetBin> result = read_packed_model_file(path, verify);
  std::remove(path.c_str());
  return result;
}

TEST(PackedModel, RoundTripPreservesPredictions) {
  const Fixture& fx = fixture();
  const IoResult<PoetBin> loaded =
      read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->n_modules(), fx.model.n_modules());
  EXPECT_EQ(loaded->n_classes(), fx.model.n_classes());
  EXPECT_EQ(loaded->lut_count(), fx.model.lut_count());
  EXPECT_EQ(loaded->n_features(), fx.model.n_features());
  EXPECT_EQ(loaded->predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
  EXPECT_EQ(loaded->rinc_outputs(fx.data.features),
            fx.model.rinc_outputs(fx.data.features));
}

// The binary format stores exact float/double bit patterns, so a model that
// went text -> packed -> text must reproduce the text byte for byte.
TEST(PackedModel, TextPackedTextIsByteIdentical) {
  const Fixture& fx = fixture();
  std::stringstream original;
  save_model(fx.model, original);

  const IoResult<PoetBin> unpacked =
      read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(unpacked.ok());
  std::stringstream reprinted;
  save_model(*unpacked, reprinted);
  EXPECT_EQ(original.str(), reprinted.str());
}

// Packing the unpacked model again must reproduce the packed bytes too —
// the writer is deterministic and nothing is lost in the mapping round trip.
TEST(PackedModel, PackedRoundTripIsByteIdentical) {
  const IoResult<PoetBin> unpacked =
      read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(unpacked.ok());
  const std::string again = temp_path("poetbin_repacked.pbm");
  ASSERT_TRUE(write_packed_model_file(*unpacked, again).ok());
  EXPECT_EQ(read_bytes(packed_fixture_path()), read_bytes(again));
  std::remove(again.c_str());
}

// The acceptance bar: packed-loaded predictions are bit-identical to the
// trained model on every available backend, every eval path, and several
// thread counts.
TEST(PackedModel, BitIdenticalAcrossBackendsAndThreads) {
  const Fixture& fx = fixture();
  const IoResult<PoetBin> loaded =
      read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(loaded.ok());
  const std::vector<int> want = fx.model.predict_dataset(fx.data.features);

  testing::BackendGuard guard;
  for (const WordBackend backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(loaded->predict_dataset(fx.data.features), want)
        << word_backend_name(backend);
    for (const std::size_t threads : {1u, 2u, 5u}) {
      const BatchEngine engine(threads);
      EXPECT_EQ(loaded->predict_dataset_batched(fx.data.features, engine),
                want)
          << word_backend_name(backend) << " x" << threads;
      EXPECT_EQ(loaded->rinc_outputs_batched(fx.data.features, engine),
                fx.model.rinc_outputs(fx.data.features))
          << word_backend_name(backend) << " x" << threads;
    }
  }
}

// Every mapped splat table starts on a cache line: the section is 64-byte
// aligned in the file, tables are padded to 8-word boundaries inside it, and
// mmap returns page-aligned bases.
TEST(PackedModel, MappedSplatTablesAreCacheLineAligned) {
  const IoResult<PoetBin> loaded =
      read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(loaded.ok());
  for (const RincModule& module : loaded->modules()) {
    for (const Lut* lut : module.leaf_luts()) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lut->splat_words().data()) %
                    64,
                0u);
    }
  }
}

// Copies of a mapping-backed model share the mapping keepalive: the copy
// stays valid after the original is destroyed.
TEST(PackedModel, CopySurvivesOriginalDestruction) {
  const Fixture& fx = fixture();
  auto original = std::make_unique<PoetBin>();
  {
    IoResult<PoetBin> loaded = read_packed_model_file(packed_fixture_path());
    ASSERT_TRUE(loaded.ok());
    *original = std::move(loaded).value();
  }
  PoetBin copy = *original;
  original.reset();
  EXPECT_EQ(copy.predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
}

// Retraining a mapping-backed model rebuilds heap-owned code planes while
// the module LUTs keep reading the mapping — and stays bit-identical to
// retraining the same model loaded from text.
TEST(PackedModel, RetrainOutputLayerMatchesTextLoadedRetrain) {
  const Fixture& fx = fixture();
  IoResult<PoetBin> packed = read_packed_model_file(packed_fixture_path());
  ASSERT_TRUE(packed.ok());
  std::stringstream stream;
  save_model(fx.model, stream);
  IoResult<PoetBin> text = read_model(stream);
  ASSERT_TRUE(text.ok());

  const BitMatrix rinc_bits = fx.model.rinc_outputs(fx.data.features);
  packed->retrain_output_layer(rinc_bits, fx.data.labels);
  text->retrain_output_layer(rinc_bits, fx.data.labels);
  EXPECT_EQ(packed->predict_dataset(fx.data.features),
            text->predict_dataset(fx.data.features));
}

TEST(PackedModel, SniffsFormats) {
  const Fixture& fx = fixture();
  EXPECT_TRUE(is_packed_model_file(packed_fixture_path()));

  const std::string text_path = temp_path("poetbin_fixture.txt");
  ASSERT_TRUE(write_model_file(fx.model, text_path).ok());
  EXPECT_FALSE(is_packed_model_file(text_path));
  EXPECT_FALSE(is_packed_model_file("/nonexistent/model.pbm"));

  const IoResult<LoadedModel> packed =
      read_model_file_any(packed_fixture_path());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->format, ModelFormat::kPacked);
  const IoResult<LoadedModel> text = read_model_file_any(text_path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->format, ModelFormat::kText);
  EXPECT_EQ(packed->model.predict_dataset(fx.data.features),
            text->model.predict_dataset(fx.data.features));
  std::remove(text_path.c_str());

  EXPECT_STREQ(model_format_name(ModelFormat::kText), "text");
  EXPECT_STREQ(model_format_name(ModelFormat::kPacked), "packed");
}

TEST(PackedModel, MissingFileIsTypedError) {
  const IoResult<PoetBin> result =
      read_packed_model_file("/nonexistent/model.pbm");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kFileNotFound);
}

TEST(PackedModel, BadMagicIsVersionMismatch) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_magic.pbm", [](std::vector<std::uint8_t>& bytes) { bytes[0] = 'X'; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

TEST(PackedModel, FutureVersionIsVersionMismatch) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_version.pbm",
      [](std::vector<std::uint8_t>& bytes) { bytes[8] = 9; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

TEST(PackedModel, FlippedPayloadByteIsChecksumMismatch) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_crc.pbm", [](std::vector<std::uint8_t>& bytes) {
        bytes[bytes.size() / 2] ^= 0x40;  // no CRC fix-up
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kChecksumMismatch);
}

// The serving fast path (PackedVerify::kTrustChecksum, what Runtime::load
// runs) must load bit-identical to the full-verification depth on a good
// file.
TEST(PackedModel, TrustChecksumLoadsIdenticallyToFullVerify) {
  const Fixture& fx = fixture();
  const IoResult<PoetBin> trusting = read_packed_model_file(
      packed_fixture_path(), PackedVerify::kTrustChecksum);
  ASSERT_TRUE(trusting.ok()) << trusting.error().message;
  EXPECT_EQ(trusting->predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
  std::stringstream reprinted;
  save_model(*trusting, reprinted);
  std::stringstream original;
  save_model(fx.model, original);
  EXPECT_EQ(original.str(), reprinted.str());
}

// The documented trade of the trusting depth: a wrong checksum FIELD (the
// payload itself intact) fails kFull and sails through kTrustChecksum with
// identical predictions — the fast path never runs the CRC pass.
TEST(PackedModel, TrustChecksumSkipsTheCrcPass) {
  const auto corrupt_crc_field = [](std::vector<std::uint8_t>& bytes) {
    bytes[20] ^= 0xFF;  // stored CRC32, not covered by itself
  };
  const IoResult<PoetBin> full =
      load_mutated("crc_field_full.pbm", corrupt_crc_field);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().kind, ModelIoError::Kind::kChecksumMismatch);

  const Fixture& fx = fixture();
  const IoResult<PoetBin> trusting = load_mutated(
      "crc_field_trust.pbm", corrupt_crc_field, PackedVerify::kTrustChecksum);
  ASSERT_TRUE(trusting.ok()) << trusting.error().message;
  EXPECT_EQ(trusting->predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
}

// Trusting the checksum does not mean trusting the structure: truncation
// and header corruption still fail with the same typed errors.
TEST(PackedModel, TrustChecksumStillRejectsStructuralDamage) {
  const IoResult<PoetBin> truncated = load_mutated(
      "trust_trunc.pbm",
      [](std::vector<std::uint8_t>& bytes) { bytes.resize(bytes.size() / 2); },
      PackedVerify::kTrustChecksum);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().kind, ModelIoError::Kind::kCorruptSection);

  const IoResult<PoetBin> bad_magic = load_mutated(
      "trust_magic.pbm",
      [](std::vector<std::uint8_t>& bytes) { bytes[0] = 'X'; },
      PackedVerify::kTrustChecksum);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.error().kind, ModelIoError::Kind::kVersionMismatch);
}

// Writers publish via temp-file + rename; a push over an existing path must
// leave no temp droppings and the previous bytes must never coexist with
// the new ones (the file is either absent-then-complete or old-then-new).
TEST(PackedModel, WriteIsAtomicPublishWithNoTempLeftovers) {
  const Fixture& fx = fixture();
  const std::string path = temp_path("atomic_publish.pbm");
  ASSERT_TRUE(write_packed_model_file(fx.model, path).ok());
  ASSERT_TRUE(write_packed_model_file(fx.model, path).ok());  // overwrite
  EXPECT_EQ(read_bytes(path), read_bytes(packed_fixture_path()));
  // No "<path>.tmp.<pid>" sibling left behind.
  const std::string temp_sibling =
      path + ".tmp." + std::to_string(::getpid());
  std::ifstream leftover(temp_sibling);
  EXPECT_FALSE(leftover.good());
  std::remove(path.c_str());
}

TEST(PackedModel, TruncatedFileIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "truncated.pbm", [](std::vector<std::uint8_t>& bytes) {
        bytes.resize(bytes.size() / 2);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, HeaderSizedStubIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "stub.pbm",
      [](std::vector<std::uint8_t>& bytes) { bytes.resize(40); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, MisalignedSectionOffsetIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "misaligned.pbm", [](std::vector<std::uint8_t>& bytes) {
        std::uint64_t offset = section_field(bytes, 0, 8) + 8;
        std::memcpy(bytes.data() + 64 + 8, &offset, sizeof(offset));
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, SectionLengthMismatchIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_length.pbm", [](std::vector<std::uint8_t>& bytes) {
        std::uint64_t length = section_field(bytes, 0, 16) + 8;
        std::memcpy(bytes.data() + 64 + 16, &length, sizeof(length));
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, SectionBeyondFileIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "runaway_section.pbm", [](std::vector<std::uint8_t>& bytes) {
        const std::uint64_t offset = bytes.size() * 2;
        std::memcpy(bytes.data() + 64 + 8, &offset, sizeof(offset));
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, HeaderFileSizeMismatchIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_filesize.pbm", [](std::vector<std::uint8_t>& bytes) {
        const std::uint64_t size = bytes.size() + 64;
        std::memcpy(bytes.data() + 24, &size, sizeof(size));
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, ImpureSplatWordIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "impure_splat.pbm", [](std::vector<std::uint8_t>& bytes) {
        const std::uint64_t splat_offset = section_field(bytes, 5, 8);
        bytes[splat_offset] ^= 0x02;  // neither 0 nor ~0 afterwards
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, CodePlaneMismatchIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_plane.pbm", [](std::vector<std::uint8_t>& bytes) {
        const std::uint64_t planes_offset = section_field(bytes, 9, 8);
        for (std::size_t i = 0; i < 8; ++i) {
          bytes[planes_offset + i] = ~bytes[planes_offset + i];
        }
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

TEST(PackedModel, OutOfRangeWiringIsCorruptSection) {
  const IoResult<PoetBin> result = load_mutated(
      "bad_wiring.pbm", [](std::vector<std::uint8_t>& bytes) {
        const std::uint64_t wiring_offset = section_field(bytes, 6, 8);
        const std::uint64_t bogus = 1u << 20;
        std::memcpy(bytes.data() + wiring_offset, &bogus, sizeof(bogus));
        fix_crc(bytes);
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

// Coarse truncation sweep: every prefix must come back as a typed error —
// never an abort, never out-of-bounds reads (ASan-clean).
TEST(PackedModel, EveryTruncationPointFailsCleanly) {
  const std::vector<std::uint8_t> bytes = read_bytes(packed_fixture_path());
  const std::string path = temp_path("trunc_sweep.pbm");
  for (std::size_t cut = 0; cut < bytes.size();
       cut += 1 + bytes.size() / 61) {
    write_bytes(path,
                std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut));
    const IoResult<PoetBin> result = read_packed_model_file(path);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

// --- convolutional packed models (format version 2) -----------------------

// Trains a small ConvModel once: 2-channel RINC conv over 1x6x6 frames,
// 4-class classifier on the flattened conv outputs.
struct ConvFixture {
  BitMatrix frames;
  ConvModel model;

  ConvFixture() {
    const BinShape3 in_shape{1, 6, 6};
    frames = testing::random_bits(200, in_shape.flat(), 61);
    RincConvConfig config;
    config.out_channels = 2;
    config.kernel = 3;
    config.stride = 1;
    config.padding = 1;
    config.rinc = {.lut_inputs = 4, .levels = 1, .total_dts = 4};
    const BitMatrix targets = testing::random_bits(200, 2 * 6 * 6, 62);
    model.conv = RincConvLayer::train(frames, in_shape, targets, config);

    const BitMatrix conv_out = model.conv.eval_dataset(frames);
    std::vector<int> labels(frames.rows());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<int>(i % 4);
    }
    const std::size_t p = 3;
    BitMatrix intermediate(conv_out.rows(), 4 * p);
    for (std::size_t i = 0; i < intermediate.rows(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        intermediate.set(i, j, labels[i] == static_cast<int>(j / p));
      }
    }
    PoetBinConfig classifier_config;
    classifier_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 3};
    classifier_config.n_classes = 4;
    classifier_config.output.epochs = 10;
    model.classifier =
        PoetBin::train(conv_out, intermediate, labels, classifier_config);
  }
};

const ConvFixture& conv_fixture() {
  return *[] {
    static const ConvFixture* fx = new ConvFixture;
    return fx;
  }();
}

// Writes the conv fixture once; every conv read-side test maps this file.
const std::string& packed_conv_fixture_path() {
  static const std::string path = [] {
    const std::string p = temp_path("poetbin_conv_fixture.pbm");
    const IoStatus status =
        write_packed_conv_model_file(conv_fixture().model, p);
    POETBIN_CHECK_MSG(status.ok(), "conv fixture pack failed");
    return p;
  }();
  return path;
}

TEST(PackedConvModel, RoundTripPreservesPredictions) {
  const ConvFixture& fx = conv_fixture();
  const IoResult<LoadedModel> loaded =
      read_model_file_any(packed_conv_fixture_path());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->format, ModelFormat::kPacked);
  ASSERT_NE(loaded->conv, nullptr);
  EXPECT_EQ(loaded->conv->input_shape(), fx.model.conv.input_shape());
  EXPECT_EQ(loaded->conv->output_shape(), fx.model.conv.output_shape());
  EXPECT_EQ(loaded->conv->config().kernel, fx.model.conv.config().kernel);
  EXPECT_EQ(loaded->conv->config().stride, fx.model.conv.config().stride);
  EXPECT_EQ(loaded->conv->config().padding, fx.model.conv.config().padding);

  const ConvModel round{*loaded->conv, loaded->model};
  const std::vector<int> want = fx.model.predict_dataset(fx.frames);
  EXPECT_EQ(round.predict_dataset(fx.frames), want);
  // The fused word-parallel path over the mapped LUTs, across backends.
  testing::BackendGuard guard;
  for (const WordBackend backend : available_word_backends()) {
    set_word_backend(backend);
    for (const std::size_t threads : {1u, 2u, 5u}) {
      const BatchEngine engine(threads);
      EXPECT_EQ(round.predict_dataset_batched(fx.frames, engine), want)
          << word_backend_name(backend) << " x" << threads;
    }
  }
}

// The serving load depth (kTrustChecksum, what Runtime::load runs) must be
// bit-identical to full verification for conv files too — and must never
// have paged the conv splat section to get there.
TEST(PackedConvModel, TrustChecksumLoadsIdenticallyToFullVerify) {
  const ConvFixture& fx = conv_fixture();
  const IoResult<LoadedModel> trusting = read_model_file_any(
      packed_conv_fixture_path(), PackedVerify::kTrustChecksum);
  ASSERT_TRUE(trusting.ok()) << trusting.error().message;
  ASSERT_NE(trusting->conv, nullptr);
  const ConvModel round{*trusting->conv, trusting->model};
  EXPECT_EQ(round.predict_dataset(fx.frames),
            fx.model.predict_dataset(fx.frames));
}

// Re-packing a loaded conv model reproduces the file byte for byte: the
// writer is deterministic and the mapping round trip is lossless.
TEST(PackedConvModel, PackedRoundTripIsByteIdentical) {
  const IoResult<LoadedModel> loaded =
      read_model_file_any(packed_conv_fixture_path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->conv, nullptr);
  const std::string again = temp_path("poetbin_conv_repacked.pbm");
  ASSERT_TRUE(write_packed_conv_model_file(
                  ConvModel{*loaded->conv, loaded->model}, again)
                  .ok());
  EXPECT_EQ(read_bytes(packed_conv_fixture_path()), read_bytes(again));
  std::remove(again.c_str());
}

// Text -> packed -> text byte identity for the conv format.
TEST(PackedConvModel, TextPackedTextIsByteIdentical) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream original;
  save_conv_model(fx.model, original);
  const IoResult<LoadedModel> unpacked =
      read_model_file_any(packed_conv_fixture_path());
  ASSERT_TRUE(unpacked.ok());
  ASSERT_NE(unpacked->conv, nullptr);
  std::stringstream reprinted;
  save_conv_model(ConvModel{*unpacked->conv, unpacked->model}, reprinted);
  EXPECT_EQ(original.str(), reprinted.str());
}

// The dense entry point's contract: a packed conv file is a typed
// kIncompatibleModel, never a silently truncated model.
TEST(PackedConvModel, DenseEntryPointRejectsConvFile) {
  const IoResult<PoetBin> result =
      read_packed_model_file(packed_conv_fixture_path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kIncompatibleModel);
}

// Conv text files sniff through read_model_file_any like packed ones.
TEST(PackedConvModel, TextConvSniffsThroughReadAny) {
  const ConvFixture& fx = conv_fixture();
  const std::string text_path = temp_path("poetbin_conv_fixture.txt");
  ASSERT_TRUE(write_conv_model_file(fx.model, text_path).ok());
  EXPECT_FALSE(is_packed_model_file(text_path));
  const IoResult<LoadedModel> loaded = read_model_file_any(text_path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->format, ModelFormat::kText);
  ASSERT_NE(loaded->conv, nullptr);
  const ConvModel round{*loaded->conv, loaded->model};
  EXPECT_EQ(round.predict_dataset(fx.frames),
            fx.model.predict_dataset(fx.frames));
  std::remove(text_path.c_str());
}

// A dense file loaded through read_model_file_any carries no conv layer —
// the zero-length conv-config section reads back as "dense".
TEST(PackedConvModel, DenseFileHasNoConvLayer) {
  const IoResult<LoadedModel> loaded =
      read_model_file_any(packed_fixture_path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->conv, nullptr);
}

// Writer-side guards: inconsistent conv models are refused, not packed.
TEST(PackedConvModel, WriterRejectsInconsistentConvModels) {
  const ConvFixture& fx = conv_fixture();
  const std::string path = temp_path("conv_reject.pbm");
  // An untrained (empty) conv layer.
  ConvModel empty;
  empty.classifier = fx.model.classifier;
  const IoStatus no_conv = write_packed_conv_model_file(empty, path);
  ASSERT_FALSE(no_conv.ok());
  EXPECT_EQ(no_conv.error().kind, ModelIoError::Kind::kWriteFailed);
  // A classifier explicitly wired to feature 100 — beyond the 72 conv
  // output bits of the 2x6x6 front end.
  ConvModel mismatched;
  mismatched.conv = fx.model.conv;
  {
    PoetBinConfig config;
    config.rinc.lut_inputs = 2;
    config.n_classes = 2;
    std::vector<RincModule> modules;
    for (std::size_t m = 0; m < 4; ++m) {
      BitVector table(4);
      table.set(3, true);
      modules.push_back(
          RincModule::make_leaf(Lut({m, 100}, std::move(table))));
    }
    const QuantizerParams quantizer;
    std::vector<SparseOutputNeuron> neurons(2);
    for (std::size_t c = 0; c < 2; ++c) {
      neurons[c].input_modules = {c * 2, c * 2 + 1};
      neurons[c].weights.assign(2, 0.0f);
      neurons[c].codes.assign(4, 0);
    }
    mismatched.classifier = PoetBin::from_parts(
        config, std::move(modules), std::move(neurons), quantizer);
  }
  const IoStatus too_wide = write_packed_conv_model_file(mismatched, path);
  ASSERT_FALSE(too_wide.ok());
  EXPECT_EQ(too_wide.error().kind, ModelIoError::Kind::kWriteFailed);
}

// Every truncation prefix of a conv file fails with a typed error.
TEST(PackedConvModel, EveryTruncationPointFailsCleanly) {
  const std::vector<std::uint8_t> bytes =
      read_bytes(packed_conv_fixture_path());
  const std::string path = temp_path("conv_trunc_sweep.pbm");
  for (std::size_t cut = 0; cut < bytes.size();
       cut += 1 + bytes.size() / 61) {
    write_bytes(path,
                std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut));
    const IoResult<LoadedModel> result = read_model_file_any(path);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

// Corrupt conv geometry in an otherwise well-formed file (CRC fixed up) is
// a typed kCorruptSection, never a validate() abort.
TEST(PackedConvModel, CorruptConvGeometryIsCorruptSection) {
  const std::vector<std::uint8_t> bytes =
      read_bytes(packed_conv_fixture_path());
  // Section table entry 11 (0-based, id order) is conv-config; its payload
  // holds 8 u64 scalars starting with the input shape.
  const std::uint64_t conv_offset = section_field(bytes, 11, 8);
  ASSERT_GT(section_field(bytes, 11, 16), 0u);  // non-empty on a conv file
  const auto corrupt_scalar = [&](std::size_t index, std::uint64_t value,
                                  const std::string& name) {
    std::vector<std::uint8_t> mutated = bytes;
    std::memcpy(mutated.data() + conv_offset + index * 8, &value,
                sizeof(value));
    fix_crc(mutated);
    const std::string path = temp_path("conv_corrupt.pbm");
    write_bytes(path, mutated);
    const IoResult<LoadedModel> result = read_model_file_any(path);
    std::remove(path.c_str());
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection)
        << name;
  };
  corrupt_scalar(0, 0, "zero input channels");
  corrupt_scalar(4, 0, "zero kernel");
  corrupt_scalar(4, std::uint64_t{1} << 32, "kernel beyond the cap");
  corrupt_scalar(5, 0, "zero stride");
  corrupt_scalar(6, 99, "padding >= kernel");
}

}  // namespace
}  // namespace poetbin
