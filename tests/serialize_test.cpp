#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_util.h"

namespace poetbin {
namespace {

// Trains a small PoET-BiN model once for all round-trip tests.
struct Fixture {
  BinaryDataset data;
  PoetBin model;

  Fixture() {
    data = testing::prototype_dataset(400, 48, 77);
    const std::size_t p = 4;
    BitMatrix intermediate(data.size(), data.n_classes * p);
    Rng rng(3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        const bool is_class = data.labels[i] == static_cast<int>(j / p);
        intermediate.set(i, j, is_class != rng.next_bool(0.05));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 2, .total_dts = 8};
    config.n_classes = data.n_classes;
    config.output.epochs = 60;
    model = PoetBin::train(data.features, intermediate, data.labels, config);
  }
};

const Fixture& fixture() {
  static const Fixture fx;
  return fx;
}

TEST(Serialize, RoundTripPreservesPredictions) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const PoetBin loaded = load_model(stream);

  EXPECT_EQ(loaded.n_modules(), fx.model.n_modules());
  EXPECT_EQ(loaded.n_classes(), fx.model.n_classes());
  EXPECT_EQ(loaded.lut_count(), fx.model.lut_count());
  EXPECT_EQ(loaded.predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
}

TEST(Serialize, RoundTripPreservesRincBits) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const PoetBin loaded = load_model(stream);
  EXPECT_EQ(loaded.rinc_outputs(fx.data.features),
            fx.model.rinc_outputs(fx.data.features));
}

TEST(Serialize, SavedTextIsStable) {
  const Fixture& fx = fixture();
  std::stringstream a;
  std::stringstream b;
  save_model(fx.model, a);
  save_model(fx.model, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("poetbin-model v1"), std::string::npos);
}

TEST(Serialize, DoubleRoundTripIsIdentity) {
  const Fixture& fx = fixture();
  std::stringstream first;
  save_model(fx.model, first);
  const PoetBin once = load_model(first);
  std::stringstream second;
  save_model(once, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, FileRoundTrip) {
  const Fixture& fx = fixture();
  const std::string path = ::testing::TempDir() + "/poetbin_model.txt";
  ASSERT_TRUE(save_model_file(fx.model, path));
  PoetBin loaded;
  ASSERT_TRUE(load_model_file(loaded, path));
  EXPECT_EQ(loaded.predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
  PoetBin model;
  EXPECT_FALSE(load_model_file(model, "/nonexistent/path/model.txt"));
}

TEST(Serialize, MalformedHeaderDies) {
  std::stringstream stream("not-a-model v9\n");
  EXPECT_DEATH(load_model(stream), "");
}

TEST(Serialize, TruncatedBodyDies) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const std::string text = stream.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_DEATH(load_model(truncated), "");
}

// Round-trip across several (P, L, DTs) shapes — the format must not bake
// in any one architecture.
struct SerShape {
  std::size_t p, levels, dts;
};

class SerializeShapeSweep : public ::testing::TestWithParam<SerShape> {};

TEST_P(SerializeShapeSweep, RoundTripsEveryShape) {
  const auto [p, levels, dts] = GetParam();
  const BinaryDataset data = testing::prototype_dataset(250, 32, 40 + p);
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = levels, .total_dts = dts};
  config.n_classes = data.n_classes;
  config.output.epochs = 15;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);

  std::stringstream stream;
  save_model(model, stream);
  const PoetBin loaded = load_model(stream);
  EXPECT_EQ(loaded.predict_dataset(data.features),
            model.predict_dataset(data.features));
  EXPECT_EQ(loaded.lut_count(), model.lut_count());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SerializeShapeSweep,
    ::testing::Values(SerShape{2, 0, 1}, SerShape{3, 1, 2}, SerShape{3, 1, 3},
                      SerShape{4, 2, 7}, SerShape{5, 2, 25}),
    [](const auto& info) {
      return "P" + std::to_string(info.param.p) + "_L" +
             std::to_string(info.param.levels) + "_D" +
             std::to_string(info.param.dts);
    });

TEST(RincFromParts, RejectsMixedLevels) {
  BitVector id_table(2);
  id_table.set(1, true);
  RincModule leaf = RincModule::make_leaf(Lut({0}, id_table));
  RincModule inner = RincModule::make_internal(
      {RincModule::make_leaf(Lut({0}, id_table)),
       RincModule::make_leaf(Lut({1}, id_table))},
      MatModule({1.0, 1.0}));
  std::vector<RincModule> mixed;
  mixed.push_back(std::move(leaf));
  mixed.push_back(std::move(inner));
  EXPECT_DEATH(RincModule::make_internal(std::move(mixed), MatModule({1.0, 1.0})),
               "");
}

TEST(RincFromParts, HandBuiltModuleEvaluates) {
  // Majority of three features, built by hand: 3 identity leaves + MAT.
  BitVector id_table(2);
  id_table.set(1, true);
  std::vector<RincModule> leaves;
  for (std::size_t f = 0; f < 3; ++f) {
    leaves.push_back(RincModule::make_leaf(Lut({f}, id_table)));
  }
  const RincModule majority = RincModule::make_internal(
      std::move(leaves), MatModule({1.0, 1.0, 1.0}));

  BitVector example(3);
  EXPECT_FALSE(majority.eval(example));
  example.set(0, true);
  EXPECT_FALSE(majority.eval(example));
  example.set(2, true);
  EXPECT_TRUE(majority.eval(example));
}

}  // namespace
}  // namespace poetbin
