#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_util.h"

namespace poetbin {
namespace {

// Trains a small PoET-BiN model once for all round-trip tests.
struct Fixture {
  BinaryDataset data;
  PoetBin model;

  Fixture() {
    data = testing::prototype_dataset(400, 48, 77);
    const std::size_t p = 4;
    BitMatrix intermediate(data.size(), data.n_classes * p);
    Rng rng(3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        const bool is_class = data.labels[i] == static_cast<int>(j / p);
        intermediate.set(i, j, is_class != rng.next_bool(0.05));
      }
    }
    PoetBinConfig config;
    config.rinc = {.lut_inputs = p, .levels = 2, .total_dts = 8};
    config.n_classes = data.n_classes;
    config.output.epochs = 60;
    model = PoetBin::train(data.features, intermediate, data.labels, config);
  }
};

const Fixture& fixture() {
  static const Fixture fx;
  return fx;
}

TEST(Serialize, RoundTripPreservesPredictions) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const IoResult<PoetBin> loaded = read_model(stream);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->n_modules(), fx.model.n_modules());
  EXPECT_EQ(loaded->n_classes(), fx.model.n_classes());
  EXPECT_EQ(loaded->lut_count(), fx.model.lut_count());
  EXPECT_EQ(loaded->predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
}

TEST(Serialize, RoundTripPreservesRincBits) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const IoResult<PoetBin> loaded = read_model(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rinc_outputs(fx.data.features),
            fx.model.rinc_outputs(fx.data.features));
}

TEST(Serialize, SavedTextIsStable) {
  const Fixture& fx = fixture();
  std::stringstream a;
  std::stringstream b;
  save_model(fx.model, a);
  save_model(fx.model, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("poetbin-model v1"), std::string::npos);
}

TEST(Serialize, DoubleRoundTripIsIdentity) {
  const Fixture& fx = fixture();
  std::stringstream first;
  save_model(fx.model, first);
  const IoResult<PoetBin> once = read_model(first);
  ASSERT_TRUE(once.ok());
  std::stringstream second;
  save_model(*once, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, FileRoundTrip) {
  const Fixture& fx = fixture();
  const std::string path = ::testing::TempDir() + "/poetbin_model.txt";
  ASSERT_TRUE(write_model_file(fx.model, path).ok());
  const IoResult<PoetBin> loaded = read_model_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->predict_dataset(fx.data.features),
            fx.model.predict_dataset(fx.data.features));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsTypedError) {
  const IoResult<PoetBin> result =
      read_model_file("/nonexistent/path/model.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kFileNotFound);
  EXPECT_NE(result.error().message.find("/nonexistent/path/model.txt"),
            std::string::npos);
}

TEST(Serialize, UnwritablePathIsTypedError) {
  const Fixture& fx = fixture();
  const IoStatus status =
      write_model_file(fx.model, "/nonexistent/dir/model.txt");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().kind, ModelIoError::Kind::kWriteFailed);
}

TEST(Serialize, MalformedHeaderIsVersionMismatch) {
  std::stringstream stream("not-a-model v9\n");
  const IoResult<PoetBin> result = read_model(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

TEST(Serialize, FutureVersionIsVersionMismatch) {
  std::stringstream stream("poetbin-model v2\n");
  const IoResult<PoetBin> result = read_model(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

TEST(Serialize, TruncatedBodyIsCorruptSection) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const std::string text = stream.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  const IoResult<PoetBin> result = read_model(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
}

// Malformed bytes in *any* prefix must come back as a typed error, never an
// abort or a constructed-but-broken model. This sweeps every prefix length
// of a real saved model (a poor man's fuzzer with a deterministic corpus).
TEST(Serialize, EveryTruncationPointFailsCleanly) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const std::string text = stream.str();
  // Stop before the final token: a cut inside it just shortens one number,
  // which can legitimately still parse; every earlier cut drops >= 1 token.
  const std::size_t limit = text.rfind(' ');
  ASSERT_NE(limit, std::string::npos);
  for (std::size_t cut = 0; cut < limit; cut += 1 + text.size() / 97) {
    std::stringstream truncated(text.substr(0, cut));
    const IoResult<PoetBin> result = read_model(truncated);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

// Field-level corruption: out-of-range structural values are rejected with
// kCorruptSection instead of feeding POETBIN_CHECK aborts downstream.
TEST(Serialize, OutOfRangeFieldsAreCorruptSection) {
  const Fixture& fx = fixture();
  std::stringstream stream;
  save_model(fx.model, stream);
  const std::string text = stream.str();
  // Swaps the whitespace-delimited token right after the first `anchor` for
  // `to` (shape-agnostic: no assumption about the trained values).
  const auto corrupt_token_after = [&](const std::string& anchor,
                                       const std::string& to) {
    const std::size_t at = text.find(anchor);
    ASSERT_NE(at, std::string::npos) << anchor;
    const std::size_t tok = at + anchor.size();
    std::size_t end = text.find_first_of(" \n", tok);
    if (end == std::string::npos) end = text.size();
    std::stringstream in(text.substr(0, tok) + to + text.substr(end));
    const IoResult<PoetBin> result = read_model(in);
    ASSERT_FALSE(result.ok()) << anchor << " -> " << to;
    EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
  };
  corrupt_token_after("config ", "99");  // P beyond the 16-input cap
  corrupt_token_after("leaf ", "0");     // LUT with no inputs
  corrupt_token_after("module ", "1");   // first module header out of order
}

// Round-trip across several (P, L, DTs) shapes — the format must not bake
// in any one architecture.
struct SerShape {
  std::size_t p, levels, dts;
};

class SerializeShapeSweep : public ::testing::TestWithParam<SerShape> {};

TEST_P(SerializeShapeSweep, RoundTripsEveryShape) {
  const auto [p, levels, dts] = GetParam();
  const BinaryDataset data = testing::prototype_dataset(250, 32, 40 + p);
  BitMatrix intermediate(data.size(), data.n_classes * p);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, data.labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig config;
  config.rinc = {.lut_inputs = p, .levels = levels, .total_dts = dts};
  config.n_classes = data.n_classes;
  config.output.epochs = 15;
  const PoetBin model =
      PoetBin::train(data.features, intermediate, data.labels, config);

  std::stringstream stream;
  save_model(model, stream);
  const IoResult<PoetBin> loaded = read_model(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->predict_dataset(data.features),
            model.predict_dataset(data.features));
  EXPECT_EQ(loaded->lut_count(), model.lut_count());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SerializeShapeSweep,
    ::testing::Values(SerShape{2, 0, 1}, SerShape{3, 1, 2}, SerShape{3, 1, 3},
                      SerShape{4, 2, 7}, SerShape{5, 2, 25}),
    [](const auto& info) {
      return "P" + std::to_string(info.param.p) + "_L" +
             std::to_string(info.param.levels) + "_D" +
             std::to_string(info.param.dts);
    });

// --- convolutional models: conv front end + embedded dense classifier -----

// Trains a small ConvModel once: a 2-channel RINC conv over 1x6x6 frames
// whose flattened output feeds a 4-class classifier.
struct ConvFixture {
  BitMatrix frames;
  ConvModel model;

  ConvFixture() {
    const BinShape3 in_shape{1, 6, 6};
    frames = testing::random_bits(200, in_shape.flat(), 55);
    RincConvConfig config;
    config.out_channels = 2;
    config.kernel = 3;
    config.stride = 1;
    config.padding = 1;
    config.rinc = {.lut_inputs = 4, .levels = 1, .total_dts = 4};
    const BitMatrix targets = testing::random_bits(200, 2 * 6 * 6, 56);
    model.conv = RincConvLayer::train(frames, in_shape, targets, config);

    const BitMatrix conv_out = model.conv.eval_dataset(frames);
    std::vector<int> labels(frames.rows());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<int>(i % 4);
    }
    const std::size_t p = 3;
    BitMatrix intermediate(conv_out.rows(), 4 * p);
    for (std::size_t i = 0; i < intermediate.rows(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        intermediate.set(i, j, labels[i] == static_cast<int>(j / p));
      }
    }
    PoetBinConfig classifier_config;
    classifier_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 3};
    classifier_config.n_classes = 4;
    classifier_config.output.epochs = 10;
    model.classifier =
        PoetBin::train(conv_out, intermediate, labels, classifier_config);
  }
};

const ConvFixture& conv_fixture() {
  static const ConvFixture fx;
  return fx;
}

TEST(ConvSerialize, RoundTripPreservesPredictions) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream stream;
  save_conv_model(fx.model, stream);
  EXPECT_NE(stream.str().find("poetbin-conv-model v1"), std::string::npos);
  const IoResult<ConvModel> loaded = read_conv_model(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->conv.input_shape(), fx.model.conv.input_shape());
  EXPECT_EQ(loaded->conv.output_shape(), fx.model.conv.output_shape());
  EXPECT_EQ(loaded->n_features(), fx.model.n_features());
  EXPECT_EQ(loaded->conv.eval_dataset(fx.frames),
            fx.model.conv.eval_dataset(fx.frames));
  EXPECT_EQ(loaded->predict_dataset(fx.frames),
            fx.model.predict_dataset(fx.frames));
}

TEST(ConvSerialize, DoubleRoundTripIsIdentity) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream first;
  save_conv_model(fx.model, first);
  const IoResult<ConvModel> once = read_conv_model(first);
  ASSERT_TRUE(once.ok());
  std::stringstream second;
  save_conv_model(*once, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ConvSerialize, FileRoundTrip) {
  const ConvFixture& fx = conv_fixture();
  const std::string path = ::testing::TempDir() + "/poetbin_conv_model.txt";
  ASSERT_TRUE(write_conv_model_file(fx.model, path).ok());
  const IoResult<ConvModel> loaded = read_conv_model_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->predict_dataset(fx.frames),
            fx.model.predict_dataset(fx.frames));
  std::remove(path.c_str());
}

TEST(ConvSerialize, MissingFileIsTypedError) {
  const IoResult<ConvModel> result =
      read_conv_model_file("/nonexistent/path/conv_model.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kFileNotFound);
}

TEST(ConvSerialize, MalformedHeaderIsVersionMismatch) {
  std::stringstream stream("poetbin-conv-model v9\n");
  const IoResult<ConvModel> result = read_conv_model(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

// Out-of-range conv geometry surfaces as a typed kCorruptSection, never a
// validate() abort (the loader replicates every from_parts contract).
TEST(ConvSerialize, OutOfRangeGeometryIsCorruptSection) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream stream;
  save_conv_model(fx.model, stream);
  const std::string text = stream.str();
  // The conv record is "conv <in_c> <in_h> <in_w> <out_c> <k> <s> <p>";
  // swap single tokens for structurally impossible values.
  const auto corrupt_conv_token = [&](std::size_t token_index,
                                      const std::string& to) {
    const std::size_t at = text.find("conv ");
    ASSERT_NE(at, std::string::npos);
    std::size_t tok = at + 5;
    for (std::size_t skip = 0; skip < token_index; ++skip) {
      tok = text.find(' ', tok) + 1;
    }
    std::size_t end = text.find_first_of(" \n", tok);
    std::stringstream in(text.substr(0, tok) + to + text.substr(end));
    const IoResult<ConvModel> result = read_conv_model(in);
    ASSERT_FALSE(result.ok()) << "token " << token_index << " -> " << to;
    EXPECT_EQ(result.error().kind, ModelIoError::Kind::kCorruptSection);
  };
  corrupt_conv_token(0, "0");       // zero input channels
  corrupt_conv_token(4, "0");       // zero kernel
  corrupt_conv_token(4, "999999");  // kernel beyond the dimension cap
  corrupt_conv_token(5, "0");       // zero stride
  corrupt_conv_token(6, "7");       // padding >= kernel
}

TEST(ConvSerialize, EveryTruncationPointFailsCleanly) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream stream;
  save_conv_model(fx.model, stream);
  const std::string text = stream.str();
  const std::size_t limit = text.rfind(' ');
  ASSERT_NE(limit, std::string::npos);
  for (std::size_t cut = 0; cut < limit; cut += 1 + text.size() / 97) {
    std::stringstream truncated(text.substr(0, cut));
    const IoResult<ConvModel> result = read_conv_model(truncated);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

// The dense parser must not quietly accept a conv file (and vice versa).
TEST(ConvSerialize, DenseParserRejectsConvHeader) {
  const ConvFixture& fx = conv_fixture();
  std::stringstream stream;
  save_conv_model(fx.model, stream);
  const IoResult<PoetBin> result = read_model(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ModelIoError::Kind::kVersionMismatch);
}

TEST(RincFromParts, RejectsMixedLevels) {
  BitVector id_table(2);
  id_table.set(1, true);
  RincModule leaf = RincModule::make_leaf(Lut({0}, id_table));
  RincModule inner = RincModule::make_internal(
      {RincModule::make_leaf(Lut({0}, id_table)),
       RincModule::make_leaf(Lut({1}, id_table))},
      MatModule({1.0, 1.0}));
  std::vector<RincModule> mixed;
  mixed.push_back(std::move(leaf));
  mixed.push_back(std::move(inner));
  EXPECT_DEATH(RincModule::make_internal(std::move(mixed), MatModule({1.0, 1.0})),
               "");
}

TEST(RincFromParts, HandBuiltModuleEvaluates) {
  // Majority of three features, built by hand: 3 identity leaves + MAT.
  BitVector id_table(2);
  id_table.set(1, true);
  std::vector<RincModule> leaves;
  for (std::size_t f = 0; f < 3; ++f) {
    leaves.push_back(RincModule::make_leaf(Lut({f}, id_table)));
  }
  const RincModule majority = RincModule::make_internal(
      std::move(leaves), MatModule({1.0, 1.0, 1.0}));

  BitVector example(3);
  EXPECT_FALSE(majority.eval(example));
  example.set(0, true);
  EXPECT_FALSE(majority.eval(example));
  example.set(2, true);
  EXPECT_TRUE(majority.eval(example));
}

}  // namespace
}  // namespace poetbin
