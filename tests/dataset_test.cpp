#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace poetbin {
namespace {

TEST(Dataset, SplitSizesAndContent) {
  const ImageDataset data = make_digits(100, 4);
  const auto [first, second] = split_dataset(data, 30);
  EXPECT_EQ(first.size(), 30u);
  EXPECT_EQ(second.size(), 70u);
  EXPECT_EQ(first.image_size(), data.image_size());
  // The split preserves order.
  EXPECT_EQ(first.labels[0], data.labels[0]);
  EXPECT_EQ(second.labels[0], data.labels[30]);
  for (std::size_t k = 0; k < data.image_size(); ++k) {
    EXPECT_EQ(second.image(0)[k], data.image(30)[k]);
  }
}

TEST(Dataset, ShuffleKeepsImageLabelPairsTogether) {
  ImageDataset data = make_digits(200, 8);
  // Tag each image's first pixel with its label so pairing is checkable.
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.image(i)[0] = static_cast<float>(data.labels[i]) / 100.0f;
  }
  Rng rng(3);
  shuffle_dataset(data, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_FLOAT_EQ(data.image(i)[0],
                    static_cast<float>(data.labels[i]) / 100.0f);
  }
}

TEST(Dataset, ShufflePermutes) {
  ImageDataset data = make_digits(300, 9);
  const auto before = data.labels;
  Rng rng(4);
  shuffle_dataset(data, rng);
  EXPECT_NE(data.labels, before);
  // Same multiset.
  auto sorted_before = before;
  auto sorted_after = data.labels;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());
  EXPECT_EQ(sorted_before, sorted_after);
}

TEST(Dataset, ClassHistogram) {
  const std::vector<int> labels = {0, 1, 1, 2, 2, 2};
  const auto histogram = class_histogram(labels, 4);
  EXPECT_EQ(histogram, (std::vector<std::size_t>{1, 2, 3, 0}));
}

TEST(BinaryDataset, SelectSubsets) {
  BinaryDataset data;
  data.features = BitMatrix(4, 2);
  data.features.set(2, 1, true);
  data.labels = {0, 1, 2, 3};
  data.n_classes = 4;
  const BinaryDataset sub = data.select({2, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels, (std::vector<int>{2, 0}));
  EXPECT_TRUE(sub.features.get(0, 1));
  EXPECT_FALSE(sub.features.get(1, 1));
}

}  // namespace
}  // namespace poetbin
