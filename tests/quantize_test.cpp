#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace poetbin {
namespace {

TEST(Quantize, FitCoversRange) {
  Matrix values(1, 4);
  values.vec() = {-2.0f, 0.0f, 1.0f, 3.0f};
  const QuantizerParams params = fit_quantizer(values, 8);
  EXPECT_FLOAT_EQ(params.min_value, -2.0f);
  EXPECT_FLOAT_EQ(params.max_value, 3.0f);
  EXPECT_EQ(params.levels(), 256u);
}

TEST(Quantize, DegenerateRangeIsWidened) {
  Matrix values(1, 3, 1.5f);
  const QuantizerParams params = fit_quantizer(values, 4);
  EXPECT_GT(params.max_value, params.min_value);
}

TEST(Quantize, EndpointsExact) {
  Matrix values(1, 2);
  values.vec() = {-1.0f, 1.0f};
  const QuantizerParams params = fit_quantizer(values, 8);
  EXPECT_EQ(quantize_value(-1.0f, params), 0u);
  EXPECT_EQ(quantize_value(1.0f, params), 255u);
  EXPECT_FLOAT_EQ(quantize_dequantize(-1.0f, params), -1.0f);
  EXPECT_FLOAT_EQ(quantize_dequantize(1.0f, params), 1.0f);
}

TEST(Quantize, ClampsOutOfRange) {
  QuantizerParams params{8, 0.0f, 1.0f};
  EXPECT_EQ(quantize_value(-5.0f, params), 0u);
  EXPECT_EQ(quantize_value(5.0f, params), 255u);
}

TEST(Quantize, MonotoneInValue) {
  QuantizerParams params{6, -1.0f, 1.0f};
  std::uint32_t previous = 0;
  for (float v = -1.0f; v <= 1.0f; v += 0.01f) {
    const std::uint32_t code = quantize_value(v, params);
    EXPECT_GE(code, previous);
    previous = code;
  }
}

class QuantizeBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBitsTest, RoundTripErrorBoundedByHalfStep) {
  const int bits = GetParam();
  Rng rng(bits);
  Matrix values(1, 500);
  for (auto& v : values.vec()) v = static_cast<float>(rng.uniform(-3.0, 3.0));
  const QuantizerParams params = fit_quantizer(values, bits);
  const float half_step = params.step() / 2.0f;
  for (const float v : values.vec()) {
    EXPECT_LE(std::fabs(quantize_dequantize(v, params) - v),
              half_step + 1e-6f);
  }
}

TEST_P(QuantizeBitsTest, MoreBitsNeverWorse) {
  const int bits = GetParam();
  if (bits >= 16) return;
  Rng rng(100 + bits);
  Matrix values(1, 200);
  for (auto& v : values.vec()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantizerParams coarse = fit_quantizer(values, bits);
  const QuantizerParams fine = fit_quantizer(values, bits + 1);
  double coarse_err = 0.0;
  double fine_err = 0.0;
  for (const float v : values.vec()) {
    coarse_err += std::fabs(quantize_dequantize(v, coarse) - v);
    fine_err += std::fabs(quantize_dequantize(v, fine) - v);
  }
  EXPECT_LE(fine_err, coarse_err + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeBitsTest, ::testing::Values(1, 2, 4, 8, 16));

TEST(Quantize, MatrixApplies) {
  Matrix values(1, 3);
  values.vec() = {0.0f, 0.4f, 1.0f};
  QuantizerParams params{1, 0.0f, 1.0f};  // 2 levels: 0 and 1
  const Matrix q = quantize_matrix(values, params);
  EXPECT_FLOAT_EQ(q.vec()[0], 0.0f);
  EXPECT_FLOAT_EQ(q.vec()[1], 0.0f);
  EXPECT_FLOAT_EQ(q.vec()[2], 1.0f);
}

}  // namespace
}  // namespace poetbin
