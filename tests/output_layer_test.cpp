// Word-parallel output-layer retraining vs the scalar oracle: bit-identical
// trained neurons (weights, biases, quantized codes) on ragged dataset
// sizes, degenerate configs (zero epochs, one class), every available SIMD
// backend and any thread count — plus the input-validation regressions
// (label range, RINC bank width).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "dt/lut.h"
#include "test_util.h"
#include "util/word_backend.h"

namespace poetbin {
namespace {

using testing::BackendGuard;
using testing::random_bits;

// A model shell whose RINC bank is irrelevant: retrain_output_layer never
// touches the modules, so trivial 1-input leaf LUTs satisfy from_parts and
// the output layer can be fitted directly on arbitrary packed bits. This
// keeps the ragged sweep fast (no distillation).
PoetBin make_shell(std::size_t n_classes, std::size_t p,
                   const OutputLayerConfig& ocfg) {
  PoetBinConfig config;
  config.n_classes = n_classes;
  config.rinc.lut_inputs = p;
  config.output = ocfg;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_classes * p; ++m) {
    modules.push_back(RincModule::make_leaf(Lut({0}, BitVector(2))));
  }
  std::vector<SparseOutputNeuron> neurons(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    for (std::size_t j = 0; j < p; ++j) neurons[c].input_modules[j] = c * p + j;
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.assign(std::size_t{1} << p, 0u);
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             QuantizerParams{});
}

std::vector<int> random_labels(std::size_t n, std::size_t n_classes,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels(n);
  for (auto& label : labels) {
    label = static_cast<int>(rng.next_index(n_classes));
  }
  return labels;
}

void expect_same_output_layer(const PoetBin& a, const PoetBin& b,
                              std::size_t n) {
  ASSERT_EQ(a.output_neurons().size(), b.output_neurons().size()) << "n=" << n;
  for (std::size_t c = 0; c < a.output_neurons().size(); ++c) {
    const SparseOutputNeuron& na = a.output_neurons()[c];
    const SparseOutputNeuron& nb = b.output_neurons()[c];
    EXPECT_EQ(na.input_modules, nb.input_modules) << "n=" << n << " c=" << c;
    EXPECT_EQ(na.weights, nb.weights) << "n=" << n << " c=" << c;
    EXPECT_EQ(na.bias, nb.bias) << "n=" << n << " c=" << c;
    EXPECT_EQ(na.codes, nb.codes) << "n=" << n << " c=" << c;
  }
  EXPECT_EQ(a.quantizer().bits, b.quantizer().bits) << "n=" << n;
  EXPECT_EQ(a.quantizer().min_value, b.quantizer().min_value) << "n=" << n;
  EXPECT_EQ(a.quantizer().max_value, b.quantizer().max_value) << "n=" << n;
}

// Retrains two identical shells, scalar vs word-parallel, on the same bank.
void run_compare(std::size_t n, std::size_t n_classes, std::size_t p,
                 std::size_t epochs, const BatchEngine* engine = nullptr) {
  const BitMatrix bank = random_bits(n, n_classes * p, 1000 + n);
  const std::vector<int> labels = random_labels(n, n_classes, 2000 + n);
  OutputLayerConfig scalar_cfg;
  scalar_cfg.epochs = epochs;
  scalar_cfg.word_parallel = false;
  OutputLayerConfig word_cfg = scalar_cfg;
  word_cfg.word_parallel = true;

  PoetBin scalar = make_shell(n_classes, p, scalar_cfg);
  scalar.retrain_output_layer(bank, labels);
  PoetBin word = make_shell(n_classes, p, word_cfg);
  word.retrain_output_layer(bank, labels, engine);
  expect_same_output_layer(scalar, word, n);
}

class OutputLayerRaggedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OutputLayerRaggedTest, WordParallelRetrainBitIdentical) {
  run_compare(GetParam(), 5, 4, 60);
}

TEST_P(OutputLayerRaggedTest, ThreadedRetrainBitIdentical) {
  const BatchEngine engine(4);
  run_compare(GetParam(), 5, 4, 40, &engine);
}

INSTANTIATE_TEST_SUITE_P(RaggedSizes, OutputLayerRaggedTest,
                         ::testing::Values(1, 63, 64, 65, 1000));

TEST(OutputLayerRetrain, ZeroEpochsLeavesSeededInitIdentical) {
  run_compare(130, 4, 3, 0);
}

TEST(OutputLayerRetrain, SingleClassModel) { run_compare(200, 1, 3, 50); }

TEST(OutputLayerRetrain, SingleExample) { run_compare(1, 3, 2, 30); }

TEST(OutputLayerRetrain, BitIdenticalOnEveryBackend) {
  const std::size_t n = 500;
  const BitMatrix bank = random_bits(n, 5 * 4, 77);
  const std::vector<int> labels = random_labels(n, 5, 78);
  OutputLayerConfig scalar_cfg;
  scalar_cfg.epochs = 50;
  scalar_cfg.word_parallel = false;
  PoetBin scalar = make_shell(5, 4, scalar_cfg);
  scalar.retrain_output_layer(bank, labels);

  OutputLayerConfig word_cfg = scalar_cfg;
  word_cfg.word_parallel = true;
  BackendGuard guard;
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    PoetBin word = make_shell(5, 4, word_cfg);
    word.retrain_output_layer(bank, labels);
    SCOPED_TRACE(word_backend_name(backend));
    expect_same_output_layer(scalar, word, n);
  }
}

TEST(OutputLayerRetrain, ThreadCountDoesNotChangeWeights) {
  const std::size_t n = 700;
  const BitMatrix bank = random_bits(n, 6 * 4, 91);
  const std::vector<int> labels = random_labels(n, 6, 92);
  OutputLayerConfig cfg;
  cfg.epochs = 40;

  PoetBin serial = make_shell(6, 4, cfg);
  serial.retrain_output_layer(bank, labels);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const BatchEngine engine(threads);
    PoetBin threaded = make_shell(6, 4, cfg);
    threaded.retrain_output_layer(bank, labels, &engine);
    expect_same_output_layer(serial, threaded, n);
  }
}

// End-to-end: PoetBin::train with the flag toggled distils identical RINC
// banks (distillation ignores the output config), so the full models must
// match neuron for neuron and prediction for prediction.
TEST(OutputLayerRetrain, EndToEndTrainMatchesScalarPath) {
  const std::size_t n = 400;
  const auto data = testing::prototype_dataset(n, 48, 5);
  BitMatrix intermediate(n, 4 * 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      const bool is_class = data.labels[i] % 4 == static_cast<int>(c);
      for (std::size_t j = 0; j < 3; ++j) {
        intermediate.set(i, c * 3 + j,
                         is_class != data.features.get(i, (c * 3 + j) % 48));
      }
    }
  }
  std::vector<int> labels = data.labels;
  for (auto& label : labels) label %= 4;

  PoetBinConfig config;
  config.n_classes = 4;
  config.rinc.lut_inputs = 3;
  config.rinc.levels = 1;
  config.rinc.total_dts = 3;
  config.output.epochs = 60;
  config.output.word_parallel = false;
  const PoetBin scalar =
      PoetBin::train(data.features, intermediate, labels, config);
  config.output.word_parallel = true;
  const PoetBin word =
      PoetBin::train(data.features, intermediate, labels, config);
  expect_same_output_layer(scalar, word, n);
  EXPECT_EQ(scalar.predict_dataset(data.features),
            word.predict_dataset(data.features));
}

// The word path gathers through lut_reduce planes whose tail bits are
// garbage; dirty column tails must change nothing (they are masked in both
// the key packing and the gather).
TEST(OutputLayerRetrain, ToleratesDirtyColumnTailWords) {
  const std::size_t n = 70;
  const BitMatrix clean = random_bits(n, 3 * 4, 55);
  BitMatrix dirty = clean;
  for (std::size_t c = 0; c < dirty.cols(); ++c) {
    dirty.column(c).words()[dirty.word_count() - 1] |= ~0ULL << (n % 64);
  }
  const std::vector<int> labels = random_labels(n, 3, 56);
  OutputLayerConfig cfg;
  cfg.epochs = 30;
  cfg.word_parallel = false;
  PoetBin scalar = make_shell(3, 4, cfg);
  scalar.retrain_output_layer(clean, labels);
  cfg.word_parallel = true;
  PoetBin word = make_shell(3, 4, cfg);
  word.retrain_output_layer(dirty, labels);
  expect_same_output_layer(scalar, word, n);
}

// --- validation regressions ------------------------------------------------

TEST(OutputLayerValidation, RejectsOutOfRangeLabels) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const BitMatrix bank = random_bits(50, 3 * 2, 60);
  OutputLayerConfig cfg;
  cfg.epochs = 1;
  for (const int bad : {-1, 3, 100}) {
    std::vector<int> labels = random_labels(50, 3, 61);
    labels[17] = bad;
    PoetBin model = make_shell(3, 2, cfg);
    EXPECT_DEATH(model.retrain_output_layer(bank, labels),
                 "label out of range")
        << "label " << bad;
  }
}

TEST(OutputLayerValidation, TrainRejectsOutOfRangeLabelsBeforeDistilling) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto data = testing::prototype_dataset(60, 24, 62);
  BitMatrix intermediate(60, 3 * 2);
  PoetBinConfig config;
  config.n_classes = 3;
  config.rinc.lut_inputs = 2;
  std::vector<int> labels(60, 0);
  labels[5] = 3;  // == n_classes
  EXPECT_DEATH(PoetBin::train(data.features, intermediate, labels, config),
               "label out of range");
}

TEST(OutputLayerValidation, RejectsNarrowRincBank) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const BitMatrix narrow = random_bits(40, 3 * 2 - 1, 63);
  const std::vector<int> labels = random_labels(40, 3, 64);
  OutputLayerConfig cfg;
  cfg.epochs = 1;
  PoetBin model = make_shell(3, 2, cfg);
  EXPECT_DEATH(model.retrain_output_layer(narrow, labels),
               "narrower than nc x P");
}

TEST(OutputLayerValidation, RejectsLabelCountMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const BitMatrix bank = random_bits(40, 3 * 2, 65);
  const std::vector<int> labels = random_labels(39, 3, 66);
  OutputLayerConfig cfg;
  cfg.epochs = 1;
  PoetBin model = make_shell(3, 2, cfg);
  EXPECT_DEATH(model.retrain_output_layer(bank, labels),
               "one class label per RINC output row");
}

}  // namespace
}  // namespace poetbin
