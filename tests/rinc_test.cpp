#include "core/rinc.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace poetbin {
namespace {

using testing::bit_accuracy;
using testing::random_bits;
using testing::targets_from;

TEST(Rinc, Level0IsASingleLut) {
  const BitMatrix features = random_bits(300, 10, 1);
  const BitVector targets =
      targets_from(features, [](const BitVector& x) { return x.get(4); });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 0, .total_dts = 1});
  EXPECT_TRUE(module.is_leaf());
  EXPECT_EQ(module.level(), 0u);
  EXPECT_EQ(module.lut_count(), 1u);
  EXPECT_EQ(module.depth_in_luts(), 1u);
  EXPECT_EQ(module.train_error(), 0.0);
}

TEST(Rinc, FullRincOneStructure) {
  const BitMatrix features = random_bits(400, 30, 2);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount_prefix(9) >= 5;
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 4, .levels = 1, .total_dts = 4});
  EXPECT_FALSE(module.is_leaf());
  EXPECT_EQ(module.level(), 1u);
  EXPECT_EQ(module.children().size(), 4u);
  EXPECT_EQ(module.leaf_dt_count(), 4u);
  EXPECT_EQ(module.lut_count(), 5u);  // 4 DTs + 1 MAT
  EXPECT_EQ(module.depth_in_luts(), 2u);
  EXPECT_EQ(module.mat().arity(), 4u);
}

TEST(Rinc, FullTreeLutCountMatchesClosedForm) {
  // (P^(L+1)-1)/(P-1), the formula of SS2.1.3.
  EXPECT_EQ(full_rinc_lut_count(6, 2), 43u);
  EXPECT_EQ(full_rinc_lut_count(8, 2), 73u);
  EXPECT_EQ(full_rinc_lut_count(6, 1), 7u);
  EXPECT_EQ(full_rinc_lut_count(2, 3), 15u);

  const BitMatrix features = random_bits(300, 40, 3);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount() % 2 == 0;
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 3, .levels = 2, .total_dts = 9});
  EXPECT_EQ(module.lut_count(), full_rinc_lut_count(3, 2));
  EXPECT_EQ(module.depth_in_luts(), 3u);
}

TEST(Rinc, PartialBudgetGroupsLikeThePaper) {
  // MNIST config: 32 DTs at P=8 -> 4 subgroups of 8, 37 LUTs per module.
  const BitMatrix features = random_bits(500, 64, 4);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount_prefix(16) >= 8;
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 8, .levels = 2, .total_dts = 32});
  EXPECT_EQ(module.leaf_dt_count(), 32u);
  EXPECT_EQ(module.children().size(), 4u);  // ceil(32/8)
  for (const auto& child : module.children()) {
    EXPECT_EQ(child.children().size(), 8u);
  }
  EXPECT_EQ(module.lut_count(), 37u);  // 32 + 4 + 1, as in SS4.3
}

TEST(Rinc, SvhnConfigGives43LutsPerModule) {
  const BitMatrix features = random_bits(400, 64, 5);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(0) != x.get(10);
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 6, .levels = 2, .total_dts = 36});
  EXPECT_EQ(module.lut_count(), 43u);  // 36 + 6 + 1, the paper's hand count
}

TEST(Rinc, EvalDatasetMatchesPerExampleEval) {
  const BitMatrix features = random_bits(200, 24, 6);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return (x.get(0) && x.get(5)) || x.get(9);
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 3, .levels = 2, .total_dts = 9});
  const BitVector batch = module.eval_dataset(features);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    EXPECT_EQ(batch.get(i), module.eval(features.row(i))) << "row " << i;
  }
}

TEST(Rinc, HigherLevelsImproveHardFunctions) {
  // A function of 12 features cannot fit a P=4 LUT; RINC-1 sees 16 inputs,
  // RINC-2 sees 64 — training error must improve monotonically (weakly).
  const BitMatrix features = random_bits(1500, 24, 7);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount_prefix(12) >= 6;
  });

  double errors[3];
  for (std::size_t level = 0; level <= 2; ++level) {
    const RincModule module = RincModule::train(
        features, targets, {},
        {.lut_inputs = 4, .levels = level, .total_dts = 0 /* full */});
    const BitVector predictions = module.eval_dataset(features);
    errors[level] = 1.0 - bit_accuracy(predictions, targets);
  }
  EXPECT_LT(errors[1], errors[0]);
  EXPECT_LE(errors[2], errors[1] + 0.02);
  EXPECT_LT(errors[2], 0.1);
}

TEST(Rinc, DistinctFeaturesBoundedByCapacity) {
  const BitMatrix features = random_bits(400, 100, 8);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount() % 3 == 0;
  });
  const RincConfig config{.lut_inputs = 3, .levels = 2, .total_dts = 9};
  const RincModule module = RincModule::train(features, targets, {}, config);
  // At most P per DT x P^L DTs = P^(L+1) distinct features.
  EXPECT_LE(module.distinct_features().size(), 27u);
  EXPECT_EQ(module.leaf_luts().size(), 9u);
}

TEST(Rinc, MoreDtsNeverHurtTrainAccuracyMuch) {
  const BitMatrix features = random_bits(800, 32, 9);
  const BitVector targets = targets_from(
      features, [](const BitVector& x) { return x.popcount_prefix(10) >= 5; },
      0.05, 10);
  double previous_error = 1.0;
  for (const std::size_t dts : {2u, 4u, 8u, 16u}) {
    const RincModule module = RincModule::train(
        features, targets, {},
        {.lut_inputs = 4, .levels = 2, .total_dts = dts});
    const double error =
        1.0 - bit_accuracy(module.eval_dataset(features), targets);
    EXPECT_LE(error, previous_error + 0.05) << dts << " DTs";
    previous_error = error;
  }
}

TEST(Rinc, WeightedTrainingFollowsTheWeights) {
  const std::size_t n = 600;
  BitMatrix features(n, 4);
  BitVector targets(n);
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    const bool label = rng.next_bool();
    targets.set(i, label);
    if (i < n / 2) {
      features.set(i, 0, label);
      features.set(i, 1, rng.next_bool());
    } else {
      features.set(i, 1, label);
      features.set(i, 0, rng.next_bool());
    }
  }
  std::vector<double> second_half_only(n, 1e-9);
  for (std::size_t i = n / 2; i < n; ++i) second_half_only[i] = 1.0;
  const RincModule module =
      RincModule::train(features, targets, second_half_only,
                        {.lut_inputs = 2, .levels = 1, .total_dts = 2});
  // Must classify the upweighted half correctly.
  const BitVector predictions = module.eval_dataset(features);
  std::size_t correct = 0;
  for (std::size_t i = n / 2; i < n; ++i) {
    if (predictions.get(i) == targets.get(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / (n / 2), 0.95);
}

TEST(Rinc, BudgetExceedingCapacityDies) {
  const BitMatrix features = random_bits(50, 10, 12);
  const BitVector targets(50);
  EXPECT_DEATH(RincModule::train(features, targets, {},
                                 {.lut_inputs = 2, .levels = 1, .total_dts = 5}),
               "");
}

TEST(Rinc, DeterministicAcrossRuns) {
  const BitMatrix features = random_bits(300, 20, 13);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.get(2) || (x.get(7) && x.get(13));
  });
  const RincConfig config{.lut_inputs = 4, .levels = 2, .total_dts = 8};
  const RincModule a = RincModule::train(features, targets, {}, config);
  const RincModule b = RincModule::train(features, targets, {}, config);
  EXPECT_EQ(a.eval_dataset(features), b.eval_dataset(features));
  EXPECT_EQ(a.lut_count(), b.lut_count());
}

// Parameterized structural sweep over (P, L).
struct RincShape {
  std::size_t p;
  std::size_t levels;
};

class RincStructureTest : public ::testing::TestWithParam<RincShape> {};

TEST_P(RincStructureTest, FullTreeMatchesFormula) {
  const auto [p, levels] = GetParam();
  const BitMatrix features = random_bits(200, 64, p * 10 + levels);
  const BitVector targets = targets_from(features, [](const BitVector& x) {
    return x.popcount() % 2 == 1;
  });
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = p, .levels = levels, .total_dts = 0});
  EXPECT_EQ(module.lut_count(), full_rinc_lut_count(p, levels));
  EXPECT_EQ(module.depth_in_luts(), levels + 1);
  EXPECT_EQ(module.level(), levels);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RincStructureTest,
                         ::testing::Values(RincShape{2, 1}, RincShape{2, 2},
                                           RincShape{3, 1}, RincShape{3, 2},
                                           RincShape{4, 1}, RincShape{2, 3}),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param.p) + "_L" +
                                  std::to_string(info.param.levels);
                         });

}  // namespace
}  // namespace poetbin
