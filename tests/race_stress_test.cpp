// Race-hunt stress targets for the ThreadSanitizer build mode
// (cmake -DPOETBIN_SANITIZE=thread, run under
//  TSAN_OPTIONS="suppressions=$PWD/tsan.supp").
//
// Each test hammers one known-dangerous interleaving of the serving
// stack's concurrency — the lock-free prediction cache under epoch churn,
// the Runtime's RCU snapshot vs. reload publish, the MicroBatcher's
// multi-producer window handoff, NetServer::stop() against in-flight
// connections, and the BatchEngine busy-flag handoff — with functional
// asserts that hold in ANY build: a cache hit must reproduce the inserted
// prediction exactly, every served class must be a published tag, versions
// must be monotonic per thread. Under TSan the same tests double as race
// detectors: the suite must come up clean with zero suppressions naming
// poetbin:: frames (tsan.supp policy, enforced by
// tools/check_invariants.py).
//
// The tests also run in the regular suites; iteration counts shrink under
// POETBIN_TSAN (the interleavings matter, not the volume — TSan's
// happens-before analysis flags a race the first time the two accesses
// overlap without an edge).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "core/serialize.h"
#include "dt/lut.h"
#include "serve/micro_batcher.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/predict_cache.h"
#include "serve/runtime.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace poetbin {
namespace {

#if defined(POETBIN_TSAN)
constexpr std::size_t kScale = 1;  // TSan runs ~10x slower; races, not reps
#else
constexpr std::size_t kScale = 8;
#endif

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 3;

// A model whose prediction is `tag` for every input (the hot_reload_test
// instrument): torn or mixed-version reads become impossible predictions.
PoetBin tagged_model(int tag) {
  const std::size_t p = 2;
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = kClasses;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < kClasses * p; ++m) {
    std::vector<std::size_t> inputs = {
        (m + static_cast<std::size_t>(tag)) % (kFeatures - 1), kFeatures - 1};
    BitVector table(std::size_t{1} << p);
    for (std::size_t a = 0; a < table.size(); ++a) {
      table.set(a, ((m + a + static_cast<std::size_t>(tag)) % 3) == 0);
    }
    modules.push_back(
        RincModule::make_leaf(Lut(std::move(inputs), std::move(table))));
  }
  const QuantizerParams quantizer;
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(kClasses);
  for (std::size_t c = 0; c < kClasses; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.assign(
        n_combos, c == static_cast<std::size_t>(tag) ? quantizer.levels() - 1
                                                     : 0u);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

BitVector example_bits(std::uint64_t seed, std::size_t n_bits = kFeatures) {
  Rng rng(seed);
  BitVector bits(n_bits);
  for (std::size_t f = 0; f < n_bits; ++f) {
    if (rng.next_bool()) bits.set(f, true);
  }
  return bits;
}

// --- predict_cache: probe/insert vs. epoch churn ---------------------------

// The cache's whole correctness contract under fire: N producers probe and
// insert while a churn thread advances the epoch (including 2^32-crossing
// bumps that trigger clear()) and issues bare clear()s. Predictions are a
// pure function of the key, so ANY hit that fails to reproduce f(bits)
// would be a torn/aliased entry escaping the XOR verification.
TEST(RaceStress, PredictCacheProbeInsertEpochChurn) {
  PredictCache cache({.capacity_bytes = 1u << 14, .shards = 4});  // tiny:
  // 1024 entries under ~hundred-thousand keys forces constant bucket
  // collisions, evictions and same-slot overwrites.
  std::atomic<std::uint64_t> published{1};
  cache.set_epoch(1);

  const std::size_t n_producers = 4;
  const std::size_t iters = 4000 * kScale;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(n_producers + 1);
  for (std::size_t t = 0; t < n_producers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xACE0 + t);
      for (std::size_t i = 0; i < iters; ++i) {
        const BitVector bits = example_bits(rng.next_below(512), 96);
        const PredictCache::Key key = PredictCache::make_key(bits);
        const int expected = static_cast<int>(key.verify % 1000);
        int prediction = -1;
        if (cache.probe(key, &prediction)) {
          // A hit may be from any epoch's insert of this key — but the
          // prediction is keyed-derived, so it must match exactly.
          ASSERT_EQ(prediction, expected);
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          // order: relaxed — the test only needs SOME recent epoch value;
          // inserting under a just-retired epoch is exactly the stale-entry
          // case the cache must turn into a miss, never a wrong hit.
          cache.insert(key, expected,
                       published.load(std::memory_order_relaxed));
        }
      }
    });
  }
  threads.emplace_back([&] {
    // Epoch churn: small bumps, occasional 2^32 crossings (wraparound
    // clear), and bare clear()s racing the producers' probes.
    for (std::size_t i = 0; i < 300 * kScale; ++i) {
      const std::uint64_t next =
          (i % 16 == 15) ? (published.load(std::memory_order_relaxed) +
                            (std::uint64_t{1} << 32))
                         : published.load(std::memory_order_relaxed) + 1;
      // order: relaxed — publication order for the cache is established by
      // set_epoch's own release; this variable just hands the value around.
      published.store(next, std::memory_order_relaxed);
      cache.set_epoch(next);
      if (i % 64 == 63) cache.clear();
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();

  const PredictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, hits.load());
  EXPECT_EQ(stats.hits + stats.misses, n_producers * iters);
  // Stable keys + inserts-on-miss must produce some hits even under churn.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
}

// --- Runtime: RCU snapshot vs. reload publish -------------------------------

// Readers hammer predict_one (through the cache when enabled) while a
// reloader flips the primary slot between two tagged artifacts. Every
// response must be exactly one published tag, and each reader's observed
// version sequence must be non-decreasing (RCU publishes are totally
// ordered by the slot's seq_cst store).
TEST(RaceStress, RuntimeSnapshotVsReloadPublish) {
  const std::string path_a = temp_path("race_rcu_a.pbm");
  const std::string path_b = temp_path("race_rcu_b.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(0), path_a).ok());
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path_b).ok());

  Runtime::LoadResult loaded = Runtime::load(
      path_a, {.threads = 1, .cache_bytes = 1u << 14});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();

  std::atomic<bool> stop{false};
  const std::size_t n_readers = 4;
  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  for (std::size_t t = 0; t < n_readers; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0xBEEF + t);
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int cls = runtime.predict_one(example_bits(rng.next_below(64)));
        ASSERT_TRUE(cls == 0 || cls == 1) << "impossible tag " << cls;
        const std::uint64_t version = runtime.snapshot()->version;
        ASSERT_GE(version, last_version) << "RCU version went backwards";
        last_version = version;
      }
    });
  }
  for (std::size_t i = 0; i < 40 * kScale; ++i) {
    const IoStatus swapped = runtime.reload(i % 2 == 0 ? path_b : path_a);
    ASSERT_TRUE(swapped.ok()) << swapped.error().message;
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
}

// --- MicroBatcher: multi-producer submit/flush vs. leader dispatch ----------

// Blocking leaders, async submitters and a flusher all contend for the
// same window while a reloader churns the published version underneath
// (dispatch pins a snapshot; cache inserts tag with that snapshot's
// version). Every result must be a published tag.
TEST(RaceStress, MicroBatcherSubmitFlushVsLeaderDispatch) {
  const std::string path_a = temp_path("race_mb_a.pbm");
  const std::string path_b = temp_path("race_mb_b.pbm");
  ASSERT_TRUE(write_packed_model_file(tagged_model(1), path_a).ok());
  ASSERT_TRUE(write_packed_model_file(tagged_model(2), path_b).ok());
  Runtime::LoadResult loaded = Runtime::load(
      path_a, {.threads = 2, .cache_bytes = 1u << 14});
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  Runtime runtime = std::move(loaded).value();
  MicroBatcher batcher(runtime, {.max_batch = 8,
                                 .max_wait = std::chrono::microseconds(100)});

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  const std::size_t iters = 200 * kScale;
  // Two blocking producers (leader path)...
  for (std::size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xCAFE + t);
      for (std::size_t i = 0; i < iters; ++i) {
        const BitVector bits = example_bits(rng.next_below(64));
        const int cls = batcher.predict_one(bits);
        ASSERT_TRUE(cls == 1 || cls == 2) << "impossible tag " << cls;
      }
    });
  }
  // ...two async producers holding small ticket bursts (the submit path;
  // the bits behind each ticket must stay alive until get() returns)...
  for (std::size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xD00D + t);
      for (std::size_t i = 0; i < iters / 4; ++i) {
        std::vector<BitVector> burst;
        burst.reserve(4);
        for (std::size_t b = 0; b < 4; ++b) {
          burst.push_back(example_bits(rng.next_below(64)));
        }
        std::vector<MicroBatcher::Ticket> tickets;
        tickets.reserve(burst.size());
        for (const BitVector& bits : burst) {
          tickets.push_back(batcher.submit(bits));
        }
        for (auto& ticket : tickets) {
          const int cls = ticket.get();
          ASSERT_TRUE(cls == 1 || cls == 2) << "impossible tag " << cls;
        }
      }
    });
  }
  // ...a flusher forcing partial-window dispatches...
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      batcher.flush();
      std::this_thread::yield();
    }
  });
  // ...and a reloader churning the RCU slot under the dispatch path.
  threads.emplace_back([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(runtime.reload(++i % 2 == 0 ? path_a : path_b).ok());
      std::this_thread::yield();
    }
  });
  for (std::size_t t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads[4].join();
  threads[5].join();

  const ServeStats stats = batcher.stats();
  EXPECT_GE(stats.requests, 2 * iters + 2 * (iters / 4) * 4);
}

// --- NetServer: stop() vs. in-flight connections ----------------------------

// Pipelined clients keep frames in flight while the server is stopped and
// restarted. stop() must join the acceptor and every handler without
// racing them (handlers_ handoff, stats merging, batcher flush); clients
// must only ever observe clean answers or a closed connection.
TEST(RaceStress, NetServerStopVsInflightConnections) {
  Runtime runtime(tagged_model(2), {.threads = 1});
  for (std::size_t round = 0; round < 2 * kScale; ++round) {
    NetServer server(runtime, {.max_batch = 8,
                               .max_wait = std::chrono::microseconds(100)});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const std::uint16_t port = server.port();

    std::atomic<bool> stop{false};
    const std::size_t n_clients = 3;
    std::vector<std::thread> clients;
    clients.reserve(n_clients);
    for (std::size_t t = 0; t < n_clients; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(0xF00D + (round << 8) + t);
        while (!stop.load(std::memory_order_relaxed)) {
          NetClient client;
          if (!client.connect("127.0.0.1", port,
                              std::chrono::milliseconds(500))) {
            return;  // server already stopping
          }
          std::vector<BitVector> burst;
          for (std::size_t b = 0; b < 8; ++b) {
            burst.push_back(example_bits(rng.next_below(64)));
          }
          std::vector<const BitVector*> request_ptrs;
          for (const BitVector& bits : burst) request_ptrs.push_back(&bits);
          std::vector<wire::Response> responses;
          if (!client.predict_pipelined(request_ptrs, &responses)) {
            return;  // connection torn down mid-burst by stop(): legal
          }
          for (const wire::Response& response : responses) {
            ASSERT_EQ(response.status, wire::Status::kOk);
            ASSERT_EQ(response.prediction, 2);
          }
        }
      });
    }
    // Let traffic build, then yank the server out from under it. The stop
    // flag only stops NEW bursts — bursts already in flight race stop()'s
    // handler teardown, which is the interleaving under test.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true);
    server.stop();
    for (auto& client : clients) client.join();
    // Post-join the counters are quiescent; reading them exercises the
    // stats-merge path against whatever the handlers recorded last.
    (void)server.stats();
  }
}

// --- BatchEngine: busy_ flag handoff ----------------------------------------

// Two engines on two Runtimes run dataset passes concurrently: the
// re-entrancy guard is per-engine state and must never false-trip across
// engines, and the handoff (exchange-acquire / reset-release) must be
// TSan-clean when one engine is reused across threads back to back.
TEST(RaceStress, TwoEnginesNeverFalseTripBusyGuard) {
  const BatchEngine engine_a(2);
  const BatchEngine engine_b(2);
  const std::size_t iters = 50 * kScale;
  auto hammer = [iters](const BatchEngine& engine, std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < iters; ++i) {
      std::atomic<std::uint64_t> sum{0};
      engine.parallel_for(8, [&](std::size_t job) {
        // order: relaxed — independent per-job contributions; only the
        // final summed value is asserted after parallel_for returns.
        sum.fetch_add(job + 1, std::memory_order_relaxed);
      });
      ASSERT_EQ(sum.load(), 36u);  // 1 + 2 + ... + 8
      if (rng.next_bool(0.1)) std::this_thread::yield();
    }
  };
  std::thread thread_a(hammer, std::cref(engine_a), 1);
  std::thread thread_b(hammer, std::cref(engine_b), 2);
  thread_a.join();
  thread_b.join();
  // Back-to-back reuse of ONE engine from a fresh thread: the release in
  // BusyReset must hand the previous pass's writes to this exchange.
  std::thread thread_c(hammer, std::cref(engine_a), 3);
  thread_c.join();
}

// The deployment shape of the same guard: two Runtimes (each owning its
// persistent engine) run fused predict passes concurrently. Neither may
// see the other's busy_ flag, and results stay bit-identical to scalar.
TEST(RaceStress, TwoRuntimesPredictConcurrently) {
  Runtime runtime_a(tagged_model(0), {.threads = 2});
  Runtime runtime_b(tagged_model(1), {.threads = 2});
  BitMatrix features(64, kFeatures);
  Rng rng(0xFEED);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    for (std::size_t f = 0; f < kFeatures; ++f) {
      if (rng.next_bool()) features.set(r, f, true);
    }
  }
  auto drive = [&](const Runtime& runtime, int tag) {
    for (std::size_t i = 0; i < 20 * kScale; ++i) {
      const std::vector<int> predictions = runtime.predict(features);
      for (const int cls : predictions) ASSERT_EQ(cls, tag);
    }
  };
  std::thread thread_b([&] { drive(runtime_b, 1); });
  drive(runtime_a, 0);
  thread_b.join();
}

}  // namespace
}  // namespace poetbin
