// Backend dispatch and cross-backend bit-identity.
//
// Every available backend (scalar64 always; avx2/avx512 when the build and
// CPU support them) must produce results bit-identical to the scalar64
// reference on ragged dataset sizes, and the fused output-layer argmax must
// match predict_dataset exactly, ties included. Tests that switch the
// active backend restore it on exit.
#include "util/word_backend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/entropy.h"
#include "dt/lut.h"
#include "nn/quantize.h"
#include "test_util.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace poetbin {
namespace {

constexpr std::size_t kRaggedSizes[] = {1, 63, 64, 65, 129, 1000};

using testing::BackendGuard;

BitVector random_vector(std::size_t n, Rng& rng) {
  BitVector v(n);
  for (std::size_t w = 0; w < v.word_count(); ++w) {
    v.words()[w] = rng.next_u64();
  }
  v.mask_tail_word();
  return v;
}

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t n_features, Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(fanin, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(random_rinc(level - 1, fanin, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

// nc-class model over RINC-1 modules with caller-supplied codes (or random
// 8-bit codes when `codes_for` is null).
PoetBin make_model(std::size_t n_classes, std::size_t p, Rng& rng,
                   const std::vector<std::uint32_t>* shared_codes = nullptr) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = n_classes;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_classes * p; ++m) {
    modules.push_back(random_rinc(1, p, 32, rng));
  }
  const QuantizerParams quantizer;  // 8-bit codes
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    for (std::size_t j = 0; j < p; ++j) {
      // With a shared code table the classes must also share wiring, so
      // their codes genuinely tie on every example.
      neurons[c].input_modules[j] = shared_codes != nullptr ? j : c * p + j;
    }
    if (shared_codes != nullptr) {
      neurons[c].codes = *shared_codes;
    } else {
      neurons[c].codes.resize(n_combos);
      for (std::size_t a = 0; a < n_combos; ++a) {
        neurons[c].codes[a] = rng.next_index(quantizer.levels());
      }
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

TEST(WordBackendDispatch, Scalar64IsAlwaysAvailable) {
  EXPECT_TRUE(word_backend_available(WordBackend::kScalar64));
  const auto backends = available_word_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), WordBackend::kScalar64);
}

TEST(WordBackendDispatch, ActiveBackendIsAvailable) {
  EXPECT_TRUE(word_backend_available(active_word_backend()));
  EXPECT_EQ(word_ops().kind, active_word_backend());
  EXPECT_GE(word_ops().block_words, 1u);
}

TEST(WordBackendDispatch, SetBackendSwitchesAndGuardRestores) {
  const WordBackend before = active_word_backend();
  {
    BackendGuard guard;
    for (const auto backend : available_word_backends()) {
      set_word_backend(backend);
      EXPECT_EQ(active_word_backend(), backend);
      EXPECT_STREQ(word_ops().name, word_backend_name(backend));
    }
  }
  EXPECT_EQ(active_word_backend(), before);
}

TEST(WordBackendDispatch, NameParsing) {
  EXPECT_EQ(word_backend_from_name("scalar64"), WordBackend::kScalar64);
  EXPECT_EQ(word_backend_from_name("scalar"), WordBackend::kScalar64);
  EXPECT_EQ(word_backend_from_name("AVX2"), WordBackend::kAvx2);
  EXPECT_EQ(word_backend_from_name("avx512"), WordBackend::kAvx512);
  EXPECT_EQ(word_backend_from_name("AVX-512"), WordBackend::kAvx512);
  EXPECT_EQ(word_backend_from_name("neon"), WordBackend::kNeon);
  EXPECT_EQ(word_backend_from_name("ASIMD"), WordBackend::kNeon);
  EXPECT_EQ(word_backend_from_name("sse2"), std::nullopt);
  EXPECT_EQ(word_backend_from_name(""), std::nullopt);
  for (const auto backend : available_word_backends()) {
    EXPECT_EQ(word_backend_from_name(word_backend_name(backend)), backend);
  }
}

TEST(WordBackendOps, BitVectorOpsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(71);
  for (const std::size_t n : kRaggedSizes) {
    const BitVector a = random_vector(n, rng);
    const BitVector b = random_vector(n, rng);
    set_word_backend(WordBackend::kScalar64);
    const BitVector ref_and = a & b;
    const BitVector ref_or = a | b;
    const BitVector ref_xor = a ^ b;
    const BitVector ref_not = ~a;
    const std::size_t ref_pop = a.popcount();
    const std::size_t ref_ham = a.hamming(b);
    for (const auto backend : available_word_backends()) {
      set_word_backend(backend);
      EXPECT_EQ(a & b, ref_and) << word_backend_name(backend) << " n=" << n;
      EXPECT_EQ(a | b, ref_or) << word_backend_name(backend) << " n=" << n;
      EXPECT_EQ(a ^ b, ref_xor) << word_backend_name(backend) << " n=" << n;
      EXPECT_EQ(~a, ref_not) << word_backend_name(backend) << " n=" << n;
      EXPECT_EQ(a.popcount(), ref_pop) << word_backend_name(backend);
      EXPECT_EQ(a.hamming(b), ref_ham) << word_backend_name(backend);
    }
  }
}

// Drive the popcount kernels directly at word granularity: ragged word
// counts around the SIMD block width and buffers spanning many blocks, so
// the AVX-512 VPOPCNTDQ bodies (selected at runtime on capable hosts) are
// compared against the scalar counts on both their vector loop and their
// scalar remainder.
TEST(WordBackendOps, PopcountKernelsBitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(77);
  for (const std::size_t n_words :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{17}, std::size_t{64}, std::size_t{100}}) {
    WordVec a(n_words), b(n_words);
    for (std::size_t w = 0; w < n_words; ++w) {
      a[w] = rng.next_u64();
      b[w] = rng.next_u64();
    }
    const WordOps& scalar = *word_ops_for(WordBackend::kScalar64);
    const std::size_t ref_pop = scalar.popcount_words(a.data(), n_words);
    const std::size_t ref_ham =
        scalar.hamming_words(a.data(), b.data(), n_words);
    for (const auto backend : available_word_backends()) {
      const WordOps& ops = *word_ops_for(backend);
      EXPECT_EQ(ops.popcount_words(a.data(), n_words), ref_pop)
          << word_backend_name(backend) << " n_words=" << n_words;
      EXPECT_EQ(ops.hamming_words(a.data(), b.data(), n_words), ref_ham)
          << word_backend_name(backend) << " n_words=" << n_words;
    }
  }
  // All-ones / all-zeros corners: exact totals, not just scalar agreement.
  WordVec ones(33, ~0ULL), zeros(33, 0ULL);
  for (const auto backend : available_word_backends()) {
    const WordOps& ops = *word_ops_for(backend);
    EXPECT_EQ(ops.popcount_words(ones.data(), ones.size()), 33u * 64u);
    EXPECT_EQ(ops.popcount_words(zeros.data(), zeros.size()), 0u);
    EXPECT_EQ(ops.hamming_words(ones.data(), zeros.data(), 33), 33u * 64u);
    EXPECT_EQ(ops.hamming_words(ones.data(), ones.data(), 33), 0u);
  }
}

TEST(WordBackendOps, LutEvalBitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(73);
  for (const std::size_t arity : {std::size_t{1}, std::size_t{4},
                                  std::size_t{6}, std::size_t{8}}) {
    for (const std::size_t n : kRaggedSizes) {
      const BitMatrix features = testing::random_bits(n, 32, rng.next_u64());
      const Lut lut = random_lut(arity, features.cols(), rng);
      // The scalar model path never touches the word backend.
      const BitVector reference = lut.eval_dataset(features);
      for (const auto backend : available_word_backends()) {
        set_word_backend(backend);
        EXPECT_EQ(lut.eval_dataset_bitsliced(features), reference)
            << word_backend_name(backend) << " arity=" << arity << " n=" << n;
      }
    }
  }
}

TEST(WordBackendOps, RincEvalBitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(79);
  for (const std::size_t n : kRaggedSizes) {
    const BitMatrix features = testing::random_bits(n, 40, rng.next_u64());
    const RincModule module = random_rinc(2, 4, features.cols(), rng);
    const BitVector reference = module.eval_dataset(features);
    for (const auto backend : available_word_backends()) {
      set_word_backend(backend);
      EXPECT_EQ(module.eval_dataset_batched(features), reference)
          << word_backend_name(backend) << " n=" << n;
    }
  }
}

TEST(WordBackendOps, ScaleByMaskExactAcrossBackends) {
  // Elementwise multiplies must be IEEE-exact at any vector width: every
  // backend produces the same doubles, bit for bit.
  BackendGuard guard;
  Rng rng(83);
  for (const std::size_t n : kRaggedSizes) {
    const BitVector bits = random_vector(n, rng);
    std::vector<double> initial(n);
    for (auto& w : initial) w = rng.next_double() + 1e-3;
    const double f0 = 0.8705505632961241;   // exp(-alpha)-like values
    const double f1 = 1.1487038401803204;
    std::vector<double> reference = initial;
    set_word_backend(WordBackend::kScalar64);
    word_ops().scale_by_mask(bits.words(), n, f0, f1, reference.data());
    for (const auto backend : available_word_backends()) {
      set_word_backend(backend);
      std::vector<double> weights = initial;
      word_ops().scale_by_mask(bits.words(), n, f0, f1, weights.data());
      EXPECT_EQ(weights, reference) << word_backend_name(backend) << " n=" << n;
    }
  }
}

TEST(WordBackendOps, EntropySumIdenticalAcrossBackends) {
  // log2 is not an exact op, so every backend is contractually bound to the
  // one shared scalar body: identical results, init chaining included.
  BackendGuard guard;
  Rng rng(87);
  std::vector<double> pairs(2 * 37);
  for (auto& w : pairs) w = rng.next_double() * 3.0;
  pairs[4] = 0.0;  // exercise empty / pure nodes
  pairs[5] = 0.0;
  pairs[10] = 0.0;
  set_word_backend(WordBackend::kScalar64);
  const double reference = word_ops().entropy_sum(pairs.data(), 37, 0.5);
  double expected = 0.5;
  for (std::size_t k = 0; k < 37; ++k) {
    expected += weighted_node_entropy(pairs[2 * k], pairs[2 * k + 1]);
  }
  EXPECT_EQ(reference, expected);
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(word_ops().entropy_sum(pairs.data(), 37, 0.5), reference)
        << word_backend_name(backend);
    const double head = word_ops().entropy_sum(pairs.data(), 20, 0.5);
    EXPECT_EQ(word_ops().entropy_sum(pairs.data() + 40, 17, head), reference)
        << word_backend_name(backend);
  }
}

TEST(FusedArgmax, MatchesScalarPredictOnRaggedSizes) {
  BackendGuard guard;
  Rng rng(89);
  const PoetBin model = make_model(/*n_classes=*/7, /*p=*/4, rng);
  const BatchEngine inline_engine(1);
  const BatchEngine threaded_engine(3);
  for (const std::size_t n : kRaggedSizes) {
    const BitMatrix features = testing::random_bits(n, 32, 101 + n);
    const std::vector<int> reference = model.predict_dataset(features);
    for (const auto backend : available_word_backends()) {
      set_word_backend(backend);
      EXPECT_EQ(model.predict_dataset_batched(features, inline_engine),
                reference)
          << word_backend_name(backend) << " n=" << n;
      EXPECT_EQ(model.predict_dataset_batched(features, threaded_engine),
                reference)
          << word_backend_name(backend) << " threaded, n=" << n;
    }
  }
}

TEST(FusedArgmax, TieBreaksToLowestClassLikePredictDataset) {
  // All classes share one code table, so every example's codes tie across
  // all 6 classes; the scalar comparator-tree rule keeps the lowest class.
  BackendGuard guard;
  Rng rng(97);
  const std::size_t p = 4;
  std::vector<std::uint32_t> shared(std::size_t{1} << p);
  for (auto& code : shared) code = rng.next_index(256);
  const PoetBin model = make_model(/*n_classes=*/6, p, rng, &shared);
  const BitMatrix features = testing::random_bits(321, 32, 103);
  const std::vector<int> reference = model.predict_dataset(features);
  for (const int prediction : reference) EXPECT_EQ(prediction, 0);
  const BatchEngine engine(1);
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(model.predict_dataset_batched(features, engine), reference)
        << word_backend_name(backend);
  }
}

TEST(FusedArgmax, PartialTiesMatchScalar) {
  // Classes 0/1 and 2/3 are pairwise identical: winners must come from the
  // lower index of each tied pair, exactly as predict_dataset decides.
  BackendGuard guard;
  Rng rng(107);
  const std::size_t p = 4;
  const std::size_t n_combos = std::size_t{1} << p;
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = 4;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < config.n_classes * p; ++m) {
    modules.push_back(random_rinc(1, p, 32, rng));
  }
  std::vector<SparseOutputNeuron> neurons(config.n_classes);
  std::vector<std::uint32_t> codes_a(n_combos), codes_b(n_combos);
  for (auto& code : codes_a) code = rng.next_index(256);
  for (auto& code : codes_b) code = rng.next_index(256);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    // Tied pairs also share input wiring so their codes collide per example.
    const std::size_t block = (c / 2) * 2;
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = block * p + j;
    }
    neurons[c].codes = c < 2 ? codes_a : codes_b;
  }
  const PoetBin model = PoetBin::from_parts(config, std::move(modules),
                                            std::move(neurons),
                                            QuantizerParams{});
  const BitMatrix features = testing::random_bits(500, 32, 109);
  const std::vector<int> reference = model.predict_dataset(features);
  for (const int prediction : reference) {
    EXPECT_TRUE(prediction == 0 || prediction == 2) << prediction;
  }
  const BatchEngine engine(1);
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(model.predict_dataset_batched(features, engine), reference)
        << word_backend_name(backend);
  }
}

TEST(FusedArgmax, DegenerateClassCounts) {
  BackendGuard guard;
  Rng rng(113);
  const PoetBin one_class = make_model(/*n_classes=*/1, /*p=*/3, rng);
  const BitMatrix features = testing::random_bits(130, 32, 127);
  const std::vector<int> reference = one_class.predict_dataset(features);
  const BatchEngine engine(1);
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(one_class.predict_dataset_batched(features, engine), reference)
        << word_backend_name(backend);
  }
  // Empty dataset: no predictions, no crash.
  const BitMatrix empty(0, 32);
  EXPECT_TRUE(one_class.predict_dataset_batched(empty, engine).empty());
}

TEST(FusedArgmax, AccuracyMatchesScalar) {
  BackendGuard guard;
  Rng rng(131);
  const PoetBin model = make_model(/*n_classes=*/5, /*p=*/4, rng);
  const BitMatrix features = testing::random_bits(777, 32, 137);
  std::vector<int> labels(features.rows());
  for (auto& label : labels) label = static_cast<int>(rng.next_index(5));
  const double reference = model.accuracy(features, labels);
  const BatchEngine engine(2);
  for (const auto backend : available_word_backends()) {
    set_word_backend(backend);
    EXPECT_EQ(model.accuracy_batched(features, labels, engine), reference)
        << word_backend_name(backend);
  }
}

}  // namespace
}  // namespace poetbin
