// Fuzz-style property tests: random netlists must survive optimization with
// observable behaviour unchanged, across many seeds (TEST_P sweep).
#include <gtest/gtest.h>

#include "hw/netlist_opt.h"
#include "util/rng.h"

namespace poetbin {
namespace {

// Random DAG of LUTs over `n_inputs` primary inputs. Tables are random, so
// the full zoo appears: constants, identities, inverters, redundant inputs.
Netlist random_netlist(std::size_t n_inputs, std::size_t n_luts,
                       std::uint64_t seed, std::size_t n_outputs) {
  Rng rng(seed);
  Netlist netlist;
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    nodes.push_back(netlist.add_input(i, "x" + std::to_string(i)));
  }
  for (std::size_t l = 0; l < n_luts; ++l) {
    const std::size_t arity = 1 + rng.next_index(4);
    std::vector<std::size_t> fanins;
    for (std::size_t j = 0; j < arity; ++j) {
      fanins.push_back(nodes[rng.next_index(nodes.size())]);
    }
    BitVector table(std::size_t{1} << arity);
    for (std::size_t a = 0; a < table.size(); ++a) {
      table.set(a, rng.next_bool());
    }
    nodes.push_back(
        netlist.add_lut(std::move(fanins), std::move(table),
                        "g" + std::to_string(l)));
  }
  for (std::size_t o = 0; o < n_outputs; ++o) {
    netlist.mark_output(nodes[rng.next_index(nodes.size())]);
  }
  return netlist;
}

BitMatrix exhaustive_vectors(std::size_t n_inputs) {
  const std::size_t n = std::size_t{1} << n_inputs;
  BitMatrix vectors(n, n_inputs);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t bit = 0; bit < n_inputs; ++bit) {
      vectors.set(row, bit, (row >> bit) & 1);
    }
  }
  return vectors;
}

class NetlistFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzzTest, OptimizePreservesBehaviourExhaustively) {
  const std::uint64_t seed = GetParam();
  const std::size_t n_inputs = 6;
  const Netlist original = random_netlist(n_inputs, 24, seed, 4);
  NetlistOptStats stats;
  const Netlist optimized = optimize_netlist(original, &stats);
  EXPECT_LE(optimized.n_luts(), original.n_luts());
  EXPECT_TRUE(verify_equivalent(original, optimized,
                                exhaustive_vectors(n_inputs)))
      << "seed " << seed;
}

TEST_P(NetlistFuzzTest, OptimizeIsIdempotent) {
  const std::uint64_t seed = GetParam();
  const Netlist original = random_netlist(5, 16, seed, 3);
  const Netlist once = optimize_netlist(original);
  NetlistOptStats second_pass;
  const Netlist twice = optimize_netlist(once, &second_pass);
  // A second pass may still collapse a handful of nodes (aliases exposed by
  // the first pass) but must converge quickly and stay equivalent.
  EXPECT_TRUE(verify_equivalent(once, twice, exhaustive_vectors(5)));
  const Netlist thrice = optimize_netlist(twice);
  EXPECT_EQ(thrice.n_luts(), twice.n_luts());
}

TEST_P(NetlistFuzzTest, WordParallelMatchesScalarOnRandomNetlists) {
  const std::uint64_t seed = GetParam();
  const Netlist netlist = random_netlist(8, 20, seed, 5);
  Rng rng(seed ^ 0xfeedULL);
  BitMatrix vectors(100, 8);
  for (std::size_t r = 0; r < 100; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      vectors.set(r, c, rng.next_bool());
    }
  }
  const auto columns = netlist.simulate_dataset_outputs(vectors);
  for (std::size_t i = 0; i < vectors.rows(); ++i) {
    const auto scalar = netlist.simulate_outputs(vectors.row(i));
    for (std::size_t o = 0; o < scalar.size(); ++o) {
      ASSERT_EQ(columns[o].get(i), scalar[o]) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace poetbin
