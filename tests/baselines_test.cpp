#include <gtest/gtest.h>

#include <numeric>

#include "baselines/binarynet.h"
#include "baselines/ndf.h"
#include "baselines/polybinn.h"
#include "test_util.h"

namespace poetbin {
namespace {

// All baselines share the prototype dataset: 10 classes, 64 binary features,
// flip noise 8%. A competent classifier should reach >= 85% on held-out
// data; chance is 10%.
struct Splits {
  BinaryDataset train;
  BinaryDataset test;
};

Splits make_splits(std::uint64_t seed) {
  // One generation, then split: train and test must share the same class
  // prototypes (independent draws would have unrelated class structure).
  const BinaryDataset all = testing::prototype_dataset(1600, 64, seed);
  std::vector<std::size_t> train_rows(1200);
  std::vector<std::size_t> test_rows(400);
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  std::iota(test_rows.begin(), test_rows.end(), std::size_t{1200});
  return {all.select(train_rows), all.select(test_rows)};
}

TEST(BinaryNet, LearnsPrototypes) {
  const Splits splits = make_splits(1);
  BinaryNetConfig config;
  config.epochs = 15;
  const BinaryNetClassifier model =
      BinaryNetClassifier::train(splits.train, config);
  EXPECT_GT(model.accuracy(splits.train), 0.9);
  EXPECT_GT(model.accuracy(splits.test), 0.8);
}

TEST(BinaryNet, NeuronCountMatchesArchitecture) {
  const Splits splits = make_splits(2);
  BinaryNetConfig config;
  config.hidden_dims = {128, 32};
  config.epochs = 2;
  const BinaryNetClassifier model =
      BinaryNetClassifier::train(splits.train, config);
  EXPECT_EQ(model.n_neurons(), 128u + 32u + 10u);
}

TEST(BinaryNet, PredictionsInRange) {
  const Splits splits = make_splits(3);
  BinaryNetConfig config;
  config.epochs = 3;
  const BinaryNetClassifier model =
      BinaryNetClassifier::train(splits.train, config);
  for (const int p : model.predict(splits.test)) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

TEST(PolyBinn, LearnsPrototypes) {
  const Splits splits = make_splits(4);
  PolyBinnConfig config;
  config.trees_per_class = 6;
  config.max_depth = 5;
  const PolyBinn model = PolyBinn::train(splits.train, config);
  EXPECT_GT(model.accuracy(splits.train), 0.8);
  EXPECT_GT(model.accuracy(splits.test), 0.7);
}

TEST(PolyBinn, ResourceCountersPositive) {
  const Splits splits = make_splits(5);
  PolyBinnConfig config;
  config.trees_per_class = 3;
  config.max_depth = 4;
  const PolyBinn model = PolyBinn::train(splits.train, config);
  EXPECT_GT(model.total_nodes(), 10u * 3u);  // at least a node per tree
  EXPECT_GT(model.total_distinct_features(), 0u);
}

TEST(Ndf, LearnsPrototypes) {
  const Splits splits = make_splits(6);
  NdfConfig config;
  config.n_trees = 4;
  config.depth = 3;
  config.epochs = 8;
  const NeuralDecisionForest model =
      NeuralDecisionForest::train(splits.train, config);
  EXPECT_GT(model.accuracy(splits.train), 0.85);
  EXPECT_GT(model.accuracy(splits.test), 0.75);
}

TEST(Ndf, NllDecreasesWithTraining) {
  const Splits splits = make_splits(7);
  NdfConfig short_config;
  short_config.n_trees = 3;
  short_config.depth = 3;
  short_config.epochs = 1;
  NdfConfig long_config = short_config;
  long_config.epochs = 8;
  const auto short_model = NeuralDecisionForest::train(splits.train, short_config);
  const auto long_model = NeuralDecisionForest::train(splits.train, long_config);
  EXPECT_LT(long_model.nll(splits.train), short_model.nll(splits.train));
}

TEST(Ndf, ProbabilitiesFormDistribution) {
  const Splits splits = make_splits(8);
  NdfConfig config;
  config.n_trees = 2;
  config.depth = 2;
  config.epochs = 1;
  const auto model = NeuralDecisionForest::train(splits.train, config);
  // predict() must yield valid classes; nll finite.
  const auto predictions = model.predict(splits.test);
  for (const int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
  EXPECT_TRUE(std::isfinite(model.nll(splits.test)));
}

}  // namespace
}  // namespace poetbin
