#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poetbin {
namespace {

class SyntheticFamilyTest : public ::testing::TestWithParam<SyntheticFamily> {};

TEST_P(SyntheticFamilyTest, ShapesAndLabels) {
  const ImageDataset data = make_synthetic({GetParam(), 500, 42, 0.15});
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.n_classes, 10u);
  EXPECT_EQ(data.height, 16u);
  EXPECT_EQ(data.width, 16u);
  EXPECT_EQ(data.pixels.size(), data.size() * data.image_size());
  for (const int label : data.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST_P(SyntheticFamilyTest, PixelsInUnitRange) {
  const ImageDataset data = make_synthetic({GetParam(), 100, 7, 0.2});
  for (const float pixel : data.pixels) {
    ASSERT_GE(pixel, 0.0f);
    ASSERT_LE(pixel, 1.0f);
  }
}

TEST_P(SyntheticFamilyTest, DeterministicInSeed) {
  const ImageDataset a = make_synthetic({GetParam(), 50, 99, 0.15});
  const ImageDataset b = make_synthetic({GetParam(), 50, 99, 0.15});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.pixels, b.pixels);
}

TEST_P(SyntheticFamilyTest, DifferentSeedsDiffer) {
  const ImageDataset a = make_synthetic({GetParam(), 50, 1, 0.15});
  const ImageDataset b = make_synthetic({GetParam(), 50, 2, 0.15});
  EXPECT_NE(a.pixels, b.pixels);
}

TEST_P(SyntheticFamilyTest, ClassesRoughlyBalanced) {
  const ImageDataset data = make_synthetic({GetParam(), 2000, 3, 0.15});
  const auto histogram = class_histogram(data.labels, 10);
  for (const auto count : histogram) {
    EXPECT_GT(count, 120u);  // expectation 200, loose 3-sigma-ish bound
    EXPECT_LT(count, 300u);
  }
}

TEST_P(SyntheticFamilyTest, SameClassInstancesVary) {
  const ImageDataset data = make_synthetic({GetParam(), 200, 5, 0.15});
  // Find two examples of the same class and check they are not identical
  // (jitter/noise must be active).
  for (int target = 0; target < 10; ++target) {
    std::size_t first = data.size();
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.labels[i] != target) continue;
      if (first == data.size()) {
        first = i;
        continue;
      }
      const float* a = data.image(first);
      const float* b = data.image(i);
      bool different = false;
      for (std::size_t k = 0; k < data.image_size(); ++k) {
        if (a[k] != b[k]) {
          different = true;
          break;
        }
      }
      EXPECT_TRUE(different) << "class " << target;
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SyntheticFamilyTest,
                         ::testing::Values(SyntheticFamily::kDigits,
                                           SyntheticFamily::kHouseNumbers,
                                           SyntheticFamily::kTextures),
                         [](const auto& info) {
                           return family_name(info.param);
                         });

TEST(Synthetic, ChannelCounts) {
  EXPECT_EQ(make_digits(1, 1).channels, 1u);
  EXPECT_EQ(make_house_numbers(1, 1).channels, 3u);
  EXPECT_EQ(make_textures(1, 1).channels, 3u);
}

TEST(Synthetic, FamilyNames) {
  EXPECT_STREQ(family_name(SyntheticFamily::kDigits), "digits");
  EXPECT_STREQ(family_paper_dataset(SyntheticFamily::kDigits), "MNIST");
  EXPECT_STREQ(family_paper_dataset(SyntheticFamily::kHouseNumbers), "SVHN");
  EXPECT_STREQ(family_paper_dataset(SyntheticFamily::kTextures), "CIFAR-10");
}

TEST(Synthetic, DigitClassesAreVisuallyDistinct) {
  // Mean image per class should differ between classes: the per-class mean
  // pixel correlation across different digits must be below that of the
  // same digit re-rendered.
  const ImageDataset data = make_digits(3000, 21, 0.05);
  const std::size_t image_size = data.image_size();
  std::vector<std::vector<double>> means(10, std::vector<double>(image_size, 0.0));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto label = static_cast<std::size_t>(data.labels[i]);
    ++counts[label];
    const float* image = data.image(i);
    for (std::size_t k = 0; k < image_size; ++k) means[label][k] += image[k];
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (auto& v : means[c]) v /= static_cast<double>(counts[c]);
  }
  // L2 distance between every pair of class means must be clearly positive.
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      double distance = 0.0;
      for (std::size_t k = 0; k < image_size; ++k) {
        const double d = means[a][k] - means[b][k];
        distance += d * d;
      }
      EXPECT_GT(std::sqrt(distance), 0.5) << "classes " << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace poetbin
