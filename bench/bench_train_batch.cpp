// Scalar vs word-parallel *training*: LevelDT entropy scans, the Adaboost
// error/reweight loops, an end-to-end RINC-2 fit, and the output-layer
// squared-hinge retraining.
//
// The acceptance bars for the training engine, all single-threaded on a
// 10k-example dataset with bit-identical fits/alphas/weights: the bitsliced
// LevelDT candidate scan must be >= 4x the scalar scan at the default P=6
// arity (P=8 gated at >= 3x: its deepest levels are bound by the per-node
// entropy math both paths share), and the word-parallel output-layer
// retrain must be >= 2x the scalar loop at P=6. Gated only at full scale
// (POETBIN_BENCH_SCALE >= 1).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "boost/adaboost.h"
#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/level_dt.h"
#include "dt/lut.h"
#include "nn/quantize.h"
#include "util/bit_matrix.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    BitVector& column = bits.column(c);
    for (std::size_t w = 0; w < column.word_count(); ++w) {
      column.words()[w] = rng.next_u64();
    }
    column.mask_tail_word();
  }
  return bits;
}

// Mid-boosting weight profile: log-normal mass, normalised. Uniform weights
// would flatter neither path; this is what LevelDT actually sees from
// Adaboost after a few rounds.
std::vector<double> boosted_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  double total = 0.0;
  for (auto& w : weights) {
    w = std::exp(rng.gaussian(0.0, 1.0));
    total += w;
  }
  for (auto& w : weights) w /= total;
  return weights;
}

template <typename Fn>
double time_best_of(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void report(const char* label, double seconds, std::size_t n_examples,
            double baseline_seconds) {
  std::printf("  %-28s %10.3f ms  %12.0f ex/s  %6.2fx\n", label,
              1e3 * seconds, n_examples / seconds, baseline_seconds / seconds);
}

bool same_fit(const LevelDtResult& a, const LevelDtResult& b) {
  return a.lut == b.lut && a.final_entropy == b.final_entropy &&
         a.weighted_error == b.weighted_error;
}

// Model shell for timing retrain_output_layer in isolation: the RINC bank
// is never touched by the retrain, so trivial leaf modules satisfy
// from_parts and the output layer fits directly on a pre-packed bit bank.
PoetBin output_shell(std::size_t n_classes, std::size_t p,
                     bool word_parallel) {
  PoetBinConfig config;
  config.n_classes = n_classes;
  config.rinc.lut_inputs = p;
  config.output.word_parallel = word_parallel;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_classes * p; ++m) {
    modules.push_back(RincModule::make_leaf(Lut({0}, BitVector(2))));
  }
  std::vector<SparseOutputNeuron> neurons(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    for (std::size_t j = 0; j < p; ++j) neurons[c].input_modules[j] = c * p + j;
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.assign(std::size_t{1} << p, 0u);
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             QuantizerParams{});
}

bool same_output_layer(const PoetBin& a, const PoetBin& b) {
  if (a.output_neurons().size() != b.output_neurons().size()) return false;
  for (std::size_t c = 0; c < a.output_neurons().size(); ++c) {
    const SparseOutputNeuron& na = a.output_neurons()[c];
    const SparseOutputNeuron& nb = b.output_neurons()[c];
    if (na.weights != nb.weights || na.bias != nb.bias || na.codes != nb.codes)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "Training: scalar vs word-parallel LevelDT scans + Adaboost loops",
      "training engine acceptance: bitsliced LevelDT scans, P=6 >= 4x scalar");
  bench::JsonResults json("train_batch");

  const std::size_t n_examples =
      static_cast<std::size_t>(10000 * bench::bench_scale());
  const std::size_t n_features = 512;
  const BitMatrix features = random_bits(n_examples, n_features, 1234);
  const std::vector<double> weights = boosted_weights(n_examples, 77);
  Rng rng(99);
  BitVector targets(n_examples);
  for (std::size_t w = 0; w < targets.word_count(); ++w) {
    targets.words()[w] = rng.next_u64();
  }
  targets.mask_tail_word();

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const WordBackend default_backend = active_word_backend();
  const auto backends = available_word_backends();
  std::printf("dataset: %zu examples x %zu features, %u hardware threads\n",
              n_examples, n_features, static_cast<unsigned>(hw));
  bench::report_word_backends(json);

  bool pass = true;

  // --- LevelDT candidate scans, P=6 (S1 arity) and P=8 (M1/C1) ------------
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const double target = p == 6 ? 4.0 : 3.0;
    std::printf("LevelDT, P=%zu (%zu-level scan over %zu candidates):\n", p, p,
                n_features);
    LevelDtConfig scalar_config{.n_inputs = p, .word_parallel = false};
    LevelDtConfig sliced_config{.n_inputs = p, .word_parallel = true};

    LevelDtResult scalar_fit, sliced_fit, threaded_fit;
    const double scalar_s = time_best_of(3, [&] {
      scalar_fit = train_level_dt(features, targets, weights, scalar_config);
    });
    report("scalar scan", scalar_s, n_examples, scalar_s);
    char label[64], key[64];
    double sliced_s = 0.0;
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double backend_s = time_best_of(5, [&] {
        sliced_fit = train_level_dt(features, targets, weights, sliced_config);
      });
      if (!same_fit(scalar_fit, sliced_fit)) {
        std::printf("  ERROR: %s fit disagrees with the scalar path\n",
                    word_backend_name(backend));
        return 1;
      }
      if (backend == default_backend) sliced_s = backend_s;
      std::snprintf(label, sizeof label, "bitsliced (1t, %s)",
                    word_backend_name(backend));
      report(label, backend_s, n_examples, scalar_s);
      std::snprintf(key, sizeof key, "leveldt_p%zu_bitsliced_%s_ms", p,
                    word_backend_name(backend));
      json.add(key, 1e3 * backend_s);
    }
    set_word_backend(default_backend);
    const BatchEngine engine(hw);
    const double threaded_s = time_best_of(5, [&] {
      threaded_fit =
          train_level_dt(features, targets, weights, sliced_config, &engine);
    });
    if (!same_fit(scalar_fit, threaded_fit)) {
      std::printf("  ERROR: threaded fit disagrees with the scalar path\n");
      return 1;
    }
    std::snprintf(label, sizeof label, "bitsliced (%u threads)",
                  static_cast<unsigned>(hw));
    report(label, threaded_s, n_examples, scalar_s);

    const double speedup = scalar_s / sliced_s;
    std::printf(
        "  -> single-thread bitsliced speedup: %.2fx (target %.0fx)\n\n",
                speedup, target);
    if (speedup < target) pass = false;
    std::snprintf(key, sizeof key, "leveldt_p%zu_scalar_ms", p);
    json.add(key, 1e3 * scalar_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_bitsliced_ms", p);
    json.add(key, 1e3 * sliced_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_threaded_ms", p);
    json.add(key, 1e3 * threaded_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_speedup_1t", p);
    json.add(key, speedup);
  }

  // --- Adaboost error/reweight loops (weak learning held constant) --------
  {
    const std::size_t n_rounds = 16;  // MAT LUT range caps arity at 20
    std::vector<BitVector> round_preds;
    for (std::size_t r = 0; r < n_rounds; ++r) {
      BitVector preds(n_examples);
      for (std::size_t w = 0; w < preds.word_count(); ++w) {
        preds.words()[w] = rng.next_u64();
      }
      preds.mask_tail_word();
      round_preds.push_back(std::move(preds));
    }
    auto canned = [&](std::span<const double>, std::size_t round) {
      return round_preds[round];
    };

    std::printf("Adaboost, %zu rounds (canned weak learner):\n", n_rounds);
    AdaboostResult scalar_boost, word_boost;
    const double scalar_s = time_best_of(3, [&] {
      scalar_boost = run_adaboost(
          targets, canned, {.n_rounds = n_rounds, .word_parallel = false});
    });
    report("scalar loops", scalar_s, n_examples * n_rounds, scalar_s);
    json.add("adaboost_scalar_ms", 1e3 * scalar_s);
    double word_s = 0.0;
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double backend_s = time_best_of(5, [&] {
        word_boost = run_adaboost(
            targets, canned, {.n_rounds = n_rounds, .word_parallel = true});
      });
      for (std::size_t r = 0; r < n_rounds; ++r) {
        if (scalar_boost.rounds[r].alpha != word_boost.rounds[r].alpha) {
          std::printf("  ERROR: %s alphas disagree at round %zu\n",
                      word_backend_name(backend), r);
          return 1;
        }
      }
      if (backend == default_backend) word_s = backend_s;
      char label[64], key[64];
      std::snprintf(label, sizeof label, "word-parallel (%s)",
                    word_backend_name(backend));
      report(label, backend_s, n_examples * n_rounds, scalar_s);
      std::snprintf(key, sizeof key, "adaboost_word_parallel_%s_ms",
                    word_backend_name(backend));
      json.add(key, 1e3 * backend_s);
    }
    set_word_backend(default_backend);
    std::printf("  -> Adaboost loop speedup: %.2fx\n\n", scalar_s / word_s);
    json.add("adaboost_word_parallel_ms", 1e3 * word_s);
    json.add("adaboost_speedup", scalar_s / word_s);
  }

  // --- End-to-end RINC-2 fit ----------------------------------------------
  {
    RincConfig scalar_config{
        .lut_inputs = 6, .levels = 2, .total_dts = 36,
        .word_parallel_training = false};
    RincConfig word_config = scalar_config;
    word_config.word_parallel_training = true;

    std::printf("RINC-2 train (P=6, 36 DTs):\n");
    RincModule scalar_module, word_module;
    const double scalar_s = time_best_of(1, [&] {
      scalar_module =
          RincModule::train(features, targets, weights, scalar_config);
    });
    const double word_s = time_best_of(2, [&] {
      word_module = RincModule::train(features, targets, weights, word_config);
    });
    if (!(scalar_module.eval_dataset(features) ==
          word_module.eval_dataset(features)) ||
        scalar_module.train_error() != word_module.train_error()) {
      std::printf("  ERROR: trained modules disagree\n");
      return 1;
    }
    report("scalar train", scalar_s, n_examples, scalar_s);
    report("word-parallel train", word_s, n_examples, scalar_s);
    std::printf("  -> end-to-end training speedup: %.2fx\n\n",
                scalar_s / word_s);
    json.add("rinc2_train_scalar_ms", 1e3 * scalar_s);
    json.add("rinc2_train_word_parallel_ms", 1e3 * word_s);
    json.add("rinc2_train_speedup", scalar_s / word_s);
  }

  // --- Output-layer retraining (squared hinge over packed combos) ---------
  {
    const std::size_t n_classes = 10;
    const std::size_t p = 6;
    // Distilled-regime bank: bit (c, j) agrees with "label == c" at ~70%,
    // the fidelity a real RINC bank delivers. Training then actually
    // separates the classes, so the hinge saturates for a growing share of
    // examples — the regime the word path's active-set skipping targets
    // (purely random bits would keep every example active forever).
    Rng orng(555);
    std::vector<int> labels(n_examples);
    for (auto& label : labels) {
      label = static_cast<int>(orng.next_index(n_classes));
    }
    BitMatrix bank(n_examples, n_classes * p);
    for (std::size_t c = 0; c < n_classes; ++c) {
      for (std::size_t j = 0; j < p; ++j) {
        BitVector& column = bank.column(c * p + j);
        for (std::size_t i = 0; i < n_examples; ++i) {
          const bool is_class = labels[i] == static_cast<int>(c);
          column.set(i, is_class != orng.next_bool(0.3));
        }
      }
    }

    std::printf("Output-layer retrain (%zu classes, P=%zu, %zu epochs):\n",
                n_classes, p, OutputLayerConfig{}.epochs);
    PoetBin scalar_model = output_shell(n_classes, p, false);
    PoetBin word_model = output_shell(n_classes, p, true);
    const double scalar_s = time_best_of(
        2, [&] { scalar_model.retrain_output_layer(bank, labels); });
    report("scalar retrain", scalar_s, n_examples, scalar_s);
    json.add("output_retrain_scalar_ms", 1e3 * scalar_s);
    double word_s = 0.0;
    char label[64], key[64];
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double backend_s = time_best_of(
          3, [&] { word_model.retrain_output_layer(bank, labels); });
      if (!same_output_layer(scalar_model, word_model)) {
        std::printf("  ERROR: %s retrained weights disagree with scalar\n",
                    word_backend_name(backend));
        return 1;
      }
      if (backend == default_backend) word_s = backend_s;
      std::snprintf(label, sizeof label, "word-parallel (1t, %s)",
                    word_backend_name(backend));
      report(label, backend_s, n_examples, scalar_s);
      std::snprintf(key, sizeof key, "output_retrain_word_%s_ms",
                    word_backend_name(backend));
      json.add(key, 1e3 * backend_s);
    }
    set_word_backend(default_backend);
    const BatchEngine engine(hw);
    PoetBin threaded_model = output_shell(n_classes, p, true);
    const double threaded_s = time_best_of(
        3, [&] { threaded_model.retrain_output_layer(bank, labels, &engine); });
    if (!same_output_layer(scalar_model, threaded_model)) {
      std::printf("  ERROR: threaded retrain disagrees with scalar\n");
      return 1;
    }
    std::snprintf(label, sizeof label, "word-parallel (%u threads)",
                  static_cast<unsigned>(hw));
    report(label, threaded_s, n_examples, scalar_s);
    const double speedup = scalar_s / word_s;
    std::printf("  -> single-thread retrain speedup: %.2fx (target 2x)\n\n",
                speedup);
    if (speedup < 2.0) pass = false;
    json.add("output_retrain_word_parallel_ms", 1e3 * word_s);
    json.add("output_retrain_threaded_ms", 1e3 * threaded_s);
    json.add("output_retrain_speedup_1t", speedup);
  }

  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  // Only gate at full scale: small runs (CI smoke at 0.25) are too noisy
  // for a hard threshold.
  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf(
      "acceptance (1-thread: LevelDT P=6 >= 4x, P=8 >= 3x; output-layer "
      "retrain >= 2x): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
