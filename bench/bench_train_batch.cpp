// Scalar vs word-parallel *training*: LevelDT entropy scans, the Adaboost
// error/reweight loops, and an end-to-end RINC-2 fit.
//
// The acceptance bar for the training engine: the single-threaded bitsliced
// LevelDT candidate scan must be >= 4x the scalar scan throughput on a
// 10k-example dataset at the default P=6 arity, with bit-identical selected
// features, LUT contents and Adaboost alphas. P=8 is gated at >= 3x: its
// deepest levels are bound by the per-node entropy math (paid identically
// by both paths, so it caps the ratio), not by the scan itself. Gated only
// at full scale (POETBIN_BENCH_SCALE >= 1).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "boost/adaboost.h"
#include "core/batch_eval.h"
#include "core/rinc.h"
#include "dt/level_dt.h"
#include "util/bit_matrix.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    BitVector& column = bits.column(c);
    for (std::size_t w = 0; w < column.word_count(); ++w) {
      column.words()[w] = rng.next_u64();
    }
    column.mask_tail_word();
  }
  return bits;
}

// Mid-boosting weight profile: log-normal mass, normalised. Uniform weights
// would flatter neither path; this is what LevelDT actually sees from
// Adaboost after a few rounds.
std::vector<double> boosted_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  double total = 0.0;
  for (auto& w : weights) {
    w = std::exp(rng.gaussian(0.0, 1.0));
    total += w;
  }
  for (auto& w : weights) w /= total;
  return weights;
}

template <typename Fn>
double time_best_of(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void report(const char* label, double seconds, std::size_t n_examples,
            double baseline_seconds) {
  std::printf("  %-28s %10.3f ms  %12.0f ex/s  %6.2fx\n", label,
              1e3 * seconds, n_examples / seconds, baseline_seconds / seconds);
}

bool same_fit(const LevelDtResult& a, const LevelDtResult& b) {
  return a.lut == b.lut && a.final_entropy == b.final_entropy &&
         a.weighted_error == b.weighted_error;
}

}  // namespace

int main() {
  bench::print_header(
      "Training: scalar vs word-parallel LevelDT scans + Adaboost loops",
      "training engine acceptance: bitsliced LevelDT scans, P=6 >= 4x scalar");
  bench::JsonResults json("train_batch");

  const std::size_t n_examples =
      static_cast<std::size_t>(10000 * bench::bench_scale());
  const std::size_t n_features = 512;
  const BitMatrix features = random_bits(n_examples, n_features, 1234);
  const std::vector<double> weights = boosted_weights(n_examples, 77);
  Rng rng(99);
  BitVector targets(n_examples);
  for (std::size_t w = 0; w < targets.word_count(); ++w) {
    targets.words()[w] = rng.next_u64();
  }
  targets.mask_tail_word();

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const WordBackend default_backend = active_word_backend();
  const auto backends = available_word_backends();
  std::printf("dataset: %zu examples x %zu features, %u hardware threads\n",
              n_examples, n_features, static_cast<unsigned>(hw));
  bench::report_word_backends(json);

  bool pass = true;

  // --- LevelDT candidate scans, P=6 (S1 arity) and P=8 (M1/C1) ------------
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const double target = p == 6 ? 4.0 : 3.0;
    std::printf("LevelDT, P=%zu (%zu-level scan over %zu candidates):\n", p, p,
                n_features);
    LevelDtConfig scalar_config{.n_inputs = p, .word_parallel = false};
    LevelDtConfig sliced_config{.n_inputs = p, .word_parallel = true};

    LevelDtResult scalar_fit, sliced_fit, threaded_fit;
    const double scalar_s = time_best_of(3, [&] {
      scalar_fit = train_level_dt(features, targets, weights, scalar_config);
    });
    report("scalar scan", scalar_s, n_examples, scalar_s);
    char label[64], key[64];
    double sliced_s = 0.0;
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double backend_s = time_best_of(5, [&] {
        sliced_fit = train_level_dt(features, targets, weights, sliced_config);
      });
      if (!same_fit(scalar_fit, sliced_fit)) {
        std::printf("  ERROR: %s fit disagrees with the scalar path\n",
                    word_backend_name(backend));
        return 1;
      }
      if (backend == default_backend) sliced_s = backend_s;
      std::snprintf(label, sizeof label, "bitsliced (1t, %s)",
                    word_backend_name(backend));
      report(label, backend_s, n_examples, scalar_s);
      std::snprintf(key, sizeof key, "leveldt_p%zu_bitsliced_%s_ms", p,
                    word_backend_name(backend));
      json.add(key, 1e3 * backend_s);
    }
    set_word_backend(default_backend);
    const BatchEngine engine(hw);
    const double threaded_s = time_best_of(5, [&] {
      threaded_fit =
          train_level_dt(features, targets, weights, sliced_config, &engine);
    });
    if (!same_fit(scalar_fit, threaded_fit)) {
      std::printf("  ERROR: threaded fit disagrees with the scalar path\n");
      return 1;
    }
    std::snprintf(label, sizeof label, "bitsliced (%u threads)",
                  static_cast<unsigned>(hw));
    report(label, threaded_s, n_examples, scalar_s);

    const double speedup = scalar_s / sliced_s;
    std::printf(
        "  -> single-thread bitsliced speedup: %.2fx (target %.0fx)\n\n",
                speedup, target);
    if (speedup < target) pass = false;
    std::snprintf(key, sizeof key, "leveldt_p%zu_scalar_ms", p);
    json.add(key, 1e3 * scalar_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_bitsliced_ms", p);
    json.add(key, 1e3 * sliced_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_threaded_ms", p);
    json.add(key, 1e3 * threaded_s);
    std::snprintf(key, sizeof key, "leveldt_p%zu_speedup_1t", p);
    json.add(key, speedup);
  }

  // --- Adaboost error/reweight loops (weak learning held constant) --------
  {
    const std::size_t n_rounds = 16;  // MAT LUT range caps arity at 20
    std::vector<BitVector> round_preds;
    for (std::size_t r = 0; r < n_rounds; ++r) {
      BitVector preds(n_examples);
      for (std::size_t w = 0; w < preds.word_count(); ++w) {
        preds.words()[w] = rng.next_u64();
      }
      preds.mask_tail_word();
      round_preds.push_back(std::move(preds));
    }
    auto canned = [&](std::span<const double>, std::size_t round) {
      return round_preds[round];
    };

    std::printf("Adaboost, %zu rounds (canned weak learner):\n", n_rounds);
    AdaboostResult scalar_boost, word_boost;
    const double scalar_s = time_best_of(3, [&] {
      scalar_boost = run_adaboost(
          targets, canned, {.n_rounds = n_rounds, .word_parallel = false});
    });
    report("scalar loops", scalar_s, n_examples * n_rounds, scalar_s);
    json.add("adaboost_scalar_ms", 1e3 * scalar_s);
    double word_s = 0.0;
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double backend_s = time_best_of(5, [&] {
        word_boost = run_adaboost(
            targets, canned, {.n_rounds = n_rounds, .word_parallel = true});
      });
      for (std::size_t r = 0; r < n_rounds; ++r) {
        if (scalar_boost.rounds[r].alpha != word_boost.rounds[r].alpha) {
          std::printf("  ERROR: %s alphas disagree at round %zu\n",
                      word_backend_name(backend), r);
          return 1;
        }
      }
      if (backend == default_backend) word_s = backend_s;
      char label[64], key[64];
      std::snprintf(label, sizeof label, "word-parallel (%s)",
                    word_backend_name(backend));
      report(label, backend_s, n_examples * n_rounds, scalar_s);
      std::snprintf(key, sizeof key, "adaboost_word_parallel_%s_ms",
                    word_backend_name(backend));
      json.add(key, 1e3 * backend_s);
    }
    set_word_backend(default_backend);
    std::printf("  -> Adaboost loop speedup: %.2fx\n\n", scalar_s / word_s);
    json.add("adaboost_word_parallel_ms", 1e3 * word_s);
    json.add("adaboost_speedup", scalar_s / word_s);
  }

  // --- End-to-end RINC-2 fit ----------------------------------------------
  {
    RincConfig scalar_config{
        .lut_inputs = 6, .levels = 2, .total_dts = 36,
        .word_parallel_training = false};
    RincConfig word_config = scalar_config;
    word_config.word_parallel_training = true;

    std::printf("RINC-2 train (P=6, 36 DTs):\n");
    RincModule scalar_module, word_module;
    const double scalar_s = time_best_of(1, [&] {
      scalar_module =
          RincModule::train(features, targets, weights, scalar_config);
    });
    const double word_s = time_best_of(2, [&] {
      word_module = RincModule::train(features, targets, weights, word_config);
    });
    if (!(scalar_module.eval_dataset(features) ==
          word_module.eval_dataset(features)) ||
        scalar_module.train_error() != word_module.train_error()) {
      std::printf("  ERROR: trained modules disagree\n");
      return 1;
    }
    report("scalar train", scalar_s, n_examples, scalar_s);
    report("word-parallel train", word_s, n_examples, scalar_s);
    std::printf("  -> end-to-end training speedup: %.2fx\n\n",
                scalar_s / word_s);
    json.add("rinc2_train_scalar_ms", 1e3 * scalar_s);
    json.add("rinc2_train_word_parallel_ms", 1e3 * word_s);
    json.add("rinc2_train_speedup", scalar_s / word_s);
  }

  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  // Only gate at full scale: small runs (CI smoke at 0.25) are too noisy
  // for a hard threshold.
  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf(
      "acceptance (bitsliced LevelDT 1-thread: P=6 >= 4x, P=8 >= 3x): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
