// Table 6: per-inference energy of the classifier portion — vanilla float,
// 32/16-bit quantized, 1-bit (binary) and PoET-BiN — for all three
// architectures. Reproduces the paper's headline claims: up to ~10^6x vs
// float and up to ~10^3x vs binary quantization.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/power_model.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Table 6 — energy consumption comparison",
               "PoET-BiN Table 6 (energy = compute power x clock period; "
               "16 ns for the 62.5 MHz designs, 10 ns for SVHN's PoET-BiN)");

  struct Config {
    ClassifierArch arch;
    PoetBinHwSpec poetbin_spec;
    // Paper column, in J: vanilla, 1-bit, 16-bit, 32-bit, PoET-BiN.
    double paper[5];
  };
  const Config configs[] = {
      {arch_m1(), hw_spec_mnist(), {8.0e-5, 2.1e-7, 8.5e-6, 1.7e-5, 8.2e-9}},
      {arch_c1(),
       hw_spec_cifar10(),
       {5.7e-3, 3.9e-5, 6.0e-4, 1.2e-3, 5.4e-9}},
      {arch_s1(), hw_spec_svhn(), {1.6e-3, 9.2e-6, 1.0e-4, 3.6e-4, 4.1e-9}},
  };

  TablePrinter table(
      {"dataset", "technique", "paper (J)", "ours (J)", "ratio ours/paper"});
  for (const auto& config : configs) {
    const double ours[5] = {
        classifier_energy_joules(config.arch, Precision::kFloat32),
        classifier_energy_joules(config.arch, Precision::kBinary1),
        classifier_energy_joules(config.arch, Precision::kInt16),
        classifier_energy_joules(config.arch, Precision::kInt32),
        poetbin_energy_joules(config.poetbin_spec),
    };
    const char* techniques[5] = {"vanilla (float)", "1-bit quant",
                                 "16-bit quant", "32-bit quant", "PoET-BiN"};
    for (int i = 0; i < 5; ++i) {
      table.add_row({config.arch.name, techniques[i],
                     TablePrinter::sci(config.paper[i], 1),
                     TablePrinter::sci(ours[i], 1),
                     TablePrinter::fmt(ours[i] / config.paper[i], 2)});
    }
  }
  table.print(std::cout);

  std::printf("\nHeadline reduction factors (ours):\n");
  TablePrinter headline({"dataset", "vs float", "vs 16-bit", "vs 1-bit"});
  for (const auto& config : configs) {
    const double poet = poetbin_energy_joules(config.poetbin_spec);
    headline.add_row(
        {config.arch.name,
         TablePrinter::sci(
             classifier_energy_joules(config.arch, Precision::kFloat32) / poet,
             1),
         TablePrinter::sci(
             classifier_energy_joules(config.arch, Precision::kInt16) / poet, 1),
         TablePrinter::sci(
             classifier_energy_joules(config.arch, Precision::kBinary1) / poet,
             1)});
  }
  headline.print(std::cout);
  std::printf("\nPaper claims: ~1e4x (MNIST) to ~1e6x (CIFAR-10) vs float;\n"
              "25x (MNIST) to 7e3x (CIFAR-10) vs 1-bit quantization.\n");
  return 0;
}
