// RINC conv layer: scalar patch oracle vs bitsliced word-parallel eval.
//
// The bitsliced conv pass (core/batch_eval.cpp) never materializes patches:
// each patch bit of each output position is a pointer into the packed input
// columns (or a shared zero buffer for padding), and the channel modules
// Shannon-reduce 64 examples per word op. This bench times that against the
// scalar eval_dataset oracle on a CIFAR-sized binary feature map, one row
// per available SIMD word backend plus a threaded row, every row verified
// bit-identical.
//
// Acceptance bar (gated only at POETBIN_BENCH_SCALE >= 1): the
// single-threaded bitsliced conv on the default backend must be >= 10x the
// scalar path. The fused ConvModel predict (conv pass + classifier argmax
// on one engine) is timed against the scalar predict_dataset as well.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/rinc_conv.h"
#include "util/bit_matrix.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    BitVector& column = bits.column(c);
    for (std::size_t w = 0; w < column.word_count(); ++w) {
      column.words()[w] = rng.next_u64();
    }
    column.mask_tail_word();
  }
  return bits;
}

template <typename Fn>
double time_best_of(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void report(const char* label, double seconds, std::size_t n_examples,
            double baseline_seconds) {
  std::printf("  %-28s %10.3f ms  %12.0f ex/s  %6.2fx\n", label,
              1e3 * seconds, n_examples / seconds, baseline_seconds / seconds);
}

}  // namespace

int main() {
  bench::print_header(
      "RINC conv: scalar patch oracle vs bitsliced word-parallel eval",
      "acceptance: default backend 1-thread conv >= 10x scalar");
  bench::JsonResults json("rinc_conv");

  // A CIFAR-shaped binary front end: 3x16x16 frames into 8 output channels.
  const BinShape3 in_shape{3, 16, 16};
  RincConvConfig config;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 1;
  config.padding = 1;
  config.rinc = {.lut_inputs = 5, .levels = 1, .total_dts = 5};

  const std::size_t n_examples =
      static_cast<std::size_t>(4000 * bench::bench_scale());
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("dataset: %zu frames of %zux%zux%zu bits, %u hardware threads\n",
              n_examples, in_shape.channels, in_shape.height, in_shape.width,
              static_cast<unsigned>(hw));
  bench::report_word_backends(json);

  // Train on a small pool (fidelity is not the point here), eval at scale.
  const BitMatrix train_inputs = random_bits(48, in_shape.flat(), 11);
  const BitMatrix train_targets =
      random_bits(48, config.out_channels * in_shape.height * in_shape.width,
                  12);
  const RincConvLayer layer =
      RincConvLayer::train(train_inputs, in_shape, train_targets, config);
  std::printf("conv layer: %zu channels, %zu-bit patches, %zu LUTs/position\n",
              config.out_channels, layer.patch_bits(),
              layer.lut_count_per_position());

  const BitMatrix frames = random_bits(n_examples, in_shape.flat(), 13);
  const WordBackend default_backend = active_word_backend();

  BitMatrix scalar_out, sliced_out;
  const double scalar_s =
      time_best_of(3, [&] { scalar_out = layer.eval_dataset(frames); });
  report("scalar eval_dataset", scalar_s, n_examples, scalar_s);
  json.add("conv_eval_scalar_ms", 1e3 * scalar_s);

  char key[64], label[64];
  double default_s = 0.0;
  for (const WordBackend backend : available_word_backends()) {
    set_word_backend(backend);
    const BatchEngine engine(1);
    const double sliced_s = time_best_of(
        5, [&] { sliced_out = layer.eval_dataset_batched(frames, engine); });
    if (!(sliced_out == scalar_out)) {
      std::printf("  ERROR: %s conv output disagrees with scalar path\n",
                  word_backend_name(backend));
      return 1;
    }
    if (backend == default_backend) default_s = sliced_s;
    std::snprintf(label, sizeof label, "bitsliced (1t, %s)",
                  word_backend_name(backend));
    report(label, sliced_s, n_examples, scalar_s);
    std::snprintf(key, sizeof key, "conv_eval_%s_ms",
                  word_backend_name(backend));
    json.add(key, 1e3 * sliced_s);
  }
  set_word_backend(default_backend);

  const BatchEngine pool(hw);
  const double threaded_s = time_best_of(
      5, [&] { sliced_out = layer.eval_dataset_batched(frames, pool); });
  if (!(sliced_out == scalar_out)) {
    std::printf("  ERROR: threaded conv output disagrees with scalar path\n");
    return 1;
  }
  std::snprintf(label, sizeof label, "bitsliced (%u threads)",
                static_cast<unsigned>(hw));
  report(label, threaded_s, n_examples, scalar_s);
  json.add("conv_eval_threaded_ms", 1e3 * threaded_s);

  const double speedup = scalar_s / default_s;
  json.add("conv_eval_speedup_1t", speedup);
  std::printf("  -> default backend 1-thread speedup: %.2fx (target 10x)\n\n",
              speedup);
  bool pass = speedup >= 10.0;

  // Fused end-to-end ConvModel predict: bitsliced conv + fused classifier
  // argmax on one engine, against the all-scalar oracle.
  {
    ConvModel model;
    model.conv = layer;
    const BitMatrix conv_out = model.conv.eval_dataset(train_inputs);
    std::vector<int> labels(train_inputs.rows());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<int>(i % 10);
    }
    const std::size_t p = 4;
    BitMatrix intermediate(conv_out.rows(), 10 * p);
    for (std::size_t i = 0; i < intermediate.rows(); ++i) {
      for (std::size_t j = 0; j < intermediate.cols(); ++j) {
        intermediate.set(i, j, labels[i] == static_cast<int>(j / p));
      }
    }
    PoetBinConfig classifier_config;
    classifier_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
    classifier_config.n_classes = 10;
    classifier_config.output.epochs = 5;
    model.classifier =
        PoetBin::train(conv_out, intermediate, labels, classifier_config);

    std::printf("ConvModel predict, 10 classes:\n");
    std::vector<int> scalar_pred, fused_pred;
    const double predict_scalar_s = time_best_of(
        3, [&] { scalar_pred = model.predict_dataset(frames); });
    report("scalar predict_dataset", predict_scalar_s, n_examples,
           predict_scalar_s);
    json.add("conv_predict_scalar_ms", 1e3 * predict_scalar_s);

    const BatchEngine engine(1);
    const double fused_s = time_best_of(5, [&] {
      fused_pred = model.predict_dataset_batched(frames, engine);
    });
    if (fused_pred != scalar_pred) {
      std::printf("  ERROR: fused conv predict disagrees with scalar\n");
      return 1;
    }
    report("fused conv+argmax (1t)", fused_s, n_examples, predict_scalar_s);
    json.add("conv_predict_fused_ms", 1e3 * fused_s);
    json.add("conv_predict_speedup_1t", predict_scalar_s / fused_s);
    std::printf("\n");
  }

  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  // Only gate at full scale: small runs (CI smoke at 0.25) are too noisy
  // for a hard threshold.
  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf("acceptance (default conv >= 10x scalar): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
