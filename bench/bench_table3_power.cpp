// Table 3: PoET-BiN classifier power (dynamic / static / total) for the
// paper's three FPGA configurations, from the calibrated activity model.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/power_model.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Table 3 — PoET-BiN power results",
               "PoET-BiN Table 3 (Spartan-6 measurements; our per-LUT "
               "activity model is calibrated on the MNIST point)");

  struct PaperPower {
    PoetBinHwSpec spec;
    double dynamic, static_, total;
  };
  const PaperPower rows[] = {
      {hw_spec_mnist(), 0.468, 0.045, 0.513},
      {hw_spec_cifar10(), 0.300, 0.041, 0.341},
      {hw_spec_svhn(), 0.374, 0.043, 0.417},
  };

  TablePrinter table({"dataset", "clock(MHz)", "6-LUTs", "paper dyn(W)",
                      "model dyn(W)", "paper total(W)", "model total(W)"});
  for (const auto& row : rows) {
    table.add_row({row.spec.name, TablePrinter::fmt(row.spec.clock_mhz, 1),
                   std::to_string(poetbin_total_6luts(row.spec)),
                   TablePrinter::fmt(row.dynamic, 3),
                   TablePrinter::fmt(poetbin_dynamic_power_watts(row.spec), 3),
                   TablePrinter::fmt(row.total, 3),
                   TablePrinter::fmt(poetbin_total_power_watts(row.spec), 3)});
  }
  table.print(std::cout);

  std::printf(
      "\nNotes: MNIST reproduced by calibration; CIFAR-10/SVHN predicted by\n"
      "the single-parameter model (within ~2.5x, same order — the paper's\n"
      "SVHN dynamic power is high for its LUT count because of its faster\n"
      "clock and denser routing; see EXPERIMENTS.md).\n");
  return 0;
}
