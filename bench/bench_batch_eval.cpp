// Scalar vs bitsliced vs threaded batch inference on a synthetic dataset.
//
// The acceptance bar for the batch engine: the single-threaded bitsliced
// path must be >= 8x the scalar eval_dataset throughput on a 10k-example
// dataset. The threaded rows show how the engine scales when cores are
// available (on a 1-core box they match the single-thread row).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/batch_eval.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "util/bit_matrix.h"
#include "util/rng.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    BitVector& column = bits.column(c);
    for (std::size_t w = 0; w < column.word_count(); ++w) {
      column.words()[w] = rng.next_u64();
    }
    column.mask_tail_word();
  }
  return bits;
}

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t leaf_arity, std::size_t n_features,
                       Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(leaf_arity, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(
        random_rinc(level - 1, fanin, leaf_arity, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

template <typename Fn>
double time_best_of(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void report(const char* label, double seconds, std::size_t n_examples,
            double baseline_seconds) {
  std::printf("  %-28s %10.3f ms  %12.0f ex/s  %6.2fx\n", label,
              1e3 * seconds, n_examples / seconds, baseline_seconds / seconds);
}

}  // namespace

int main() {
  bench::print_header("Batch inference: scalar vs bitsliced vs threaded",
                      "batch engine acceptance: bitsliced 1-thread >= 8x scalar");
  bench::JsonResults json("batch_eval");

  const std::size_t n_examples =
      static_cast<std::size_t>(10000 * bench::bench_scale());
  const std::size_t n_features = 512;
  const BitMatrix features = random_bits(n_examples, n_features, 1234);
  Rng rng(99);

  std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("dataset: %zu examples x %zu features, %u hardware threads\n\n",
              n_examples, n_features, static_cast<unsigned>(hw));

  bool pass = true;
  // P=6 (the paper's S1 arity) and P=8 (M1/C1), RINC-2 hierarchies; the P=8
  // config uses fanin 4 to keep the LUT count comparable to the paper's
  // partial trees.
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const std::size_t fanin = p == 6 ? 6 : 4;
    const RincModule module =
        random_rinc(/*level=*/2, fanin, /*leaf_arity=*/p, n_features, rng);
    std::printf("RINC-2, fanin %zu (%zu LUTs), P=%zu leaf arity:\n", fanin,
                module.lut_count(), p);

    BitVector scalar_out, sliced_out, threaded_out;
    const double scalar_s =
        time_best_of(3, [&] { scalar_out = module.eval_dataset(features); });
    const double sliced_s = time_best_of(
        5, [&] { sliced_out = module.eval_dataset_batched(features); });
    const BatchEngine engine(hw);
    const double threaded_s = time_best_of(
        5, [&] { threaded_out = engine.eval_dataset(module, features); });

    if (!(sliced_out == scalar_out) || !(threaded_out == scalar_out)) {
      std::printf("  ERROR: outputs disagree with scalar path\n");
      return 1;
    }
    report("scalar eval_dataset", scalar_s, n_examples, scalar_s);
    report("bitsliced (1 thread)", sliced_s, n_examples, scalar_s);
    char label[64];
    std::snprintf(label, sizeof label, "bitsliced (%u threads)",
                  static_cast<unsigned>(hw));
    report(label, threaded_s, n_examples, scalar_s);

    const double speedup = scalar_s / sliced_s;
    std::printf("  -> single-thread bitsliced speedup: %.2fx (target 8x)\n\n",
                speedup);
    if (speedup < 8.0) pass = false;
    char key[64];
    std::snprintf(key, sizeof key, "eval_p%zu_scalar_ms", p);
    json.add(key, 1e3 * scalar_s);
    std::snprintf(key, sizeof key, "eval_p%zu_bitsliced_ms", p);
    json.add(key, 1e3 * sliced_s);
    std::snprintf(key, sizeof key, "eval_p%zu_threaded_ms", p);
    json.add(key, 1e3 * threaded_s);
    std::snprintf(key, sizeof key, "eval_p%zu_speedup_1t", p);
    json.add(key, speedup);
  }
  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  // Only gate at full scale: small runs (CI smoke at 0.25) are too noisy
  // for a hard threshold.
  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s 8x\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf("acceptance (bitsliced 1-thread >= 8x scalar): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
