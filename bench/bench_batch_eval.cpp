// Scalar vs bitsliced vs threaded batch inference, per SIMD word backend.
//
// Acceptance bars (gated only at POETBIN_BENCH_SCALE >= 1):
//   - the single-threaded bitsliced path on the default (widest) backend
//     must be >= 8x the scalar eval_dataset throughput on 10k examples;
//   - on AVX2-capable hosts the avx2 backend must be >= 1.5x the scalar64
//     word path on the P=6 RINC-2 eval.
// Every backend the host supports is timed and written to
// bench_results.json (keys suffixed _scalar64/_avx2/_avx512) so the CI
// regression diff covers all of them; the unsuffixed keys are the default
// backend, matching older artifacts. The fused output-layer argmax
// (predict_dataset_batched) is benchmarked against the scalar
// predict_dataset on a 10-class model, and the serving section times
// MicroBatcher predict_one traffic (window 64) against the scalar
// one-example-at-a-time loop (gate: >= 5x at P=6, serve_microbatch_* rows).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "nn/quantize.h"
#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "util/bit_matrix.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    BitVector& column = bits.column(c);
    for (std::size_t w = 0; w < column.word_count(); ++w) {
      column.words()[w] = rng.next_u64();
    }
    column.mask_tail_word();
  }
  return bits;
}

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t leaf_arity, std::size_t n_features,
                       Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(leaf_arity, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(
        random_rinc(level - 1, fanin, leaf_arity, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

// 10-class PoET-BiN with random RINC-1 modules and random quantized codes:
// realistic output-layer shape for the fused argmax without a full training
// run.
PoetBin random_model(std::size_t p, std::size_t n_features, Rng& rng) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = 10;
  const std::size_t n_modules = config.n_classes * p;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_modules; ++m) {
    modules.push_back(random_rinc(1, p, p, n_features, rng));
  }
  const QuantizerParams quantizer;  // 8-bit codes
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(config.n_classes);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.resize(n_combos);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
    for (std::size_t a = 0; a < n_combos; ++a) {
      neurons[c].codes[a] = rng.next_index(quantizer.levels());
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

template <typename Fn>
double time_best_of(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void report(const char* label, double seconds, std::size_t n_examples,
            double baseline_seconds) {
  std::printf("  %-28s %10.3f ms  %12.0f ex/s  %6.2fx\n", label,
              1e3 * seconds, n_examples / seconds, baseline_seconds / seconds);
}

}  // namespace

int main() {
  bench::print_header(
      "Batch inference: scalar vs bitsliced per word backend",
      "acceptance: default >= 8x scalar; avx2 >= 1.5x scalar64 (P=6); "
      "micro-batch serve >= 5x single (P=6)");
  bench::JsonResults json("batch_eval");

  const std::size_t n_examples =
      static_cast<std::size_t>(10000 * bench::bench_scale());
  const std::size_t n_features = 512;
  const BitMatrix features = random_bits(n_examples, n_features, 1234);
  Rng rng(99);

  std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const WordBackend default_backend = active_word_backend();
  const auto backends = available_word_backends();
  std::printf("dataset: %zu examples x %zu features, %u hardware threads\n",
              n_examples, n_features, static_cast<unsigned>(hw));
  bench::report_word_backends(json);

  bool pass = true;
  // P=6 (the paper's S1 arity) and P=8 (M1/C1), RINC-2 hierarchies; the P=8
  // config uses fanin 4 to keep the LUT count comparable to the paper's
  // partial trees.
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const std::size_t fanin = p == 6 ? 6 : 4;
    const RincModule module =
        random_rinc(/*level=*/2, fanin, /*leaf_arity=*/p, n_features, rng);
    std::printf("RINC-2, fanin %zu (%zu LUTs), P=%zu leaf arity:\n", fanin,
                module.lut_count(), p);

    BitVector scalar_out, sliced_out, threaded_out;
    const double scalar_s =
        time_best_of(3, [&] { scalar_out = module.eval_dataset(features); });
    report("scalar eval_dataset", scalar_s, n_examples, scalar_s);

    char key[64], label[64];
    std::snprintf(key, sizeof key, "eval_p%zu_scalar_ms", p);
    json.add(key, 1e3 * scalar_s);

    // One single-thread bitsliced row per available backend, all verified
    // bit-identical against the scalar output.
    double backend_s[3] = {0.0, 0.0, 0.0};
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double sliced_s = time_best_of(
          5, [&] { sliced_out = module.eval_dataset_batched(features); });
      if (!(sliced_out == scalar_out)) {
        std::printf("  ERROR: %s output disagrees with scalar path\n",
                    word_backend_name(backend));
        return 1;
      }
      backend_s[static_cast<std::size_t>(backend)] = sliced_s;
      std::snprintf(label, sizeof label, "bitsliced (1t, %s)",
                    word_backend_name(backend));
      report(label, sliced_s, n_examples, scalar_s);
      std::snprintf(key, sizeof key, "eval_p%zu_bitsliced_%s_ms", p,
                    word_backend_name(backend));
      json.add(key, 1e3 * sliced_s);
    }
    set_word_backend(default_backend);
    const double sliced_s =
        backend_s[static_cast<std::size_t>(default_backend)];

    const BatchEngine engine(hw);
    const double threaded_s = time_best_of(
        5, [&] { threaded_out = engine.eval_dataset(module, features); });
    if (!(threaded_out == scalar_out)) {
      std::printf("  ERROR: threaded output disagrees with scalar path\n");
      return 1;
    }
    std::snprintf(label, sizeof label, "bitsliced (%u threads)",
                  static_cast<unsigned>(hw));
    report(label, threaded_s, n_examples, scalar_s);

    const double speedup = scalar_s / sliced_s;
    std::printf("  -> default backend 1-thread speedup: %.2fx (target 8x)\n",
                speedup);
    if (speedup < 8.0) pass = false;
    const double scalar64_s =
        backend_s[static_cast<std::size_t>(WordBackend::kScalar64)];
    const double avx2_s =
        backend_s[static_cast<std::size_t>(WordBackend::kAvx2)];
    if (p == 6 && avx2_s > 0.0) {
      const double widening = scalar64_s / avx2_s;
      std::printf("  -> avx2 vs scalar64 word path: %.2fx (target 1.5x)\n",
                  widening);
      json.add("eval_p6_avx2_vs_scalar64", widening);
      if (widening < 1.5) pass = false;
    }
    std::printf("\n");
    std::snprintf(key, sizeof key, "eval_p%zu_bitsliced_ms", p);
    json.add(key, 1e3 * sliced_s);
    std::snprintf(key, sizeof key, "eval_p%zu_threaded_ms", p);
    json.add(key, 1e3 * threaded_s);
    std::snprintf(key, sizeof key, "eval_p%zu_speedup_1t", p);
    json.add(key, speedup);
  }

  // --- Fused output-layer argmax (predict) per backend ----------------------
  const BatchEngine fused_engine(1);
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const PoetBin model = random_model(p, n_features, rng);
    std::printf("PoET-BiN predict, 10 classes, P=%zu (%zu modules):\n", p,
                model.n_modules());
    std::vector<int> scalar_pred, fused_pred;
    const double scalar_s =
        time_best_of(3, [&] { scalar_pred = model.predict_dataset(features); });
    report("scalar predict_dataset", scalar_s, n_examples, scalar_s);
    char key[64], label[64];
    std::snprintf(key, sizeof key, "predict_p%zu_scalar_ms", p);
    json.add(key, 1e3 * scalar_s);
    for (const auto backend : backends) {
      set_word_backend(backend);
      const double fused_s = time_best_of(5, [&] {
        fused_pred = model.predict_dataset_batched(features, fused_engine);
      });
      if (fused_pred != scalar_pred) {
        std::printf("  ERROR: fused argmax (%s) disagrees with scalar\n",
                    word_backend_name(backend));
        return 1;
      }
      std::snprintf(label, sizeof label, "fused argmax (1t, %s)",
                    word_backend_name(backend));
      report(label, fused_s, n_examples, scalar_s);
      std::snprintf(key, sizeof key, "predict_p%zu_fused_%s_ms", p,
                    word_backend_name(backend));
      json.add(key, 1e3 * fused_s);
    }
    set_word_backend(default_backend);
    std::printf("\n");
  }

  // --- Serving: micro-batched predict_one vs one example at a time ----------
  // The MicroBatcher packs single-example requests into 64-wide windows and
  // dispatches each window as one fused bitsliced pass on the Runtime's
  // persistent engine (single thread here, so the row isolates the
  // batching win, not thread parallelism). Gate: >= 5x the scalar
  // one-example-at-a-time loop at P=6, window 64.
  for (const std::size_t p : {std::size_t{6}, std::size_t{8}}) {
    const PoetBin model = random_model(p, n_features, rng);
    std::printf("PoET-BiN serving, 10 classes, P=%zu, window 64:\n", p);
    std::vector<BitVector> rows;
    rows.reserve(n_examples);
    for (std::size_t i = 0; i < n_examples; ++i) {
      rows.push_back(features.row(i));
    }
    std::vector<int> single_pred(n_examples), served_pred(n_examples);
    const double single_s = time_best_of(3, [&] {
      for (std::size_t i = 0; i < n_examples; ++i) {
        single_pred[i] = model.predict(rows[i]);
      }
    });
    report("one example at a time", single_s, n_examples, single_s);

    const Runtime runtime(model, {.threads = 1});
    const double serve_s = time_best_of(5, [&] {
      MicroBatcher batcher(runtime, {.max_batch = 64});
      std::vector<MicroBatcher::Ticket> tickets;
      tickets.reserve(n_examples);
      for (std::size_t i = 0; i < n_examples; ++i) {
        tickets.push_back(batcher.submit(rows[i]));
      }
      batcher.flush();
      for (std::size_t i = 0; i < n_examples; ++i) {
        served_pred[i] = tickets[i].get();
      }
    });
    if (served_pred != single_pred) {
      std::printf("  ERROR: micro-batched serving disagrees with scalar\n");
      return 1;
    }
    report("micro-batched (window 64, 1t)", serve_s, n_examples, single_s);
    const double serve_speedup = single_s / serve_s;
    char key[64];
    std::snprintf(key, sizeof key, "serve_single_p%zu_ms", p);
    json.add(key, 1e3 * single_s);
    std::snprintf(key, sizeof key, "serve_microbatch_p%zu_ms", p);
    json.add(key, 1e3 * serve_s);
    std::snprintf(key, sizeof key, "serve_microbatch_p%zu_speedup", p);
    json.add(key, serve_speedup);
    if (p == 6) {
      std::printf("  -> micro-batching speedup: %.2fx (target 5x)\n",
                  serve_speedup);
      if (serve_speedup < 5.0) pass = false;
    }
    std::printf("\n");
  }

  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  // Only gate at full scale: small runs (CI smoke at 0.25) are too noisy
  // for a hard threshold.
  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf(
      "acceptance (default >= 8x scalar; avx2 >= 1.5x scalar64 at P=6; "
      "micro-batch >= 5x single at P=6): %s\n",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
