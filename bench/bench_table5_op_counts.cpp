// Table 5: multiplication/addition counts of the fully connected classifier
// portions replaced by PoET-BiN. These are exact closed forms; the bench
// must match the paper digit-for-digit.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/power_model.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Table 5 — total mathematical operations",
               "PoET-BiN Table 5 (one MAC per weight of the FC classifier)");

  struct Row {
    ClassifierArch arch;
    std::size_t paper_ops;
  };
  const Row rows[] = {
      {arch_m1(), 267264u},
      {arch_c1(), 18915328u},
      {arch_s1(), 5263360u},
  };

  TablePrinter table({"dataset", "classifier dims", "paper adds", "our adds",
                      "paper mults", "our mults", "match"});
  bool all_match = true;
  for (const auto& row : rows) {
    const OpCounts counts = count_classifier_ops(row.arch);
    std::string dims;
    for (std::size_t i = 0; i < row.arch.dims.size(); ++i) {
      dims += std::to_string(row.arch.dims[i]);
      if (i + 1 < row.arch.dims.size()) dims += "-";
    }
    const bool match =
        counts.adds == row.paper_ops && counts.mults == row.paper_ops;
    all_match = all_match && match;
    table.add_row({row.arch.name, dims, std::to_string(row.paper_ops),
                   std::to_string(counts.adds), std::to_string(row.paper_ops),
                   std::to_string(counts.mults), match ? "EXACT" : "MISMATCH"});
  }
  table.print(std::cout);
  std::printf("\n%s\n", all_match
                            ? "All three architectures match Table 5 exactly."
                            : "MISMATCH against Table 5 — investigate!");
  return all_match ? 0 : 1;
}
