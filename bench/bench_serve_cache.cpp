// Prediction cache: micro-batched serving with the lock-free PredictCache
// on vs off, swept across zipf skew, plus a hot-swap churn phase.
//
// The sweep drives an in-process MicroBatcher (no TCP — this isolates the
// cache's effect on the fused predict path itself) from 8 submit()-burst
// threads at zipf theta 0.6 / 0.9 / 0.99, cache off then on. The cache-on
// rows measure steady state: the cache is sized to the key set and
// prefilled the way a long-running server's would be (a cold run this
// short would mostly measure compulsory misses). Every returned
// prediction is checked against the scalar PoetBin::predict of its key,
// so every row is also a bit-identity test — a single mismatch fails the
// bench at any scale.
//
// The churn phase then turns the cache on and hammers one runtime while a
// mutator thread alternates retrain_output_layer (which CHANGES the
// answers) and a packed-file hot reload. Each publication appends a
// versioned expected table; every served prediction must match one of the
// published tables (a result computed between a publish and its table
// append is re-verified at the end). The phase also asserts the epoch
// invalidation actually fired (stale > 0) and that the cache kept serving
// (hits > 0) across the swaps.
//
// Acceptance (gated only at POETBIN_BENCH_SCALE >= 1): cache-on throughput
// >= 2x cache-off at theta 0.99. Bit-identity and churn consistency are
// hard failures at any scale.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kBurst = 64;
constexpr std::size_t kCacheBytes = 256u << 10;  // 16Ki entries of 16 bytes

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t leaf_arity, std::size_t n_features,
                       Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(leaf_arity, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(
        random_rinc(level - 1, fanin, leaf_arity, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

// Same 10-class random model shape as bench_serve_net: realistic output
// layer without a training run.
PoetBin random_model(std::size_t p, std::size_t n_features, Rng& rng) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = 10;
  const std::size_t n_modules = config.n_classes * p;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_modules; ++m) {
    modules.push_back(random_rinc(1, p, p, n_features, rng));
  }
  const QuantizerParams quantizer;
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(config.n_classes);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.resize(n_combos);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
    for (std::size_t a = 0; a < n_combos; ++a) {
      neurons[c].codes[a] = rng.next_index(quantizer.levels());
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

std::vector<BitVector> random_pool(std::size_t keys, std::size_t n_features,
                                   Rng& rng) {
  std::vector<BitVector> pool;
  pool.reserve(keys);
  for (std::size_t k = 0; k < keys; ++k) {
    BitVector bits(n_features);
    Rng key_rng = rng.fork(k);
    for (std::size_t w = 0; w < bits.word_count(); ++w) {
      bits.words()[w] = key_rng.next_u64();
    }
    bits.mask_tail_word();
    pool.push_back(std::move(bits));
  }
  return pool;
}

// Bitslices `rows` of the pool into the column-major matrix shape
// Runtime::predict takes (the same scatter the MicroBatcher does).
BitMatrix pack_rows(const std::vector<BitVector>& pool, std::size_t rows) {
  const std::size_t n_features = pool[0].size();
  BitMatrix packed(rows, n_features);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t row_bit = 1ULL << (i & 63);
    const std::size_t row_word = i >> 6;
    for (std::size_t f = 0; f < n_features; ++f) {
      if (pool[i].get(f)) packed.column(f).words()[row_word] |= row_bit;
    }
  }
  return packed;
}

struct SweepResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t mismatches = 0;
  ServeStats stats;
};

SweepResult run_sweep(const PoetBin& model, const std::vector<BitVector>& pool,
                      const std::vector<int>& expected, double theta,
                      std::size_t cache_bytes, std::size_t bursts_per_thread) {
  Runtime runtime(model, {.threads = 1, .cache_bytes = cache_bytes});
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(200)});
  if (PredictCache* cache = runtime.cache()) {
    // Steady state: a long-running server's cache already holds the hot
    // set. Prefill through the public insert path at the live version.
    for (std::size_t k = 0; k < pool.size(); ++k) {
      cache->insert(PredictCache::make_key(pool[k]), expected[k],
                    runtime.model_version());
    }
  }
  std::vector<std::size_t> mismatches(kClientThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  const auto t0 = Clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      FastZipf zipf(0xcac4eULL * (t + 1), theta, pool.size());
      std::vector<std::size_t> keys(kBurst);
      std::vector<MicroBatcher::Ticket> tickets;
      for (std::size_t b = 0; b < bursts_per_thread; ++b) {
        tickets.clear();
        for (std::size_t i = 0; i < kBurst; ++i) {
          keys[i] = zipf.next();
          tickets.push_back(batcher.submit(pool[keys[i]]));
        }
        for (std::size_t i = 0; i < kBurst; ++i) {
          if (tickets[i].get() != expected[keys[i]]) ++mismatches[t];
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const auto t1 = Clock::now();

  SweepResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.requests = kClientThreads * bursts_per_thread * kBurst;
  for (const std::size_t m : mismatches) result.mismatches += m;
  result.stats = batcher.stats();
  return result;
}

// One published expected table: every pool key's prediction under one model
// version. Clients match results against any published table.
using Table = std::shared_ptr<const std::vector<int>>;

struct ChurnOutcome {
  std::size_t requests = 0;
  std::size_t unresolved = 0;  // results matching NO published table
  std::size_t publishes = 0;
  ServeStats stats;
};

ChurnOutcome run_churn(const PoetBin& model,
                       const std::vector<BitVector>& pool,
                       std::size_t rounds) {
  Runtime runtime(model, {.threads = 1, .cache_bytes = kCacheBytes});
  MicroBatcher batcher(runtime,
                       {.max_batch = 64,
                        .max_wait = std::chrono::microseconds(200)});
  const BitMatrix packed_pool = pack_rows(pool, pool.size());
  const std::size_t n_train = std::min<std::size_t>(512, pool.size());
  const BitMatrix train = pack_rows(pool, n_train);

  std::mutex tables_mu;
  std::vector<Table> tables;
  tables.push_back(
      std::make_shared<const std::vector<int>>(runtime.predict(packed_pool)));

  const std::filesystem::path swap_path =
      std::filesystem::temp_directory_path() /
      ("bench_serve_cache_model." + std::to_string(::getpid()) + ".pbm");
  if (!runtime.save_packed(swap_path.string()).ok()) {
    std::printf("  ERROR: cannot write swap file %s\n",
                swap_path.string().c_str());
    return {};
  }

  std::atomic<bool> done{false};
  struct Suspect {
    std::size_t key;
    int got;
  };
  std::vector<std::size_t> requests(kClientThreads, 0);
  std::vector<std::vector<Suspect>> suspects(kClientThreads);
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      FastZipf zipf(0xc4aa5ULL * (t + 1), 0.9, pool.size());
      std::vector<std::size_t> keys(kBurst);
      std::vector<MicroBatcher::Ticket> tickets;
      std::vector<Table> snapshot;
      while (!done.load(std::memory_order_relaxed)) {
        {
          std::lock_guard<std::mutex> lock(tables_mu);
          snapshot = tables;
        }
        tickets.clear();
        for (std::size_t i = 0; i < kBurst; ++i) {
          keys[i] = zipf.next();
          tickets.push_back(batcher.submit(pool[keys[i]]));
        }
        for (std::size_t i = 0; i < kBurst; ++i) {
          const int got = tickets[i].get();
          bool matched = false;
          // Newest table first: steady state matches on the first probe.
          for (std::size_t j = snapshot.size(); j-- > 0 && !matched;) {
            matched = (*snapshot[j])[keys[i]] == got;
          }
          // A result computed on a version whose table isn't appended yet
          // (publish and table append are not atomic) is re-checked below
          // once every table is in.
          if (!matched) suspects[t].push_back({keys[i], got});
        }
        requests[t] += kBurst;
      }
    });
  }

  // The mutator: alternate an answers-changing retrain with a same-bytes
  // packed-file reload. Both publish a new version, so both must fire the
  // cache's epoch invalidation.
  std::size_t publishes = 0;
  Rng label_rng(0x10ad5);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    if (round % 2 == 0) {
      std::vector<int> labels(n_train);
      for (auto& label : labels) {
        label = static_cast<int>(label_rng.next_index(10));
      }
      runtime.retrain_output_layer(train, labels);
    } else {
      if (!runtime.reload(swap_path.string()).ok()) {
        std::printf("  ERROR: hot reload from %s failed\n",
                    swap_path.string().c_str());
        break;
      }
    }
    ++publishes;
    const std::vector<int> table = runtime.predict(packed_pool);
    std::lock_guard<std::mutex> lock(tables_mu);
    tables.push_back(std::make_shared<const std::vector<int>>(table));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  done.store(true);
  for (auto& client : clients) client.join();
  std::filesystem::remove(swap_path);

  ChurnOutcome outcome;
  outcome.publishes = publishes;
  outcome.stats = batcher.stats();
  for (const std::size_t r : requests) outcome.requests += r;
  for (const auto& thread_suspects : suspects) {
    for (const Suspect& s : thread_suspects) {
      bool matched = false;
      for (const Table& table : tables) {
        if ((*table)[s.key] == s.got) {
          matched = true;
          break;
        }
      }
      if (!matched) ++outcome.unresolved;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "Prediction cache: fused predict path with PredictCache on vs off",
      "8 submit-burst threads, zipf sweep + hot-swap churn; acceptance: "
      "cache on >= 2x off at theta 0.99, bit-identity always");
  bench::JsonResults json("serve_cache");

  Rng rng(20260807);
  const std::size_t p = 6;
  const std::size_t n_features = 256;
  const PoetBin model = random_model(p, n_features, rng);

  const std::size_t keys = std::max(
      std::size_t{4096},
      static_cast<std::size_t>(65536 * bench::bench_scale()));
  const std::vector<BitVector> pool = random_pool(keys, n_features, rng);
  std::vector<int> expected(keys);
  for (std::size_t k = 0; k < keys; ++k) expected[k] = model.predict(pool[k]);

  const std::size_t bursts_per_thread = std::max(
      std::size_t{20},
      static_cast<std::size_t>(150 * bench::bench_scale()));
  // Two entries of headroom per key: with 4-way buckets and
  // replace-on-collision eviction this keeps the whole key set resident,
  // so the sweep measures hit-path cost, not capacity churn.
  const std::size_t sweep_cache_bytes = 2 * keys * 16;
  std::printf("P=%zu model, %zu features, %zu keys vs %zu-entry cache, "
              "%zu clients x %zu bursts x %zu wide:\n",
              p, n_features, keys, sweep_cache_bytes / 16, kClientThreads,
              bursts_per_thread, kBurst);

  bool pass = true;
  double speedup_099 = 0.0;
  for (const double theta : {0.6, 0.9, 0.99}) {
    const SweepResult off =
        run_sweep(model, pool, expected, theta, 0, bursts_per_thread);
    const SweepResult on = run_sweep(model, pool, expected, theta,
                                     sweep_cache_bytes, bursts_per_thread);
    if (off.mismatches > 0 || on.mismatches > 0) {
      std::printf("  ERROR: served predictions disagree with scalar predict "
                  "(theta %.2f: off %zu, on %zu)\n",
                  theta, off.mismatches, on.mismatches);
      return 1;
    }
    const double off_rps = static_cast<double>(off.requests) / off.seconds;
    const double on_rps = static_cast<double>(on.requests) / on.seconds;
    std::printf("  theta %.2f: off %9.0f req/s  on %9.0f req/s  (%.2fx, "
                "hit rate %.1f%%)\n",
                theta, off_rps, on_rps, on_rps / off_rps,
                100.0 * on.stats.cache_hit_rate());
    const int theta_key = static_cast<int>(theta * 100 + 0.5);
    char key[64];
    std::snprintf(key, sizeof(key), "serve_cache_theta%03d_off_kqps",
                  theta_key);
    json.add(key, off_rps / 1e3);
    std::snprintf(key, sizeof(key), "serve_cache_theta%03d_on_kqps",
                  theta_key);
    json.add(key, on_rps / 1e3);
    std::snprintf(key, sizeof(key), "serve_cache_theta%03d_hit_rate",
                  theta_key);
    json.add(key, on.stats.cache_hit_rate());
    if (theta_key == 99) {
      speedup_099 = on_rps / off_rps;
      if (on.stats.cache_hits == 0) {
        std::printf("  ERROR: cache-on run at theta 0.99 never hit\n");
        return 1;
      }
    }
  }
  json.add("serve_cache_speedup_theta099", speedup_099);
  std::printf("  -> cache on vs off at theta 0.99: %.2fx (target 2x)\n",
              speedup_099);
  if (speedup_099 < 2.0) pass = false;

  // Churn: correctness under concurrent retrain + hot reload.
  const std::size_t churn_keys = std::min<std::size_t>(2048, keys);
  const std::vector<BitVector> churn_pool(pool.begin(),
                                          pool.begin() + churn_keys);
  const ChurnOutcome churn = run_churn(model, churn_pool, /*rounds=*/6);
  std::printf("  churn: %zu requests across %zu publishes, %llu stale, "
              "%llu hits, %zu unresolved\n",
              churn.requests, churn.publishes,
              static_cast<unsigned long long>(churn.stats.cache_stale),
              static_cast<unsigned long long>(churn.stats.cache_hits),
              churn.unresolved);
  if (churn.requests == 0 || churn.publishes < 6 || churn.unresolved > 0) {
    std::printf("  ERROR: churn phase failed (see counters above)\n");
    return 1;
  }
  if (churn.stats.cache_stale == 0 || churn.stats.cache_hits == 0) {
    std::printf("  ERROR: churn phase never exercised epoch invalidation\n");
    return 1;
  }
  json.add("serve_cache_churn_stale",
           static_cast<double>(churn.stats.cache_stale));
  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf("acceptance (cache on >= 2x off at theta 0.99): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
