// Fig. 5: the A1 -> A2 -> A3 -> A4 workflow, reported as the accuracy
// progression per stage on one dataset family per run-through, with the
// distillation fidelity that explains the A3 -> A4 step.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Fig. 5 — overall workflow (vanilla -> teacher -> PoET-BiN)",
               "PoET-BiN Fig. 5 + the A1..A4 accuracy deltas of Table 2");

  auto runs = run_all_pipelines();

  TablePrinter table({"dataset", "stage", "accuracy(%)", "delta vs prev"});
  for (const auto& run : runs) {
    const PipelineResult& r = run.result;
    const double stages[4] = {r.a1, r.a2, r.a3, r.a4};
    const char* names[4] = {"A1 vanilla network", "A2 binary features",
                            "A3 teacher (+interm. layer)",
                            "A4 PoET-BiN student"};
    for (int s = 0; s < 4; ++s) {
      std::string delta = "-";
      if (s > 0) {
        delta = TablePrinter::fmt(100.0 * (stages[s] - stages[s - 1]), 2);
      }
      table.add_row({run.paper_name, names[s], pct(stages[s]), delta});
    }
  }
  table.print(std::cout);

  std::printf("\nDistillation fidelity (RINC bits vs teacher bits):\n");
  TablePrinter fidelity({"dataset", "train fidelity(%)", "test fidelity(%)"});
  for (const auto& run : runs) {
    fidelity.add_row({run.paper_name, pct(run.result.fidelity_train),
                      pct(run.result.fidelity_test)});
  }
  fidelity.print(std::cout);
  std::printf("\nShape check: small A1->A3 drop (binarisation), small A3->A4\n"
              "drop or occasional gain (the paper's CIFAR-10 anomaly, which it\n"
              "attributes to regularising noise from imperfect RINC bits).\n");
  return 0;
}
