// google-benchmark micro-benchmarks of the primitives every experiment sits
// on: packed LUT evaluation, level-wise DT training, MAT encoding, netlist
// simulation and XNOR-popcount.
#include <benchmark/benchmark.h>

#include "boost/mat.h"
#include "core/rinc.h"
#include "dt/level_dt.h"
#include "hw/netlist_builder.h"
#include "util/bit_matrix.h"
#include "util/rng.h"

namespace {

using namespace poetbin;

BitMatrix random_bits(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix bits(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.next_bool()) bits.set(r, c, true);
    }
  }
  return bits;
}

BitVector majority_targets(const BitMatrix& features) {
  BitVector targets(features.rows());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    std::size_t votes = 0;
    for (std::size_t f = 0; f < 8; ++f) {
      if (features.get(i, f)) ++votes;
    }
    targets.set(i, votes >= 4);
  }
  return targets;
}

void BM_BitVectorXnorPopcount(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  BitVector a(n);
  BitVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.next_bool());
    b.set(i, rng.next_bool());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.xnor_popcount(b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BitVectorXnorPopcount)->Arg(512)->Arg(4096)->Arg(65536);

void BM_LutEvalDataset(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const BitMatrix features = random_bits(n, 512, 2);
  Rng rng(3);
  BitVector table(256);
  for (std::size_t i = 0; i < 256; ++i) table.set(i, rng.next_bool());
  const Lut lut({3, 97, 200, 301, 402, 17, 450, 260}, table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.eval_dataset(features));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LutEvalDataset)->Arg(1024)->Arg(8192);

void BM_LevelDtTrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t n_features = static_cast<std::size_t>(state.range(1));
  const BitMatrix features = random_bits(n, n_features, 4);
  const BitVector targets = majority_targets(features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        train_level_dt(features, targets, {}, {.n_inputs = 6}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n_features));
}
BENCHMARK(BM_LevelDtTrain)->Args({1000, 128})->Args({1000, 512})->Args({4000, 512});

void BM_RincTrain(benchmark::State& state) {
  const std::size_t dts = static_cast<std::size_t>(state.range(0));
  const BitMatrix features = random_bits(1000, 256, 5);
  const BitVector targets = majority_targets(features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RincModule::train(
        features, targets, {},
        {.lut_inputs = 6, .levels = 2, .total_dts = dts}));
  }
}
BENCHMARK(BM_RincTrain)->Arg(6)->Arg(18)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_MatToTable(benchmark::State& state) {
  const std::size_t arity = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<double> weights(arity);
  for (auto& w : weights) w = rng.uniform(-1.0, 1.0);
  const MatModule mat(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mat.to_table());
  }
}
BENCHMARK(BM_MatToTable)->Arg(6)->Arg(8)->Arg(12);

void BM_RincEval(benchmark::State& state) {
  const BitMatrix features = random_bits(2000, 256, 7);
  const BitVector targets = majority_targets(features);
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 6, .levels = 2, .total_dts = 18});
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.eval_dataset(features));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_RincEval);

void BM_NetlistSimulate(benchmark::State& state) {
  const BitMatrix features = random_bits(64, 256, 8);
  const BitVector targets = majority_targets(features);
  const RincModule module = RincModule::train(
      features, targets, {}, {.lut_inputs = 6, .levels = 2, .total_dts = 18});
  const RincNetlist netlist = build_rinc_netlist(module, 256);
  const BitVector row = features.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist.netlist.simulate(row));
  }
}
BENCHMARK(BM_NetlistSimulate);

}  // namespace
