// Ablation (SS3): output-layer quantization width q in {4, 8, 16}.
// The paper: q=4 loses significant accuracy, q=8 is near-lossless, q=16
// matches q=8 while doubling the output-layer LUT cost — hence q=8.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/poetbin.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Ablation — output layer quantization (q = 1/2/4/8/16 bits)",
               "PoET-BiN SS3 (choice of q = 8)");

  // One digits pipeline; then retrain only the PoET-BiN stage per q.
  PipelineConfig config = config_mnist();
  config.train_a2_network = false;
  const PipelineResult base = run_pipeline(config);
  std::printf("teacher accuracy A3 = %s%%\n\n", pct(base.a3).c_str());

  TablePrinter table(
      {"q (bits)", "accuracy(%)", "output LUTs", "total LUTs", "note"});
  for (const int qbits : {1, 2, 4, 8, 16}) {
    PoetBinConfig poet_config = config.poetbin;
    poet_config.output.quant_bits = qbits;
    const PoetBin model =
        PoetBin::train(base.train_bits.features, base.teacher_train_bits,
                       base.train_bits.labels, poet_config);
    const double accuracy =
        model.accuracy(base.test_bits.features, base.test_bits.labels);
    const std::size_t output_luts = model.n_classes() * qbits;
    std::string note;
    if (qbits == 8) note = "paper's choice";
    if (qbits == 16) note = "2x output LUTs, no gain expected";
    if (qbits <= 4) note = "paper: significant loss";
    table.add_row({std::to_string(qbits), pct(accuracy),
                   std::to_string(output_luts),
                   std::to_string(model.lut_count()), note});
  }
  table.print(std::cout);
  return 0;
}
