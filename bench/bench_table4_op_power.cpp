// Table 4: per-operation FPGA power at 62.5 MHz. The constants ARE the
// paper's measurements (they parameterise our whole energy model); this
// bench prints them alongside a CPU-side sanity microbenchmark showing the
// relative cost ordering of the same arithmetic on this machine.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/power_model.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace poetbin;

// Rough CPU ns/op for the arithmetic families (sanity ordering only).
template <typename T>
double time_mult_ns() {
  Rng rng(1);
  volatile T acc = static_cast<T>(1);
  std::vector<T> values(4096);
  for (auto& v : values) {
    v = static_cast<T>(rng.uniform(1.0, 2.0));
  }
  const auto start = std::chrono::steady_clock::now();
  constexpr int kIters = 2000;
  for (int it = 0; it < kIters; ++it) {
    T local = acc;
    for (const T v : values) local = static_cast<T>(local * v + 1);
    acc = local;
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         (kIters * 4096.0);
}

}  // namespace

int main() {
  using namespace poetbin::bench;
  print_header("Table 4 — individual operation power",
               "PoET-BiN Table 4 (Spartan-6 @ 62.5 MHz; these constants feed "
               "the Table 6 energy model)");

  struct Row {
    const char* name;
    FpgaOpPower power;
  };
  const Row rows[] = {
      {"multiplication (16 bits)", op_power_mult16()},
      {"addition (16 bits)", op_power_add16()},
      {"multiplication (32 bits)", op_power_mult32()},
      {"addition (32 bits)", op_power_add32()},
      {"multiplication (float)", op_power_mult_float()},
      {"addition (float)", op_power_add_float()},
  };

  TablePrinter table({"operation", "clock(W)", "logic(W)", "signal(W)",
                      "io(W)", "static(W)", "total(W)", "compute(W)"});
  for (const auto& row : rows) {
    table.add_row({row.name, TablePrinter::fmt(row.power.clock, 3),
                   TablePrinter::fmt(row.power.logic, 3),
                   TablePrinter::fmt(row.power.signal, 3),
                   TablePrinter::fmt(row.power.io, 3),
                   TablePrinter::fmt(row.power.static_power, 3),
                   TablePrinter::fmt(row.power.total(), 3),
                   TablePrinter::fmt(row.power.compute(), 3)});
  }
  table.print(std::cout);
  std::printf("\n(compute = logic + signal, the only columns entering the "
              "energy estimates, as the paper argues in SS4.2)\n");

  std::printf("\nCPU sanity microbench (relative cost ordering on this host):\n");
  TablePrinter cpu({"operation", "ns/op"});
  cpu.add_row({"int16 multiply-add", TablePrinter::fmt(time_mult_ns<short>(), 3)});
  cpu.add_row({"int32 multiply-add", TablePrinter::fmt(time_mult_ns<int>(), 3)});
  cpu.add_row({"float multiply-add", TablePrinter::fmt(time_mult_ns<float>(), 3)});
  cpu.add_row({"double multiply-add", TablePrinter::fmt(time_mult_ns<double>(), 3)});
  cpu.print(std::cout);
  return 0;
}
