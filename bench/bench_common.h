// Shared plumbing for the table-reproduction benches.
//
// Every bench binary runs argument-free. POETBIN_BENCH_SCALE (a float,
// default 1.0) scales dataset sizes so CI can run quick sanity sweeps
// (e.g. POETBIN_BENCH_SCALE=0.25) while the default reproduces the numbers
// recorded in EXPERIMENTS.md.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"

namespace poetbin::bench {

// POETBIN_BENCH_SCALE env var, clamped to [0.05, 4].
double bench_scale();

// The three paper configurations at bench scale (M1/C1/S1 of Table 1).
PipelineConfig config_mnist();
PipelineConfig config_cifar10();
PipelineConfig config_svhn();

struct DatasetRun {
  std::string paper_name;  // MNIST / CIFAR-10 / SVHN
  std::string family;      // digits / textures / house_numbers
  PipelineConfig config;
  PipelineResult result;
};

// Runs all three pipelines (expensive; each bench that needs trained models
// calls this once).
std::vector<DatasetRun> run_all_pipelines(bool verbose = false);

// Accuracy as "98.15"-style percent string.
std::string pct(double accuracy);

void print_header(const std::string& title, const std::string& paper_ref);

// Collects named metrics and, when POETBIN_BENCH_JSON names a path, writes
// them there as one JSON object on destruction:
//   {"bench": "<name>", "scale": <s>, "metrics": {"<key>": <value>, ...}}
// CI merges the per-bench files into the bench_results.json artifact — the
// raw material of the perf-regression record. No env var, no file.
class JsonResults {
 public:
  explicit JsonResults(std::string bench_name);
  ~JsonResults();

  JsonResults(const JsonResults&) = delete;
  JsonResults& operator=(const JsonResults&) = delete;

  void add(const std::string& key, double value);

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

// Prints the available SIMD word backends (and the default dispatch) and
// records "backends_mask" (sum of 1 << backend) in `json` — the key
// tools/bench_diff.py uses to detect runner-hardware changes between CI
// runs. Call once per bench, after the header.
void report_word_backends(JsonResults& json);

}  // namespace poetbin::bench
