// Model load: text parse vs packed mmap load, plus hot-swap latency under
// live predict_one traffic.
//
// The packed format (core/packed_model.h) exists so a serving worker can
// map a model in and serve without parsing: the row measures exactly that
// trade on a level-1 RINC model with wide leaf LUTs, where the text form
// has to parse 2^arity table characters per leaf while the trusting packed
// load (PackedVerify::kTrustChecksum — what Runtime::load runs) reads only
// the compact table words and never pages the splat section in. The full-
// verification depth (what pack/unpack tooling runs) is recorded alongside
// for the honest picture. Loaded-model equivalence is checked bit for bit
// on every run.
//
// The hot-swap half loads the packed file into a Runtime, hammers
// predict_one from 4 threads, and measures reload() latency mid-traffic —
// the publish half of the RCU swap that serve --watch and kReload ride.
//
// Acceptance (gated only at POETBIN_BENCH_SCALE >= 1): trusting packed
// load >= 50x faster than the text parse. Prediction mismatches are a hard
// failure at any scale.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/packed_model.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "core/serialize.h"
#include "dt/lut.h"
#include "serve/runtime.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSwapThreads = 4;
constexpr std::size_t kSwaps = 20;

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t leaf_arity, std::size_t n_features,
                       Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(leaf_arity, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(
        random_rinc(level - 1, fanin, leaf_arity, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

// 10-class random model with `leaf_arity`-input leaves: the knob that makes
// the text form expensive (2^arity table chars per leaf) at serving-realistic
// model sizes.
PoetBin random_model(std::size_t p, std::size_t leaf_arity,
                     std::size_t n_features, Rng& rng) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = 10;
  const std::size_t n_modules = config.n_classes * p;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_modules; ++m) {
    modules.push_back(random_rinc(1, p, leaf_arity, n_features, rng));
  }
  const QuantizerParams quantizer;
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(config.n_classes);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.resize(n_combos);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
    for (std::size_t a = 0; a < n_combos; ++a) {
      neurons[c].codes[a] = rng.next_index(quantizer.levels());
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

std::string temp_path(const char* name) {
  // Bench mains are single-threaded at env-read time.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir && *dir ? dir : "/tmp") + "/" + name;
}

template <typename Fn>
double median_ms(Fn load, std::size_t reps) {
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    load();
    const auto t1 = Clock::now();
    times.push_back(1e3 * std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  bench::print_header(
      "Model load: text parse vs packed mmap load + hot swap under traffic",
      "level-1 RINC, 10 classes; acceptance: trusting packed load >= 50x "
      "text parse");
  bench::JsonResults json("model_load");
  bench::report_word_backends(json);

  // Leaf arity 12 at full scale (80 modules x 13 nodes, 4096-entry leaf
  // tables, ~2.7 MB text / ~22 MB packed); 10 on quick CI sweeps.
  const double scale = bench::bench_scale();
  const std::size_t p = 8;
  const std::size_t leaf_arity = scale >= 1.0 ? 12 : 10;
  const std::size_t n_features = 1024;
  Rng rng(20260807);
  const PoetBin model = random_model(p, leaf_arity, n_features, rng);

  const std::string text_file = temp_path("poetbin_bench_load.txt");
  const std::string packed_file = temp_path("poetbin_bench_load.pbm");
  if (!write_model_file(model, text_file).ok() ||
      !write_packed_model_file(model, packed_file).ok()) {
    std::printf("  ERROR: could not write bench model files\n");
    return 1;
  }

  const std::size_t reps = 5;
  const double text_ms = median_ms(
      [&] {
        const IoResult<PoetBin> loaded = read_model_file(text_file);
        if (!loaded.ok()) std::abort();
      },
      reps);
  const double packed_full_ms = median_ms(
      [&] {
        const IoResult<PoetBin> loaded = read_packed_model_file(packed_file);
        if (!loaded.ok()) std::abort();
      },
      reps);
  const double packed_ms = median_ms(
      [&] {
        const IoResult<PoetBin> loaded = read_packed_model_file(
            packed_file, PackedVerify::kTrustChecksum);
        if (!loaded.ok()) std::abort();
      },
      3 * reps);
  const double speedup = text_ms / packed_ms;
  std::printf("  leaf arity %zu (%zu modules): text parse %8.3f ms, packed "
              "full %8.3f ms, packed trusting %7.3f ms  -> %.0fx\n",
              leaf_arity, model.modules().size(), text_ms, packed_full_ms,
              packed_ms, speedup);

  // Bit-identity across the formats: scalar predictions of the two loads
  // must agree on random examples.
  std::size_t mismatches = 0;
  {
    const IoResult<PoetBin> from_text = read_model_file(text_file);
    const IoResult<PoetBin> from_packed = read_packed_model_file(packed_file);
    for (std::size_t i = 0; i < 256; ++i) {
      BitVector bits(n_features);
      Rng example_rng = rng.fork(i);
      for (std::size_t w = 0; w < bits.word_count(); ++w) {
        bits.words()[w] = example_rng.next_u64();
      }
      bits.mask_tail_word();
      if (from_text->predict(bits) != from_packed->predict(bits)) {
        ++mismatches;
      }
    }
  }
  if (mismatches > 0) {
    std::printf("  ERROR: %zu text-vs-packed prediction mismatches\n",
                mismatches);
    return 1;
  }

  // Hot-swap latency: reload() the packed file while 4 threads hammer
  // predict_one. Every response must stay a valid prediction of the same
  // model bytes, whatever version served it.
  Runtime::LoadResult loaded = Runtime::load(packed_file, {.threads = 1});
  if (!loaded.ok()) {
    std::printf("  ERROR: %s\n", loaded.error().message.c_str());
    return 1;
  }
  Runtime runtime = std::move(loaded).value();
  BitVector probe(n_features);
  Rng probe_rng = rng.fork(999);
  for (std::size_t w = 0; w < probe.word_count(); ++w) {
    probe.words()[w] = probe_rng.next_u64();
  }
  probe.mask_tail_word();
  const int expected = runtime.predict_one(probe);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> hammers;
  hammers.reserve(kSwapThreads);
  for (std::size_t t = 0; t < kSwapThreads; ++t) {
    hammers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (runtime.predict_one(probe) != expected) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<double> swap_times;
  swap_times.reserve(kSwaps);
  for (std::size_t s = 0; s < kSwaps; ++s) {
    const auto t0 = Clock::now();
    const IoStatus swapped = runtime.reload();
    const auto t1 = Clock::now();
    if (!swapped.ok()) {
      stop.store(true);
      for (auto& h : hammers) h.join();
      std::printf("  ERROR: reload failed: %s\n", swapped.error().message.c_str());
      return 1;
    }
    swap_times.push_back(1e3 * std::chrono::duration<double>(t1 - t0).count());
  }
  stop.store(true);
  for (auto& h : hammers) h.join();
  std::sort(swap_times.begin(), swap_times.end());
  const double hot_swap_ms = swap_times[swap_times.size() / 2];
  std::printf("  hot swap under %zu predict_one threads: %zu reloads, "
              "median %.3f ms, final version %llu\n",
              kSwapThreads, kSwaps, hot_swap_ms,
              static_cast<unsigned long long>(runtime.model_version()));
  if (wrong.load() > 0) {
    std::printf("  ERROR: %zu predictions changed across hot swaps\n",
                wrong.load());
    return 1;
  }

  std::remove(text_file.c_str());
  std::remove(packed_file.c_str());

  json.add("text_parse_ms", text_ms);
  json.add("packed_load_full_ms", packed_full_ms);
  json.add("packed_load_ms", packed_ms);
  json.add("hot_swap_ms", hot_swap_ms);
  json.add("load_speedup", speedup);

  const bool pass = speedup >= 50.0;
  json.add("acceptance_pass", pass ? 1.0 : 0.0);
  if (scale < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf("acceptance (packed load >= 50x text parse): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
