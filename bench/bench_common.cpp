#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/table.h"
#include "util/word_backend.h"

namespace poetbin::bench {

double bench_scale() {
  // Bench mains are single-threaded at env-read time.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("POETBIN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return std::clamp(value, 0.05, 4.0);
}

PipelineConfig config_mnist() { return preset_m1(bench_scale()); }
PipelineConfig config_cifar10() { return preset_c1(bench_scale()); }
PipelineConfig config_svhn() { return preset_s1(bench_scale()); }

std::vector<DatasetRun> run_all_pipelines(bool verbose) {
  std::vector<DatasetRun> runs;
  runs.push_back({"MNIST", "digits", config_mnist(), {}});
  runs.push_back({"SVHN", "house_numbers", config_svhn(), {}});
  runs.push_back({"CIFAR-10", "textures", config_cifar10(), {}});
  for (auto& run : runs) {
    std::printf("[bench] training pipeline for %s (%s), n_train=%zu...\n",
                run.paper_name.c_str(), run.family.c_str(), run.config.n_train);
    std::fflush(stdout);
    run.config.verbose = verbose;
    run.result = run_pipeline(run.config);
  }
  return runs;
}

std::string pct(double accuracy) { return TablePrinter::fmt(100.0 * accuracy, 2); }

JsonResults::JsonResults(std::string bench_name)
    : name_(std::move(bench_name)) {}

void JsonResults::add(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

JsonResults::~JsonResults() {
  // Bench mains are single-threaded at env-read time.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* path = std::getenv("POETBIN_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "POETBIN_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"%s\",\n  \"scale\": %.4f,\n  \"metrics\": {",
               name_.c_str(), bench_scale());
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                 metrics_[i].first.c_str(), metrics_[i].second);
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scale: POETBIN_BENCH_SCALE=%.2f (synthetic stand-in datasets;\n",
              bench_scale());
  std::printf("absolute accuracies differ from the paper, shapes should hold)\n");
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

void report_word_backends(JsonResults& json) {
  std::printf("word backends:");
  double backends_mask = 0.0;
  for (const auto b : available_word_backends()) {
    std::printf(" %s", word_backend_name(b));
    backends_mask += static_cast<double>(1u << static_cast<unsigned>(b));
  }
  std::printf(" (default %s)\n\n", word_backend_name(active_word_backend()));
  json.add("backends_mask", backends_mask);
}

}  // namespace poetbin::bench
