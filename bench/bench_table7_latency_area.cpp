// Table 7: latency and LUT counts of the PoET-BiN implementations, from the
// exact structural model (decomposition + pruning) and the calibrated
// latency fit. Includes the paper's SS4.3 hand-verification of the SVHN
// count (43 x 60 + 80 = 2660) and, at the end, the LUT accounting measured
// on OUR trained models so structure and model agree.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/lut_decompose.h"
#include "hw/netlist_builder.h"
#include "hw/power_model.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Table 7 — implementation results (latency, LUTs)",
               "PoET-BiN Table 7 + SS4.3 LUT accounting");

  struct Row {
    PoetBinHwSpec spec;
    double paper_latency_ns;
    std::size_t paper_luts;
  };
  const Row rows[] = {
      {hw_spec_mnist(), 9.11, 11899},
      {hw_spec_cifar10(), 9.48, 9650},
      {hw_spec_svhn(), 5.85, 2660},
  };

  TablePrinter table({"dataset", "P", "DTs", "levels", "paper ns", "model ns",
                      "paper LUTs", "model LUTs"});
  for (const auto& row : rows) {
    table.add_row({row.spec.name, std::to_string(row.spec.lut_inputs),
                   std::to_string(row.spec.n_dts),
                   std::to_string(poetbin_critical_path_levels(row.spec)),
                   TablePrinter::fmt(row.paper_latency_ns, 2),
                   TablePrinter::fmt(poetbin_latency_ns(row.spec), 2),
                   std::to_string(row.paper_luts),
                   std::to_string(poetbin_total_6luts(row.spec))});
  }
  table.print(std::cout);

  // SS4.3 hand count for SVHN.
  const PoetBinHwSpec svhn = hw_spec_svhn();
  std::printf("\nSS4.3 hand verification (SVHN): 36+6+1 = %zu LUTs/module; "
              "x60 modules + 10x8 output LUTs = %zu (paper: 2660)\n",
              rinc_module_lut_units(svhn), poetbin_total_6luts(svhn));

  std::printf("\nThroughput implied by single-cycle inference:\n");
  TablePrinter throughput({"dataset", "clock (MHz)", "images/s"});
  for (const auto& row : rows) {
    throughput.add_row({row.spec.name, TablePrinter::fmt(row.spec.clock_mhz, 1),
                        TablePrinter::sci(row.spec.clock_mhz * 1e6, 2)});
  }
  throughput.print(std::cout);

  // Measured accounting on a trained model (small scale so this bench stays
  // fast): netlist LUTs == model LUTs, and the pruning fraction measured by
  // removable-fanin analysis (the paper's 36% CIFAR-10 observation).
  std::printf("\nMeasured on a trained model (scaled-down digits config):\n");
  PipelineConfig config = config_mnist();
  config.n_train = std::max<std::size_t>(400, config.n_train / 4);
  config.n_test = std::max<std::size_t>(150, config.n_test / 4);
  config.net.train.epochs = 4;
  config.train_a2_network = false;
  config.poetbin.rinc =
      {.lut_inputs = 6, .levels = 2, .total_dts = 18, .adaboost = {}};
  const PipelineResult result = run_pipeline(config);

  const PoetBinNetlist netlist =
      build_poetbin_netlist(result.model, result.train_bits.n_features());
  const PruneStats stats = prune_poetbin(result.model);
  TablePrinter measured({"quantity", "value"});
  measured.add_row({"model lut_count()", std::to_string(result.model.lut_count())});
  measured.add_row({"netlist LUTs", std::to_string(netlist.netlist.n_luts())});
  measured.add_row({"netlist depth", std::to_string(netlist.netlist.depth())});
  measured.add_row({"raw 6-LUTs", std::to_string(stats.raw_6luts)});
  measured.add_row({"post-prune 6-LUTs", std::to_string(stats.kept_6luts)});
  measured.add_row(
      {"pruned fraction",
       TablePrinter::fmt(100.0 * stats.removed_fraction_6luts(), 1) + "%"});
  measured.print(std::cout);
  std::printf("(paper reports ~36%% of CIFAR-10 LUTs removed by synthesis — "
              "mostly low-weight MAT fanins, the same mechanism measured "
              "here)\n");
  return 0;
}
