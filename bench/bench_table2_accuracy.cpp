// Table 2: classification accuracy of A1/A2/A3/A4 plus the BinaryNet,
// POLYBiNN and NDF baselines, all sharing the teacher's binary features
// (the paper's same-feature-extractor protocol).
#include <cstdio>
#include <iostream>

#include "baselines/binarynet.h"
#include "baselines/ndf.h"
#include "baselines/polybinn.h"
#include "bench_common.h"
#include "util/table.h"

namespace {

using namespace poetbin;
using namespace poetbin::bench;

struct PaperRow {
  const char* dataset;
  double a1, a2, a3, a4, binarynet, polybinn, ndf;
};

constexpr PaperRow kPaper[] = {
    {"MNIST", 99.20, 99.06, 98.93, 98.15, 98.97, 97.52, 99.42},
    {"SVHN", 97.36, 96.98, 96.22, 95.13, 95.06, 94.97, 95.20},
    {"CIFAR-10", 91.02, 89.88, 89.10, 92.64, 89.76, 91.58, 90.46},
};

const PaperRow& paper_row(const std::string& dataset) {
  for (const auto& row : kPaper) {
    if (dataset == row.dataset) return row;
  }
  return kPaper[0];
}

}  // namespace

int main() {
  print_header("Table 2 — overall classification accuracy & comparison",
               "PoET-BiN Table 2 (A1 vanilla, A2 binary features, A3 teacher,"
               " A4 PoET-BiN; BinaryNet / POLYBiNN / NDF baselines)");

  auto runs = run_all_pipelines();

  TablePrinter table({"dataset", "stage", "paper(%)", "ours(%)"});
  TablePrinter summary(
      {"dataset", "A1", "A2", "A3", "A4(PoET-BiN)", "BinaryNet", "POLYBiNN",
       "NDF", "fidelity"});

  for (auto& run : runs) {
    const PaperRow& paper = paper_row(run.paper_name);
    const PipelineResult& r = run.result;

    std::printf("[bench] %s: training baselines on the shared binary features\n",
                run.paper_name.c_str());
    std::fflush(stdout);

    BinaryNetConfig bn_config;
    bn_config.hidden_dims = {run.config.net.hidden_dim};
    bn_config.epochs = 25;
    const BinaryNetClassifier binarynet =
        BinaryNetClassifier::train(r.train_bits, bn_config);
    const double bn_acc = binarynet.accuracy(r.test_bits);

    PolyBinnConfig pb_config;
    pb_config.trees_per_class = 8;
    pb_config.max_depth = 8;
    const PolyBinn polybinn = PolyBinn::train(r.train_bits, pb_config);
    const double pb_acc = polybinn.accuracy(r.test_bits);

    NdfConfig ndf_config;
    ndf_config.n_trees = 8;
    ndf_config.depth = 4;
    ndf_config.epochs = 10;
    const NeuralDecisionForest ndf =
        NeuralDecisionForest::train(r.train_bits, ndf_config);
    const double ndf_acc = ndf.accuracy(r.test_bits);

    table.add_row({run.paper_name, "A1 vanilla", TablePrinter::fmt(paper.a1, 2),
                   pct(r.a1)});
    table.add_row({run.paper_name, "A2 binary feat",
                   TablePrinter::fmt(paper.a2, 2), pct(r.a2)});
    table.add_row({run.paper_name, "A3 teacher", TablePrinter::fmt(paper.a3, 2),
                   pct(r.a3)});
    table.add_row({run.paper_name, "A4 PoET-BiN",
                   TablePrinter::fmt(paper.a4, 2), pct(r.a4)});
    table.add_row({run.paper_name, "BinaryNet",
                   TablePrinter::fmt(paper.binarynet, 2), pct(bn_acc)});
    table.add_row({run.paper_name, "POLYBiNN",
                   TablePrinter::fmt(paper.polybinn, 2), pct(pb_acc)});
    table.add_row({run.paper_name, "NDF", TablePrinter::fmt(paper.ndf, 2),
                   pct(ndf_acc)});

    summary.add_row({run.paper_name, pct(r.a1), pct(r.a2), pct(r.a3), pct(r.a4),
                     pct(bn_acc), pct(pb_acc), pct(ndf_acc),
                     pct(r.fidelity_test)});
  }

  std::printf("\nPer-stage comparison (paper numbers are on the real datasets,"
              " ours on the synthetic stand-ins):\n");
  table.print(std::cout);
  std::printf("\nSummary (ours):\n");
  summary.print(std::cout);

  std::printf(
      "\nShape checks:\n"
      "  - A1 >= A2 >= A3 expected (binarisation restricts capacity)\n"
      "  - A4 close to A3 (distillation cost; paper: -0.8%% MNIST, -1%% SVHN,"
      " +1.5%% CIFAR-10)\n"
      "  - PoET-BiN (A4) competitive with BinaryNet/POLYBiNN, NDF strongest\n");
  return 0;
}
