// SS2.1.1 memory-block analysis: the exponential cost of a monolithic
// input-output table vs the polynomial cost of the RINC decomposition
// ("a 30-input LUT already requires one gigabit of data"), plus BRAM
// packing for the paper's three module configurations.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/memory_model.h"
#include "hw/power_model.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Memory-block implementation (SS2.1.1)",
               "PoET-BiN SS2.1.1: monolithic table blow-up vs RINC tables");

  std::printf("Monolithic table for an N-input binary neuron:\n");
  TablePrinter mono({"inputs", "table bits", "note"});
  for (const std::size_t n : {6u, 8u, 12u, 20u, 30u, 40u}) {
    std::string note;
    if (n == 30) note = "the paper's 1-gigabit example";
    if (n == 40) note = "paper: 'completely unrealistic'";
    mono.add_row({std::to_string(n), std::to_string(monolithic_table_bits(n)),
                  note});
  }
  mono.print(std::cout);

  std::printf("\nRINC decomposition at equal effective input capacity:\n");
  TablePrinter rinc({"config", "input capacity", "table bits",
                     "vs monolithic", "BRAMs (18kb)"});
  struct Row {
    const char* name;
    std::size_t p, levels, dts;
  };
  const Row rows[] = {
      {"RINC-1 P=6 (full)", 6, 1, 0},
      {"RINC-2 P=6 (full)", 6, 2, 0},
      {"RINC-2 P=8, 32 DTs (MNIST)", 8, 2, 32},
      {"RINC-2 P=8, 40 DTs (CIFAR-10)", 8, 2, 40},
      {"RINC-2 P=6, 36 DTs (SVHN)", 6, 2, 36},
  };
  for (const auto& row : rows) {
    const std::uint64_t capacity = rinc_input_capacity(row.p, row.levels);
    const std::uint64_t bits = rinc_table_bits(row.p, row.levels, row.dts);
    const std::uint64_t mono_bits = monolithic_table_bits(
        capacity >= 64 ? 64 : static_cast<std::size_t>(capacity));
    rinc.add_row({row.name, std::to_string(capacity), std::to_string(bits),
                  mono_bits == std::numeric_limits<std::uint64_t>::max()
                      ? ">1.8e19x smaller"
                      : TablePrinter::sci(static_cast<double>(mono_bits) /
                                              static_cast<double>(bits),
                                          1) + "x smaller",
                  std::to_string(block_rams_required(bits))});
  }
  rinc.print(std::cout);

  std::printf("\nWhole-classifier table storage (all modules + output layer):\n");
  TablePrinter total({"dataset", "modules", "table bits", "BRAMs"});
  struct Spec {
    PoetBinHwSpec hw;
  };
  for (const auto& spec :
       {hw_spec_mnist(), hw_spec_cifar10(), hw_spec_svhn()}) {
    const std::uint64_t module_bits =
        rinc_table_bits(spec.lut_inputs, spec.levels, spec.n_dts) *
        spec.n_modules;
    const std::uint64_t output_bits =
        spec.n_classes * static_cast<std::uint64_t>(spec.qbits) *
        (std::uint64_t{1} << spec.lut_inputs);
    const std::uint64_t bits = module_bits + output_bits;
    total.add_row({spec.name, std::to_string(spec.n_modules),
                   std::to_string(bits),
                   std::to_string(block_rams_required(bits))});
  }
  total.print(std::cout);
  std::printf("\n(The LUT fabric implementation of Tables 3/7 needs no BRAM "
              "at all; this table is the SS2.1.1 memory-block alternative.)\n");
  return 0;
}
