// Ablation: accuracy vs hardware cost across (P, L, #DTs) — the design
// space behind DESIGN.md's "P balances accuracy and resources" trade-off
// (paper SS2.2.1) and the RINC capacity ladder of SS2.1. Produces an
// accuracy/LUT/energy frontier on a distillation task identical in kind to
// the per-neuron problems PoET-BiN solves, plus a level-capacity ladder
// and a comparison against classic per-node DTs under equal LUT budgets.
// Also writes ablation_sweep.csv next to the binary for plotting.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/rinc.h"
#include "dt/classic_dt.h"
#include "hw/lut_decompose.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace poetbin;

// Distillation-style target: a noisy wide-majority function of 24 of the
// 256 binary features — far too wide for one LUT, learnable by boosting.
struct Task {
  BitMatrix train_x, test_x;
  BitVector train_y, test_y;
};

Task make_task(std::size_t n_train, std::size_t n_test, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n_features = 256;
  const std::size_t n = n_train + n_test;
  BitMatrix features(n, n_features);
  BitVector targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t votes = 0;
    for (std::size_t f = 0; f < n_features; ++f) {
      const bool bit = rng.next_bool();
      features.set(i, f, bit);
      if (f % 11 == 0 && f < 24 * 11 && bit) ++votes;  // 24 voter features
    }
    bool label = votes >= 12;
    if (rng.next_bool(0.05)) label = !label;
    targets.set(i, label);
  }
  Task task;
  std::vector<std::size_t> train_rows(n_train), test_rows(n_test);
  for (std::size_t i = 0; i < n_train; ++i) train_rows[i] = i;
  for (std::size_t i = 0; i < n_test; ++i) test_rows[i] = n_train + i;
  task.train_x = features.select_rows(train_rows);
  task.test_x = features.select_rows(test_rows);
  for (std::size_t i = 0; i < n_train; ++i) task.train_y.push_back(targets.get(i));
  for (std::size_t i = 0; i < n_test; ++i) {
    task.test_y.push_back(targets.get(n_train + i));
  }
  return task;
}

double test_accuracy(const RincModule& module, const Task& task) {
  const BitVector predictions = module.eval_dataset(task.test_x);
  return static_cast<double>(predictions.xnor_popcount(task.test_y)) /
         static_cast<double>(task.test_y.size());
}

}  // namespace

int main() {
  using namespace poetbin::bench;
  print_header("Ablation — (P, L, #DT) sweep: accuracy vs LUT cost",
               "PoET-BiN SS2.1 capacity ladder + SS2.2.1 P trade-off");

  const double scale = bench_scale();
  const Task task = make_task(static_cast<std::size_t>(3000 * scale),
                              static_cast<std::size_t>(1000 * scale), 7);

  CsvWriter csv("ablation_sweep.csv",
                {"P", "L", "dts", "test_accuracy", "six_luts", "depth_levels"});

  // --- level ladder at fixed P ---
  std::printf("Capacity ladder (P=6, full trees):\n");
  TablePrinter ladder({"L", "inputs capacity", "6-LUTs", "test acc(%)"});
  for (const std::size_t levels : {0u, 1u, 2u}) {
    const RincModule module = RincModule::train(
        task.train_x, task.train_y, {},
        {.lut_inputs = 6, .levels = levels, .total_dts = 0});
    const PruneStats stats = prune_rinc(module);
    std::size_t capacity = 6;
    for (std::size_t l = 0; l < levels; ++l) capacity *= 6;
    ladder.add_row({std::to_string(levels), std::to_string(capacity),
                    std::to_string(stats.raw_6luts),
                    pct(test_accuracy(module, task))});
    csv.add_row({"6", std::to_string(levels),
                 std::to_string(module.leaf_dt_count()),
                 TablePrinter::fmt(test_accuracy(module, task), 4),
                 std::to_string(stats.raw_6luts),
                 std::to_string(module.depth_in_luts())});
  }
  ladder.print(std::cout);

  // --- P x DTs frontier at L=2 ---
  std::printf("\nFrontier (L=2):\n");
  TablePrinter frontier({"P", "DTs", "6-LUTs", "test acc(%)", "acc/LUT"});
  for (const std::size_t p : {4u, 6u, 8u}) {
    for (const std::size_t dts : {8u, 16u, 32u}) {
      if (dts > p * p) continue;
      const RincModule module =
          RincModule::train(task.train_x, task.train_y, {},
                            {.lut_inputs = p, .levels = 2, .total_dts = dts});
      const PruneStats stats = prune_rinc(module);
      const double accuracy = test_accuracy(module, task);
      frontier.add_row(
          {std::to_string(p), std::to_string(dts),
           std::to_string(stats.raw_6luts), pct(accuracy),
           TablePrinter::fmt(accuracy / stats.raw_6luts, 4)});
      csv.add_row({std::to_string(p), "2", std::to_string(dts),
                   TablePrinter::fmt(accuracy, 4),
                   std::to_string(stats.raw_6luts),
                   std::to_string(module.depth_in_luts())});
    }
  }
  frontier.print(std::cout);

  // --- level-wise vs classic DT under equal distinct-feature budgets ---
  std::printf("\nLevel-wise DT (RINC-0) vs classic per-node DT:\n");
  TablePrinter versus({"inputs budget", "RINC-0 acc(%)", "classic acc(%)",
                       "classic distinct features"});
  for (const std::size_t budget : {4u, 6u, 8u}) {
    const LevelDtResult level_fit = train_level_dt(
        task.train_x, task.train_y, {}, {.n_inputs = budget});
    const double level_acc =
        static_cast<double>(Lut(level_fit.lut)
                                .eval_dataset(task.test_x)
                                .xnor_popcount(task.test_y)) /
        task.test_y.size();
    const ClassicDt classic = ClassicDt::train(task.train_x, task.train_y, {},
                                               {.max_depth = budget});
    const double classic_acc =
        static_cast<double>(classic.eval_dataset(task.test_x)
                                .xnor_popcount(task.test_y)) /
        task.test_y.size();
    versus.add_row({std::to_string(budget), pct(level_acc), pct(classic_acc),
                    std::to_string(classic.distinct_features())});
  }
  versus.print(std::cout);
  std::printf("\n(A classic depth-d tree consults more distinct features than\n"
              "d, so it cannot be packed into one d-input LUT — the paper's\n"
              "core argument for the level-wise variant.)\n"
              "CSV written to ablation_sweep.csv\n");
  return 0;
}
