// Ablation (SS4.1): instead of distilling the nc x P intermediate-layer
// neurons, train one RINC module per *hidden-layer* neuron and retrain a
// fully connected output layer on all of them. The paper reports 98.62%
// (vs 98.15% for the intermediate-layer route) on MNIST at the cost of 512
// RINC modules instead of 80. We reproduce the shape: higher (or equal)
// accuracy, several times the LUT budget.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/rinc.h"
#include "nn/sequential.h"
#include "util/table.h"

int main() {
  using namespace poetbin;
  using namespace poetbin::bench;

  print_header("Ablation — RINC per hidden neuron vs per intermediate neuron",
               "PoET-BiN SS4.1 (512-module MNIST variant, 98.62% vs 98.15%)");

  PipelineConfig config = config_mnist();
  config.train_a2_network = false;
  config.binary_hidden = true;
  // Keep the hidden layer small enough that one-RINC-per-neuron is tractable
  // at bench scale (the paper's point is the trade-off, not the constant).
  config.net.hidden_dim = 128;
  const PipelineResult result = run_pipeline(config);
  std::printf("teacher A3 = %s%%, intermediate-route A4 = %s%%\n\n",
              pct(result.a3).c_str(), pct(result.a4).c_str());

  // Train one RINC module per hidden neuron on the binary hidden bits.
  const std::size_t n_hidden = result.hidden_train_bits.cols();
  RincConfig rinc_config = config.poetbin.rinc;
  rinc_config.total_dts = 16;  // smaller per-module budget: many more modules
  rinc_config.lut_inputs = 6;
  std::printf("[bench] distilling %zu hidden neurons (RINC-2, 16 DTs each)\n",
              n_hidden);
  std::fflush(stdout);

  std::vector<RincModule> modules;
  modules.reserve(n_hidden);
  Matrix train_inputs(result.train_bits.size(), n_hidden);
  Matrix test_inputs(result.test_bits.size(), n_hidden);
  std::size_t total_luts = 0;
  for (std::size_t j = 0; j < n_hidden; ++j) {
    modules.push_back(RincModule::train(result.train_bits.features,
                                        result.hidden_train_bits.column(j), {},
                                        rinc_config));
    const RincModule& module = modules.back();
    total_luts += module.lut_count();
    const BitVector train_bits =
        module.eval_dataset(result.train_bits.features);
    const BitVector test_bits = module.eval_dataset(result.test_bits.features);
    for (std::size_t i = 0; i < train_inputs.rows(); ++i) {
      train_inputs(i, j) = train_bits.get(i) ? 1.0f : 0.0f;
    }
    for (std::size_t i = 0; i < test_inputs.rows(); ++i) {
      test_inputs(i, j) = test_bits.get(i) ? 1.0f : 0.0f;
    }
  }

  // Retrain a fully connected output layer on the RINC outputs.
  Rng rng(3);
  Sequential output_net;
  output_net.add<Dense>(n_hidden, 10, rng);
  Adam adam(0.01);
  TrainConfig train_config;
  train_config.epochs = 40;
  output_net.fit(train_inputs, result.train_bits.labels, adam, train_config);
  const double direct_accuracy =
      output_net.evaluate_accuracy(test_inputs, result.test_bits.labels);

  TablePrinter table({"variant", "modules", "total RINC LUTs", "accuracy(%)"});
  std::size_t intermediate_luts = 0;
  for (const auto& module : result.model.modules()) {
    intermediate_luts += module.lut_count();
  }
  table.add_row({"intermediate layer (paper default)",
                 std::to_string(result.model.n_modules()),
                 std::to_string(intermediate_luts), pct(result.a4)});
  table.add_row({"direct hidden layer (SS4.1 ablation)",
                 std::to_string(n_hidden), std::to_string(total_luts),
                 pct(direct_accuracy)});
  table.print(std::cout);

  std::printf("\nShape check: the hidden-layer route should be at least as\n"
              "accurate while consuming several times the LUTs — the reason\n"
              "the paper keeps the intermediate-layer design.\n");
  return 0;
}
