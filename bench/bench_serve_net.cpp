// Network serving: micro-batched NetServer vs the naive one-request-per-
// dispatch server, over real loopback TCP with zipf-skewed pipelined
// clients.
//
// The workload is the serving shape the front end was built for: 8 client
// threads, each pipelining bursts of 16 predict requests over its own
// connection against one single-threaded worker with a 64-wide micro-batch
// window. Every response is checked bit for bit against the scalar
// PoetBin::predict of the requested key, so the row doubles as an e2e
// bit-identity test under concurrency.
//
// Acceptance (gated only at POETBIN_BENCH_SCALE >= 1): micro-batched
// throughput >= 3x the naive server on the same workload. Bit-identity is
// a hard failure at any scale.
//
// Three rows run: naive, micro-batch with the prediction cache OFF — the
// gated pair, so the 3x target keeps measuring the uncached dispatch path —
// and micro-batch with the cache ON (informational here; the dedicated
// cache sweep with its own acceptance lives in bench_serve_cache).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/runtime.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kPipelineDepth = 16;
constexpr std::size_t kKeySpace = 1024;
constexpr double kZipfTheta = 0.99;

Lut random_lut(std::size_t arity, std::size_t n_features, Rng& rng) {
  std::vector<std::size_t> inputs(arity);
  for (auto& input : inputs) input = rng.next_index(n_features);
  BitVector table(std::size_t{1} << arity);
  for (std::size_t a = 0; a < table.size(); ++a) table.set(a, rng.next_bool());
  return Lut(std::move(inputs), std::move(table));
}

RincModule random_rinc(std::size_t level, std::size_t fanin,
                       std::size_t leaf_arity, std::size_t n_features,
                       Rng& rng) {
  if (level == 0) {
    return RincModule::make_leaf(random_lut(leaf_arity, n_features, rng));
  }
  std::vector<RincModule> children;
  for (std::size_t c = 0; c < fanin; ++c) {
    children.push_back(
        random_rinc(level - 1, fanin, leaf_arity, n_features, rng));
  }
  std::vector<double> alphas(fanin);
  for (auto& alpha : alphas) alpha = rng.next_double() + 0.1;
  return RincModule::make_internal(std::move(children), MatModule(alphas));
}

// Same 10-class random model shape as bench_batch_eval: realistic output
// layer without a training run.
PoetBin random_model(std::size_t p, std::size_t n_features, Rng& rng) {
  PoetBinConfig config;
  config.rinc.lut_inputs = p;
  config.n_classes = 10;
  const std::size_t n_modules = config.n_classes * p;
  std::vector<RincModule> modules;
  for (std::size_t m = 0; m < n_modules; ++m) {
    modules.push_back(random_rinc(1, p, p, n_features, rng));
  }
  const QuantizerParams quantizer;
  const std::size_t n_combos = std::size_t{1} << p;
  std::vector<SparseOutputNeuron> neurons(config.n_classes);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    neurons[c].input_modules.resize(p);
    neurons[c].weights.assign(p, 0.0f);
    neurons[c].codes.resize(n_combos);
    for (std::size_t j = 0; j < p; ++j) {
      neurons[c].input_modules[j] = c * p + j;
    }
    for (std::size_t a = 0; a < n_combos; ++a) {
      neurons[c].codes[a] = rng.next_index(quantizer.levels());
    }
  }
  return PoetBin::from_parts(config, std::move(modules), std::move(neurons),
                             quantizer);
}

struct ModeResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t transport_errors = 0;
  std::size_t mismatches = 0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
  ServeStats stats;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[at];
}

// Runs one server mode to completion and measures it. The key pool and the
// expected scalar predictions are shared, read-only.
ModeResult run_mode(const PoetBin& model, const std::vector<BitVector>& pool,
                    const std::vector<int>& expected, bool micro_batch,
                    std::size_t cache_bytes, std::size_t bursts_per_thread) {
  Runtime runtime(model, {.threads = 1, .cache_bytes = cache_bytes});
  NetServer server(runtime,
                   {.port = 0,
                    .micro_batch = micro_batch,
                    .max_batch = 64,
                    .max_wait = std::chrono::microseconds(200)});
  std::string error;
  if (!server.start(&error)) {
    std::printf("  ERROR: %s\n", error.c_str());
    return {};
  }

  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<std::size_t> errors(kClientThreads, 0);
  std::vector<std::size_t> mismatches(kClientThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  const auto t0 = Clock::now();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      NetClient client;
      if (!client.connect("127.0.0.1", server.port())) {
        errors[t] += bursts_per_thread * kPipelineDepth;
        return;
      }
      FastZipf zipf(0x5eedULL * (t + 1), kZipfTheta, pool.size());
      std::vector<const BitVector*> burst(kPipelineDepth);
      std::vector<std::size_t> keys(kPipelineDepth);
      std::vector<wire::Response> responses;
      latencies[t].reserve(bursts_per_thread);
      for (std::size_t b = 0; b < bursts_per_thread; ++b) {
        for (std::size_t i = 0; i < kPipelineDepth; ++i) {
          keys[i] = zipf.next();
          burst[i] = &pool[keys[i]];
        }
        const auto s0 = Clock::now();
        if (!client.predict_pipelined(burst, &responses)) {
          errors[t] += kPipelineDepth;
          return;
        }
        const auto s1 = Clock::now();
        latencies[t].push_back(
            1e3 * std::chrono::duration<double>(s1 - s0).count());
        for (std::size_t i = 0; i < kPipelineDepth; ++i) {
          if (responses[i].status != wire::Status::kOk) {
            ++errors[t];
          } else if (responses[i].prediction != expected[keys[i]]) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const auto t1 = Clock::now();

  ModeResult result;
  result.stats = server.stats();
  server.stop();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.requests = kClientThreads * bursts_per_thread * kPipelineDepth;
  std::vector<double> merged;
  for (auto& thread_latencies : latencies) {
    merged.insert(merged.end(), thread_latencies.begin(),
                  thread_latencies.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_ms = percentile(merged, 0.50);
  result.p99_ms = percentile(merged, 0.99);
  result.p999_ms = percentile(merged, 0.999);
  for (const std::size_t e : errors) result.transport_errors += e;
  for (const std::size_t m : mismatches) result.mismatches += m;
  return result;
}

void report(const char* label, const ModeResult& r) {
  std::printf("  %-22s %9.0f req/s  burst p50 %7.3f ms  p99 %7.3f ms  "
              "p999 %7.3f ms  mean fill %.1f\n",
              label, static_cast<double>(r.requests) / r.seconds, r.p50_ms,
              r.p99_ms, r.p999_ms, r.stats.mean_window_fill());
}

}  // namespace

int main() {
  bench::print_header(
      "Network serving: micro-batched TCP front end vs naive dispatch",
      "8 pipelined clients (depth 16, zipf 0.99) on loopback; acceptance: "
      "micro-batch >= 3x naive throughput");
  bench::JsonResults json("serve_net");

  Rng rng(20260807);
  const std::size_t p = 6;
  const std::size_t n_features = 256;
  const PoetBin model = random_model(p, n_features, rng);

  std::vector<BitVector> pool;
  pool.reserve(kKeySpace);
  for (std::size_t k = 0; k < kKeySpace; ++k) {
    BitVector bits(n_features);
    Rng key_rng = rng.fork(k);
    for (std::size_t w = 0; w < bits.word_count(); ++w) {
      bits.words()[w] = key_rng.next_u64();
    }
    bits.mask_tail_word();
    pool.push_back(std::move(bits));
  }
  std::vector<int> expected(kKeySpace);
  for (std::size_t k = 0; k < kKeySpace; ++k) {
    expected[k] = model.predict(pool[k]);
  }

  const std::size_t bursts_per_thread = std::max(
      std::size_t{20},
      static_cast<std::size_t>(150 * bench::bench_scale()));
  std::printf("P=%zu model, %zu features, %zu keys, %zu clients x %zu "
              "bursts x %zu deep:\n",
              p, n_features, kKeySpace, kClientThreads, bursts_per_thread,
              kPipelineDepth);

  const ModeResult naive =
      run_mode(model, pool, expected, /*micro_batch=*/false,
               /*cache_bytes=*/0, bursts_per_thread);
  report("naive dispatch", naive);
  const ModeResult micro =
      run_mode(model, pool, expected, /*micro_batch=*/true,
               /*cache_bytes=*/0, bursts_per_thread);
  report("micro-batch (window 64)", micro);
  const ModeResult cached =
      run_mode(model, pool, expected, /*micro_batch=*/true,
               /*cache_bytes=*/8u << 20, bursts_per_thread);
  report("micro-batch + cache", cached);

  bool pass = true;
  if (naive.requests == 0 || micro.requests == 0 || cached.requests == 0 ||
      naive.transport_errors > 0 || micro.transport_errors > 0 ||
      cached.transport_errors > 0) {
    std::printf("  ERROR: transport failures (naive %zu, micro %zu, "
                "cached %zu)\n",
                naive.transport_errors, micro.transport_errors,
                cached.transport_errors);
    return 1;
  }
  if (naive.mismatches > 0 || micro.mismatches > 0 || cached.mismatches > 0) {
    std::printf("  ERROR: served predictions disagree with scalar predict "
                "(naive %zu, micro %zu, cached %zu)\n",
                naive.mismatches, micro.mismatches, cached.mismatches);
    return 1;
  }

  const double naive_rps = static_cast<double>(naive.requests) / naive.seconds;
  const double micro_rps = static_cast<double>(micro.requests) / micro.seconds;
  const double cached_rps =
      static_cast<double>(cached.requests) / cached.seconds;
  const double speedup = micro_rps / naive_rps;
  std::printf("  -> micro-batch vs naive throughput: %.2fx (target 3x)\n",
              speedup);
  std::printf("  -> cache on vs off: %.2fx (hit rate %.1f%%, informational)\n",
              cached_rps / micro_rps, 100.0 * cached.stats.cache_hit_rate());
  if (speedup < 3.0) pass = false;

  json.add("serve_net_naive_kqps", naive_rps / 1e3);
  json.add("serve_net_micro_kqps", micro_rps / 1e3);
  json.add("serve_net_micro_cached_kqps", cached_rps / 1e3);
  json.add("serve_net_cache_hit_rate", cached.stats.cache_hit_rate());
  json.add("serve_net_speedup_cache", cached_rps / micro_rps);
  json.add("serve_net_micro_p50_ms", micro.p50_ms);
  json.add("serve_net_micro_p99_ms", micro.p99_ms);
  json.add("serve_net_micro_p999_ms", micro.p999_ms);
  json.add("serve_net_naive_p50_ms", naive.p50_ms);
  json.add("serve_net_naive_p999_ms", naive.p999_ms);
  json.add("serve_net_speedup_vs_naive", speedup);
  json.add("serve_net_micro_mean_fill", micro.stats.mean_window_fill());
  json.add("acceptance_pass", pass ? 1.0 : 0.0);

  if (bench::bench_scale() < 1.0) {
    std::printf("acceptance check skipped (scale < 1.0); measured %s target\n",
                pass ? "above" : "below");
    return 0;
  }
  std::printf("acceptance (micro-batch >= 3x naive): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
