// Command-line front end: train / evaluate / export a PoET-BiN classifier
// using the model serializer — the deploy loop a downstream user runs.
//
//   $ ./poetbin_cli train model.txt [digits|house_numbers|textures]
//   $ ./poetbin_cli eval model.txt  [digits|house_numbers|textures]
//                   [--batch[=threads]]   # bitsliced batch engine + timing
//   $ ./poetbin_cli export model.txt out_dir
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/batch_eval.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "hw/netlist_builder.h"
#include "hw/verilog.h"
#include "hw/vhdl.h"

using namespace poetbin;

namespace {

SyntheticFamily parse_family(const char* name) {
  if (std::strcmp(name, "textures") == 0) return SyntheticFamily::kTextures;
  if (std::strcmp(name, "house_numbers") == 0) {
    return SyntheticFamily::kHouseNumbers;
  }
  return SyntheticFamily::kDigits;
}

PipelineConfig family_config(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kTextures: return preset_c1(0.5);
    case SyntheticFamily::kHouseNumbers: return preset_s1(0.5);
    case SyntheticFamily::kDigits: default: return preset_m1(0.5);
  }
}

int cmd_train(const std::string& path, SyntheticFamily family) {
  PipelineConfig config = family_config(family);
  config.train_a2_network = false;
  std::printf("training PoET-BiN on '%s'...\n", family_name(family));
  const PipelineResult result = run_pipeline(config);
  std::printf("teacher %.2f%%, PoET-BiN %.2f%%\n", 100 * result.a3,
              100 * result.a4);
  if (!save_model_file(result.model, path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("model saved to %s\n", path.c_str());
  return 0;
}

int cmd_eval(const std::string& path, SyntheticFamily family, bool batch,
             std::size_t batch_threads) {
  PoetBin model;
  if (!load_model_file(model, path)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  // Regenerate the family's features through a freshly trained teacher at a
  // matching scale; the saved model is evaluated on the resulting test bits.
  PipelineConfig config = family_config(family);
  config.train_a2_network = false;
  const PipelineResult result = run_pipeline(config);
  const BitMatrix& test_features = result.test_bits.features;
  std::printf("loaded model: %zu modules, %zu LUTs\n", model.n_modules(),
              model.lut_count());

  double accuracy = 0.0;
  if (batch) {
    const BatchEngine engine(batch_threads);
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    accuracy = engine.accuracy(model, test_features, result.test_bits.labels);
    const auto t1 = Clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    std::printf("batch engine (%zu threads): %zu examples in %.3f ms "
                "(%.0f examples/s)\n",
                engine.n_threads(), test_features.rows(), 1e3 * seconds,
                test_features.rows() / seconds);
  } else {
    accuracy = model.accuracy(test_features, result.test_bits.labels);
  }
  std::printf("accuracy on regenerated '%s' test bits: %.2f%%\n",
              family_name(family), 100 * accuracy);
  std::printf("(note: features come from a re-trained teacher, so this\n"
              " measures transfer across feature extractors)\n");
  return 0;
}

int cmd_export(const std::string& path, const std::string& out_dir) {
  PoetBin model;
  if (!load_model_file(model, path)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  // The serialized model does not record the feature count; use the highest
  // referenced feature index.
  std::size_t n_features = 0;
  for (const auto& module : model.modules()) {
    for (const auto f : module.distinct_features()) {
      n_features = std::max(n_features, f + 1);
    }
  }
  const PoetBinNetlist netlist = build_poetbin_netlist(model, n_features);
  std::filesystem::create_directories(out_dir);
  std::ofstream(out_dir + "/poetbin_classifier.vhd") << generate_vhdl(netlist);
  std::ofstream(out_dir + "/poetbin_classifier.v") << generate_verilog(netlist);
  std::printf("exported %zu-LUT netlist (%zu inputs) to %s/{.vhd,.v}\n",
              netlist.netlist.n_luts(), n_features, out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --batch[=threads] wherever it appears.
  bool batch = false;
  std::size_t batch_threads = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch", 7) == 0 &&
        (argv[i][7] == '\0' || argv[i][7] == '=')) {
      batch = true;
      if (argv[i][7] == '=') {
        char* end = nullptr;
        const unsigned long threads = std::strtoul(argv[i] + 8, &end, 10);
        if (end == argv[i] + 8 || *end != '\0' || argv[i][8] == '-') {
          std::fprintf(stderr, "error: bad thread count in '%s'\n", argv[i]);
          return 2;
        }
        batch_threads = static_cast<std::size_t>(threads);
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  const int n_args = static_cast<int>(args.size());

  if (n_args >= 3 && std::strcmp(args[1], "train") == 0) {
    return cmd_train(args[2], parse_family(n_args > 3 ? args[3] : "digits"));
  }
  if (n_args >= 3 && std::strcmp(args[1], "eval") == 0) {
    return cmd_eval(args[2], parse_family(n_args > 3 ? args[3] : "digits"),
                    batch, batch_threads);
  }
  if (n_args >= 4 && std::strcmp(args[1], "export") == 0) {
    return cmd_export(args[2], args[3]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s train  <model.txt> [digits|house_numbers|textures]\n"
               "  %s eval   <model.txt> [digits|house_numbers|textures]"
               " [--batch[=threads]]\n"
               "  %s export <model.txt> <out_dir>\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
