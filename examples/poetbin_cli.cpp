// Command-line front end: train / evaluate / export a PoET-BiN classifier
// using the model serializer — the deploy loop a downstream user runs.
//
//   $ ./poetbin_cli train model.txt [digits|house_numbers|textures]
//   $ ./poetbin_cli train-conv model.txt        # conv front end + classifier
//   $ ./poetbin_cli eval model.txt  [digits|house_numbers|textures]
//                   [--threads=N] [--scalar]   # serving runtime options
//   $ ./poetbin_cli export model.txt out_dir
//   $ ./poetbin_cli pack model.txt model.pbm   # text -> packed binary
//   $ ./poetbin_cli unpack model.pbm model.txt # packed -> text
//   $ ./poetbin_cli serve model.txt [--port=P] [--workers=N] [--threads=N]
//                   [--watch[=ms]] [--cache-mb=N] [--no-cache]
//
// `serve` runs the network serving front end: N forked workers sharing one
// TCP port via SO_REUSEPORT, each with its own Runtime + micro-batcher.
// SIGTERM/SIGINT shut it down gracefully and print per-worker stats. With
// --watch each worker polls the model file (default every 1000 ms) and
// hot-swaps it in when its mtime or size changes; clients can also push a
// swap with a kReload frame either way. Each worker fronts its model with a
// lock-free prediction cache (serve/predict_cache.h, default 8 MiB) — hits
// are bit-identical and every reload/retrain invalidates by epoch; size it
// with --cache-mb=N or turn it off with --no-cache.
//
// `pack`/`unpack` convert between the text format and the mmap-ready packed
// binary format (core/packed_model.h); both accept either format as input
// (sniffed by magic), so `pack packed.pbm other.pbm` is a byte-identical
// re-pack. `eval` and `serve` likewise accept either format. Convolutional
// models (from `train-conv`) flow through pack/unpack/serve unchanged — the
// conv layer rides the same file and the serving runtime runs the fused
// bitsliced conv + classifier argmax per request.
//
// Common flags: --scale=<f> scales the dataset/teacher preset (default
// 0.5; CI smoke uses smaller) — eval regenerates the dataset, so pass the
// SAME --scale at train and eval time. `eval` loads the saved model into a
// poetbin::Runtime (persistent engine + fused bitsliced argmax) and times
// the pass; --scalar runs the scalar reference path instead, and
// --batch[=threads] is accepted as a deprecated alias for --threads.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/packed_model.h"
#include "core/pipeline.h"
#include "core/rinc_conv.h"
#include "core/serialize.h"
#include "hw/netlist_builder.h"
#include "hw/verilog.h"
#include "hw/vhdl.h"
#include "serve/net_server.h"
#include "serve/runtime.h"
#include "util/bit_matrix.h"
#include "util/rng.h"
#include "util/word_backend.h"

using namespace poetbin;

namespace {

SyntheticFamily parse_family(const char* name) {
  if (std::strcmp(name, "textures") == 0) return SyntheticFamily::kTextures;
  if (std::strcmp(name, "house_numbers") == 0) {
    return SyntheticFamily::kHouseNumbers;
  }
  return SyntheticFamily::kDigits;
}

PipelineConfig family_config(SyntheticFamily family, double scale) {
  PipelineConfig config;
  switch (family) {
    case SyntheticFamily::kTextures: config = preset_c1(scale); break;
    case SyntheticFamily::kHouseNumbers: config = preset_s1(scale); break;
    case SyntheticFamily::kDigits: default: config = preset_m1(scale); break;
  }
  // The deploy loop trains only what ships: the teacher (A3) and the
  // student (A4). A1/A2 are paper baselines.
  config.train_a1_network = false;
  config.train_a2_network = false;
  return config;
}

int cmd_train(const std::string& path, SyntheticFamily family, double scale) {
  const PipelineConfig config = family_config(family, scale);
  std::printf("training PoET-BiN on '%s'...\n", family_name(family));
  const PipelineResult result = run_pipeline(config);
  std::printf("teacher %.2f%%, PoET-BiN %.2f%%\n", 100 * result.a3,
              100 * result.a4);
  const IoStatus saved = write_model_file(result.model, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().message.c_str());
    return 1;
  }
  std::printf("model saved to %s\n", path.c_str());
  return 0;
}

// Trains a convolutional PoET-BiN (paper §6): a RINC conv front end over a
// synthetic binary frame task, then the dense classifier on the conv
// outputs. The task is deliberately local — each output channel is a
// neighborhood function of the input frame and the class label reads two
// fixed pixels — so both stages have real signal to distill, and the
// reported accuracies mean something. The artifact is a conv text model
// that pack/eval/serve all accept.
int cmd_train_conv(const std::string& path, double scale) {
  const BinShape3 in_shape{1, 12, 12};
  RincConvConfig config;
  config.out_channels = 4;
  config.kernel = 3;
  config.stride = 1;
  config.padding = 1;
  config.rinc = {.lut_inputs = 4, .levels = 1, .total_dts = 4};
  const std::size_t n_classes = 4;
  const std::size_t n_train =
      std::max<std::size_t>(64, static_cast<std::size_t>(512 * scale));
  const std::size_t n_test = n_train / 2;

  const auto at = [&](std::size_t y, std::size_t x) {
    return y * in_shape.width + x;
  };
  // Per-position teacher targets: channel 0 copies the pixel, channels 1-3
  // are OR / AND / XOR over the 4-neighborhood (zero off the edge).
  const auto make_targets = [&](const BitMatrix& frames) {
    BitMatrix targets(frames.rows(),
                      config.out_channels * in_shape.height * in_shape.width);
    for (std::size_t i = 0; i < frames.rows(); ++i) {
      for (std::size_t y = 0; y < in_shape.height; ++y) {
        for (std::size_t x = 0; x < in_shape.width; ++x) {
          const bool centre = frames.get(i, at(y, x));
          const bool up = y > 0 && frames.get(i, at(y - 1, x));
          const bool down =
              y + 1 < in_shape.height && frames.get(i, at(y + 1, x));
          const bool left = x > 0 && frames.get(i, at(y, x - 1));
          const bool right =
              x + 1 < in_shape.width && frames.get(i, at(y, x + 1));
          const bool channel_bit[4] = {
              centre, up || down || left || right, up && down && left && right,
              static_cast<bool>(up ^ down ^ left ^ right)};
          const std::size_t position = y * in_shape.width + x;
          for (std::size_t c = 0; c < config.out_channels; ++c) {
            targets.set(i, c * in_shape.height * in_shape.width + position,
                        channel_bit[c]);
          }
        }
      }
    }
    return targets;
  };
  const auto label_of = [&](const BitMatrix& frames, std::size_t i) {
    return 2 * static_cast<int>(frames.get(i, at(6, 6))) +
           static_cast<int>(frames.get(i, at(2, 9)));
  };

  Rng rng(404);
  const auto random_frames = [&](std::size_t rows) {
    BitMatrix frames(rows, in_shape.flat());
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < frames.cols(); ++j) {
        frames.set(i, j, (rng.next_u64() & 1) != 0);
      }
    }
    return frames;
  };
  const BitMatrix train_frames = random_frames(n_train);
  std::printf("training RINC conv front end on %zu synthetic %zux%zux%zu "
              "frames...\n",
              n_train, in_shape.channels, in_shape.height, in_shape.width);
  ConvModel model;
  model.conv = RincConvLayer::train(train_frames, in_shape,
                                    make_targets(train_frames), config);
  const BinShape3 out_shape = model.conv.output_shape();
  std::printf("conv: %zux%zux%zu -> %zux%zux%zu, %zu LUTs/position\n",
              in_shape.channels, in_shape.height, in_shape.width,
              out_shape.channels, out_shape.height, out_shape.width,
              model.conv.lut_count_per_position());

  // Classifier trains on what the conv layer actually produces, with the
  // usual per-class intermediate supervision blocks.
  const BitMatrix conv_out = model.conv.eval_dataset(train_frames);
  std::vector<int> labels(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    labels[i] = label_of(train_frames, i);
  }
  const std::size_t p = 4;
  BitMatrix intermediate(n_train, n_classes * p);
  for (std::size_t i = 0; i < n_train; ++i) {
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      intermediate.set(i, j, labels[i] == static_cast<int>(j / p));
    }
  }
  PoetBinConfig classifier_config;
  classifier_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 4};
  classifier_config.n_classes = n_classes;
  classifier_config.output.epochs = 10;
  model.classifier =
      PoetBin::train(conv_out, intermediate, labels, classifier_config);

  const BitMatrix test_frames = random_frames(n_test);
  const std::vector<int> predicted = model.predict_dataset(test_frames);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n_test; ++i) {
    correct += predicted[i] == label_of(test_frames, i);
  }
  std::printf("held-out accuracy on %zu fresh frames: %.2f%%\n", n_test,
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(n_test));

  const IoStatus saved = write_conv_model_file(model, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().message.c_str());
    return 1;
  }
  std::printf("conv model saved to %s\n", path.c_str());
  return 0;
}

int cmd_eval(const std::string& path, SyntheticFamily family, double scale,
             std::size_t threads, bool scalar) {
  // The scalar reference path never touches the engine; don't spin up a
  // hardware-concurrency pool it won't use.
  Runtime::LoadResult runtime =
      Runtime::load(path, {.threads = scalar ? 1 : threads});
  if (!runtime.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 model_io_error_kind_name(runtime.error().kind),
                 runtime.error().message.c_str());
    return 1;
  }
  // Regenerate the family's features through a freshly trained teacher at a
  // matching scale; the saved model is evaluated on the resulting test bits.
  const PipelineResult result = run_pipeline(family_config(family, scale));
  const BitMatrix& test_features = result.test_bits.features;
  std::printf("loaded model: %zu modules, %zu LUTs\n",
              runtime->model().n_modules(), runtime->model().lut_count());

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const double accuracy =
      scalar ? runtime->model().accuracy(test_features,
                                         result.test_bits.labels)
             : runtime->accuracy(test_features, result.test_bits.labels);
  const auto t1 = Clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  if (scalar) {
    std::printf("scalar reference: ");
  } else {
    std::printf("runtime (%zu threads, %s backend): ", runtime->threads(),
                word_backend_name(runtime->backend()));
  }
  std::printf("%zu examples in %.3f ms (%.0f examples/s)\n",
              test_features.rows(), 1e3 * seconds,
              test_features.rows() / seconds);
  std::printf("accuracy on regenerated '%s' test bits: %.2f%%\n",
              family_name(family), 100 * accuracy);
  std::printf("(note: features come from a re-trained teacher at "
              "--scale=%g, so this\n"
              " measures transfer across feature extractors; pass the same "
              "--scale used\n"
              " at train time or the regenerated dataset will not match the "
              "model)\n",
              scale);
  return 0;
}

int cmd_export(const std::string& path, const std::string& out_dir) {
  const IoResult<LoadedModel> loaded = read_model_file_any(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 model_io_error_kind_name(loaded.error().kind),
                 loaded.error().message.c_str());
    return 1;
  }
  if (loaded->conv) {
    std::fprintf(stderr,
                 "error: netlist export covers dense models only; the conv "
                 "layer's per-position module replication is not laid out "
                 "yet\n");
    return 1;
  }
  const PoetBin* model = &loaded->model;
  // The serialized model does not record the feature count; use the highest
  // referenced feature index.
  std::size_t n_features = 0;
  for (const auto& module : model->modules()) {
    for (const auto f : module.distinct_features()) {
      n_features = std::max(n_features, f + 1);
    }
  }
  const PoetBinNetlist netlist = build_poetbin_netlist(*model, n_features);
  std::filesystem::create_directories(out_dir);
  std::ofstream(out_dir + "/poetbin_classifier.vhd") << generate_vhdl(netlist);
  std::ofstream(out_dir + "/poetbin_classifier.v") << generate_verilog(netlist);
  std::printf("exported %zu-LUT netlist (%zu inputs) to %s/{.vhd,.v}\n",
              netlist.netlist.n_luts(), n_features, out_dir.c_str());
  return 0;
}

// Format converters. Input format is sniffed, so these also re-serialize
// same-format files (useful as a canonicalizer: both writers are
// deterministic).
int cmd_pack(const std::string& in_path, const std::string& out_path,
             bool to_packed) {
  const IoResult<LoadedModel> loaded = read_model_file_any(in_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n",
                 model_io_error_kind_name(loaded.error().kind),
                 loaded.error().message.c_str());
    return 1;
  }
  IoStatus written;
  if (loaded->conv) {
    // Conv models carry the front-end layer alongside the classifier; route
    // them through the conv writers so the layer survives the conversion.
    const ConvModel conv_model{*loaded->conv, loaded->model};
    written = to_packed ? write_packed_conv_model_file(conv_model, out_path)
                        : write_conv_model_file(conv_model, out_path);
  } else {
    written = to_packed ? write_packed_model_file(loaded->model, out_path)
                        : write_model_file(loaded->model, out_path);
  }
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.error().message.c_str());
    return 1;
  }
  std::printf("%s %s (%s) -> %s (%s)\n", to_packed ? "packed" : "unpacked",
              in_path.c_str(), model_format_name(loaded->format),
              out_path.c_str(),
              model_format_name(to_packed ? ModelFormat::kPacked
                                          : ModelFormat::kText));
  return 0;
}

}  // namespace

namespace {

// Parses the value of a `--flag=<value>` argument as a positive finite
// number; exits with a usage error on malformed input ("nan"/"inf" parse as
// doubles but would flow into float-to-size_t casts downstream, which is
// undefined behavior — reject them here).
double parse_flag_value(const char* arg, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || !std::isfinite(parsed) ||
      parsed <= 0.0) {
    std::fprintf(stderr, "error: bad value in '%s'\n", arg);
    std::exit(2);
  }
  return parsed;
}

// Thread counts are whole numbers: reject fractions and anything strtoul
// would quietly wrap (a double-then-cast parse would truncate 2.9 and make
// 1e300 undefined behavior).
std::size_t parse_thread_count(const char* arg, const char* value) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || value[0] == '-') {
    std::fprintf(stderr, "error: bad thread count in '%s'\n", arg);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off flags wherever they appear: --threads=N (serving runtime
  // threads; --batch[=N] is the deprecated spelling), --scalar (scalar
  // reference path) and --scale=<f> (dataset/teacher preset scale).
  std::size_t threads = 0;
  bool scalar = false;
  double scale = 0.5;
  std::size_t port = 0;
  std::size_t workers = 1;
  long watch_ms = 0;
  std::size_t cache_mb = 8;
  bool no_cache = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch", 7) == 0 &&
        (argv[i][7] == '\0' || argv[i][7] == '=')) {
      if (argv[i][7] == '=') {
        threads = parse_thread_count(argv[i], argv[i] + 8);
      }
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = parse_thread_count(argv[i], argv[i] + 10);
      continue;
    }
    if (std::strcmp(argv[i], "--scalar") == 0) {
      scalar = true;
      continue;
    }
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = parse_flag_value(argv[i], argv[i] + 8);
      continue;
    }
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = parse_thread_count(argv[i], argv[i] + 7);
      if (port > 65535) {
        std::fprintf(stderr, "error: bad port in '%s'\n", argv[i]);
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = parse_thread_count(argv[i], argv[i] + 10);
      continue;
    }
    if (std::strncmp(argv[i], "--cache-mb=", 11) == 0) {
      cache_mb = parse_thread_count(argv[i], argv[i] + 11);
      if (cache_mb == 0) no_cache = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
      continue;
    }
    if (std::strncmp(argv[i], "--watch", 7) == 0 &&
        (argv[i][7] == '\0' || argv[i][7] == '=')) {
      watch_ms = argv[i][7] == '='
                     ? static_cast<long>(
                           parse_thread_count(argv[i], argv[i] + 8))
                     : 1000;
      if (watch_ms <= 0) {
        std::fprintf(stderr, "error: bad interval in '%s'\n", argv[i]);
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  const int n_args = static_cast<int>(args.size());

  if (n_args >= 3 && std::strcmp(args[1], "train") == 0) {
    return cmd_train(args[2], parse_family(n_args > 3 ? args[3] : "digits"),
                     scale);
  }
  if (n_args >= 3 && std::strcmp(args[1], "train-conv") == 0) {
    return cmd_train_conv(args[2], scale);
  }
  if (n_args >= 3 && std::strcmp(args[1], "eval") == 0) {
    return cmd_eval(args[2], parse_family(n_args > 3 ? args[3] : "digits"),
                    scale, threads, scalar);
  }
  if (n_args >= 4 && std::strcmp(args[1], "export") == 0) {
    return cmd_export(args[2], args[3]);
  }
  if (n_args >= 4 && std::strcmp(args[1], "pack") == 0) {
    return cmd_pack(args[2], args[3], /*to_packed=*/true);
  }
  if (n_args >= 4 && std::strcmp(args[1], "unpack") == 0) {
    return cmd_pack(args[2], args[3], /*to_packed=*/false);
  }
  if (n_args >= 3 && std::strcmp(args[1], "serve") == 0) {
    ShardedServeOptions options;
    options.workers = workers < 1 ? 1 : workers;
    options.threads = threads == 0 ? 1 : threads;
    options.watch_interval = std::chrono::milliseconds(watch_ms);
    options.cache_bytes = no_cache ? 0 : cache_mb << 20;
    options.server.port = static_cast<std::uint16_t>(port);
    return run_sharded_server(args[2], options);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s train  <model.txt> [digits|house_numbers|textures]"
               " [--scale=<f>]\n"
               "  %s train-conv <model.txt> [--scale=<f>]\n"
               "  %s eval   <model> [digits|house_numbers|textures]"
               " [--threads=N] [--scalar] [--scale=<f>]\n"
               "  %s export <model> <out_dir>\n"
               "  %s pack   <model> <out.pbm>\n"
               "  %s unpack <model> <out.txt>\n"
               "  %s serve  <model> [--port=P] [--workers=N]"
               " [--threads=N] [--watch[=ms]] [--cache-mb=N] [--no-cache]\n",
               argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
