// Energy explorer: walks the (P, L, #DT, q) design space on a distillation
// task and prints the accuracy / LUT / latency / energy frontier — the tool
// a deployment engineer would use to pick a configuration for a power
// budget, built entirely from the paper's cost models.
//
//   $ ./energy_explorer
#include <cstdio>
#include <iostream>

#include "core/rinc.h"
#include "hw/lut_decompose.h"
#include "hw/power_model.h"
#include "util/rng.h"
#include "util/table.h"

using namespace poetbin;

namespace {

struct Task {
  BitMatrix train_x, test_x;
  BitVector train_y, test_y;
};

Task make_task(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n_train = 3000;
  const std::size_t n_test = 1000;
  const std::size_t n_features = 256;
  Task task;
  task.train_x = BitMatrix(n_train, n_features);
  task.test_x = BitMatrix(n_test, n_features);
  task.train_y = BitVector(n_train);
  task.test_y = BitVector(n_test);
  auto fill = [&](BitMatrix& x, BitVector& y) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      std::size_t votes = 0;
      for (std::size_t f = 0; f < x.cols(); ++f) {
        const bool bit = rng.next_bool();
        x.set(i, f, bit);
        if (f % 13 == 0 && bit) ++votes;  // 20 voter features
      }
      bool label = votes >= 10;
      if (rng.next_bool(0.05)) label = !label;
      y.set(i, label);
    }
  };
  fill(task.train_x, task.train_y);
  fill(task.test_x, task.test_y);
  return task;
}

}  // namespace

int main() {
  std::printf("PoET-BiN energy explorer — accuracy vs hardware cost for one\n"
              "distilled binary neuron (majority-of-20 task, 256 features)\n\n");
  const Task task = make_task(9);

  TablePrinter table({"P", "L", "DTs", "acc(%)", "6-LUTs (pruned)",
                      "latency(ns)", "energy/inf (J)"});
  for (const std::size_t p : {4u, 6u, 8u}) {
    for (const std::size_t levels : {1u, 2u}) {
      for (const std::size_t dts_divisor : {2u, 1u}) {
        std::size_t capacity = 1;
        for (std::size_t l = 0; l < levels; ++l) capacity *= p;
        const std::size_t dts = capacity / dts_divisor;
        if (dts == 0) continue;
        const RincModule module =
            RincModule::train(task.train_x, task.train_y, {},
                              {.lut_inputs = p, .levels = levels,
                               .total_dts = dts});
        const BitVector predictions = module.eval_dataset(task.test_x);
        const double accuracy =
            100.0 *
            static_cast<double>(predictions.xnor_popcount(task.test_y)) /
            static_cast<double>(task.test_y.size());

        const PruneStats prune = prune_rinc(module);
        PoetBinHwSpec spec;
        spec.lut_inputs = p;
        spec.levels = levels;
        spec.n_dts = dts;
        spec.n_modules = 1;
        spec.n_classes = 0;  // single neuron: no output layer
        spec.qbits = 0;
        spec.clock_mhz = p <= 6 ? 100.0 : 62.5;
        spec.prune_fraction = prune.removed_fraction_6luts();

        table.add_row({std::to_string(p), std::to_string(levels),
                       std::to_string(dts), TablePrinter::fmt(accuracy, 2),
                       std::to_string(prune.kept_6luts),
                       TablePrinter::fmt(poetbin_latency_ns(spec), 2),
                       TablePrinter::sci(poetbin_energy_joules(spec), 2)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nReading the frontier: deeper hierarchies (L=2) buy accuracy\n"
              "with exponentially more LUTs; P=8 halves the clock because an\n"
              "8-input LUT decomposes into two 6-LUT levels (paper SS4.2).\n");
  return 0;
}
