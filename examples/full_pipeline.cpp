// Full A1 -> A4 workflow (paper Fig. 5) on the digits family:
// train the vanilla CNN, binarise features, train the teacher with the
// nc x P binary intermediate layer, distil every intermediate neuron into a
// RINC-2 module, retrain the sparse 8-bit output layer, and report the
// accuracy at every stage plus the hardware footprint of the result.
//
//   $ ./full_pipeline            # digits (MNIST stand-in)
//   $ ./full_pipeline textures   # CIFAR-10 stand-in
//   $ ./full_pipeline house_numbers
#include <cstdio>
#include <cstring>

#include "core/pipeline.h"
#include "hw/lut_decompose.h"
#include "hw/power_model.h"
#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "util/word_backend.h"

using namespace poetbin;

int main(int argc, char** argv) {
  SyntheticFamily family = SyntheticFamily::kDigits;
  if (argc > 1) {
    if (std::strcmp(argv[1], "textures") == 0) {
      family = SyntheticFamily::kTextures;
    } else if (std::strcmp(argv[1], "house_numbers") == 0) {
      family = SyntheticFamily::kHouseNumbers;
    } else if (std::strcmp(argv[1], "digits") != 0) {
      std::fprintf(stderr,
                   "usage: %s [digits|house_numbers|textures]\n", argv[0]);
      return 2;
    }
  }

  PipelineConfig config;
  switch (family) {
    case SyntheticFamily::kDigits: config = preset_m1(0.75); break;
    case SyntheticFamily::kHouseNumbers: config = preset_s1(0.75); break;
    case SyntheticFamily::kTextures: config = preset_c1(0.75); break;
  }
  config.verbose = true;

  std::printf("PoET-BiN full pipeline on '%s' (stand-in for %s)\n",
              family_name(family), family_paper_dataset(family));
  std::printf("P=%zu, RINC-%zu, %zu DTs per module, q=%d, %zu train / %zu "
              "test examples\n\n",
              config.poetbin.rinc.lut_inputs, config.poetbin.rinc.levels,
              config.poetbin.rinc.total_dts, config.poetbin.output.quant_bits,
              config.n_train, config.n_test);

  const PipelineResult result = run_pipeline(config);

  std::printf("\n--- accuracy per workflow stage (Fig. 5 / Table 2) ---\n");
  std::printf("  A1 vanilla network        : %6.2f%%\n", 100 * result.a1);
  std::printf("  A2 binary features        : %6.2f%%\n", 100 * result.a2);
  std::printf("  A3 teacher network        : %6.2f%%\n", 100 * result.a3);
  std::printf("  A4 PoET-BiN student       : %6.2f%%\n", 100 * result.a4);
  std::printf("  RINC/teacher bit fidelity : %6.2f%% (test)\n",
              100 * result.fidelity_test);

  const PruneStats prune = prune_poetbin(result.model);
  std::printf("\n--- hardware footprint ---\n");
  std::printf("  RINC modules              : %zu\n", result.model.n_modules());
  std::printf("  LUTs (module units)       : %zu\n", result.model.lut_count());
  std::printf("  6-input LUTs (decomposed) : %zu raw, %zu after pruning "
              "(%.1f%% removed)\n",
              prune.raw_6luts, prune.kept_6luts,
              100.0 * prune.removed_fraction_6luts());

  PoetBinHwSpec spec;
  spec.name = family_paper_dataset(family);
  spec.lut_inputs = config.poetbin.rinc.lut_inputs;
  spec.levels = config.poetbin.rinc.levels;
  spec.n_dts = config.poetbin.rinc.total_dts;
  spec.n_modules = result.model.n_modules();
  spec.qbits = config.poetbin.output.quant_bits;
  spec.clock_mhz = spec.lut_inputs <= 6 ? 100.0 : 62.5;
  spec.prune_fraction = prune.removed_fraction_6luts();
  std::printf("  modelled latency          : %.2f ns (single cycle @ %.1f "
              "MHz)\n",
              poetbin_latency_ns(spec), spec.clock_mhz);
  std::printf("  modelled energy/inference : %.2e J\n",
              poetbin_energy_joules(spec));

  // --- serving: the trained student behind the runtime layer ---
  // One persistent engine owns the request path; concurrent predict_one
  // traffic would go through a MicroBatcher, which packs requests into
  // 64-wide bitsliced words — here it serves the whole test set through
  // the one-example-at-a-time API and must agree with the batch pass.
  const Runtime runtime(result.model, {});
  MicroBatcher batcher(runtime, {.max_batch = 64});
  const BitMatrix& test_features = result.test_bits.features;
  std::vector<MicroBatcher::Ticket> tickets;
  std::vector<BitVector> rows;
  rows.reserve(test_features.rows());
  tickets.reserve(test_features.rows());
  for (std::size_t i = 0; i < test_features.rows(); ++i) {
    rows.push_back(test_features.row(i));
    tickets.push_back(batcher.submit(rows.back()));
  }
  batcher.flush();
  const std::vector<int> batch_preds = runtime.predict(test_features);
  std::size_t serve_mismatches = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (tickets[i].get() != batch_preds[i]) ++serve_mismatches;
  }
  std::printf("\n--- serving runtime ---\n");
  std::printf("  engine                    : %zu threads, %s backend\n",
              runtime.threads(), word_backend_name(runtime.backend()));
  const ServeStats serve_stats = batcher.stats();
  std::printf("  micro-batched requests    : %llu served in %llu batches "
              "(mean fill %.1f), %zu mismatches vs batch pass %s\n",
              static_cast<unsigned long long>(serve_stats.requests),
              static_cast<unsigned long long>(serve_stats.batches),
              serve_stats.mean_window_fill(), serve_mismatches,
              serve_mismatches == 0 ? "(bit-exact)" : "(BUG!)");
  return serve_mismatches == 0 ? 0 : 1;
}
