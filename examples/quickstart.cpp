// Quickstart: train one RINC-2 module (the paper's tiny binary neuron) on a
// synthetic binary classification task, inspect its structure, and verify
// the generated hardware netlist is bit-exact against the software model.
//
//   $ ./quickstart
//
// Walks through the four core ideas:
//   1. RINC-0: a level-wise decision tree IS a P-input LUT.
//   2. RINC-L: hierarchical Adaboost stacks LUTs to see P^(L+1) inputs.
//   3. Everything that runs in "hardware" is a LUT lookup — the netlist
//      built from the trained module reproduces it exactly.
//   4. Serving: a full classifier lives behind a poetbin::Runtime, and
//      single-example traffic micro-batches into 64-wide word passes.
#include <cstdio>
#include <vector>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "hw/lut_decompose.h"
#include "hw/netlist_builder.h"
#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "util/rng.h"

using namespace poetbin;

int main() {
  // --- a synthetic "wide" binary neuron to emulate ----------------------
  // Target: majority vote over 15 of 128 binary features, with 5% label
  // noise. No single P=6 LUT can represent it; a RINC-2 can.
  const std::size_t n_train = 4000;
  const std::size_t n_test = 1000;
  const std::size_t n_features = 128;
  Rng rng(42);

  BitMatrix features(n_train + n_test, n_features);
  BitVector targets(n_train + n_test);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    std::size_t votes = 0;
    for (std::size_t f = 0; f < n_features; ++f) {
      const bool bit = rng.next_bool();
      features.set(i, f, bit);
      if (f < 15 && bit) ++votes;
    }
    bool label = votes >= 8;
    if (rng.next_bool(0.05)) label = !label;
    targets.set(i, label);
  }
  std::vector<std::size_t> train_rows(n_train);
  std::vector<std::size_t> test_rows(n_test);
  for (std::size_t i = 0; i < n_train; ++i) train_rows[i] = i;
  for (std::size_t i = 0; i < n_test; ++i) test_rows[i] = n_train + i;
  const BitMatrix train_x = features.select_rows(train_rows);
  const BitMatrix test_x = features.select_rows(test_rows);
  BitVector train_y(n_train);
  BitVector test_y(n_test);
  for (std::size_t i = 0; i < n_train; ++i) train_y.set(i, targets.get(i));
  for (std::size_t i = 0; i < n_test; ++i) test_y.set(i, targets.get(n_train + i));

  auto accuracy = [&](const RincModule& module) {
    const BitVector predictions = module.eval_dataset(test_x);
    return 100.0 * static_cast<double>(predictions.xnor_popcount(test_y)) /
           static_cast<double>(n_test);
  };

  // --- the RINC capacity ladder -----------------------------------------
  std::printf("Training RINC modules on a 15-input majority function\n");
  std::printf("(%zu train / %zu test examples, %zu binary features):\n\n",
              n_train, n_test, n_features);
  for (const std::size_t levels : {0u, 1u, 2u}) {
    const RincModule module = RincModule::train(
        train_x, train_y, /*weights=*/{},
        {.lut_inputs = 6, .levels = levels, .total_dts = 0 /*= full tree*/});
    std::printf(
        "  RINC-%zu: %3zu LUTs, depth %zu, sees up to %4zu inputs -> "
        "test accuracy %.2f%%\n",
        levels, module.lut_count(), module.depth_in_luts(),
        module.distinct_features().size(), accuracy(module));
  }

  // --- hardware view ------------------------------------------------------
  const RincModule module = RincModule::train(
      train_x, train_y, {}, {.lut_inputs = 6, .levels = 2, .total_dts = 18});
  std::printf("\nPicked a RINC-2 with 18 DTs (paper-style partial budget):\n");
  std::printf("  LUT count: %zu (closed form for the full tree: %zu)\n",
              module.lut_count(), full_rinc_lut_count(6, 2));
  const PruneStats prune = prune_rinc(module);
  std::printf("  after synthesis-style pruning: %zu of %zu 6-LUTs (%.1f%% "
              "removed)\n",
              prune.kept_6luts, prune.raw_6luts,
              100.0 * prune.removed_fraction_6luts());

  const RincNetlist netlist = build_rinc_netlist(module, n_features);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n_test; ++i) {
    const BitVector row = test_x.row(i);
    if (netlist.eval(row) != module.eval(row)) ++mismatches;
  }
  std::printf("  netlist vs software model on %zu test vectors: %zu "
              "mismatches %s\n",
              n_test, mismatches, mismatches == 0 ? "(bit-exact)" : "(BUG!)");

  // --- serving view --------------------------------------------------------
  // A deployable classifier is a *bank* of RINC modules plus a sparse
  // quantized output layer. Build a tiny 2-class PoET-BiN on the same task
  // (class 1 = majority reached): each class's P intermediate targets are
  // noisy copies of the label / its complement, standing in for a teacher's
  // intermediate bits. Then serve it through the runtime layer.
  std::printf("\nServing: 2-class PoET-BiN behind poetbin::Runtime\n");
  const std::size_t p = 6;
  const std::size_t n_classes = 2;
  BitMatrix intermediate(n_train, n_classes * p);
  std::vector<int> labels(n_train);
  Rng teacher_rng(7);
  for (std::size_t i = 0; i < n_train; ++i) {
    labels[i] = train_y.get(i) ? 1 : 0;
    for (std::size_t j = 0; j < intermediate.cols(); ++j) {
      const bool target_bit = (labels[i] == static_cast<int>(j / p));
      intermediate.set(i, j, target_bit != teacher_rng.next_bool(0.05));
    }
  }
  PoetBinConfig pb_config;
  pb_config.rinc = {.lut_inputs = p, .levels = 1, .total_dts = 6};
  pb_config.n_classes = n_classes;
  pb_config.output.epochs = 60;
  pb_config.threads = 1;
  const Runtime runtime = Runtime::train(train_x, intermediate, labels,
                                         pb_config, {.threads = 1});

  // Single-example requests micro-batch into 64-wide bitsliced passes and
  // must agree bit for bit with the scalar per-example path.
  MicroBatcher batcher(runtime, {.max_batch = 64});
  std::vector<BitVector> request_rows;
  std::vector<MicroBatcher::Ticket> tickets;
  request_rows.reserve(n_test);
  tickets.reserve(n_test);
  for (std::size_t i = 0; i < n_test; ++i) {
    request_rows.push_back(test_x.row(i));
    tickets.push_back(batcher.submit(request_rows.back()));
  }
  batcher.flush();
  std::size_t serve_mismatches = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n_test; ++i) {
    const int served = tickets[i].get();
    if (served != runtime.predict_one(request_rows[i])) ++serve_mismatches;
    if (served == (test_y.get(i) ? 1 : 0)) ++correct;
  }
  const ServeStats serve_stats = batcher.stats();
  std::printf("  %llu requests served in %llu micro-batches: accuracy %.2f%%, "
              "%zu mismatches vs scalar predict %s\n",
              static_cast<unsigned long long>(serve_stats.requests),
              static_cast<unsigned long long>(serve_stats.batches),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(n_test),
              serve_mismatches,
              serve_mismatches == 0 ? "(bit-exact)" : "(BUG!)");

  std::printf("\nDone. Next: examples/full_pipeline for the image-to-LUT "
              "workflow.\n");
  return mismatches == 0 && serve_mismatches == 0 ? 0 : 1;
}
