// Automatic VHDL generation (the paper's SS4.2 Python-script contribution,
// here in C++): trains a small PoET-BiN classifier, writes the synthesizable
// entity and a self-checking testbench to ./vhdl_out/, and proves the
// netlist the VHDL encodes is bit-exact against the C++ model on the full
// test set — the same verification loop the paper runs between its FPGA
// and PyTorch.
//
//   $ ./vhdl_export
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "hw/netlist_builder.h"
#include "hw/vhdl.h"

using namespace poetbin;

int main() {
  // Small digits pipeline so the example runs in seconds.
  PipelineConfig config = preset_m1(0.4);
  config.train_a2_network = false;
  config.poetbin.rinc = {.lut_inputs = 6, .levels = 2, .total_dts = 12};
  std::printf("training a small PoET-BiN classifier (digits, P=6, 12 DTs)\n");
  const PipelineResult result = run_pipeline(config);
  std::printf("teacher %.2f%%, PoET-BiN %.2f%%\n", 100 * result.a3,
              100 * result.a4);

  const std::size_t n_features = result.train_bits.n_features();
  const PoetBinNetlist netlist = build_poetbin_netlist(result.model, n_features);
  std::printf("netlist: %zu LUTs, depth %zu, %zu inputs\n",
              netlist.netlist.n_luts(), netlist.netlist.depth(), n_features);

  // --- verification: netlist vs model on every test vector ---------------
  const auto model_pred = result.model.predict_dataset(result.test_bits.features);
  const auto netlist_pred = netlist.predict_dataset(result.test_bits.features);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < model_pred.size(); ++i) {
    if (model_pred[i] != netlist_pred[i]) ++mismatches;
  }
  std::printf("netlist vs model on %zu test vectors: %zu mismatches %s\n",
              model_pred.size(), mismatches,
              mismatches == 0 ? "(bit-exact)" : "(BUG!)");

  // --- emit VHDL ----------------------------------------------------------
  std::filesystem::create_directories("vhdl_out");
  VhdlOptions options;
  options.testbench_vectors = 32;

  const std::string rtl = generate_vhdl(netlist, options);
  std::ofstream("vhdl_out/poetbin_classifier.vhd") << rtl;
  const std::string tb = generate_testbench(netlist, result.test_bits.features,
                                            options);
  std::ofstream("vhdl_out/poetbin_classifier_tb.vhd") << tb;

  std::printf("wrote vhdl_out/poetbin_classifier.vhd     (%zu bytes)\n",
              rtl.size());
  std::printf("wrote vhdl_out/poetbin_classifier_tb.vhd  (%zu bytes, %zu "
              "check vectors)\n",
              tb.size(), options.testbench_vectors);
  std::printf("\nSimulate with e.g.:\n"
              "  ghdl -a vhdl_out/poetbin_classifier.vhd "
              "vhdl_out/poetbin_classifier_tb.vhd\n"
              "  ghdl -r poetbin_classifier_tb\n");
  return mismatches == 0 ? 0 : 1;
}
