#include "util/bitvector.h"

#include <bit>

#include "util/word_backend.h"

namespace poetbin {

namespace {
constexpr std::size_t words_for(std::size_t n_bits) { return (n_bits + 63) / 64; }
}  // namespace

BitVector::BitVector(std::size_t n_bits, bool value)
    : n_bits_(n_bits),
      words_(words_for(n_bits), value ? ~0ULL : 0ULL) {
  mask_tail();
}

void BitVector::clear() {
  for (auto& w : words_) w = 0;
}

void BitVector::fill(bool value) {
  for (auto& w : words_) w = value ? ~0ULL : 0ULL;
  mask_tail();
}

void BitVector::resize(std::size_t n_bits, bool value) {
  const std::size_t old_bits = n_bits_;
  n_bits_ = n_bits;
  words_.resize(words_for(n_bits), 0);
  if (value && n_bits > old_bits) {
    for (std::size_t i = old_bits; i < n_bits; ++i) set(i, true);
  }
  mask_tail();
}

void BitVector::push_back(bool value) {
  resize(n_bits_ + 1);
  set(n_bits_ - 1, value);
}

std::size_t BitVector::popcount() const {
  return word_ops().popcount_words(words_.data(), words_.size());
}

std::size_t BitVector::popcount_prefix(std::size_t prefix_bits) const {
  POETBIN_CHECK(prefix_bits <= n_bits_);
  std::size_t total = 0;
  const std::size_t full_words = prefix_bits / 64;
  for (std::size_t i = 0; i < full_words; ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  const std::size_t rem = prefix_bits & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(std::popcount(words_[full_words] & mask));
  }
  return total;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  word_ops().and_words(words_.data(), other.words_.data(), words_.data(),
                       words_.size());
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  word_ops().or_words(words_.data(), other.words_.data(), words_.data(),
                      words_.size());
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  word_ops().xor_words(words_.data(), other.words_.data(), words_.data(),
                       words_.size());
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector result = *this;
  word_ops().not_words(result.words_.data(), result.words_.data(),
                       result.words_.size());
  result.mask_tail();
  return result;
}

bool BitVector::operator==(const BitVector& other) const {
  return n_bits_ == other.n_bits_ && words_ == other.words_;
}

void BitVector::xor_into(const BitVector& other, BitVector& dst) const {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  dst.n_bits_ = n_bits_;
  dst.words_.resize(words_.size());
  word_ops().xor_words(words_.data(), other.words_.data(), dst.words_.data(),
                       words_.size());
  // Both operands keep zero tails, so the xor does too; re-masking costs one
  // AND and keeps the invariant independent of the operands' history.
  dst.mask_tail();
}

double BitVector::masked_weighted_sum(std::span<const double> weights) const {
  POETBIN_CHECK(weights.size() == n_bits_);
  return masked_weighted_sum_words(words_, weights, n_bits_);
}

std::size_t BitVector::xnor_popcount(const BitVector& other) const {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  return n_bits_ - hamming(other);
}

std::size_t BitVector::hamming(const BitVector& other) const {
  POETBIN_CHECK(n_bits_ == other.n_bits_);
  return word_ops().hamming_words(words_.data(), other.words_.data(),
                                  words_.size());
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(n_bits_);
  for (std::size_t i = 0; i < n_bits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

double masked_weighted_sum_words(std::span<const std::uint64_t> words,
                                 std::span<const double> weights,
                                 std::size_t n_bits) {
  POETBIN_CHECK(weights.size() >= n_bits);
  const std::size_t n_words = BitVector::words_needed(n_bits);
  POETBIN_CHECK(words.size() >= n_words);
  double total = 0.0;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t mask = words[w];
    if (w + 1 == n_words) mask &= BitVector::tail_word_mask(n_bits);
    const std::size_t row0 = w * 64;
    while (mask != 0) {
      total += weights[row0 + static_cast<std::size_t>(std::countr_zero(mask))];
      mask &= mask - 1;
    }
  }
  return total;
}

void BitVector::mask_tail() {
  if (!words_.empty()) words_.back() &= tail_word_mask(n_bits_);
}

}  // namespace poetbin
