// ASCII table printer used by the bench harnesses to reproduce the paper's
// tables side by side with our measured/model values.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace poetbin {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);
  // Scientific notation, e.g. "8.2e-09".
  static std::string sci(double value, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace poetbin
