// scalar64 backend: one 64-bit word per step. The reference every other
// backend must match bit for bit, and the fallback on non-x86 hosts.
#include "util/word_backend.h"
#include "util/word_backend_impl.h"

namespace poetbin {

const WordOps& scalar64_word_ops() {
  static const WordOps ops = {
      .kind = WordBackend::kScalar64,
      .name = "scalar64",
      .block_words = 1,
      .lut_reduce = word_impl::lut_reduce,
      .and_words = word_impl::and_words,
      .or_words = word_impl::or_words,
      .xor_words = word_impl::xor_words,
      .not_words = word_impl::not_words,
      .popcount_words = word_impl::popcount_words,
      .hamming_words = word_impl::hamming_words,
      .argmax_update = word_impl::argmax_update,
      .scale_by_mask = word_impl::scale_by_mask,
      .entropy_sum = word_impl::entropy_sum,
  };
  return ops;
}

}  // namespace poetbin
