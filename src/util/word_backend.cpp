// Runtime backend dispatch: CPU probe + POETBIN_FORCE_BACKEND override.
#include "util/word_backend.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/check.h"

#if defined(POETBIN_HAVE_NEON) && defined(__linux__)
#include <sys/auxv.h>
#if __has_include(<asm/hwcap.h>)
#include <asm/hwcap.h>
#endif
#endif

namespace poetbin {

// Defined in word_backend_scalar.cpp / word_backend_avx2.cpp /
// word_backend_avx512.cpp / word_backend_neon.cpp. The SIMD definitions
// exist only when the build enabled them (POETBIN_HAVE_* come from CMake
// after a compiler-flag probe; NEON only on aarch64 targets).
const WordOps& scalar64_word_ops();
#if defined(POETBIN_HAVE_AVX2)
const WordOps& avx2_word_ops();
#endif
#if defined(POETBIN_HAVE_AVX512)
const WordOps& avx512_word_ops();
#endif
#if defined(POETBIN_HAVE_NEON)
const WordOps& neon_word_ops();
#endif

namespace {

struct Registry {
  const WordOps* slots[4] = {nullptr, nullptr, nullptr, nullptr};
  const WordOps* initial = nullptr;
};

#if defined(POETBIN_HAVE_NEON)
// AdvSIMD is baseline armv8-a, but the auxv hwcap is the arm64 equivalent
// of the CPUID gate the x86 backends get: a kernel that masks it (or an
// exotic no-FP profile) degrades to scalar64 instead of faulting.
bool neon_supported() {
#if defined(__linux__) && defined(HWCAP_ASIMD)
  return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  return true;
#endif
}
#endif

const WordOps* probe(WordBackend backend) {
  switch (backend) {
    case WordBackend::kScalar64:
      return &scalar64_word_ops();
    case WordBackend::kAvx2:
#if defined(POETBIN_HAVE_AVX2)
      if (__builtin_cpu_supports("avx2")) return &avx2_word_ops();
#endif
      return nullptr;
    case WordBackend::kAvx512:
#if defined(POETBIN_HAVE_AVX512)
      if (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512bw") &&
          __builtin_cpu_supports("avx512vl")) {
        return &avx512_word_ops();
      }
#endif
      return nullptr;
    case WordBackend::kNeon:
#if defined(POETBIN_HAVE_NEON)
      if (neon_supported()) return &neon_word_ops();
#endif
      return nullptr;
  }
  return nullptr;
}

Registry build_registry() {
  Registry reg;
  for (const WordBackend backend :
       {WordBackend::kScalar64, WordBackend::kAvx2, WordBackend::kAvx512,
        WordBackend::kNeon}) {
    reg.slots[static_cast<std::size_t>(backend)] = probe(backend);
  }
  // Default to the widest available backend (at most one SIMD family is
  // compiled in per target architecture, so the order only ranks within
  // the x86 family)...
  reg.initial = reg.slots[static_cast<std::size_t>(WordBackend::kScalar64)];
  for (const WordBackend backend :
       {WordBackend::kNeon, WordBackend::kAvx2, WordBackend::kAvx512}) {
    const WordOps* ops = reg.slots[static_cast<std::size_t>(backend)];
    if (ops != nullptr) reg.initial = ops;
  }
  // ...unless POETBIN_FORCE_BACKEND pins one; an unknown or unavailable name
  // aborts rather than silently benchmarking the wrong kernels.
  // getenv is read once during the registry's static init, before any
  // thread could call setenv; nothing mutates the environment at runtime.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* forced = std::getenv("POETBIN_FORCE_BACKEND");
      forced != nullptr && forced[0] != '\0') {
    const auto backend = word_backend_from_name(forced);
    POETBIN_CHECK_MSG(backend.has_value(),
                      "POETBIN_FORCE_BACKEND must be one of scalar64, avx2, "
                      "avx512, neon");
    const WordOps* ops = reg.slots[static_cast<std::size_t>(*backend)];
    POETBIN_CHECK_MSG(ops != nullptr,
                      "POETBIN_FORCE_BACKEND names a backend this build or "
                      "CPU does not support");
    reg.initial = ops;
  }
  return reg;
}

const Registry& registry() {
  static const Registry reg = build_registry();
  return reg;
}

std::atomic<const WordOps*>& active_slot() {
  static std::atomic<const WordOps*> active{registry().initial};
  return active;
}

}  // namespace

const WordOps& word_ops() {
  // order: relaxed — every WordOps table is immutable static data built
  // before main() can race (function-local static init is synchronized),
  // so only the pointer read itself must be atomic. set_word_backend() is
  // documented process-global and test-serialized, not a hot-path handoff.
  return *active_slot().load(std::memory_order_relaxed);
}

const WordOps* word_ops_for(WordBackend backend) {
  return registry().slots[static_cast<std::size_t>(backend)];
}

WordBackend active_word_backend() { return word_ops().kind; }

void set_word_backend(WordBackend backend) {
  const WordOps* ops = word_ops_for(backend);
  POETBIN_CHECK_MSG(ops != nullptr,
                    "requested word backend is not available on this build "
                    "or CPU (check available_word_backends())");
  // order: relaxed — see word_ops(): the tables are immutable, so there is
  // nothing for a release to publish beyond the pointer value itself.
  active_slot().store(ops, std::memory_order_relaxed);
}

std::vector<WordBackend> available_word_backends() {
  std::vector<WordBackend> backends;
  for (const WordBackend backend :
       {WordBackend::kScalar64, WordBackend::kNeon, WordBackend::kAvx2,
        WordBackend::kAvx512}) {
    if (word_ops_for(backend) != nullptr) backends.push_back(backend);
  }
  return backends;
}

const char* word_backend_name(WordBackend backend) {
  switch (backend) {
    case WordBackend::kScalar64:
      return "scalar64";
    case WordBackend::kAvx2:
      return "avx2";
    case WordBackend::kAvx512:
      return "avx512";
    case WordBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<WordBackend> word_backend_from_name(std::string_view name) {
  std::string lowered(name);
  for (char& ch : lowered) {
    if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
  }
  if (lowered == "scalar64" || lowered == "scalar") {
    return WordBackend::kScalar64;
  }
  if (lowered == "avx2") return WordBackend::kAvx2;
  if (lowered == "avx512" || lowered == "avx-512") return WordBackend::kAvx512;
  if (lowered == "neon" || lowered == "asimd") return WordBackend::kNeon;
  return std::nullopt;
}

}  // namespace poetbin
