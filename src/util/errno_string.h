// Thread-safe errno formatting. std::strerror writes into shared static
// storage (clang-tidy concurrency-mt-unsafe), and the server formats socket
// errors from many handler threads at once; strerror_r keeps each message in
// a caller-owned buffer.
#pragma once

#include <cstring>
#include <string>

namespace poetbin {

namespace detail {

// strerror_r has two incompatible signatures: XSI returns int and fills the
// buffer, GNU returns the message pointer (which may ignore the buffer).
// Overloading on the call's result type picks the right handling without a
// feature-test-macro maze.
inline const char* strerror_r_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_r_result(const char* msg, const char* /*buf*/) {
  return msg != nullptr ? msg : "unknown error";
}

}  // namespace detail

inline std::string errno_string(int err) {
  char buf[128] = {};
  return detail::strerror_r_result(::strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace poetbin
