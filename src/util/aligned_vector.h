// 64-byte-aligned word storage.
//
// BitVector/BitMatrix columns and every word scratch buffer the kernels
// allocate use WordVec so that AVX2/AVX-512 loads in the word backends are
// unconditionally safe at full width — no scalar prologue peeling, no
// split-cache-line penalty on the 512-bit paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace poetbin {

inline constexpr std::size_t kWordAlignment = 64;  // one cache line

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

// The storage type for packed bit words throughout the library.
using WordVec =
    std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, kWordAlignment>>;

}  // namespace poetbin
