#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace poetbin {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  POETBIN_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace poetbin
