// Deterministic random number generation.
//
// Every stochastic component of the library takes an explicit seed so that
// training runs, tests and benches are reproducible bit-for-bit across runs
// and platforms. We use xoshiro256** seeded through splitmix64, which is
// fast, well distributed and trivially portable (no libstdc++ distribution
// differences leak into results).
#pragma once

#include <cstdint>
#include <cmath>

#include "util/check.h"

namespace poetbin {

// splitmix64: used to expand a single 64-bit seed into the xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    POETBIN_CHECK(bound > 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::size_t next_index(std::size_t bound) {
    return static_cast<std::size_t>(next_below(bound));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Standard normal via Box-Muller (cached second value).
  double next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = next_double();
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    cached_ = mag * std::sin(two_pi * u2);
    has_cached_ = true;
    return mag * std::cos(two_pi * u2);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * next_gaussian();
  }

  // Derive an independent stream, e.g. one per decision tree or per worker.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

  template <typename T>
  void shuffle(T* data, std::size_t n) {
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = next_index(i + 1);
      T tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace poetbin
