// Contract-checking macros used across the library.
//
// POETBIN_CHECK is active in all build types: library invariants and caller
// contracts are cheap relative to training loops, and silent corruption in a
// hardware-generation path is far worse than an abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace poetbin {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace poetbin

#define POETBIN_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) ::poetbin::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define POETBIN_CHECK_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) ::poetbin::check_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
