// NEON (AdvSIMD) backend for arm64: two 64-bit words (128 examples) per
// step.
//
// Only bitwise logic runs at vector width, so every result is bit-identical
// to the scalar64 reference; ragged sub-block tails fall through to the
// shared scalar bodies in word_backend_impl.h. Compiled with -march=armv8-a
// in its own TU (see CMakeLists.txt) and only for aarch64 targets; the
// runtime hwcap probe lives in word_backend.cpp. popcount/hamming stay on
// the scalar bodies (they compile to CNT+ADDV inline on arm64 and are not
// on the gated hot paths), scale_by_mask likewise, and entropy_sum must be
// the shared body by contract (log2 is not exact).
#include "util/word_backend.h"

#if defined(POETBIN_HAVE_NEON)

#include <arm_neon.h>

#include "util/word_backend_impl.h"

namespace poetbin {

namespace {

constexpr std::size_t kBlock = 2;  // 64-bit words per uint64x2_t

inline uint64x2_t mux(uint64x2_t f0, uint64x2_t f1, uint64x2_t x) {
  // f0 ^ ((f0 ^ f1) & x): bitwise select x ? f1 : f0.
  return veorq_u64(f0, vandq_u64(veorq_u64(f0, f1), x));
}

void lut_reduce_neon(const std::uint64_t* splat, std::size_t arity,
                     const std::uint64_t* const* columns, std::size_t base,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out) {
  const std::size_t n_words = word_end - word_begin;
  const std::size_t blocks = n_words / kBlock;
  if (blocks == 0) {
    word_impl::lut_reduce(splat, arity, columns, base, word_begin, word_end,
                          out);
    return;
  }
  // Broadcast the splatted table once per call (amortized over the whole
  // word range); scratch holds the live half-table between reduction
  // levels. Both live in 64-byte-aligned WordVec storage, one vector per
  // kBlock words.
  static thread_local WordVec vsplat;
  static thread_local WordVec scratch;
  const std::size_t table_size = std::size_t{1} << arity;
  if (vsplat.size() < table_size * kBlock) vsplat.resize(table_size * kBlock);
  for (std::size_t a = 0; a < table_size; ++a) {
    for (std::size_t l = 0; l < kBlock; ++l) {
      vsplat[a * kBlock + l] = splat[a];
    }
  }
  const std::size_t half = arity == 0 ? 0 : table_size / 2;
  if (scratch.size() < half * kBlock) scratch.resize(half * kBlock);
  auto at = [](WordVec& v, std::size_t k) {
    return vld1q_u64(v.data() + k * kBlock);
  };

  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t w = word_begin + blk * kBlock;
    if (arity == 0) {
      vst1q_u64(out + blk * kBlock, at(vsplat, 0));
      continue;
    }
    std::size_t h = half;
    const uint64x2_t x0 = vld1q_u64(columns[0] + (w - base));
    for (std::size_t k = 0; k < h; ++k) {
      vst1q_u64(scratch.data() + k * kBlock,
                mux(at(vsplat, 2 * k), at(vsplat, 2 * k + 1), x0));
    }
    for (std::size_t j = 1; j < arity; ++j) {
      h >>= 1;
      const uint64x2_t x = vld1q_u64(columns[j] + (w - base));
      for (std::size_t k = 0; k < h; ++k) {
        vst1q_u64(scratch.data() + k * kBlock,
                  mux(at(scratch, 2 * k), at(scratch, 2 * k + 1), x));
      }
    }
    vst1q_u64(out + blk * kBlock, at(scratch, 0));
  }
  word_impl::lut_reduce(splat, arity, columns, base,
                        word_begin + blocks * kBlock, word_end,
                        out + blocks * kBlock);
}

void and_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    vst1q_u64(dst + w, vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  word_impl::and_words(a + w, b + w, dst + w, n_words - w);
}

void or_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  word_impl::or_words(a + w, b + w, dst + w, n_words - w);
}

void xor_words_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    vst1q_u64(dst + w, veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  word_impl::xor_words(a + w, b + w, dst + w, n_words - w);
}

void not_words_neon(const std::uint64_t* a, std::uint64_t* dst,
                    std::size_t n_words) {
  const uint64x2_t ones = vdupq_n_u64(~0ULL);
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    vst1q_u64(dst + w, veorq_u64(vld1q_u64(a + w), ones));
  }
  word_impl::not_words(a + w, dst + w, n_words - w);
}

void argmax_update_neon(const std::uint64_t* const* cand_planes,
                        std::uint64_t* const* best_planes,
                        std::size_t n_planes,
                        std::uint64_t* const* class_planes,
                        std::size_t n_class_planes, std::uint32_t class_index,
                        std::size_t n_words) {
  const uint64x2_t ones = vdupq_n_u64(~0ULL);
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    uint64x2_t gt = vdupq_n_u64(0);
    uint64x2_t eq = ones;
    for (std::size_t p = n_planes; p-- > 0;) {
      const uint64x2_t c = vld1q_u64(cand_planes[p] + w);
      const uint64x2_t b = vld1q_u64(best_planes[p] + w);
      // gt |= eq & (c & ~b); eq &= ~(c ^ b). vbic(x, y) = x & ~y.
      gt = vorrq_u64(gt, vandq_u64(eq, vbicq_u64(c, b)));
      eq = vbicq_u64(eq, veorq_u64(c, b));
    }
    for (std::size_t p = 0; p < n_planes; ++p) {
      const uint64x2_t c = vld1q_u64(cand_planes[p] + w);
      const uint64x2_t b = vld1q_u64(best_planes[p] + w);
      // vbsl: bits of c where gt is set, bits of b elsewhere.
      vst1q_u64(best_planes[p] + w, vbslq_u64(gt, c, b));
    }
    for (std::size_t q = 0; q < n_class_planes; ++q) {
      const uint64x2_t v = vld1q_u64(class_planes[q] + w);
      const uint64x2_t updated = ((class_index >> q) & 1u) != 0
                                     ? vorrq_u64(v, gt)
                                     : vbicq_u64(v, gt);
      vst1q_u64(class_planes[q] + w, updated);
    }
  }
  word_impl::argmax_update_tail(cand_planes, best_planes, n_planes,
                                class_planes, n_class_planes, class_index, w,
                                n_words);
}

}  // namespace

const WordOps& neon_word_ops() {
  static const WordOps ops = {
      .kind = WordBackend::kNeon,
      .name = "neon",
      .block_words = kBlock,
      .lut_reduce = lut_reduce_neon,
      .and_words = and_words_neon,
      .or_words = or_words_neon,
      .xor_words = xor_words_neon,
      .not_words = not_words_neon,
      .popcount_words = word_impl::popcount_words,
      .hamming_words = word_impl::hamming_words,
      .argmax_update = argmax_update_neon,
      .scale_by_mask = word_impl::scale_by_mask,
      // Shared scalar body by contract: log2 is not exact (see WordOps).
      .entropy_sum = word_impl::entropy_sum,
  };
  return ops;
}

}  // namespace poetbin

#endif  // POETBIN_HAVE_NEON
