// Minimal CSV writer for exporting bench sweeps (ablation frontiers etc.).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace poetbin {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);

  void add_row(const std::vector<std::string>& cells);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t n_cols_;
};

}  // namespace poetbin
