// AVX-512 backend: eight 64-bit words (512 examples) per step.
//
// The Shannon mux collapses to a single vpternlogq per table level, and the
// Adaboost reweight blend uses the native 8-bit lane masks. As with AVX2,
// everything is exact bitwise logic or elementwise IEEE multiplies, so the
// results are bit-identical to scalar64; ragged tails fall through to the
// shared scalar bodies. Compiled with -mavx512f -mavx512bw -mavx512vl and
// dispatched at runtime in word_backend.cpp.
#include "util/word_backend.h"

#if defined(POETBIN_HAVE_AVX512)

#if defined(__GNUC__) && !defined(__clang__)
// GCC's _mm512_undefined_epi32() is self-initialized (__Y = __Y), which
// trips -Wmaybe-uninitialized through _mm512_andnot_si512 (GCC PR105593).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <vector>

#include "util/word_backend_impl.h"

namespace poetbin {

namespace {

constexpr std::size_t kBlock = 8;  // 64-bit words per __m512i

// vpternlogq imm for "x ? f1 : f0" with operands (f0, f1, x): the index is
// (f0_bit << 2) | (f1_bit << 1) | x_bit, so the truth table is 0b11011000.
constexpr int kMuxImm = 0xD8;

inline __m512i mux(__m512i f0, __m512i f1, __m512i x) {
  return _mm512_ternarylogic_epi64(f0, f1, x, kMuxImm);
}

void lut_reduce_avx512(const std::uint64_t* splat, std::size_t arity,
                       const std::uint64_t* const* columns, std::size_t base,
                       std::size_t word_begin, std::size_t word_end,
                       std::uint64_t* out) {
  const std::size_t n_words = word_end - word_begin;
  const std::size_t blocks = n_words / kBlock;
  if (blocks == 0) {
    word_impl::lut_reduce(splat, arity, columns, base, word_begin, word_end,
                          out);
    return;
  }
  // 64-byte-aligned WordVec storage (vector<__m512i> would trip
  // -Wignored-attributes) with one vector per kBlock words.
  static thread_local WordVec vsplat;
  static thread_local WordVec scratch;
  const std::size_t table_size = std::size_t{1} << arity;
  if (vsplat.size() < table_size * kBlock) vsplat.resize(table_size * kBlock);
  for (std::size_t a = 0; a < table_size; ++a) {
    for (std::size_t l = 0; l < kBlock; ++l) {
      vsplat[a * kBlock + l] = splat[a];
    }
  }
  const std::size_t half = arity == 0 ? 0 : table_size / 2;
  if (scratch.size() < half * kBlock) scratch.resize(half * kBlock);
  auto at = [](WordVec& v, std::size_t k) {
    return _mm512_load_si512(v.data() + k * kBlock);
  };

  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t w = word_begin + blk * kBlock;
    if (arity == 0) {
      _mm512_storeu_si512(out + blk * kBlock, at(vsplat, 0));
      continue;
    }
    std::size_t h = half;
    const __m512i x0 = _mm512_loadu_si512(columns[0] + (w - base));
    for (std::size_t k = 0; k < h; ++k) {
      _mm512_store_si512(scratch.data() + k * kBlock,
                         mux(at(vsplat, 2 * k), at(vsplat, 2 * k + 1), x0));
    }
    for (std::size_t j = 1; j < arity; ++j) {
      h >>= 1;
      const __m512i x = _mm512_loadu_si512(columns[j] + (w - base));
      for (std::size_t k = 0; k < h; ++k) {
        _mm512_store_si512(scratch.data() + k * kBlock,
                           mux(at(scratch, 2 * k), at(scratch, 2 * k + 1), x));
      }
    }
    _mm512_storeu_si512(out + blk * kBlock, at(scratch, 0));
  }
  word_impl::lut_reduce(splat, arity, columns, base,
                        word_begin + blocks * kBlock, word_end,
                        out + blocks * kBlock);
}

void and_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    _mm512_storeu_si512(dst + w,
                        _mm512_and_si512(_mm512_loadu_si512(a + w),
                                         _mm512_loadu_si512(b + w)));
  }
  word_impl::and_words(a + w, b + w, dst + w, n_words - w);
}

void or_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    _mm512_storeu_si512(dst + w,
                        _mm512_or_si512(_mm512_loadu_si512(a + w),
                                        _mm512_loadu_si512(b + w)));
  }
  word_impl::or_words(a + w, b + w, dst + w, n_words - w);
}

void xor_words_avx512(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    _mm512_storeu_si512(dst + w,
                        _mm512_xor_si512(_mm512_loadu_si512(a + w),
                                         _mm512_loadu_si512(b + w)));
  }
  word_impl::xor_words(a + w, b + w, dst + w, n_words - w);
}

void not_words_avx512(const std::uint64_t* a, std::uint64_t* dst,
                      std::size_t n_words) {
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    _mm512_storeu_si512(dst + w,
                        _mm512_xor_si512(_mm512_loadu_si512(a + w), ones));
  }
  word_impl::not_words(a + w, dst + w, n_words - w);
}

void argmax_update_avx512(const std::uint64_t* const* cand_planes,
                          std::uint64_t* const* best_planes,
                          std::size_t n_planes,
                          std::uint64_t* const* class_planes,
                          std::size_t n_class_planes,
                          std::uint32_t class_index, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    __m512i gt = _mm512_setzero_si512();
    __m512i eq = _mm512_set1_epi64(-1);
    for (std::size_t p = n_planes; p-- > 0;) {
      const __m512i c = _mm512_loadu_si512(cand_planes[p] + w);
      const __m512i b = _mm512_loadu_si512(best_planes[p] + w);
      gt = _mm512_or_si512(
          gt, _mm512_and_si512(eq, _mm512_andnot_si512(b, c)));
      eq = _mm512_andnot_si512(_mm512_xor_si512(c, b), eq);
    }
    for (std::size_t p = 0; p < n_planes; ++p) {
      const __m512i c = _mm512_loadu_si512(cand_planes[p] + w);
      const __m512i b = _mm512_loadu_si512(best_planes[p] + w);
      // b ^ ((b ^ c) & gt): select c where gt — the same mux as the LUT path.
      _mm512_storeu_si512(best_planes[p] + w, mux(b, c, gt));
    }
    for (std::size_t q = 0; q < n_class_planes; ++q) {
      const __m512i v = _mm512_loadu_si512(class_planes[q] + w);
      const __m512i updated = ((class_index >> q) & 1u) != 0
                                  ? _mm512_or_si512(v, gt)
                                  : _mm512_andnot_si512(gt, v);
      _mm512_storeu_si512(class_planes[q] + w, updated);
    }
  }
  word_impl::argmax_update_tail(cand_planes, best_planes, n_planes,
                                class_planes, n_class_planes, class_index, w,
                                n_words);
}

void scale_by_mask_avx512(const std::uint64_t* bits, std::size_t n_bits,
                          double factor0, double factor1, double* weights) {
  const __m512d f0v = _mm512_set1_pd(factor0);
  const __m512d f1v = _mm512_set1_pd(factor1);
  const std::size_t full_words = n_bits / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const std::uint64_t word = bits[w];
    for (std::size_t g = 0; g < 8; ++g) {
      const __mmask8 m = static_cast<__mmask8>(word >> (g * 8));
      const __m512d f = _mm512_mask_blend_pd(m, f0v, f1v);
      double* p = weights + w * 64 + g * 8;
      _mm512_storeu_pd(p, _mm512_mul_pd(_mm512_loadu_pd(p), f));
    }
  }
  word_impl::scale_by_mask(bits + full_words, n_bits - full_words * 64,
                           factor0, factor1, weights + full_words * 64);
}

}  // namespace

#if defined(POETBIN_HAVE_AVX512VPOPCNT)
// Defined in word_backend_avx512popcnt.cpp (the only TU compiled with
// -mavx512vpopcntdq); selected below only when CPUID reports vpopcntdq.
std::size_t avx512_vpopcnt_popcount_words(const std::uint64_t* a,
                                          std::size_t n_words);
std::size_t avx512_vpopcnt_hamming_words(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t n_words);
#endif

const WordOps& avx512_word_ops() {
  static const WordOps ops = [] {
    WordOps table = {
        .kind = WordBackend::kAvx512,
        .name = "avx512",
        .block_words = kBlock,
        .lut_reduce = lut_reduce_avx512,
        .and_words = and_words_avx512,
        .or_words = or_words_avx512,
        .xor_words = xor_words_avx512,
        .not_words = not_words_avx512,
        // Scalar bodies (hardware popcnt) unless vpopcntdq upgrades them
        // below — both are exact integer counts, so bit-identical either
        // way.
        .popcount_words = word_impl::popcount_words,
        .hamming_words = word_impl::hamming_words,
        .argmax_update = argmax_update_avx512,
        .scale_by_mask = scale_by_mask_avx512,
        // Shared scalar body by contract: log2 is not exact (see WordOps).
        .entropy_sum = word_impl::entropy_sum,
    };
#if defined(POETBIN_HAVE_AVX512VPOPCNT)
    // vpopcntdq is a separate ISA extension from avx512f/bw/vl (Ice
    // Lake+); gate on its own CPUID bit so avx512f-only machines keep the
    // scalar bodies.
    if (__builtin_cpu_supports("avx512vpopcntdq")) {
      table.popcount_words = avx512_vpopcnt_popcount_words;
      table.hamming_words = avx512_vpopcnt_hamming_words;
    }
#endif
    return table;
  }();
  return ops;
}

}  // namespace poetbin

#endif  // POETBIN_HAVE_AVX512
