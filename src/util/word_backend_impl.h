// Internal: scalar (64-bit word) kernel bodies shared by the backends.
//
// The scalar64 backend calls these directly; the AVX2/AVX-512 backends call
// them for the ragged sub-block tail of each range. Keeping one definition
// guarantees every backend's remainder path is literally the reference
// implementation. Not part of the public surface — include only from
// word_backend*.cpp.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dt/entropy.h"
#include "util/aligned_vector.h"

namespace poetbin::word_impl {

// One word of LUT output from `arity` input words: iteratively
// Shannon-reduce the splatted truth table over address bit 0, then 1, ...
// Each step is the bitwise mux f0 ^ ((f0 ^ f1) & x) applied to adjacent
// half-tables, so the whole evaluation is 2^arity - 1 word muxes and touches
// no per-example state. `scratch` must hold at least 2^(arity-1) words
// (unused when arity == 0).
inline std::uint64_t shannon_reduce(const std::uint64_t* splat,
                                    std::size_t arity, const std::uint64_t* in,
                                    std::uint64_t* scratch) {
  if (arity == 0) return splat[0];
  std::size_t half = std::size_t{1} << (arity - 1);
  const std::uint64_t x0 = in[0];
  for (std::size_t k = 0; k < half; ++k) {
    const std::uint64_t f0 = splat[2 * k];
    const std::uint64_t f1 = splat[2 * k + 1];
    scratch[k] = f0 ^ ((f0 ^ f1) & x0);
  }
  for (std::size_t j = 1; j < arity; ++j) {
    half >>= 1;
    const std::uint64_t x = in[j];
    for (std::size_t k = 0; k < half; ++k) {
      const std::uint64_t f0 = scratch[2 * k];
      const std::uint64_t f1 = scratch[2 * k + 1];
      scratch[k] = f0 ^ ((f0 ^ f1) & x);
    }
  }
  return scratch[0];
}

inline void lut_reduce(const std::uint64_t* splat, std::size_t arity,
                       const std::uint64_t* const* columns, std::size_t base,
                       std::size_t word_begin, std::size_t word_end,
                       std::uint64_t* out) {
  // Reused across calls: one allocation per thread, not one per chunk.
  static thread_local WordVec scratch;
  static thread_local WordVec in;
  const std::size_t half = arity == 0 ? 0 : (std::size_t{1} << (arity - 1));
  if (scratch.size() < half) scratch.resize(half);
  if (in.size() < arity) in.resize(arity);
  for (std::size_t w = word_begin; w < word_end; ++w) {
    for (std::size_t j = 0; j < arity; ++j) in[j] = columns[j][w - base];
    out[w - word_begin] =
        shannon_reduce(splat, arity, in.data(), scratch.data());
  }
}

inline void and_words(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n_words) {
  for (std::size_t w = 0; w < n_words; ++w) dst[w] = a[w] & b[w];
}

inline void or_words(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst, std::size_t n_words) {
  for (std::size_t w = 0; w < n_words; ++w) dst[w] = a[w] | b[w];
}

inline void xor_words(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* dst, std::size_t n_words) {
  for (std::size_t w = 0; w < n_words; ++w) dst[w] = a[w] ^ b[w];
}

inline void not_words(const std::uint64_t* a, std::uint64_t* dst,
                      std::size_t n_words) {
  for (std::size_t w = 0; w < n_words; ++w) dst[w] = ~a[w];
}

inline std::size_t popcount_words(const std::uint64_t* a, std::size_t n_words) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w]));
  }
  return total;
}

inline std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n_words) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

// MSB-first bitwise comparator over code planes; see WordOps::argmax_update.
inline void argmax_update(const std::uint64_t* const* cand_planes,
                          std::uint64_t* const* best_planes,
                          std::size_t n_planes,
                          std::uint64_t* const* class_planes,
                          std::size_t n_class_planes, std::uint32_t class_index,
                          std::size_t n_words) {
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t gt = 0;
    std::uint64_t eq = ~0ULL;
    for (std::size_t p = n_planes; p-- > 0;) {
      const std::uint64_t c = cand_planes[p][w];
      const std::uint64_t b = best_planes[p][w];
      gt |= eq & c & ~b;
      eq &= ~(c ^ b);
    }
    for (std::size_t p = 0; p < n_planes; ++p) {
      best_planes[p][w] =
          (best_planes[p][w] & ~gt) | (cand_planes[p][w] & gt);
    }
    for (std::size_t q = 0; q < n_class_planes; ++q) {
      if ((class_index >> q) & 1u) {
        class_planes[q][w] |= gt;
      } else {
        class_planes[q][w] &= ~gt;
      }
    }
  }
}

// Tail driver for SIMD argmax_update implementations: rebases every plane
// pointer by `offset` words and runs the scalar comparator on the
// remainder. Single-sourced so the AVX2/AVX-512 remainder paths cannot
// diverge.
inline void argmax_update_tail(const std::uint64_t* const* cand_planes,
                               std::uint64_t* const* best_planes,
                               std::size_t n_planes,
                               std::uint64_t* const* class_planes,
                               std::size_t n_class_planes,
                               std::uint32_t class_index, std::size_t offset,
                               std::size_t n_words) {
  if (offset >= n_words) return;
  static thread_local std::vector<const std::uint64_t*> ctail;
  static thread_local std::vector<std::uint64_t*> btail;
  static thread_local std::vector<std::uint64_t*> qtail;
  ctail.resize(n_planes);
  btail.resize(n_planes);
  qtail.resize(n_class_planes);
  for (std::size_t p = 0; p < n_planes; ++p) {
    ctail[p] = cand_planes[p] + offset;
    btail[p] = best_planes[p] + offset;
  }
  for (std::size_t q = 0; q < n_class_planes; ++q) {
    qtail[q] = class_planes[q] + offset;
  }
  argmax_update(ctail.data(), btail.data(), n_planes, qtail.data(),
                n_class_planes, class_index, n_words - offset);
}

inline void scale_by_mask(const std::uint64_t* bits, std::size_t n_bits,
                          double factor0, double factor1, double* weights) {
  const double factor[2] = {factor0, factor1};
  for (std::size_t i = 0; i < n_bits; ++i) {
    weights[i] *= factor[(bits[i >> 6] >> (i & 63)) & 1u];
  }
}

// Every backend's entropy_sum is this one body: the per-node log2 is not an
// exact op, so widening it would break cross-backend bit-identity (see the
// WordOps declaration).
inline double entropy_sum(const double* pairs, std::size_t n_pairs,
                          double init) {
  return weighted_entropy_sum(pairs, n_pairs, init);
}

}  // namespace poetbin::word_impl
