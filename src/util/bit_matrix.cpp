#include "util/bit_matrix.h"

namespace poetbin {

BitMatrix BitMatrix::select_rows(const std::vector<std::size_t>& row_indices) const {
  BitMatrix out(row_indices.size(), cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    const BitVector& src = cols_[c];
    BitVector& dst = out.cols_[c];
    for (std::size_t r = 0; r < row_indices.size(); ++r) {
      POETBIN_CHECK(row_indices[r] < n_rows_);
      dst.set(r, src.get(row_indices[r]));
    }
  }
  return out;
}

void BitMatrix::append_row(const std::vector<bool>& bits) {
  POETBIN_CHECK(bits.size() == cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].push_back(bits[c]);
  }
  ++n_rows_;
}

}  // namespace poetbin
