// AVX-512 VPOPCNTDQ popcount kernels: eight 64-bit popcounts per
// instruction, accumulated in integer lanes — exact, so bit-identical to
// the scalar bodies by construction.
//
// This TU is the only one compiled with -mavx512vpopcntdq; the avx512
// backend table (word_backend_avx512.cpp, which declares these entry
// points) selects them only when CPUID also reports vpopcntdq at runtime,
// so an avx512f-only machine keeps the scalar popcount bodies and never
// executes these.
#include "util/word_backend.h"

#if defined(POETBIN_HAVE_AVX512VPOPCNT)

#if defined(__GNUC__) && !defined(__clang__)
// GCC's _mm256_undefined_si256() (inside _mm512_reduce_add_epi64) is
// self-initialized (__Y = __Y), which trips -Wuninitialized /
// -Wmaybe-uninitialized (GCC PR105593) — same suppression as
// word_backend_avx512.cpp.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "util/word_backend_impl.h"

namespace poetbin {

namespace {

constexpr std::size_t kBlock = 8;  // 64-bit words per __m512i

inline std::uint64_t reduce_counts(__m512i acc) {
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

}  // namespace

std::size_t avx512_vpopcnt_popcount_words(const std::uint64_t* a,
                                          std::size_t n_words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + w)));
  }
  return static_cast<std::size_t>(reduce_counts(acc)) +
         word_impl::popcount_words(a + w, n_words - w);
}

std::size_t avx512_vpopcnt_hamming_words(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t n_words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    const __m512i diff = _mm512_xor_si512(_mm512_loadu_si512(a + w),
                                          _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(diff));
  }
  return static_cast<std::size_t>(reduce_counts(acc)) +
         word_impl::hamming_words(a + w, b + w, n_words - w);
}

}  // namespace poetbin

#endif  // POETBIN_HAVE_AVX512VPOPCNT
