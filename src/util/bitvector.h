// Packed bit vector with word-parallel logic ops and popcount.
//
// This is the unit of storage for binary activations: one BitVector holds
// either one example's feature bits or (in BitMatrix) one feature's value
// across all examples.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/aligned_vector.h"
#include "util/check.h"

namespace poetbin {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n_bits, bool value = false);

  std::size_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }

  bool get(std::size_t i) const {
    POETBIN_CHECK(i < n_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    POETBIN_CHECK(i < n_bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void clear();             // all bits -> 0
  void fill(bool value);    // all bits -> value
  void resize(std::size_t n_bits, bool value = false);
  void push_back(bool value);

  // Number of set bits.
  std::size_t popcount() const;
  // Number of set bits among the first `prefix_bits` bits.
  std::size_t popcount_prefix(std::size_t prefix_bits) const;

  // Word-parallel logic. Operands must have equal size.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);
  BitVector operator~() const;

  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& other) const;

  // dst = *this ^ other, reusing dst's storage (Adaboost recomputes the
  // disagreement mask every round; this keeps the round loop allocation-free
  // after the first call). Operands must have equal size.
  void xor_into(const BitVector& other, BitVector& dst) const;

  // Sum of weights[i] over the set bits, accumulated in ascending bit order —
  // exactly the order of a scalar `if (get(i)) acc += weights[i]` loop, so
  // results are bit-identical to it. weights.size() must equal size().
  double masked_weighted_sum(std::span<const double> weights) const;

  // XNOR-popcount: number of positions where the two vectors agree.
  // This is the binary "dot product" used by BinaryNet-style neurons.
  std::size_t xnor_popcount(const BitVector& other) const;

  // Hamming distance (positions where they differ).
  std::size_t hamming(const BitVector& other) const;

  // Raw word access for tight inner loops (e.g. LevelDT's entropy scan).
  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* words() { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

  // Span view over the packed words (the unit of the bitsliced batch
  // engine: one word = 64 examples of one feature).
  std::span<const std::uint64_t> word_span() const { return words_; }

  // Writers of raw words must re-establish the invariant that bits beyond
  // size() are zero; calling this after the last word is written does so.
  void mask_tail_word() { mask_tail(); }

  static constexpr std::size_t kWordBits = 64;
  static constexpr std::size_t words_needed(std::size_t n_bits) {
    return (n_bits + kWordBits - 1) / kWordBits;
  }
  // All-ones over the positions a vector of n_bits occupies within its last
  // word (all-ones when the last word is full). The single source of truth
  // for tail handling — word-level consumers AND their last word with this.
  static constexpr std::uint64_t tail_word_mask(std::size_t n_bits) {
    const std::size_t rem = n_bits % kWordBits;
    return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  }

  // "0101..." with bit 0 first; for tests and debugging.
  std::string to_string() const;

 private:
  void mask_tail();  // zero bits beyond n_bits_ in the last word

  std::size_t n_bits_ = 0;
  // 64-byte-aligned so the SIMD word backends (util/word_backend.h) can use
  // full-width loads unconditionally.
  WordVec words_;
};

// Masked weighted sum over a raw word span: sum of weights[i] for every set
// bit i < n_bits, ascending. Bits beyond n_bits in the last word are ignored,
// so raw-word writers that have not re-masked their tail are still safe.
double masked_weighted_sum_words(std::span<const std::uint64_t> words,
                                 std::span<const double> weights,
                                 std::size_t n_bits);

}  // namespace poetbin
