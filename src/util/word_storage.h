// Owned-or-mapped word storage: one view abstraction for kernel constants.
//
// The bitsliced kernels consume flat arrays of uint64 words (splatted LUT
// truth tables, output-layer code bit-planes). Those words either live on
// the heap — built at construction/training time — or inside a read-only
// mmap'd packed model file (core/packed_model.h), where loading must not
// copy them. WordStorage holds either: an owning WordVec, or a borrowed
// pointer+size view into a mapping whose lifetime somebody else guarantees
// (PoetBin keeps the mapping alive via a shared keepalive handle).
//
// The class is rule-of-zero on purpose: copying an owned storage deep-copies
// the words, copying a view copies the pointer — both copies read the same
// bits, and `words()` resolves the active representation per call so moved-
// from/copied objects can never alias a dead internal pointer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "util/aligned_vector.h"

namespace poetbin {

class WordStorage {
 public:
  WordStorage() = default;

  // Owning: adopts the heap words.
  explicit WordStorage(WordVec owned) : owned_(std::move(owned)) {}

  // Borrowing: views `size` words at `data` (e.g. inside a file mapping).
  // The caller guarantees the backing memory outlives every copy of this
  // view; null data with size 0 is an empty view.
  WordStorage(const std::uint64_t* data, std::size_t size)
      : view_data_(data), view_size_(size) {}

  bool owning() const { return view_data_ == nullptr; }

  std::span<const std::uint64_t> words() const {
    return view_data_ != nullptr
               ? std::span<const std::uint64_t>(view_data_, view_size_)
               : std::span<const std::uint64_t>(owned_);
  }

  const std::uint64_t* data() const { return words().data(); }
  std::size_t size() const {
    return view_data_ != nullptr ? view_size_ : owned_.size();
  }
  bool empty() const { return size() == 0; }

 private:
  WordVec owned_;
  const std::uint64_t* view_data_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace poetbin
