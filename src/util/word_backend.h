// Pluggable SIMD word backend.
//
// Every hot kernel in the library is word-parallel: it walks packed uint64
// words (one word = 64 examples of one bit) and applies pure bitwise logic
// plus a few bit-steered float ops. WordOps abstracts the *width* of those
// walks: the scalar64 backend processes one 64-bit word per step, the AVX2
// backend four, the AVX-512 backend eight. All backends are bit-identical —
// the operations are exact (integer logic and elementwise IEEE multiplies),
// so widening the word never changes a result, and the scalar64 backend
// stays in-tree as the test oracle.
//
// Dispatch: the first call to word_ops() probes the CPU (CPUID on x86,
// the hwcap auxv on arm64) for the widest backend this build and this
// machine both support. POETBIN_FORCE_BACKEND
// (= scalar64 | avx2 | avx512 | neon) overrides the probe — aborting loudly
// if the forced backend is unavailable — and set_word_backend() does the
// same programmatically (used by tests and the per-backend bench loops).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace poetbin {

enum class WordBackend { kScalar64, kAvx2, kAvx512, kNeon };

// The kernel table one backend provides. All ranges are in 64-bit words; a
// backend is free to process them in wider blocks internally, finishing any
// ragged remainder at scalar width. No function masks dataset tails — bits
// beyond the logical size are the caller's contract, exactly as with the
// raw scalar loops these replace.
struct WordOps {
  WordBackend kind;
  const char* name;          // "scalar64" / "avx2" / "avx512" / "neon"
  std::size_t block_words;   // native block width in 64-bit words (1/2/4/8)

  // Shannon-reduced LUT evaluation, the batch-inference inner loop:
  //   out[w - word_begin] =
  //       table(columns[0][w - base], ..., columns[arity-1][w - base])
  // for w in [word_begin, word_end), where `splat` holds the 2^arity truth
  // table entries splatted to full words (~0 for 1, 0 for 0). Arity 0 writes
  // the constant splat[0].
  void (*lut_reduce)(const std::uint64_t* splat, std::size_t arity,
                     const std::uint64_t* const* columns, std::size_t base,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out);

  // dst[w] = a[w] OP b[w] (dst may alias either operand).
  void (*and_words)(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words);
  void (*or_words)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n_words);
  void (*xor_words)(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words);
  void (*not_words)(const std::uint64_t* a, std::uint64_t* dst,
                    std::size_t n_words);

  std::size_t (*popcount_words)(const std::uint64_t* a, std::size_t n_words);
  // popcount(a ^ b) without materializing the xor.
  std::size_t (*hamming_words)(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n_words);

  // Bitsliced argmax step (the fused output layer): candidate and best codes
  // are stored as n_planes bit-planes (plane p, word w holds bit p of 64
  // examples' codes). Computes gt = (cand > best) per example with a
  // bitwise MSB-first comparator, blends the winning candidate planes into
  // best, and records class_index in the n_class_planes class-index planes
  // wherever gt is set. Strictly-greater ties resolve to the incumbent
  // (lower class index), matching the scalar comparator-tree rule.
  void (*argmax_update)(const std::uint64_t* const* cand_planes,
                        std::uint64_t* const* best_planes, std::size_t n_planes,
                        std::uint64_t* const* class_planes,
                        std::size_t n_class_planes, std::uint32_t class_index,
                        std::size_t n_words);

  // weights[i] *= (bit i of `bits` ? factor1 : factor0) for i in [0, n_bits).
  // Elementwise IEEE multiplies — exact at any vector width (the Adaboost
  // reweight kernel).
  void (*scale_by_mask)(const std::uint64_t* bits, std::size_t n_bits,
                        double factor0, double factor1, double* weights);

  // Batched Algorithm-1 entropy accumulation over contiguous (w0, w1)
  // pairs (both weights must be non-negative; callers clamp):
  //   init + sum_k weighted_node_entropy(pairs[2k], pairs[2k + 1])
  // in ascending k, so chained calls reproduce one long accumulation
  // exactly. log2 is NOT an exact op, so backends must not widen the
  // per-node math: all of them point at the single shared body
  // (dt/entropy.h weighted_entropy_sum). The kernel exists to batch the
  // LevelDT scan's hundreds of thousands of per-node calls into one pass
  // per candidate behind the dispatch table, keeping the accumulation
  // order pinned where a future backend could otherwise be tempted to
  // tree-reduce it.
  double (*entropy_sum)(const double* pairs, std::size_t n_pairs, double init);
};

// The active backend's kernel table (never null).
const WordOps& word_ops();

// Kernel table for a specific backend, or nullptr when that backend was not
// compiled in or this CPU lacks the instructions.
const WordOps* word_ops_for(WordBackend backend);

inline bool word_backend_available(WordBackend backend) {
  return word_ops_for(backend) != nullptr;
}

WordBackend active_word_backend();

// Switches the active backend; aborts with a clear message when it is
// unavailable. Not synchronized against kernels already in flight — switch
// between dataset passes (tests and benches do this single-threaded).
void set_word_backend(WordBackend backend);

// Backends usable on this build + CPU, widest last. Always contains
// kScalar64.
std::vector<WordBackend> available_word_backends();

const char* word_backend_name(WordBackend backend);

// "scalar64" / "avx2" / "avx512" / "neon" (case-insensitive) -> backend;
// nullopt for anything else. The parser behind POETBIN_FORCE_BACKEND.
std::optional<WordBackend> word_backend_from_name(std::string_view name);

}  // namespace poetbin
