// O(1) approximate zipfian sampler (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94) — the standard skewed
// key-popularity model for serving load harnesses: a handful of hot keys
// take most of the traffic, the long tail takes the rest.
//
//   Rng rng(seed);
//   FastZipf zipf(rng.next_u64(), /*theta=*/0.99, /*n=*/10000);
//   std::size_t key = zipf.next();   // in [0, n); 0 is the hottest key
//
// theta in [0, 1): 0 degenerates to uniform, values approaching 1 are
// heavily skewed (0.99 is the YCSB default). Sampling costs two uniform
// draws and a pow(); the per-distribution constants are precomputed once,
// so thread-local instances are cheap to keep around.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace poetbin {

class FastZipf {
 public:
  FastZipf(std::uint64_t seed, double theta, std::size_t n)
      : rng_(seed), theta_(theta), n_(n) {
    POETBIN_CHECK_MSG(n >= 1, "zipf needs a non-empty key space");
    POETBIN_CHECK_MSG(theta >= 0.0 && theta < 1.0, "zipf theta must be in [0, 1)");
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_);
  }

  // Next key in [0, n); key 0 is the most popular.
  std::size_t next() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const std::size_t k = static_cast<std::size_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

  std::size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::size_t n, double theta) {
    double sum = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      sum += std::pow(1.0 / static_cast<double>(i), theta);
    }
    return sum;
  }

  Rng rng_;
  double theta_;
  std::size_t n_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace poetbin
