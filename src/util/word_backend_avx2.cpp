// AVX2 backend: four 64-bit words (256 examples) per step.
//
// Only bitwise logic and elementwise double multiplies run at vector width,
// so every result is bit-identical to the scalar64 reference; ragged
// sub-block tails fall through to the shared scalar bodies in
// word_backend_impl.h. Compiled with -mavx2 (see CMakeLists.txt) and only
// when the toolchain supports it; runtime CPUID dispatch lives in
// word_backend.cpp.
#include "util/word_backend.h"

#if defined(POETBIN_HAVE_AVX2)

#include <immintrin.h>

#include <vector>

#include "util/word_backend_impl.h"

namespace poetbin {

namespace {

constexpr std::size_t kBlock = 4;  // 64-bit words per __m256i

inline __m256i mux(__m256i f0, __m256i f1, __m256i x) {
  // f0 ^ ((f0 ^ f1) & x): bitwise select x ? f1 : f0.
  return _mm256_xor_si256(f0,
                          _mm256_and_si256(_mm256_xor_si256(f0, f1), x));
}

void lut_reduce_avx2(const std::uint64_t* splat, std::size_t arity,
                     const std::uint64_t* const* columns, std::size_t base,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out) {
  const std::size_t n_words = word_end - word_begin;
  const std::size_t blocks = n_words / kBlock;
  if (blocks == 0) {
    word_impl::lut_reduce(splat, arity, columns, base, word_begin, word_end,
                          out);
    return;
  }
  // Broadcast the splatted table once per call (amortized over the whole
  // word range); scratch holds the live half-table between reduction levels.
  // Both live in 64-byte-aligned WordVec storage (vector<__m256i> would
  // trip -Wignored-attributes) with one vector per kBlock words.
  static thread_local WordVec vsplat;
  static thread_local WordVec scratch;
  const std::size_t table_size = std::size_t{1} << arity;
  if (vsplat.size() < table_size * kBlock) vsplat.resize(table_size * kBlock);
  for (std::size_t a = 0; a < table_size; ++a) {
    for (std::size_t l = 0; l < kBlock; ++l) {
      vsplat[a * kBlock + l] = splat[a];
    }
  }
  const std::size_t half = arity == 0 ? 0 : table_size / 2;
  if (scratch.size() < half * kBlock) scratch.resize(half * kBlock);
  auto at = [](WordVec& v, std::size_t k) {
    return _mm256_load_si256(
        reinterpret_cast<const __m256i*>(v.data() + k * kBlock));
  };

  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t w = word_begin + blk * kBlock;
    if (arity == 0) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + blk * kBlock),
                          at(vsplat, 0));
      continue;
    }
    std::size_t h = half;
    const __m256i x0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(columns[0] + (w - base)));
    for (std::size_t k = 0; k < h; ++k) {
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(scratch.data() + k * kBlock),
          mux(at(vsplat, 2 * k), at(vsplat, 2 * k + 1), x0));
    }
    for (std::size_t j = 1; j < arity; ++j) {
      h >>= 1;
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(columns[j] + (w - base)));
      for (std::size_t k = 0; k < h; ++k) {
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(scratch.data() + k * kBlock),
            mux(at(scratch, 2 * k), at(scratch, 2 * k + 1), x));
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + blk * kBlock),
                        at(scratch, 0));
  }
  word_impl::lut_reduce(splat, arity, columns, base,
                        word_begin + blocks * kBlock, word_end,
                        out + blocks * kBlock);
}

void and_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(va, vb));
  }
  word_impl::and_words(a + w, b + w, dst + w, n_words - w);
}

void or_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(va, vb));
  }
  word_impl::or_words(a + w, b + w, dst + w, n_words - w);
}

void xor_words_avx2(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst, std::size_t n_words) {
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_xor_si256(va, vb));
  }
  word_impl::xor_words(a + w, b + w, dst + w, n_words - w);
}

void not_words_avx2(const std::uint64_t* a, std::uint64_t* dst,
                    std::size_t n_words) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_xor_si256(va, ones));
  }
  word_impl::not_words(a + w, dst + w, n_words - w);
}

void argmax_update_avx2(const std::uint64_t* const* cand_planes,
                        std::uint64_t* const* best_planes,
                        std::size_t n_planes,
                        std::uint64_t* const* class_planes,
                        std::size_t n_class_planes, std::uint32_t class_index,
                        std::size_t n_words) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t w = 0;
  for (; w + kBlock <= n_words; w += kBlock) {
    __m256i gt = _mm256_setzero_si256();
    __m256i eq = ones;
    for (std::size_t p = n_planes; p-- > 0;) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cand_planes[p] + w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(best_planes[p] + w));
      gt = _mm256_or_si256(
          gt, _mm256_and_si256(eq, _mm256_andnot_si256(b, c)));
      eq = _mm256_andnot_si256(_mm256_xor_si256(c, b), eq);
    }
    for (std::size_t p = 0; p < n_planes; ++p) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cand_planes[p] + w));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(best_planes[p] + w));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(best_planes[p] + w),
          _mm256_or_si256(_mm256_andnot_si256(gt, b),
                          _mm256_and_si256(gt, c)));
    }
    for (std::size_t q = 0; q < n_class_planes; ++q) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(class_planes[q] + w));
      const __m256i updated = ((class_index >> q) & 1u) != 0
                                  ? _mm256_or_si256(v, gt)
                                  : _mm256_andnot_si256(gt, v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(class_planes[q] + w),
                          updated);
    }
  }
  word_impl::argmax_update_tail(cand_planes, best_planes, n_planes,
                                class_planes, n_class_planes, class_index, w,
                                n_words);
}

void scale_by_mask_avx2(const std::uint64_t* bits, std::size_t n_bits,
                        double factor0, double factor1, double* weights) {
  const __m256d f0v = _mm256_set1_pd(factor0);
  const __m256d f1v = _mm256_set1_pd(factor1);
  const std::size_t full_words = n_bits / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    const __m256i word = _mm256_set1_epi64x(static_cast<long long>(bits[w]));
    __m256i sel = _mm256_setr_epi64x(1, 2, 4, 8);
    for (std::size_t g = 0; g < 16; ++g) {
      // All-ones lane exactly where the lane's bit is set in the word.
      const __m256i m =
          _mm256_cmpeq_epi64(_mm256_and_si256(word, sel), sel);
      const __m256d f = _mm256_blendv_pd(f0v, f1v, _mm256_castsi256_pd(m));
      double* p = weights + w * 64 + g * 4;
      _mm256_storeu_pd(p, _mm256_mul_pd(_mm256_loadu_pd(p), f));
      sel = _mm256_slli_epi64(sel, 4);
    }
  }
  word_impl::scale_by_mask(bits + full_words, n_bits - full_words * 64,
                           factor0, factor1, weights + full_words * 64);
}

}  // namespace

const WordOps& avx2_word_ops() {
  static const WordOps ops = {
      .kind = WordBackend::kAvx2,
      .name = "avx2",
      .block_words = kBlock,
      .lut_reduce = lut_reduce_avx2,
      .and_words = and_words_avx2,
      .or_words = or_words_avx2,
      .xor_words = xor_words_avx2,
      .not_words = not_words_avx2,
      // AVX2 has no 64-lane popcount; the scalar bodies compile to hardware
      // popcnt here and these ops are not on the gated hot paths.
      .popcount_words = word_impl::popcount_words,
      .hamming_words = word_impl::hamming_words,
      .argmax_update = argmax_update_avx2,
      .scale_by_mask = scale_by_mask_avx2,
      // Shared scalar body by contract: log2 is not exact (see WordOps).
      .entropy_sum = word_impl::entropy_sum,
  };
  return ops;
}

}  // namespace poetbin

#endif  // POETBIN_HAVE_AVX2
