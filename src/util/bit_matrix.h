// Feature-major packed binary matrix.
//
// Stores an (n_examples x n_features) binary dataset as one packed
// BitVector per *feature* ("column"). This layout is what makes the
// level-wise decision tree (Algorithm 1) fast: scoring a candidate feature
// is one linear scan over that feature's packed column, and evaluating a
// trained LUT over the whole dataset touches only the P selected columns.
// Column words are 64-byte-aligned (BitVector uses WordVec storage), so the
// SIMD word backends can run full-width loads over any column
// unconditionally.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/bitvector.h"
#include "util/check.h"

namespace poetbin {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t n_rows, std::size_t n_cols)
      : n_rows_(n_rows), cols_(n_cols, BitVector(n_rows)) {}

  std::size_t rows() const { return n_rows_; }
  std::size_t cols() const { return cols_.size(); }

  bool get(std::size_t row, std::size_t col) const {
    POETBIN_CHECK(col < cols_.size());
    return cols_[col].get(row);
  }

  void set(std::size_t row, std::size_t col, bool value) {
    POETBIN_CHECK(col < cols_.size());
    cols_[col].set(row, value);
  }

  const BitVector& column(std::size_t col) const {
    POETBIN_CHECK(col < cols_.size());
    return cols_[col];
  }

  // Packed words of one feature column; word w holds examples
  // [64w, 64w + 64). This is the batch engine's unit of access.
  std::span<const std::uint64_t> column_words(std::size_t col) const {
    POETBIN_CHECK(col < cols_.size());
    return cols_[col].word_span();
  }

  // Words per column (shared by every column).
  std::size_t word_count() const { return BitVector::words_needed(n_rows_); }

  BitVector& column(std::size_t col) {
    POETBIN_CHECK(col < cols_.size());
    return cols_[col];
  }

  // One example's bits gathered across all columns (row-major view).
  BitVector row(std::size_t r) const {
    BitVector out(cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) out.set(c, cols_[c].get(r));
    return out;
  }

  // New matrix containing the given subset of rows, in the given order.
  BitMatrix select_rows(const std::vector<std::size_t>& row_indices) const;

  // Append one example given its dense row bits (size must equal cols()).
  void append_row(const std::vector<bool>& bits);

  bool operator==(const BitMatrix& other) const {
    return n_rows_ == other.n_rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t n_rows_ = 0;
  std::vector<BitVector> cols_;
};

}  // namespace poetbin
