#include "util/csv.h"

#include "util/check.h"

namespace poetbin {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& headers)
    : out_(path), n_cols_(headers.size()) {
  write_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  POETBIN_CHECK(cells.size() == n_cols_);
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted.push_back(ch);
  }
  quoted += '"';
  return quoted;
}

}  // namespace poetbin
