#include "serve/predict_cache.h"

#include "util/check.h"

namespace poetbin {

namespace {

// splitmix64 finalizer: a cheap full-avalanche bijection over u64.
std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Chained xor-mix over the packed words plus the bit width. The tail word
// is masked so the hash depends only on bits [0, size) — two equal
// BitVectors always key identically regardless of stale tail bits.
std::uint64_t hash_bits(const BitVector& bits, std::uint64_t seed) {
  std::uint64_t h = mix64(seed ^ bits.size());
  const std::uint64_t* words = bits.words();
  const std::size_t n_words = bits.word_count();
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t word = words[w];
    if (w + 1 == n_words) word &= BitVector::tail_word_mask(bits.size());
    h = mix64(h ^ word);
  }
  return h;
}

std::size_t floor_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

std::size_t log2_pow2(std::size_t v) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < v) ++bits;
  return bits;
}

constexpr std::uint64_t kTagMask = 0xFFFFULL;

std::uint64_t pack_entry(int prediction, std::uint64_t version,
                         std::uint64_t hash) {
  return (static_cast<std::uint64_t>(prediction) << 48) |
         ((version & 0xFFFFFFFFULL) << 16) | (hash >> 48);
}

std::uint32_t entry_epoch(std::uint64_t data) {
  return static_cast<std::uint32_t>(data >> 16);
}

int entry_prediction(std::uint64_t data) {
  return static_cast<int>(data >> 48);
}

}  // namespace

PredictCache::PredictCache(PredictCacheOptions options) {
  const std::size_t total_entries =
      floor_pow2(options.capacity_bytes / sizeof(Entry) < kBucketEntries
                     ? kBucketEntries
                     : options.capacity_bytes / sizeof(Entry));
  std::size_t shards = floor_pow2(options.shards < 1 ? 1 : options.shards);
  if (shards < options.shards) shards *= 2;  // round UP to a power of two
  // Every shard needs at least one bucket.
  while (shards > 1 && total_entries / shards < kBucketEntries) shards /= 2;
  n_shards_ = shards;
  shard_bits_ = log2_pow2(shards);
  shard_entries_ = total_entries / shards;
  bucket_mask_ = shard_entries_ / kBucketEntries - 1;
  shards_ = std::make_unique<Shard[]>(n_shards_);
  for (std::size_t s = 0; s < n_shards_; ++s) {
    shards_[s].entries = std::make_unique<Entry[]>(shard_entries_);
  }
}

PredictCache::Key PredictCache::make_key(const BitVector& bits) {
  return Key{hash_bits(bits, 0x9E3779B97F4A7C15ULL),
             hash_bits(bits, 0xC2B2AE3D27D4EB4FULL)};
}

PredictCache::Entry* PredictCache::bucket_for(const Key& key, Shard** shard) {
  *shard = &shards_[key.hash & (n_shards_ - 1)];
  const std::size_t bucket = (key.hash >> shard_bits_) & bucket_mask_;
  return &(*shard)->entries[bucket * kBucketEntries];
}

bool PredictCache::probe(const Key& key, int* prediction) {
  Shard* shard = nullptr;
  Entry* bucket = bucket_for(key, &shard);
  // order: acquire pairs with set_epoch()'s release — a probe that reads a
  // post-wraparound epoch value also observes the clear() sequenced before
  // it, so a pre-wrap entry whose 32-bit epoch aliases the new generation
  // can never produce a false hit.
  const std::uint32_t current =
      static_cast<std::uint32_t>(epoch_.load(std::memory_order_acquire));
  const std::uint64_t tag = key.hash >> 48;
  for (std::size_t e = 0; e < kBucketEntries; ++e) {
    // order: acquire pairs with insert()'s release store of data — (a) the
    // matching check store is visible whenever the new data is (any other
    // interleaving XOR-mismatches into a miss), and (b) a hit synchronizes
    // with the inserter, so the hitter's later snapshot loads can never see
    // a model version older than the one that computed this entry.
    const std::uint64_t data = bucket[e].data.load(std::memory_order_acquire);
    // order: relaxed — sequenced after the acquire load of data, and the
    // XOR verification tolerates ANY stale or torn check value (it reads as
    // a miss); the acquire above is what makes the matching pair visible.
    const std::uint64_t check =
        bucket[e].check.load(std::memory_order_relaxed);
    if ((check ^ data) != key.verify || (data & kTagMask) != tag) continue;
    if (entry_epoch(data) != current) {
      // The key matched but the entry predates the serving version: a
      // reload/retrain published since it was inserted. Miss, never serve.
      // order: relaxed — monotonic statistics counter, no ordering needed.
      shard->counters.stale.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    *prediction = entry_prediction(data);
    // order: relaxed — monotonic statistics counter, no ordering needed.
    shard->counters.hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // order: relaxed — monotonic statistics counter, no ordering needed.
  shard->counters.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PredictCache::insert(const Key& key, int prediction,
                          std::uint64_t version) {
  POETBIN_CHECK_MSG(prediction >= 0 && prediction < (1 << 16),
                    "prediction does not fit the cache's 16-bit class field");
  Shard* shard = nullptr;
  Entry* bucket = bucket_for(key, &shard);
  const std::uint64_t data = pack_entry(prediction, version, key.hash);
  const std::uint64_t tag = key.hash >> 48;
  // order: relaxed — the epoch here only steers victim selection (prefer
  // reclaiming stale entries); a lagging value at worst evicts a live
  // entry early. Correctness never depends on this read.
  const std::uint32_t current =
      static_cast<std::uint32_t>(epoch_.load(std::memory_order_relaxed));
  // Victim policy: refresh the same key in place; otherwise reclaim a
  // stale-or-empty entry; otherwise replace-on-collision at a hash-chosen
  // index (bits below the tag, disjoint from the bucket selector).
  std::size_t victim = kBucketEntries;
  bool evicting = false;
  for (std::size_t e = 0; e < kBucketEntries; ++e) {
    // order: relaxed (both) — the victim scan is a heuristic: a torn or
    // stale (old, check) view only changes WHICH slot gets replaced, and
    // probe()'s XOR verification protects readers of whatever we overwrite.
    const std::uint64_t old = bucket[e].data.load(std::memory_order_relaxed);
    const std::uint64_t check =
        bucket[e].check.load(std::memory_order_relaxed);
    if ((check ^ old) == key.verify && (old & kTagMask) == tag) {
      victim = e;
      evicting = false;
      break;
    }
    // old == 0: a never-written (or cleared) slot. It must be tested
    // explicitly — at epoch 0 its zero epoch field would read as current.
    if (victim == kBucketEntries &&
        (old == 0 || entry_epoch(old) != current)) {
      victim = e;
    }
  }
  if (victim == kBucketEntries) {
    victim = static_cast<std::size_t>((key.hash >> 46) & (kBucketEntries - 1));
    evicting = true;
  }
  // order: check first relaxed, then data release — the release makes the
  // check store visible to any reader that acquires the new data word, so
  // a verified pair is always matched; a reader that catches the pair
  // half-visible XOR-mismatches into a miss. The data release additionally
  // carries the inserter's happens-before (see probe()).
  bucket[victim].check.store(key.verify ^ data, std::memory_order_relaxed);
  bucket[victim].data.store(data, std::memory_order_release);
  // order: relaxed — monotonic statistics counters, no ordering needed.
  shard->counters.inserts.fetch_add(1, std::memory_order_relaxed);
  if (evicting) {
    shard->counters.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void PredictCache::set_epoch(std::uint64_t version) {
  // order: relaxed — epoch_ writers are serialized by the Runtime's
  // mutate_mu (publish() is the only caller), so this read never races a
  // concurrent store; it only detects the 2^32 wraparound.
  const std::uint64_t previous = epoch_.load(std::memory_order_relaxed);
  if ((version >> 32) != (previous >> 32)) {
    // Epoch wraparound: the 32-bit entry tags are about to repeat, so an
    // entry from 2^32 publishes ago could read as current. Drop everything.
    clear();
  }
  // order: release pairs with probe()'s acquire of epoch_ — a probe that
  // reads this value also observes the wraparound clear() above, so
  // epoch-aliased pre-wrap entries can never false-hit.
  epoch_.store(version, std::memory_order_release);
}

std::uint64_t PredictCache::epoch() const {
  // order: acquire mirrors probe()'s pairing with set_epoch()'s release so
  // external observers (tests, stats dumps) get the same guarantee.
  return epoch_.load(std::memory_order_acquire);
}

void PredictCache::clear() {
  for (std::size_t s = 0; s < n_shards_; ++s) {
    for (std::size_t e = 0; e < shard_entries_; ++e) {
      // order: relaxed (both) — concurrent probes may observe the pair
      // half-cleared, which XOR-mismatches into a miss; an all-zero entry
      // never verifies (a real key's verify word is nonzero w.h.p.).
      shards_[s].entries[e].check.store(0, std::memory_order_relaxed);
      shards_[s].entries[e].data.store(0, std::memory_order_relaxed);
    }
  }
}

PredictCacheStats PredictCache::stats() const {
  PredictCacheStats total;
  for (std::size_t s = 0; s < n_shards_; ++s) {
    const Counters& c = shards_[s].counters;
    // order: relaxed (all) — monotonic counters; a snapshot may lag in-
    // flight increments but each word is read atomically, never torn.
    total.hits += c.hits.load(std::memory_order_relaxed);
    total.misses += c.misses.load(std::memory_order_relaxed);
    total.inserts += c.inserts.load(std::memory_order_relaxed);
    total.evictions += c.evictions.load(std::memory_order_relaxed);
    total.stale += c.stale.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace poetbin
