#include "serve/serve_stats.h"

#include "util/check.h"

namespace poetbin {

std::size_t ServeStats::fill_bucket(std::size_t batch_size,
                                    std::size_t max_batch) {
  POETBIN_CHECK(batch_size >= 1 && max_batch >= 1);
  if (batch_size >= max_batch) return kFillBuckets - 1;
  // Ceiling of batch_size * kFillBuckets / max_batch, shifted to 0-based:
  // the bucket whose half-open fraction range contains batch_size/max_batch.
  return (batch_size * kFillBuckets + max_batch - 1) / max_batch - 1;
}

void ServeStats::record_window(std::size_t batch_size, std::size_t max_batch,
                               bool timed_out) {
  batches += 1;
  if (timed_out) timeouts += 1;
  window_fill[fill_bucket(batch_size, max_batch)] += 1;
}

ServeStats& ServeStats::merge(const ServeStats& other) {
  requests += other.requests;
  batches += other.batches;
  timeouts += other.timeouts;
  errors += other.errors;
  connections += other.connections;
  for (std::size_t b = 0; b < kFillBuckets; ++b) {
    window_fill[b] += other.window_fill[b];
  }
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_inserts += other.cache_inserts;
  cache_evictions += other.cache_evictions;
  cache_stale += other.cache_stale;
  return *this;
}

double ServeStats::mean_window_fill() const {
  if (batches == 0) return 0.0;
  // Cache hits count as served requests but never enter a window.
  const std::uint64_t windowed =
      requests > cache_hits ? requests - cache_hits : 0;
  return static_cast<double>(windowed) / static_cast<double>(batches);
}

double ServeStats::cache_hit_rate() const {
  const std::uint64_t probes = cache_hits + cache_misses;
  if (probes == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(probes);
}

}  // namespace poetbin
