#include "serve/micro_batcher.h"

#include <bit>
#include <utility>

#include "util/bit_matrix.h"
#include "util/check.h"

namespace poetbin {

MicroBatcher::MicroBatcher(const Runtime& runtime, MicroBatcherOptions options)
    : runtime_(&runtime), options_(options) {
  POETBIN_CHECK_MSG(options_.max_batch > 0, "max_batch must be positive");
}

MicroBatcher::~MicroBatcher() { flush(); }

std::shared_ptr<MicroBatcher::Batch> MicroBatcher::join(
    const BitVector& example_bits, bool blocking, std::size_t* index,
    bool* dispatch_claimed, bool* leader) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_ == nullptr) open_ = std::make_shared<Batch>();
  std::shared_ptr<Batch> batch = open_;
  *index = batch->examples.size();
  batch->examples.push_back(&example_bits);
  *dispatch_claimed =
      batch->examples.size() >= options_.max_batch && try_close(batch);
  *leader = false;
  if (blocking && !*dispatch_claimed && !batch->has_leader) {
    batch->has_leader = true;
    *leader = true;
  }
  return batch;
}

bool MicroBatcher::try_close(const std::shared_ptr<Batch>& batch) {
  if (batch->closed) return false;
  batch->closed = true;
  if (open_ == batch) open_.reset();
  return true;
}

void MicroBatcher::dispatch(const std::shared_ptr<Batch>& batch,
                            bool timed_out) {
  // The batch is exclusively owned by its dispatcher once try_close
  // succeeded, so packing needs no lock — only the word pass serializes,
  // letting window N+1 pack while window N's predict is still in flight.
  const std::size_t k = batch->examples.size();
  const std::size_t n_features = batch->examples[0]->size();
  BitMatrix packed(k, n_features);
  for (std::size_t i = 0; i < k; ++i) {
    const BitVector& example = *batch->examples[i];
    POETBIN_CHECK_MSG(example.size() == n_features,
                      "all examples in a micro-batch must have the same "
                      "feature count");
    // Scatter the example's set bits into the feature-major columns; the
    // per-row word/bit split supports windows wider than 64.
    const std::uint64_t row_bit = 1ULL << (i & 63);
    const std::size_t row_word = i >> 6;
    const std::uint64_t* words = example.words();
    for (std::size_t w = 0; w < example.word_count(); ++w) {
      std::uint64_t m = words[w];
      if (w + 1 == example.word_count()) {
        m &= BitVector::tail_word_mask(n_features);
      }
      const std::size_t feature0 = w * 64;
      while (m != 0) {
        const std::size_t f =
            feature0 + static_cast<std::size_t>(std::countr_zero(m));
        packed.column(f).words()[row_word] |= row_bit;
        m &= m - 1;
      }
    }
  }
  std::vector<int> predictions;
  Runtime::Snapshot snap;
  {
    // One fused pass at a time: the Runtime's engine is not re-entrant, and
    // a second window can close while the first is still in flight. Pin the
    // version here so cache inserts below tag results with the version that
    // actually computed them, not whatever is current by insert time.
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
    snap = runtime_->snapshot();
    predictions = runtime_->predict_snapshot(snap, packed);
  }
  if (PredictCache* cache = runtime_->cache()) {
    for (std::size_t i = 0; i < k; ++i) {
      cache->insert(PredictCache::make_key(*batch->examples[i]),
                    predictions[i], snap->version);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->results = std::move(predictions);
    batch->done = true;
    stats_.record_window(batch->examples.size(), options_.max_batch, timed_out);
    stats_.requests += batch->examples.size();
  }
  batch->cv.notify_all();
}

int MicroBatcher::await(const std::shared_ptr<Batch>& batch, std::size_t index,
                        bool leader) {
  std::unique_lock<std::mutex> lock(mu_);
  if (leader) {
    const auto deadline = std::chrono::steady_clock::now() + options_.max_wait;
    while (!batch->done && !batch->closed) {
      if (batch->cv.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        if (!batch->done && !batch->closed && try_close(batch)) {
          lock.unlock();
          dispatch(batch, /*timed_out=*/true);
          lock.lock();
        }
        break;
      }
    }
  }
  batch->cv.wait(lock, [&] { return batch->done; });
  return batch->results[index];
}

bool MicroBatcher::probe_cache(const BitVector& example_bits,
                               int* prediction) {
  PredictCache* cache = runtime_->cache();
  if (cache == nullptr ||
      !cache->probe(PredictCache::make_key(example_bits), prediction)) {
    return false;
  }
  // order: relaxed — monotonic statistics counter; stats() folds it in.
  cache_hit_requests_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int MicroBatcher::predict_one(const BitVector& example_bits) {
  int prediction = 0;
  if (probe_cache(example_bits, &prediction)) return prediction;
  std::size_t index = 0;
  bool dispatch_claimed = false;
  bool leader = false;
  // The window's first blocking request (not necessarily its first
  // request — submit() joins never lead) arms the max_wait timeout.
  std::shared_ptr<Batch> batch =
      join(example_bits, /*blocking=*/true, &index, &dispatch_claimed, &leader);
  if (dispatch_claimed) dispatch(batch);
  return await(batch, index, leader);
}

MicroBatcher::Ticket MicroBatcher::submit(const BitVector& example_bits) {
  int prediction = 0;
  if (probe_cache(example_bits, &prediction)) return Ticket(prediction);
  std::size_t index = 0;
  bool dispatch_claimed = false;
  bool leader = false;
  std::shared_ptr<Batch> batch = join(example_bits, /*blocking=*/false, &index,
                                      &dispatch_claimed, &leader);
  if (dispatch_claimed) dispatch(batch);
  return Ticket(this, std::move(batch), index);
}

int MicroBatcher::Ticket::get() {
  // A cache hit resolved at submit() time and carries no batch.
  if (batch_ == nullptr) return resolved_;
  // The window may still be open (submit-only traffic with no blocking
  // leader). Act as a leader: give it max_wait to fill, then dispatch.
  return parent_->await(batch_, index_, /*leader=*/true);
}

void MicroBatcher::flush() {
  std::shared_ptr<Batch> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch = open_;
    if (batch == nullptr || !try_close(batch)) return;
  }
  dispatch(batch);
}

ServeStats MicroBatcher::stats() const {
  ServeStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  // Cache hits never touch a window, so they live in their own atomic;
  // fold them in so `requests` counts every prediction served, and pull
  // the cache's own counters so one snapshot tells the whole story.
  // order: relaxed — counter snapshot; may lag racing hits, never torn.
  snapshot.requests += cache_hit_requests_.load(std::memory_order_relaxed);
  if (const PredictCache* cache = runtime_->cache()) {
    const PredictCacheStats c = cache->stats();
    snapshot.cache_hits = c.hits;
    snapshot.cache_misses = c.misses;
    snapshot.cache_inserts = c.inserts;
    snapshot.cache_evictions = c.evictions;
    snapshot.cache_stale = c.stale;
  }
  return snapshot;
}

}  // namespace poetbin
