#include "serve/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <sys/stat.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <utility>

#include "core/packed_model.h"
#include "core/serialize.h"
#include "serve/protocol.h"
#include "util/check.h"
#include "util/errno_string.h"

namespace poetbin {

namespace {

using Clock = std::chrono::steady_clock;

// Poll slice for stop-aware waits: handlers and the acceptor never block
// longer than this without re-checking the stop flag.
constexpr int kPollSliceMs = 200;

int make_listen_socket(const std::string& host, std::uint16_t port,
                       bool reuse_port, std::uint16_t* bound_port,
                       std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + errno_string(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      if (error) *error = std::string("SO_REUSEPORT: ") + errno_string(errno);
      ::close(fd);
      return -1;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad bind address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) {
      *error = "bind " + host + ":" + std::to_string(port) + ": " +
               errno_string(errno);
    }
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    if (error) *error = std::string("listen: ") + errno_string(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error) *error = std::string("getsockname: ") + errno_string(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

// Sends the whole buffer, polling POLLOUT in stop-agnostic slices bounded
// by `deadline`. Returns false on error or timeout.
bool send_all(int fd, const std::uint8_t* data, std::size_t n,
              Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote =
        ::send(fd, data + sent, n - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return false;
    }
    if (Clock::now() >= deadline) return false;
    pollfd pfd{fd, POLLOUT, 0};
    ::poll(&pfd, 1, kPollSliceMs);
  }
  return true;
}

}  // namespace

NetServer::NetServer(Runtime& runtime, NetServerOptions options)
    : runtime_(&runtime),
      options_(options),
      // The snapshot's n_features() is the wire width: the frame size for
      // conv models, the classifier's feature count for dense ones.
      n_features_(options.n_features != 0 ? options.n_features
                                          : runtime.snapshot()->n_features()) {
  POETBIN_CHECK_MSG(n_features_ > 0, "served model references no features");
  if (options_.micro_batch) {
    batcher_ = std::make_unique<MicroBatcher>(
        runtime, MicroBatcherOptions{.max_batch = options_.max_batch,
                                     .max_wait = options_.max_wait});
  }
}

NetServer::~NetServer() { stop(); }

bool NetServer::start(std::string* error) {
  POETBIN_CHECK_MSG(!started_, "NetServer::start() called twice");
  listen_fd_ = make_listen_socket(options_.host, options_.port,
                                  options_.reuse_port, &bound_port_, error);
  if (listen_fd_ < 0) return false;
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void NetServer::stop() {
  if (!started_) return;
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    handlers.swap(handlers_);
  }
  for (auto& handler : handlers) handler.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  stop_.store(false);
}

ServeStats NetServer::stats() const {
  ServeStats merged;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    merged = net_stats_;
  }
  if (batcher_ != nullptr) {
    // The batcher's snapshot already folds in the Runtime cache's counters.
    merged.merge(batcher_->stats());
  } else if (const PredictCache* cache = runtime_->cache()) {
    // Naive mode probes the cache through Runtime::predict_one.
    const PredictCacheStats c = cache->stats();
    merged.cache_hits += c.hits;
    merged.cache_misses += c.misses;
    merged.cache_inserts += c.inserts;
    merged.cache_evictions += c.evictions;
    merged.cache_stale += c.stale;
  }
  return merged;
}

void NetServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready <= 0) continue;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &len);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    net_stats_.connections += 1;
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void NetServer::handle_connection(int fd) {
  // One parsed frame awaiting its response, in arrival order. Predict
  // requests keep their decoded bits HERE (never reallocated after the
  // parse pass) because the MicroBatcher stores pointers into them.
  struct Slot {
    wire::Request request;
    bool rejected = false;
    wire::Status error = wire::Status::kOk;
  };

  std::vector<std::uint8_t> buffer;
  std::size_t offset = 0;
  std::vector<std::uint8_t> out;
  std::vector<Slot> slots;
  std::vector<MicroBatcher::Ticket> tickets;
  std::vector<int> ticket_slot;  // slots[ticket_slot[i]] owns tickets[i]
  std::uint8_t chunk[64 * 1024];
  bool poisoned = false;
  auto read_deadline = Clock::now() + options_.io_timeout;

  while (!stop_.load() && !poisoned) {
    // --- wait for bytes (idle: unbounded; mid-frame: io_timeout) ----------
    const bool mid_frame = buffer.size() > offset;
    if (mid_frame && Clock::now() >= read_deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) break;
    if (ready == 0) continue;
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got == 0) break;  // peer closed
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.insert(buffer.end(), chunk, chunk + got);
    read_deadline = Clock::now() + options_.io_timeout;

    // --- drain every complete buffered frame, in max_batch-sized rounds ---
    // Pipelined clients land many frames per read; decoding them all before
    // dispatch is what fills micro-batch windows from a single connection.
    while (buffer.size() > offset && !poisoned) {
      slots.clear();
      std::size_t n_predicts = 0;
      while (n_predicts < options_.max_batch) {
        Slot slot;
        bool fatal = false;
        const wire::FrameResult result =
            wire::decode_request(buffer.data(), buffer.size(), &offset,
                                 &slot.request, &slot.error, &fatal);
        if (result == wire::FrameResult::kNeedMore) break;
        if (result == wire::FrameResult::kReject) {
          slot.rejected = true;
          poisoned = poisoned || fatal;
          slots.push_back(std::move(slot));
          if (fatal) break;
          continue;
        }
        if (slot.request.type == wire::MsgType::kPredict &&
            slot.request.bits.size() != n_features_) {
          slot.rejected = true;
          slot.error = wire::Status::kWrongFeatureWidth;
          slots.push_back(std::move(slot));
          continue;
        }
        if (slot.request.type == wire::MsgType::kPredict) ++n_predicts;
        slots.push_back(std::move(slot));
      }
      if (slots.empty()) break;  // partial frame: go read more bytes

      // Submit the round's predictions; slots is stable from here on.
      tickets.clear();
      ticket_slot.clear();
      if (batcher_ != nullptr) {
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (slots[s].rejected ||
              slots[s].request.type != wire::MsgType::kPredict) {
            continue;
          }
          tickets.push_back(batcher_->submit(slots[s].request.bits));
          ticket_slot.push_back(static_cast<int>(s));
        }
      }

      // Build the responses in frame order and ship them in one write.
      out.clear();
      std::size_t next_ticket = 0;
      std::size_t round_errors = 0;
      std::uint64_t naive_requests = 0;
      for (std::size_t s = 0; s < slots.size(); ++s) {
        Slot& slot = slots[s];
        if (slot.rejected) {
          wire::encode_predict_response(slot.error, 0, &out);
          ++round_errors;
          continue;
        }
        switch (slot.request.type) {
          case wire::MsgType::kPredict: {
            int prediction = 0;
            if (batcher_ != nullptr) {
              POETBIN_CHECK(next_ticket < tickets.size() &&
                            ticket_slot[next_ticket] == static_cast<int>(s));
              prediction = tickets[next_ticket++].get();
            } else {
              prediction = runtime_->predict_one(slot.request.bits);
              ++naive_requests;
            }
            wire::encode_predict_response(
                wire::Status::kOk, static_cast<std::uint16_t>(prediction),
                &out);
            break;
          }
          case wire::MsgType::kInfo: {
            // Snapshot, not model(): a concurrent kReload may retire the
            // borrowed version between the call and the read.
            const Runtime::Snapshot snap = runtime_->snapshot();
            wire::encode_info_response(
                static_cast<std::uint32_t>(n_features_),
                static_cast<std::uint32_t>(snap->model.n_classes()), &out);
            break;
          }
          case wire::MsgType::kStats:
            wire::encode_stats_response(stats(), &out);
            break;
          case wire::MsgType::kReload: {
            const IoStatus swapped = runtime_->reload();
            if (swapped.ok()) {
              wire::encode_reload_response(wire::Status::kOk,
                                           runtime_->model_version(), &out);
            } else {
              std::fprintf(stderr, "reload failed: %s: %s\n",
                           model_io_error_kind_name(swapped.error().kind),
                           swapped.error().message.c_str());
              wire::encode_reload_response(wire::Status::kReloadFailed, 0,
                                           &out);
              ++round_errors;
            }
            break;
          }
          case wire::MsgType::kModelInfo: {
            const Runtime::Snapshot snap = runtime_->snapshot();
            wire::WireConvShape conv;
            if (snap->conv != nullptr) {
              const BinShape3 in = snap->conv->input_shape();
              const BinShape3 out_shape = snap->conv->output_shape();
              conv.has_conv = 1;
              conv.in_channels = static_cast<std::uint32_t>(in.channels);
              conv.in_height = static_cast<std::uint32_t>(in.height);
              conv.in_width = static_cast<std::uint32_t>(in.width);
              conv.out_channels =
                  static_cast<std::uint32_t>(out_shape.channels);
              conv.out_height = static_cast<std::uint32_t>(out_shape.height);
              conv.out_width = static_cast<std::uint32_t>(out_shape.width);
            }
            wire::encode_model_info_response(
                snap->version, static_cast<std::uint8_t>(snap->format),
                static_cast<std::uint32_t>(n_features_),
                static_cast<std::uint32_t>(snap->model.n_classes()), conv,
                &out);
            break;
          }
        }
      }
      if (round_errors > 0 || naive_requests > 0) {
        std::lock_guard<std::mutex> lock(conn_mu_);
        net_stats_.errors += round_errors;
        net_stats_.requests += naive_requests;
      }
      if (!out.empty() &&
          !send_all(fd, out.data(), out.size(),
                    Clock::now() + options_.io_timeout)) {
        poisoned = true;
      }
    }

    // Compact the consumed prefix so the buffer never grows unbounded.
    if (offset > 0) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(offset));
      offset = 0;
    }
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Forked SO_REUSEPORT sharding.

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
void on_shutdown_signal(int) { g_shutdown = 1; }

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  ::nanosleep(&ts, nullptr);
}

// What the file watcher compares between polls: a model push is visible as
// an mtime and/or size change (rename-into-place updates both).
struct FileStamp {
  std::int64_t mtime_sec = 0;
  std::int64_t mtime_nsec = 0;
  std::int64_t size = 0;
  bool ok = false;

  bool operator==(const FileStamp&) const = default;
};

FileStamp stamp_of(const std::string& path) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) return FileStamp{};
  return FileStamp{st.st_mtim.tv_sec, st.st_mtim.tv_nsec,
                   static_cast<std::int64_t>(st.st_size), true};
}

void print_worker_stats(std::size_t worker, const ServeStats& stats) {
  std::printf("worker %zu: %llu requests, %llu batches (mean fill %.1f), "
              "%llu timeouts, %llu errors, %llu connections\n",
              worker, static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_window_fill(),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.connections));
  if (stats.cache_hits + stats.cache_misses > 0) {
    std::printf("worker %zu: cache %llu hits / %llu misses (%.1f%% hit "
                "rate), %llu evictions, %llu stale\n",
                worker, static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                100.0 * stats.cache_hit_rate(),
                static_cast<unsigned long long>(stats.cache_evictions),
                static_cast<unsigned long long>(stats.cache_stale));
  }
}

}  // namespace

int run_sharded_server(const std::string& model_path,
                       const ShardedServeOptions& options) {
  // Pre-validate (text or packed) before forking so a bad path fails with
  // one typed error instead of N worker deaths; each worker then loads the
  // file itself — a packed model maps read-only pages the kernel shares
  // across the shard group, and per-worker loading is what records the
  // source path its Runtime hot-reloads from.
  {
    const IoResult<LoadedModel> model = read_model_file_any(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s: %s\n",
                   model_io_error_kind_name(model.error().kind),
                   model.error().message.c_str());
      return 1;
    }
  }

  const std::size_t workers = options.workers < 1 ? 1 : options.workers;
  NetServerOptions server_opts = options.server;
  if (workers > 1) server_opts.reuse_port = true;

  // With port = 0 the workers must agree on one ephemeral port before they
  // bind: the parent binds port 0 itself (SO_REUSEPORT, never listening, so
  // the kernel routes it no connections), reads the number back, and keeps
  // the socket open until every worker has bound — reserving the port
  // against the rest of the machine in between.
  int hold_fd = -1;
  if (server_opts.port == 0) {
    hold_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (hold_fd < 0) {
      std::perror("socket");
      return 1;
    }
    int one = 1;
    ::setsockopt(hold_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::setsockopt(hold_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    if (::inet_pton(AF_INET, server_opts.host.c_str(), &addr.sin_addr) != 1 ||
        ::bind(hold_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      std::perror("bind");
      ::close(hold_fd);
      return 1;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(hold_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    server_opts.port = ntohs(addr.sin_port);
    server_opts.reuse_port = true;  // the parent still holds the port
  }

  // Both the parent and (by inheritance) the workers shut down on
  // SIGTERM/SIGINT via the same flag; installing before fork closes the
  // window where a signal could hit a worker with default disposition.
  g_shutdown = 0;
  // Installed while the launcher is still single-threaded (pre-fork,
  // pre-server-threads), so the mt-unsafety of signal() cannot bite.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::signal(SIGTERM, on_shutdown_signal);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::signal(SIGINT, on_shutdown_signal);

  std::vector<pid_t> pids;
  std::vector<int> ready_fds;
  for (std::size_t w = 0; w < workers; ++w) {
    int ready_pipe[2];
    if (::pipe(ready_pipe) != 0) {
      std::perror("pipe");
      for (const pid_t pid : pids) ::kill(pid, SIGTERM);
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      for (const pid_t p : pids) ::kill(p, SIGTERM);
      return 1;
    }
    if (pid == 0) {
      // Worker: own Runtime + engine + batcher, nothing shared with the
      // siblings but the listening port. Threads are created only after
      // fork(), so the single-threaded-fork rule holds.
      ::close(ready_pipe[0]);
      for (const int rfd : ready_fds) ::close(rfd);
      if (hold_fd >= 0) ::close(hold_fd);
      Runtime::LoadResult loaded = Runtime::load(
          model_path, RuntimeOptions{.threads = options.threads,
                                     .cache_bytes = options.cache_bytes});
      if (!loaded.ok()) {
        std::fprintf(stderr, "worker %zu: %s: %s\n", w,
                     model_io_error_kind_name(loaded.error().kind),
                     loaded.error().message.c_str());
        std::_Exit(1);
      }
      Runtime runtime = std::move(loaded).value();
      NetServer server(runtime, server_opts);
      std::string error;
      if (!server.start(&error)) {
        std::fprintf(stderr, "worker %zu: %s\n", w, error.c_str());
        std::_Exit(1);
      }
      const char ok = 1;
      if (::write(ready_pipe[1], &ok, 1) != 1) std::_Exit(1);
      ::close(ready_pipe[1]);
      // Idle loop doubling as the file watcher: when watch_interval is
      // set, poll the model file's stamp and hot-reload on change. The
      // stamp updates even when the reload fails, so a bad push logs once
      // rather than every interval until the file is fixed.
      const long watch_ms = static_cast<long>(options.watch_interval.count());
      FileStamp last_stamp = stamp_of(model_path);
      long since_check = 0;
      while (!g_shutdown) {
        sleep_ms(50);
        if (watch_ms <= 0) continue;
        since_check += 50;
        if (since_check < watch_ms) continue;
        since_check = 0;
        const FileStamp current = stamp_of(model_path);
        if (!current.ok || current == last_stamp) continue;
        last_stamp = current;
        const IoStatus swapped = runtime.reload(model_path);
        if (swapped.ok()) {
          std::printf("worker %zu: reloaded %s (version %llu)\n", w,
                      model_path.c_str(),
                      static_cast<unsigned long long>(
                          runtime.model_version()));
          std::fflush(stdout);
        } else {
          std::fprintf(stderr, "worker %zu: reload failed: %s: %s\n", w,
                       model_io_error_kind_name(swapped.error().kind),
                       swapped.error().message.c_str());
        }
      }
      server.stop();
      print_worker_stats(w, server.stats());
      std::fflush(stdout);
      std::_Exit(0);
    }
    ::close(ready_pipe[1]);
    pids.push_back(pid);
    ready_fds.push_back(ready_pipe[0]);
  }

  // Wait for every worker to be accepting before announcing the port.
  bool all_ready = true;
  for (const int rfd : ready_fds) {
    char byte = 0;
    ssize_t got;
    do {
      got = ::read(rfd, &byte, 1);
    } while (got < 0 && errno == EINTR && !g_shutdown);
    if (got != 1) all_ready = false;
    ::close(rfd);
  }
  if (hold_fd >= 0) ::close(hold_fd);
  if (!all_ready) {
    std::fprintf(stderr, "error: a worker failed to start\n");
    for (const pid_t pid : pids) ::kill(pid, SIGTERM);
    for (const pid_t pid : pids) ::waitpid(pid, nullptr, 0);
    return 1;
  }
  std::printf("serving %s on %s:%u with %zu worker(s) [%s]\n",
              model_path.c_str(), server_opts.host.c_str(), server_opts.port,
              workers, server_opts.micro_batch ? "micro-batch" : "naive");
  std::fflush(stdout);

  int exit_code = 0;
  while (!g_shutdown) {
    int status = 0;
    const pid_t done = ::waitpid(-1, &status, WNOHANG);
    if (done > 0) {
      // A worker died without being asked to — take the shard group down.
      std::fprintf(stderr, "error: worker %d exited unexpectedly\n",
                   static_cast<int>(done));
      exit_code = 1;
      break;
    }
    sleep_ms(50);
  }
  for (const pid_t pid : pids) ::kill(pid, SIGTERM);
  for (const pid_t pid : pids) {
    int status = 0;
    // The unexpectedly-dead worker (if any) was already reaped above;
    // waitpid then fails with ECHILD, which is fine.
    if (::waitpid(pid, &status, 0) == pid &&
        (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace poetbin
