// Wire protocol for the network serving front end.
//
// A deliberately tiny length-prefixed binary protocol — the request path of
// a PoET-BiN server moves a few hundred *bits* per prediction, so framing
// overhead matters more than extensibility. Everything is little-endian.
//
//   frame    := u32 payload_length, payload (payload_length bytes)
//   payload  := u8 type, body
//
// Request bodies by type:
//   kPredict : u32 n_bits, ceil(n_bits / 8) bytes of input bits packed
//              LSB-first (bit i of the input lives at byte i/8, bit i%8 —
//              the BitVector word layout truncated to bytes)
//   kInfo    : empty — asks the server for the model's feature width and
//              class count
//   kStats   : empty — asks the worker for its ServeStats snapshot
//   kReload  : empty — asks the worker to hot-swap its model from the
//              recorded source path (atomic: in-flight requests finish on
//              the old version; see serve/runtime.h)
//   kModelInfo : empty — asks for the served model's version/provenance
//
// Response payloads echo the request type:
//   payload  := u8 type, u8 status, body
//   kPredict : u16 predicted class (only when status == kOk)
//   kInfo    : u32 n_features, u32 n_classes
//   kStats   : 10 + kFillBuckets u64 counters (requests, batches, timeouts,
//              errors, connections, window_fill[0..], cache_hits,
//              cache_misses, cache_inserts, cache_evictions, cache_stale).
//              The decoder also accepts the pre-cache layout (5 +
//              kFillBuckets counters) with the cache fields read as zero,
//              so a new client can poll an old worker; any other length is
//              rejected.
//   kReload  : u64 model version now serving (only when status == kOk;
//              a failed reload answers status kReloadFailed, empty body,
//              and the old model keeps serving)
//   kModelInfo : u64 version, u8 format (ModelFormat), u32 n_features,
//              u32 n_classes, u8 has_conv, 6 x u32 conv shape (input
//              C/H/W, output C/H/W; zeros when has_conv == 0). The decoder
//              also accepts the pre-conv layout that stops after
//              n_classes (has_conv reads as zero), so a new client can
//              poll an old worker; any other length is rejected.
//
// Error handling is part of the contract: malformed frames (truncated,
// oversized, zero-bit inputs, wrong feature width, unknown type) get a
// clean error status back on the same connection — never a crash, never a
// silent drop. The encode/decode helpers below work on byte buffers so the
// whole state machine is testable (and fuzzable) without a socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_stats.h"
#include "util/bitvector.h"

namespace poetbin {
namespace wire {

// Payload type tag (first byte of every payload, both directions).
enum class MsgType : std::uint8_t {
  kPredict = 1,
  kInfo = 2,
  kStats = 3,
  kReload = 4,
  kModelInfo = 5,
};

// Response status codes. Anything but kOk means the request was rejected;
// the connection stays usable (protocol errors are per-frame, not fatal).
enum class Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,          // payload too short / inconsistent lengths
  kOversized = 2,         // declared length beyond kMaxFramePayload
  kWrongFeatureWidth = 3, // n_bits does not match the served model
  kUnknownType = 4,       // unrecognised MsgType tag
  kEmptyInput = 5,        // predict request with zero feature bits
  kReloadFailed = 6,      // hot reload rejected; the old model keeps serving
};

const char* status_name(Status status);

// Upper bound on a payload; a declared length beyond this is rejected
// before any allocation (1 MiB >> any plausible packed input vector).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

// Bytes of framing before the payload.
inline constexpr std::size_t kFrameHeaderSize = 4;

// --- encoding (appends to `out`, returns the frame's total size) ---------

// Request framing.
std::size_t encode_predict_request(const BitVector& bits,
                                   std::vector<std::uint8_t>* out);
std::size_t encode_info_request(std::vector<std::uint8_t>* out);
std::size_t encode_stats_request(std::vector<std::uint8_t>* out);
std::size_t encode_reload_request(std::vector<std::uint8_t>* out);
std::size_t encode_model_info_request(std::vector<std::uint8_t>* out);

// Response framing.
std::size_t encode_predict_response(Status status, std::uint16_t prediction,
                                    std::vector<std::uint8_t>* out);
std::size_t encode_info_response(std::uint32_t n_features,
                                 std::uint32_t n_classes,
                                 std::vector<std::uint8_t>* out);
std::size_t encode_stats_response(const ServeStats& stats,
                                  std::vector<std::uint8_t>* out);
// `version` is encoded only when status == kOk (non-ok responses carry no
// body, like every other type).
std::size_t encode_reload_response(Status status, std::uint64_t version,
                                   std::vector<std::uint8_t>* out);

// Conv front-end shape carried by kModelInfo; all-zero (has_conv == 0)
// when the served model is dense.
struct WireConvShape {
  std::uint8_t has_conv = 0;
  std::uint32_t in_channels = 0;
  std::uint32_t in_height = 0;
  std::uint32_t in_width = 0;
  std::uint32_t out_channels = 0;
  std::uint32_t out_height = 0;
  std::uint32_t out_width = 0;
};

std::size_t encode_model_info_response(std::uint64_t version,
                                       std::uint8_t format,
                                       std::uint32_t n_features,
                                       std::uint32_t n_classes,
                                       const WireConvShape& conv,
                                       std::vector<std::uint8_t>* out);

// --- decoding -------------------------------------------------------------

// One parsed request. For kPredict, `bits` holds the unpacked input.
struct Request {
  MsgType type = MsgType::kPredict;
  BitVector bits;
};

// Outcome of pulling one frame off a byte buffer.
enum class FrameResult {
  kFrame,       // a complete frame was consumed; see the out-params
  kNeedMore,    // buffer holds only a partial frame — read more bytes
  kReject,      // malformed frame; *error says why. The frame's bytes were
                // consumed when the length prefix was intact (the caller
                // can answer with an error response and keep the
                // connection); an oversized declared length poisons the
                // stream and the caller should close after responding.
};

// Attempts to parse one request frame from buffer[*offset..size). On
// kFrame/kReject advances *offset past the consumed bytes; on kNeedMore
// leaves it untouched. `fatal` (kReject only) signals the stream can no
// longer be re-synchronised (oversized declared length).
FrameResult decode_request(const std::uint8_t* buffer, std::size_t size,
                           std::size_t* offset, Request* request,
                           Status* error, bool* fatal);

// Parsed response, for clients. Exactly one of the sections is meaningful,
// selected by `type` (and only when status == kOk).
struct Response {
  MsgType type = MsgType::kPredict;
  Status status = Status::kOk;
  std::uint16_t prediction = 0;      // kPredict
  std::uint32_t n_features = 0;      // kInfo, kModelInfo
  std::uint32_t n_classes = 0;       // kInfo, kModelInfo
  ServeStats stats;                  // kStats
  std::uint64_t model_version = 0;   // kReload, kModelInfo
  std::uint8_t model_format = 0;     // kModelInfo (a ModelFormat value)
  WireConvShape conv;                // kModelInfo (zeros from old workers)
};

FrameResult decode_response(const std::uint8_t* buffer, std::size_t size,
                            std::size_t* offset, Response* response);

}  // namespace wire
}  // namespace poetbin
