// Uniform serving counters.
//
// Every serving front end in the tree — the in-process MicroBatcher and the
// TCP NetServer on top of it — exposes the same ServeStats snapshot instead
// of ad-hoc per-class counters, so benches, the load generator and the CI
// smoke all read one shape: how many requests were answered, how many
// micro-batch windows were dispatched (and how full they were), how many
// windows went out on a leader timeout rather than full, how many
// protocol/config errors and connections a network front end saw, and what
// the prediction cache (serve/predict_cache.h) did in front of it all.
//
// A ServeStats is a plain value: producers keep one under their own lock
// and hand out copies; shards merge() their workers' snapshots.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace poetbin {

struct ServeStats {
  // Window-fill histogram resolution: bucket i counts dispatched windows
  // whose fill fraction (examples / max_batch) landed in
  // (i/kFillBuckets, (i+1)/kFillBuckets]; a full window lands in the last
  // bucket, a single example in a 64-wide window in the first.
  static constexpr std::size_t kFillBuckets = 8;

  std::uint64_t requests = 0;     // predictions returned
  std::uint64_t batches = 0;      // micro-batch windows dispatched
  std::uint64_t timeouts = 0;     // windows dispatched by leader timeout
  std::uint64_t errors = 0;       // protocol/config errors (network layer)
  std::uint64_t connections = 0;  // accepted connections (network layer)
  std::array<std::uint64_t, kFillBuckets> window_fill{};

  // Prediction-cache counters (PredictCacheStats, folded in by the front
  // end that owns the Runtime). All zero when the cache is disabled.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_stale = 0;

  // Bucket index for a window of `batch_size` examples under `max_batch`.
  static std::size_t fill_bucket(std::size_t batch_size,
                                 std::size_t max_batch);

  // Records one dispatched window: batches, the fill histogram, and
  // timeouts when the dispatch was a leader-timeout partial. (requests is
  // deliberately separate — a window's examples may be counted as they
  // complete, not when the window closes.)
  void record_window(std::size_t batch_size, std::size_t max_batch,
                     bool timed_out);

  // Element-wise sum, for aggregating worker shards.
  ServeStats& merge(const ServeStats& other);

  // Mean examples per dispatched window (0 when nothing dispatched).
  double mean_window_fill() const;

  // Fraction of cache probes that hit (0 when the cache never probed).
  double cache_hit_rate() const;

  bool operator==(const ServeStats& other) const = default;
};

}  // namespace poetbin
