// Blocking wire-protocol client — the test/bench/load-harness counterpart
// of NetServer.
//
// The client deliberately supports *pipelining*: queue a burst of predict
// requests, ship them in one write, then read the burst's responses back in
// order. A strict one-request-at-a-time client caps a connection at one
// in-flight example, which caps the server's micro-batch window fill at the
// connection count; pipelined bursts are how a handful of client threads
// keep 64-wide windows full.
//
//   NetClient client;
//   if (!client.connect("127.0.0.1", port)) ...;
//   wire::Response r;
//   client.predict(bits, &r);          // one-shot
//   client.predict_pipelined(burst, &responses);  // burst of frames
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/bitvector.h"

namespace poetbin {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;

  // Connects to host:port, retrying refused connections until `timeout`
  // elapses (a just-forked server may not be accepting yet).
  bool connect(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(5000),
               std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  // One-shot request/response round trips. Return false on transport or
  // framing failure; protocol-level rejections come back as the response's
  // status, not a false return.
  bool predict(const BitVector& bits, wire::Response* response);
  bool info(wire::Response* response);
  bool query_stats(wire::Response* response);
  // Asks the server to hot-swap its model from the recorded source path.
  // A rejected swap comes back with status kReloadFailed (and the old
  // model keeps serving); transport failure returns false.
  bool reload(wire::Response* response);
  bool model_info(wire::Response* response);

  // Pipelined burst: encodes every request, sends them in one write, then
  // reads exactly requests.size() responses back in order.
  bool predict_pipelined(const std::vector<const BitVector*>& requests,
                         std::vector<wire::Response>* responses);

  // Raw frame escape hatch for protocol tests: ships arbitrary bytes and
  // reads `n_responses` frames back.
  bool roundtrip_raw(const std::vector<std::uint8_t>& bytes,
                     std::size_t n_responses,
                     std::vector<wire::Response>* responses);

 private:
  bool send_bytes(const std::uint8_t* data, std::size_t n);
  bool read_responses(std::size_t n, std::vector<wire::Response>* out);

  int fd_ = -1;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_offset_ = 0;
};

}  // namespace poetbin
