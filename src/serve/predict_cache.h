// Lock-free sharded prediction cache in front of the fused predict path.
//
// PoET-BiN requests are packed bit vectors, so a request hashes in a few
// word ops — and under zipf-skewed serving traffic a small hot set repeats
// constantly. A PredictCache memoizes predict results so a hit skips the
// entire RINC evaluation: probe, compare two words, done. The design is the
// transposition-table shape from chess engines (bucketed, replace on
// collision, XOR-verified entries), adapted to model serving by pinning
// every entry to the RCU model version that computed it.
//
//   PredictCache cache({.capacity_bytes = 8u << 20});
//   cache.set_epoch(version);                       // on every publish
//   const PredictCache::Key key = PredictCache::make_key(bits);
//   int prediction;
//   if (!cache.probe(key, &prediction)) {
//     prediction = model.predict(bits);
//     cache.insert(key, prediction, version);
//   }
//
// Correctness contract — a hit is NEVER a wrong answer:
//
//  * Key verification. Two independent 64-bit hashes are taken over the
//    packed feature words. One selects the shard/bucket and contributes a
//    16-bit tag stored in the entry; the other is the verification word,
//    XOR-folded into the entry's check word (check = verify ^ data). A
//    probe matches only when check ^ data reproduces the probing key's
//    verify word AND the stored tag matches — ~80 bits of discrimination on
//    top of the bucket index, so a colliding input reads as a miss, not as
//    some other input's prediction.
//  * Epoch invalidation. Every entry carries the low 32 bits of the model
//    version that computed it. The serving Runtime calls set_epoch() on
//    every reload/retrain publication (BEFORE the version slot store), so
//    any entry from an older version compares stale and probes as a miss.
//    When the version's high 32 bits change (one publish every 2^32 — epoch
//    wraparound), the whole table is cleared so a 32-bit tag can never
//    alias across generations.
//  * Torn writes read as misses. An entry is two relaxed/release atomic
//    u64 stores; a reader that observes a half-written pair fails the XOR
//    check and misses. Readers never lock; writers never lock.
//
// Memory-ordering note: insert() release-stores the data word and probe()
// acquire-loads it. A hit therefore synchronizes with the inserter, which
// observed the version slot AFTER its publish — so a thread that saw a
// version-v answer (from the cache or from a snapshot) can never observe an
// older version on a later request. hot_reload_test's per-thread tag
// ordering checks pin this down.
//
// Capacity is fixed at construction (power-of-two entries, 16 bytes each)
// and split across power-of-two shards; each shard owns its entries and its
// own cache-line-padded hit/miss/insert/evict/stale counters, so counter
// traffic never bounces a line between shards. Buckets are 4 entries = one
// cache line. A full bucket replaces a hash-chosen victim (replace on
// collision) — old entries are evicted by new traffic, never scanned.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/bitvector.h"

namespace poetbin {

struct PredictCacheOptions {
  // Table size in bytes; rounded down to a power-of-two entry count
  // (16 bytes per entry). Clamped so every shard holds at least one bucket.
  std::size_t capacity_bytes = 8u << 20;
  // Shard count, rounded up to a power of two. Each shard has independent
  // entries and counters; 16 is plenty for one serving process.
  std::size_t shards = 16;
};

// Monotonic counters summed over all shards. hits + misses = probes;
// `stale` counts probes that found the key but from an outdated model
// version (each also counts as a miss); `evictions` counts live same-epoch
// entries displaced by bucket collisions.
struct PredictCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stale = 0;
};

class PredictCache {
 public:
  // The two-hash key of one packed input. Produced by make_key(); the
  // fields are public so tests can craft deliberate collisions.
  struct Key {
    std::uint64_t hash = 0;    // shard / bucket / tag selector
    std::uint64_t verify = 0;  // independent full-width verification word
  };

  explicit PredictCache(PredictCacheOptions options = {});

  PredictCache(const PredictCache&) = delete;
  PredictCache& operator=(const PredictCache&) = delete;

  // Hashes the packed feature words (tail word masked, so equal BitVectors
  // always produce equal keys) with two independent seeds.
  static Key make_key(const BitVector& bits);

  // Looks `key` up. True (with *prediction set) only for an entry whose
  // verification matches AND whose epoch is current. Lock-free; counts one
  // hit or one miss (plus stale when an outdated entry matched the key).
  bool probe(const Key& key, int* prediction);

  // Publishes `prediction` for `key`, tagged with the low 32 bits of
  // `version` — the version of the snapshot that actually computed it, so a
  // result computed on a pre-reload snapshot can never masquerade as
  // current. Lock-free; replaces the matching key, else a stale/empty
  // entry, else a hash-chosen victim.
  void insert(const Key& key, int prediction, std::uint64_t version);

  // Pins the cache generation to `version` (monotonic per Runtime). Must be
  // called BEFORE the new version becomes visible to readers: any thread
  // that can see the new model then already sees the new epoch, so it can
  // never hit an old version's entry. Clears the table when the version
  // crosses a 2^32 boundary (the 32-bit entry tag would otherwise alias).
  void set_epoch(std::uint64_t version);
  std::uint64_t epoch() const;

  // Zeroes every entry. Safe concurrently with probes/inserts: racing
  // readers see an empty or torn (= miss) entry, racing inserts may
  // survive and age out as stale.
  void clear();

  PredictCacheStats stats() const;

  std::size_t capacity_entries() const { return n_shards_ * shard_entries_; }
  std::size_t n_shards() const { return n_shards_; }

 private:
  // One cached prediction in two atomic words:
  //   data  = prediction(16) << 48 | epoch32 << 16 | tag16
  //   check = key.verify ^ data
  // tag16 is the top 16 bits of key.hash (disjoint from the bucket-index
  // bits); zeroed entries never match (a real key's verify is nonzero with
  // overwhelming probability, and probe demands an exact XOR match).
  struct Entry {
    std::atomic<std::uint64_t> check{0};
    std::atomic<std::uint64_t> data{0};
  };
  static_assert(sizeof(Entry) == 16);

  static constexpr std::size_t kBucketEntries = 4;  // one cache line

  struct alignas(64) Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> stale{0};
  };

  struct Shard {
    std::unique_ptr<Entry[]> entries;
    Counters counters;
  };

  Entry* bucket_for(const Key& key, Shard** shard);

  std::size_t n_shards_ = 0;       // power of two
  std::size_t shard_bits_ = 0;     // log2(n_shards_)
  std::size_t shard_entries_ = 0;  // power of two, multiple of kBucketEntries
  std::size_t bucket_mask_ = 0;    // buckets per shard - 1
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace poetbin
