#include "serve/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "util/errno_string.h"

namespace poetbin {

namespace {
using Clock = std::chrono::steady_clock;
}

NetClient::~NetClient() { close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_offset_(other.rx_offset_) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_offset_ = other.rx_offset_;
  }
  return *this;
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_offset_ = 0;
}

bool NetClient::connect(const std::string& host, std::uint16_t port,
                        std::chrono::milliseconds timeout,
                        std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad address '" + host + "'";
    return false;
  }
  const auto deadline = Clock::now() + timeout;
  int last_errno = 0;
  do {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_errno = errno;
      break;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      return true;
    }
    last_errno = errno;
    ::close(fd);
    // A server that was just forked may not be listening yet; back off
    // briefly and retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (Clock::now() < deadline);
  if (error) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             errno_string(last_errno);
  }
  return false;
}

bool NetClient::send_bytes(const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool NetClient::read_responses(std::size_t n, std::vector<wire::Response>* out) {
  while (out->size() < n) {
    wire::Response response;
    const wire::FrameResult result = wire::decode_response(
        rx_.data(), rx_.size(), &rx_offset_, &response);
    if (result == wire::FrameResult::kFrame) {
      out->push_back(response);
      continue;
    }
    if (result == wire::FrameResult::kReject) return false;
    // Need more bytes. Compact first so the buffer stays small.
    if (rx_offset_ > 0) {
      rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(
                                               rx_offset_));
      rx_offset_ = 0;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) return false;  // server closed mid-burst
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    rx_.insert(rx_.end(), chunk, chunk + got);
  }
  return true;
}

bool NetClient::predict(const BitVector& bits, wire::Response* response) {
  std::vector<std::uint8_t> frame;
  wire::encode_predict_request(bits, &frame);
  if (!send_bytes(frame.data(), frame.size())) return false;
  std::vector<wire::Response> responses;
  if (!read_responses(1, &responses)) return false;
  *response = responses[0];
  return true;
}

bool NetClient::info(wire::Response* response) {
  std::vector<std::uint8_t> frame;
  wire::encode_info_request(&frame);
  if (!send_bytes(frame.data(), frame.size())) return false;
  std::vector<wire::Response> responses;
  if (!read_responses(1, &responses)) return false;
  *response = responses[0];
  return true;
}

bool NetClient::query_stats(wire::Response* response) {
  std::vector<std::uint8_t> frame;
  wire::encode_stats_request(&frame);
  if (!send_bytes(frame.data(), frame.size())) return false;
  std::vector<wire::Response> responses;
  if (!read_responses(1, &responses)) return false;
  *response = responses[0];
  return true;
}

bool NetClient::reload(wire::Response* response) {
  std::vector<std::uint8_t> frame;
  wire::encode_reload_request(&frame);
  if (!send_bytes(frame.data(), frame.size())) return false;
  std::vector<wire::Response> responses;
  if (!read_responses(1, &responses)) return false;
  *response = responses[0];
  return true;
}

bool NetClient::model_info(wire::Response* response) {
  std::vector<std::uint8_t> frame;
  wire::encode_model_info_request(&frame);
  if (!send_bytes(frame.data(), frame.size())) return false;
  std::vector<wire::Response> responses;
  if (!read_responses(1, &responses)) return false;
  *response = responses[0];
  return true;
}

bool NetClient::predict_pipelined(
    const std::vector<const BitVector*>& requests,
    std::vector<wire::Response>* responses) {
  std::vector<std::uint8_t> burst;
  for (const BitVector* bits : requests) {
    wire::encode_predict_request(*bits, &burst);
  }
  if (!send_bytes(burst.data(), burst.size())) return false;
  responses->clear();
  return read_responses(requests.size(), responses);
}

bool NetClient::roundtrip_raw(const std::vector<std::uint8_t>& bytes,
                              std::size_t n_responses,
                              std::vector<wire::Response>* responses) {
  if (!send_bytes(bytes.data(), bytes.size())) return false;
  responses->clear();
  return read_responses(n_responses, responses);
}

}  // namespace poetbin
