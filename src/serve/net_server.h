// Plain-TCP serving front end over Runtime + MicroBatcher.
//
// A NetServer owns one listening socket and answers wire-protocol frames
// (serve/protocol.h): packed input bits in, predicted class out. One thread
// accepts; each connection gets a handler thread that *drains* every
// complete frame buffered on its socket per read — so pipelined clients
// (several requests in flight per connection) fill micro-batch windows even
// with few connections, and the fused 64-wide word pass does the work of 64
// scalar evaluations. With micro_batch = false every request runs the
// scalar predict_one path one at a time — the naive baseline the bench
// compares against.
//
//   Runtime rt(model, {.threads = 1});
//   NetServer server(rt, {.port = 0});          // 0 = pick an ephemeral port
//   std::string error;
//   if (!server.start(&error)) die(error);
//   ... clients connect to 127.0.0.1:server.port() ...
//   server.stop();                              // graceful: drains handlers
//
// Process sharding: run_sharded_server() forks N workers that each bind the
// SAME port with SO_REUSEPORT — the kernel load-balances connections across
// them, one Runtime + MicroBatcher per process, no shared state, no locks
// across shards. That is the deployment shape; a single in-process
// NetServer is the unit the tests and bench drive directly.
//
// Error contract: malformed frames get a typed error response on the same
// connection and the connection survives (except an oversized declared
// length, which poisons the stream and closes after the reply). A request
// whose bit width does not match the served model gets kWrongFeatureWidth.
// Handler reads sit in short poll slices so stop() is never blocked on an
// idle connection; a *mid-frame* stall or a blocked write is bounded by
// io_timeout and closes the connection.
//
// Hot reload: a kReload frame asks the worker's Runtime to atomically swap
// in the model from its recorded source path. The swap is RCU-style
// (serve/runtime.h): requests already dispatched — including a whole
// micro-batch window — finish on the old version, later requests see the
// new one, and a failed reload answers kReloadFailed while the old model
// keeps serving. kModelInfo reports the serving version/format so clients
// can observe swaps. run_sharded_server can also watch the model file
// (watch_interval) and reload on mtime/size changes without any frame.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "serve/runtime.h"
#include "serve/serve_stats.h"

namespace poetbin {

struct NetServerOptions {
  // Bind address. Default loopback: this is a benchmark/serving harness,
  // not an Internet-facing daemon.
  std::string host = "127.0.0.1";
  // TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  // Set SO_REUSEPORT before bind so several forked workers can share one
  // port (the kernel balances accepts across them).
  bool reuse_port = false;
  // true: requests go through a MicroBatcher (64-wide fused word pass).
  // false: every request runs Runtime::predict_one inline — the naive
  // one-request-per-dispatch baseline.
  bool micro_batch = true;
  std::size_t max_batch = 64;
  std::chrono::microseconds max_wait{200};
  // Cap on a mid-frame read stall or a blocked response write. Idle
  // connections (no partial frame) may stay open indefinitely.
  std::chrono::milliseconds io_timeout{5000};
  // Input bit width served; 0 derives it from the model (highest referenced
  // feature index + 1, the same rule the netlist exporter uses).
  std::size_t n_features = 0;
};

class NetServer {
 public:
  // The Runtime must outlive the server. Non-const: kReload frames drive
  // Runtime::reload() (all request paths stay const/snapshot-based).
  explicit NetServer(Runtime& runtime, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens and spawns the acceptor. Returns false (with *error
  // filled when given) if the socket cannot be set up.
  bool start(std::string* error = nullptr);

  // Graceful shutdown: stops accepting, wakes every handler, joins all
  // threads. In-flight requests finish; idempotent.
  void stop();

  // The bound port (after start(); meaningful mainly with port = 0).
  std::uint16_t port() const { return bound_port_; }
  // Feature width requests must match (resolved at construction).
  std::size_t n_features() const { return n_features_; }

  // Merged counters: connection/error counts from the network layer plus
  // the MicroBatcher's window + cache stats (or naive-path request counts,
  // with the cache counters folded from the Runtime directly).
  ServeStats stats() const;

 private:
  void accept_loop();
  void handle_connection(int fd);

  Runtime* runtime_;
  NetServerOptions options_;
  std::size_t n_features_;
  std::unique_ptr<MicroBatcher> batcher_;  // null in naive mode

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;
  mutable std::mutex conn_mu_;  // guards handlers_ and net_stats_
  std::vector<std::thread> handlers_;
  ServeStats net_stats_;
};

// Options for the forked multi-process front end.
struct ShardedServeOptions {
  std::size_t workers = 1;
  // Engine threads per worker Runtime. Sharding parallelism comes from the
  // worker processes; 1 keeps each worker's word pass inline.
  std::size_t threads = 1;
  // > 0: each worker polls the model file at this interval and hot-reloads
  // when its mtime or size changes — live model pushes without touching
  // the processes or dropping a connection. 0 disables watching (kReload
  // frames still work either way).
  std::chrono::milliseconds watch_interval{0};
  // Per-worker prediction cache size (RuntimeOptions::cache_bytes). The
  // serving default is ON — repeated inputs skip the word pass entirely,
  // bit-identically — unlike the library default; 0 disables
  // (`serve --no-cache`).
  std::size_t cache_bytes = 8u << 20;
  NetServerOptions server;  // reuse_port is forced on when workers > 1
};

// Loads the model at `model_path` (typed error to stderr on failure), forks
// `workers` processes that each serve it on one shared port, prints a
// "serving" line once every worker is accepting, then runs until SIGTERM or
// SIGINT. Each worker prints its ServeStats on shutdown. Returns a process
// exit code. Blocks the calling process; intended for main().
int run_sharded_server(const std::string& model_path,
                       const ShardedServeOptions& options);

}  // namespace poetbin
