#include "serve/runtime.h"

#include <utility>

#include "core/serialize.h"

namespace poetbin {

Runtime::Runtime(PoetBin model, RuntimeOptions options)
    : model_(std::move(model)), options_(options) {
  if (options_.backend.has_value()) {
    // Aborts when the backend is unavailable on this build or CPU; backend
    // dispatch is process-global (see RuntimeOptions).
    set_word_backend(*options_.backend);
  }
  backend_ = active_word_backend();
  engine_ = std::make_unique<BatchEngine>(options_.threads);
}

Runtime Runtime::train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config, RuntimeOptions options) {
  // Apply a forced backend before training too, so the override governs
  // the whole train-then-serve flow, not just the serving half (results
  // are bit-identical either way; this is about speed/debuggability).
  if (options.backend.has_value()) set_word_backend(*options.backend);
  return Runtime(PoetBin::train(features, intermediate_targets, labels, config),
                 options);
}

Runtime::LoadResult Runtime::load(const std::string& path,
                                  RuntimeOptions options) {
  IoResult<PoetBin> model = read_model_file(path);
  if (!model.ok()) return model.error();
  return Runtime(std::move(model).value(), options);
}

IoStatus Runtime::save(const std::string& path) const {
  return write_model_file(model_, path);
}

std::vector<int> Runtime::predict(const BitMatrix& features) const {
  if (options_.fused_argmax) {
    return engine_->predict_dataset(model_, features);
  }
  // Debug path: materialize the RINC bank word-parallel, then run the
  // scalar argmax — the exact loop predict_dataset's fused pass must match.
  return model_.predict_from_rinc_bits(engine_->rinc_outputs(model_, features));
}

double Runtime::accuracy(const BitMatrix& features,
                         const std::vector<int>& labels) const {
  return prediction_accuracy(predict(features), labels);
}

BitMatrix Runtime::rinc_outputs(const BitMatrix& features) const {
  return engine_->rinc_outputs(model_, features);
}

int Runtime::predict_one(const BitVector& example_bits) const {
  return model_.predict(example_bits);
}

void Runtime::retrain_output_layer(const BitMatrix& features,
                                   const std::vector<int>& labels) {
  const BitMatrix rinc_bits = engine_->rinc_outputs(model_, features);
  model_.retrain_output_layer(rinc_bits, labels, engine_.get());
}

}  // namespace poetbin
