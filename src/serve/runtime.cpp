#include "serve/runtime.h"

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "util/check.h"

namespace poetbin {

namespace {

// A reload may not change the request/response shape out from under
// connected clients: kIncompatibleModel when the candidate is a perfectly
// valid model that just doesn't fit the slot it would replace. Widths are
// the *wire* widths — a conv candidate counts its frame bits, so a dense
// model may be hot-swapped for a conv one (and vice versa) as long as
// clients keep sending the same number of bits.
IoStatus check_compatible(const ModelVersion& serving,
                          const LoadedModel& candidate,
                          const std::string& path) {
  const std::size_t cand_features = candidate.conv != nullptr
                                        ? candidate.conv->input_shape().flat()
                                        : candidate.model.n_features();
  if (candidate.model.n_classes() != serving.n_classes() ||
      cand_features != serving.n_features()) {
    return ModelIoError{
        ModelIoError::Kind::kIncompatibleModel,
        "'" + path + "' serves " + std::to_string(cand_features) +
            " features / " + std::to_string(candidate.model.n_classes()) +
            " classes but the live model serves " +
            std::to_string(serving.n_features()) + " / " +
            std::to_string(serving.n_classes())};
  }
  return IoStatus();
}

// Scalar single-example predict for one version: the conv oracle per
// frame ahead of the classifier when the version has a conv front end
// (mirrors ConvModel::predict without copying the layer per request).
int scalar_predict(const ModelVersion& version,
                   const BitVector& example_bits) {
  if (version.conv == nullptr) return version.model.predict(example_bits);
  POETBIN_CHECK_MSG(example_bits.size() == version.n_features(),
                    "frame bits must match the conv input shape");
  BitMatrix frame(1, example_bits.size());
  for (std::size_t b = 0; b < example_bits.size(); ++b) {
    if (example_bits.get(b)) frame.set(0, b, true);
  }
  return version.model.predict(version.conv->eval_dataset(frame).row(0));
}

}  // namespace

// One atomically swappable model slot. Readers load the shared_ptr; a
// publish is a single atomic store. The slot itself never moves once
// created (named slots live behind unique_ptr in the registry map).
struct Runtime::Slot {
  std::atomic<Snapshot> current;
};

struct Runtime::State {
  RuntimeOptions options;
  WordBackend backend = WordBackend::kScalar64;
  std::unique_ptr<BatchEngine> engine;
  std::atomic<std::uint64_t> next_version{1};

  Slot primary;
  // Prediction cache for the primary slot (null when cache_bytes == 0).
  // Its epoch is pinned to the primary version sequence in publish().
  std::unique_ptr<PredictCache> cache;

  // Lock order: mutate_mu -> registry_mu -> engine_mu (each optional).
  // mutate_mu serializes read-modify-write publishes (reload, retrain,
  // load_model) so concurrent mutators can't interleave their compat
  // check and swap. engine_mu serializes dataset passes on the one
  // non-reentrant engine. registry_mu guards the named-slot map; Slot
  // references are only used while it is held.
  std::mutex mutate_mu;
  mutable std::mutex registry_mu;
  mutable std::mutex engine_mu;
  std::map<std::string, std::unique_ptr<Slot>> named;
};

Runtime::Runtime(PoetBin model, RuntimeOptions options)
    : Runtime(std::move(model), options, ModelFormat::kText, std::string()) {}

Runtime::Runtime(ConvModel model, RuntimeOptions options)
    : Runtime(std::move(model.classifier), options, ModelFormat::kText,
              std::string(),
              std::make_shared<const RincConvLayer>(std::move(model.conv))) {}

Runtime::Runtime(PoetBin model, RuntimeOptions options, ModelFormat format,
                 std::string source_path,
                 std::shared_ptr<const RincConvLayer> conv)
    : state_(std::make_unique<State>()) {
  state_->options = options;
  if (options.forced_backend.has_value()) {
    // Aborts when the backend is unavailable on this build or CPU; backend
    // dispatch is process-global (see RuntimeOptions).
    set_word_backend(*options.forced_backend);
  }
  state_->backend = active_word_backend();
  state_->engine = std::make_unique<BatchEngine>(options.threads);
  if (options.cache_bytes > 0) {
    state_->cache = std::make_unique<PredictCache>(
        PredictCacheOptions{.capacity_bytes = options.cache_bytes});
  }
  publish(state_->primary, std::move(model), format, std::move(source_path),
          std::move(conv));
}

Runtime::Runtime(Runtime&&) noexcept = default;
Runtime& Runtime::operator=(Runtime&&) noexcept = default;
Runtime::~Runtime() = default;

void Runtime::publish(Slot& slot, PoetBin model, ModelFormat format,
                      std::string source_path,
                      std::shared_ptr<const RincConvLayer> conv) {
  auto version = std::make_shared<const ModelVersion>(ModelVersion{
      std::move(model), state_->next_version.fetch_add(1), format,
      std::move(source_path), std::move(conv)});
  // Invalidate the cache generation BEFORE the slot store: any reader that
  // can see the new model already sees the new epoch, so a probe can never
  // resurrect an old version's answer after the swap. (Named slots share
  // the version counter but not the cache.)
  if (&slot == &state_->primary && state_->cache != nullptr) {
    state_->cache->set_epoch(version->version);
  }
  // order: seq_cst (default) — this store is the RCU publish point. It
  // must be release-or-stronger so a snapshot() that loads the new pointer
  // sees the fully-built ModelVersion AND the cache set_epoch sequenced
  // above; seq_cst additionally totally orders publishes with each other,
  // which is what lets hot_reload_test assert per-thread tag monotonicity.
  // Writers are serialized by mutate_mu; the store itself stays lock-free
  // with respect to readers.
  slot.current.store(std::move(version));
}

Runtime Runtime::train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config, RuntimeOptions options) {
  // Apply a forced backend before training too, so the override governs
  // the whole train-then-serve flow, not just the serving half (results
  // are bit-identical either way; this is about speed/debuggability).
  if (options.forced_backend.has_value()) {
    set_word_backend(*options.forced_backend);
  }
  return Runtime(PoetBin::train(features, intermediate_targets, labels, config),
                 options);
}

Runtime::LoadResult Runtime::load(const std::string& path,
                                  RuntimeOptions options) {
  IoResult<LoadedModel> loaded =
      read_model_file_any(path, PackedVerify::kTrustChecksum);
  if (!loaded.ok()) return loaded.error();
  return Runtime(std::move(loaded->model), options, loaded->format, path,
                 std::move(loaded->conv));
}

IoStatus Runtime::save(const std::string& path) const {
  const Snapshot snap = snapshot();
  if (snap->conv != nullptr) {
    return write_conv_model_file(ConvModel{*snap->conv, snap->model}, path);
  }
  return write_model_file(snap->model, path);
}

IoStatus Runtime::save_packed(const std::string& path) const {
  const Snapshot snap = snapshot();
  if (snap->conv != nullptr) {
    return write_packed_conv_model_file(ConvModel{*snap->conv, snap->model},
                                        path);
  }
  return write_packed_model_file(snap->model, path);
}

Runtime::Snapshot Runtime::snapshot() const {
  // order: seq_cst (default) — the RCU read side, pairing with publish()'s
  // store: acquiring the pointer makes the pointed-to ModelVersion (and the
  // cache epoch bumped before the publish) visible. The returned
  // shared_ptr then pins the version for the request's lifetime.
  return state_->primary.current.load();
}

const PoetBin& Runtime::model() const { return snapshot()->model; }
std::uint64_t Runtime::model_version() const { return snapshot()->version; }
ModelFormat Runtime::model_format() const { return snapshot()->format; }
std::string Runtime::source_path() const { return snapshot()->source_path; }

const RuntimeOptions& Runtime::options() const { return state_->options; }
const BatchEngine& Runtime::engine() const { return *state_->engine; }
std::size_t Runtime::threads() const { return state_->engine->n_threads(); }
WordBackend Runtime::backend() const { return state_->backend; }

IoStatus Runtime::reload() {
  const std::string path = snapshot()->source_path;
  if (path.empty()) {
    return ModelIoError{
        ModelIoError::Kind::kFileNotFound,
        "runtime has no recorded model path to reload from (the model was "
        "trained or constructed in-process)"};
  }
  return reload(path);
}

IoStatus Runtime::reload(const std::string& path) {
  std::lock_guard<std::mutex> mutate(state_->mutate_mu);
  IoResult<LoadedModel> loaded =
      read_model_file_any(path, PackedVerify::kTrustChecksum);
  if (!loaded.ok()) return loaded.error();
  const Snapshot serving = snapshot();
  IoStatus compatible = check_compatible(*serving, *loaded, path);
  if (!compatible.ok()) return compatible;
  publish(state_->primary, std::move(loaded->model), loaded->format, path,
          std::move(loaded->conv));
  return IoStatus();
}

std::vector<int> Runtime::predict_on(const ModelVersion& version,
                                     const BitMatrix& features) const {
  // The engine pool is not re-entrant: dataset passes from concurrent
  // callers (and from mutators) queue here instead of aborting.
  std::lock_guard<std::mutex> lock(state_->engine_mu);
  // Conv front end first: flatten the frames to conv output bits on the
  // same engine (two sequential parallel_for passes are the intended use
  // of one engine), then the classifier consumes those bits.
  const BitMatrix* input = &features;
  BitMatrix conv_bits;
  if (version.conv != nullptr) {
    conv_bits = version.conv->eval_dataset_batched(features, *state_->engine);
    input = &conv_bits;
  }
  if (state_->options.fused_argmax) {
    return state_->engine->predict_dataset(version.model, *input);
  }
  // Debug path: materialize the RINC bank word-parallel, then run the
  // scalar argmax — the exact loop predict_dataset's fused pass must match.
  return version.model.predict_from_rinc_bits(
      state_->engine->rinc_outputs(version.model, *input));
}

std::vector<int> Runtime::predict(const BitMatrix& features) const {
  const Snapshot snap = snapshot();
  return predict_on(*snap, features);
}

std::vector<int> Runtime::predict_snapshot(const Snapshot& snap,
                                           const BitMatrix& features) const {
  POETBIN_CHECK_MSG(snap != nullptr, "predict_snapshot() on a null snapshot");
  return predict_on(*snap, features);
}

double Runtime::accuracy(const BitMatrix& features,
                         const std::vector<int>& labels) const {
  return prediction_accuracy(predict(features), labels);
}

BitMatrix Runtime::rinc_outputs(const BitMatrix& features) const {
  const Snapshot snap = snapshot();
  std::lock_guard<std::mutex> lock(state_->engine_mu);
  if (snap->conv != nullptr) {
    return state_->engine->rinc_outputs(
        snap->model, snap->conv->eval_dataset_batched(features,
                                                      *state_->engine));
  }
  return state_->engine->rinc_outputs(snap->model, features);
}

int Runtime::predict_one(const BitVector& example_bits) const {
  PredictCache* cache = state_->cache.get();
  if (cache == nullptr) return scalar_predict(*snapshot(), example_bits);
  // The cache keys on the raw request bits, so for conv versions a hit
  // skips the whole conv + classifier pass.
  const PredictCache::Key key = PredictCache::make_key(example_bits);
  int prediction = 0;
  if (cache->probe(key, &prediction)) return prediction;
  // Tag the insert with the version of the snapshot that computed it: a
  // reload between the predict and the insert leaves the entry stale
  // (harmless) instead of labeling an old answer as current (wrong).
  const Snapshot snap = snapshot();
  prediction = scalar_predict(*snap, example_bits);
  cache->insert(key, prediction, snap->version);
  return prediction;
}

PredictCache* Runtime::cache() const { return state_->cache.get(); }

void Runtime::retrain_output_layer(const BitMatrix& features,
                                   const std::vector<int>& labels) {
  std::lock_guard<std::mutex> mutate(state_->mutate_mu);
  const Snapshot serving = snapshot();
  // Retrain a copy off to the side; readers keep serving the old weights
  // until the publish below. A mapping-backed copy shares the old
  // version's LUT storage (cheap) and grows heap-owned output planes.
  PoetBin next = serving->model;
  {
    std::lock_guard<std::mutex> lock(state_->engine_mu);
    // For a conv version, the classifier's inputs are conv output bits —
    // run the (shared, unchanged) conv front end over the new frames first.
    const BitMatrix* input = &features;
    BitMatrix conv_bits;
    if (serving->conv != nullptr) {
      conv_bits = serving->conv->eval_dataset_batched(features,
                                                      *state_->engine);
      input = &conv_bits;
    }
    const BitMatrix rinc_bits = state_->engine->rinc_outputs(next, *input);
    next.retrain_output_layer(rinc_bits, labels, state_->engine.get());
  }
  publish(state_->primary, std::move(next), serving->format,
          serving->source_path, serving->conv);
}

// --- named model registry ---------------------------------------------------

void Runtime::add_model(const std::string& name, PoetBin model) {
  POETBIN_CHECK_MSG(!name.empty(), "model name must be non-empty");
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  std::unique_ptr<Slot>& slot = state_->named[name];
  if (!slot) slot = std::make_unique<Slot>();
  publish(*slot, std::move(model), ModelFormat::kText, std::string());
}

void Runtime::add_model(const std::string& name, ConvModel model) {
  POETBIN_CHECK_MSG(!name.empty(), "model name must be non-empty");
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  std::unique_ptr<Slot>& slot = state_->named[name];
  if (!slot) slot = std::make_unique<Slot>();
  publish(*slot, std::move(model.classifier), ModelFormat::kText,
          std::string(),
          std::make_shared<const RincConvLayer>(std::move(model.conv)));
}

IoStatus Runtime::load_model(const std::string& name,
                             const std::string& path) {
  POETBIN_CHECK_MSG(!name.empty(), "model name must be non-empty");
  std::lock_guard<std::mutex> mutate(state_->mutate_mu);
  IoResult<LoadedModel> loaded =
      read_model_file_any(path, PackedVerify::kTrustChecksum);
  if (!loaded.ok()) return loaded.error();
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  std::unique_ptr<Slot>& slot = state_->named[name];
  if (!slot) {
    slot = std::make_unique<Slot>();
  } else if (const Snapshot serving = slot->current.load()) {
    IoStatus compatible = check_compatible(*serving, *loaded, path);
    if (!compatible.ok()) return compatible;
  }
  publish(*slot, std::move(loaded->model), loaded->format, path,
          std::move(loaded->conv));
  return IoStatus();
}

IoStatus Runtime::reload_model(const std::string& name) {
  const Snapshot serving = snapshot(name);
  if (serving == nullptr) {
    return ModelIoError{ModelIoError::Kind::kFileNotFound,
                        "no model named '" + name + "'"};
  }
  if (serving->source_path.empty()) {
    return ModelIoError{
        ModelIoError::Kind::kFileNotFound,
        "model '" + name + "' has no recorded path to reload from"};
  }
  return load_model(name, serving->source_path);
}

bool Runtime::remove_model(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  return state_->named.erase(name) > 0;
}

bool Runtime::has_model(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  return state_->named.count(name) > 0;
}

std::vector<std::string> Runtime::model_names() const {
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  std::vector<std::string> names;
  names.reserve(state_->named.size());
  for (const auto& [name, slot] : state_->named) names.push_back(name);
  return names;
}

Runtime::Snapshot Runtime::snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_->registry_mu);
  const auto it = state_->named.find(name);
  if (it == state_->named.end()) return nullptr;
  return it->second->current.load();
}

std::vector<int> Runtime::predict(const std::string& name,
                                  const BitMatrix& features) const {
  const Snapshot snap = snapshot(name);
  POETBIN_CHECK_MSG(snap != nullptr, "predict() on an unknown model name");
  return predict_on(*snap, features);
}

int Runtime::predict_one(const std::string& name,
                         const BitVector& example_bits) const {
  const Snapshot snap = snapshot(name);
  POETBIN_CHECK_MSG(snap != nullptr, "predict_one() on an unknown model name");
  return scalar_predict(*snap, example_bits);
}

}  // namespace poetbin
