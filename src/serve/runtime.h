// Serving runtime: the inference-facing front door of the library.
//
// Research code hands callers three loose parts — a PoetBin, a BatchEngine
// and the process-global word-backend override — and every `*_batched` call
// used to tear a thread pool up and down. A Runtime bundles them the way a
// serving system wants them: it holds one or more loaded (or freshly
// trained) models behind atomically swappable version slots, resolves the
// SIMD word backend once, and keeps a single persistent BatchEngine alive
// across requests and across model versions, behind a narrow request API.
//
//   Runtime::LoadResult loaded = Runtime::load("model.pbm", {.threads = 4});
//   if (!loaded.ok()) die(loaded.error().message);
//   Runtime rt = std::move(loaded).value();
//   std::vector<int> preds = rt.predict(test_features);   // fused word pass
//   int one = rt.predict_one(example_bits);               // scalar path
//   ...
//   IoStatus swapped = rt.reload();   // hot-swap from the recorded path
//
// Model storage is RCU-shaped: each slot holds a shared_ptr<const
// ModelVersion> that readers snapshot atomically. reload() and
// retrain_output_layer() build the next version off to the side and publish
// it with one atomic pointer swap — requests already running (including a
// whole MicroBatcher window) finish on the version they snapshotted, new
// requests see the new one, and nothing blocks or tears. A failed reload
// (missing file, corrupt bytes, kIncompatibleModel shape change) leaves the
// serving version untouched. Versions are numbered monotonically per
// Runtime; serve/net_server.h exposes the number through kModelInfo.
//
// Formats: Runtime::load sniffs text vs packed (core/packed_model.h) and
// remembers both the format and the source path, which is what no-argument
// reload() re-reads. A packed model's LUT tables stay mmap-backed; the
// snapshot keeps the mapping alive for as long as any request uses it.
//
// Beyond the primary model, a Runtime is a small registry: add_model /
// load_model publish additional named models that share the same engine
// and the same swap semantics (an A/B candidate, a per-tenant variant).
//
// Every path is bit-identical to the scalar PoetBin reference: predict()
// runs the fused bitsliced argmax (or, with fused_argmax = false, a
// materialized rinc_outputs + the scalar argmax loop), and predict_one()
// is the scalar per-example evaluation.
//
// Concurrency contract: everything here may be called concurrently.
// Dataset-level requests (predict / rinc_outputs / accuracy and the dataset
// half of retrain) serialize internally on the one engine — the pool is not
// re-entrant, so overlapping callers queue instead of aborting.
// predict_one() is a lock-free snapshot plus scalar evaluation. Mutators
// (reload / retrain / load_model) serialize against each other and publish
// atomically, so readers never see a half-swapped model. For
// high-throughput concurrent predict_one traffic, wrap the Runtime in a
// serve::MicroBatcher (serve/micro_batcher.h), which packs requests into
// 64-wide words and dispatches them through this engine as one fused pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_eval.h"
#include "core/packed_model.h"
#include "core/poetbin.h"
#include "core/serialize.h"
#include "serve/predict_cache.h"
#include "util/bit_matrix.h"
#include "util/word_backend.h"

namespace poetbin {

struct RuntimeOptions {
  // Worker threads for the persistent engine. 0 = hardware concurrency,
  // 1 = run requests inline on the calling thread (no pool).
  std::size_t threads = 0;
  // Force a specific SIMD word backend. NOTE: backend dispatch is
  // PROCESS-GLOBAL (all backends are bit-identical, so this only changes
  // speed): the Runtime applies the override once at construction via
  // set_word_backend(), aborting if the backend is unavailable on this
  // build or CPU — and every other Runtime in the process runs on it from
  // that moment too. When several Runtimes force different backends, the
  // last construction wins for all of them. nullopt leaves dispatch alone
  // (the CPUID-probed default, or whatever POETBIN_FORCE_BACKEND or an
  // earlier Runtime pinned).
  std::optional<WordBackend> forced_backend;
  // Fuse the output-layer argmax into the bitsliced word pass (no
  // materialized rinc_outputs matrix). Off = evaluate the RINC bank
  // word-parallel, then run the scalar argmax over the materialized bank —
  // same results bit for bit, useful for debugging the fused path.
  bool fused_argmax = true;
  // Size in bytes of the lock-free prediction cache
  // (serve/predict_cache.h) in front of the primary model's predict_one
  // path and the MicroBatcher's fused windows. 0 disables caching — the
  // library default, so offline/batch users and exact-count tests see no
  // behavior change; the serving CLI turns it on (`serve --cache-mb=N`).
  // A hit is bit-identical to what the serving version's scalar predict
  // would return: every reload/retrain publication invalidates by epoch,
  // and entries are XOR-verified against a second hash so collisions read
  // as misses. Named-model requests bypass the cache (it is pinned to the
  // primary slot's version sequence).
  std::size_t cache_bytes = 0;
};

// One published model version: the immutable unit requests snapshot. The
// version number is per-Runtime monotonic; format/source_path record where
// the bytes came from (source_path is empty for in-process models, whose
// format reports kText). `conv`, when non-null, is a convolutional front
// end whose flattened output feeds `model` — requests then carry whole
// C x H x W frames, and n_features() reports the frame width.
struct ModelVersion {
  PoetBin model;
  std::uint64_t version = 0;
  ModelFormat format = ModelFormat::kText;
  std::string source_path;
  std::shared_ptr<const RincConvLayer> conv;

  bool is_conv() const { return conv != nullptr; }
  // The wire width: what a client puts in a request for this version.
  std::size_t n_features() const {
    return conv != nullptr ? conv->input_shape().flat() : model.n_features();
  }
  std::size_t n_classes() const { return model.n_classes(); }
};

class Runtime {
 public:
  // A shared snapshot of one model version. Holding it keeps the version
  // (and, for packed models, the file mapping under it) alive across any
  // number of hot swaps.
  using Snapshot = std::shared_ptr<const ModelVersion>;

  // Takes ownership of the model (PoetBin is a few KB of LUT tables; copy
  // or move one in) and spins up the persistent engine.
  explicit Runtime(PoetBin model, RuntimeOptions options = {});

  // Convolutional variant: requests carry C x H x W frames, the conv front
  // end runs word-parallel ahead of the classifier on every dataset path,
  // and predict_one evaluates the scalar conv oracle per frame.
  explicit Runtime(ConvModel model, RuntimeOptions options = {});

  // Train-then-serve in one step: PoetBin::train with `config`, wrapped in
  // a Runtime. The engine is created after training (PoetBin::train has its
  // own distillation pool).
  static Runtime train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config,
                       RuntimeOptions options = {});

  // Deserialize a saved model — text or packed, dense or convolutional,
  // sniffed by header — into a Runtime. The typed error distinguishes a
  // missing file from a version
  // mismatch from corrupt section contents (kind + message) — malformed
  // bytes never abort, so a serving worker survives a bad model on disk.
  // The path and format are recorded for reload(). Packed files load in
  // PackedVerify::kTrustChecksum mode — structural validation without the
  // O(file) CRC/content passes — which is what makes load and hot reload
  // near-instant; run files through `poetbin_cli pack` (full verification)
  // when provenance is in doubt.
  using LoadResult = IoResult<Runtime>;
  static LoadResult load(const std::string& path, RuntimeOptions options = {});

  // Serialize the current primary model; the error carries the failing path.
  IoStatus save(const std::string& path) const;         // text format
  IoStatus save_packed(const std::string& path) const;  // packed format

  Runtime(Runtime&&) noexcept;
  Runtime& operator=(Runtime&&) noexcept;
  ~Runtime();

  // --- primary model ------------------------------------------------------

  // Atomic snapshot of the current primary version; never null.
  Snapshot snapshot() const;

  // Borrow of the current primary model (the classifier, for conv
  // versions). Valid until the next successful reload/retrain publishes a
  // new version (the slot holds the old version alive until then); take a
  // snapshot() to pin one version across swaps.
  const PoetBin& model() const;

  std::uint64_t model_version() const;
  ModelFormat model_format() const;
  std::string source_path() const;

  const RuntimeOptions& options() const;
  const BatchEngine& engine() const;
  std::size_t threads() const;
  // The backend that was active when this Runtime resolved dispatch.
  WordBackend backend() const;

  // Atomically replaces the primary model from its recorded source path
  // (no-argument form) or an explicit path. In-flight requests finish on
  // the old version; on any failure — including a valid model whose
  // n_classes/n_features don't match the one being served
  // (kIncompatibleModel) — the old version keeps serving untouched.
  IoStatus reload();
  IoStatus reload(const std::string& path);

  // Dataset-level requests; callers may overlap (they queue on the engine).
  std::vector<int> predict(const BitMatrix& features) const;
  // Dataset predict pinned to a caller-held snapshot. The MicroBatcher
  // dispatches windows through this so it can tag its cache inserts with
  // the version that actually computed them (never the version that
  // happens to be current by insert time).
  std::vector<int> predict_snapshot(const Snapshot& snap,
                                    const BitMatrix& features) const;
  double accuracy(const BitMatrix& features,
                  const std::vector<int>& labels) const;
  BitMatrix rinc_outputs(const BitMatrix& features) const;

  // Scalar single-example request; lock-free snapshot, safe concurrently
  // with everything including reload/retrain. With cache_bytes set, probes
  // the prediction cache first and inserts on a miss — bit-identical
  // either way.
  int predict_one(const BitVector& example_bits) const;

  // The prediction cache, or nullptr when cache_bytes was 0. Probe/insert
  // are lock-free and safe from any thread; serving front ends fold
  // cache()->stats() into their ServeStats snapshots.
  PredictCache* cache() const;

  // Re-adapt the output layer to new labeled data without re-distilling the
  // RINC bank (the paper's A4 step), spreading classes over this engine.
  // Retrains a copy and publishes it as a new version: concurrent requests
  // keep serving the old weights until the swap.
  void retrain_output_layer(const BitMatrix& features,
                            const std::vector<int>& labels);

  // --- named model registry ----------------------------------------------
  //
  // Additional models sharing this Runtime's engine, each behind its own
  // atomically swappable slot. Names are caller-chosen, non-empty strings.

  // Publishes `model` under `name` (replacing any previous version).
  void add_model(const std::string& name, PoetBin model);
  void add_model(const std::string& name, ConvModel model);
  // Loads text-or-packed from `path` into `name`'s slot. When the slot
  // already serves a model, the same compatibility rule as reload applies.
  IoStatus load_model(const std::string& name, const std::string& path);
  // Re-reads a named model from its recorded source path.
  IoStatus reload_model(const std::string& name);
  bool remove_model(const std::string& name);
  bool has_model(const std::string& name) const;
  std::vector<std::string> model_names() const;

  // Snapshot of a named model; nullptr when the name is unknown.
  Snapshot snapshot(const std::string& name) const;

  // Named-model requests; abort on an unknown name (snapshot() first when
  // the name is caller-controlled).
  std::vector<int> predict(const std::string& name,
                           const BitMatrix& features) const;
  int predict_one(const std::string& name,
                  const BitVector& example_bits) const;

 private:
  struct Slot;
  struct State;

  Runtime(PoetBin model, RuntimeOptions options, ModelFormat format,
          std::string source_path,
          std::shared_ptr<const RincConvLayer> conv = nullptr);

  void publish(Slot& slot, PoetBin model, ModelFormat format,
               std::string source_path,
               std::shared_ptr<const RincConvLayer> conv = nullptr);
  std::vector<int> predict_on(const ModelVersion& version,
                              const BitMatrix& features) const;

  std::unique_ptr<State> state_;
};

}  // namespace poetbin
