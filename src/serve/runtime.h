// Serving runtime: the inference-facing front door of the library.
//
// Research code hands callers three loose parts — a PoetBin, a BatchEngine
// and the process-global word-backend override — and every `*_batched` call
// used to tear a thread pool up and down. A Runtime bundles them the way a
// serving system wants them: it owns one loaded (or freshly trained) model,
// resolves the SIMD word backend once, and keeps a single persistent
// BatchEngine alive across requests, behind a narrow request API.
//
//   Runtime::LoadResult loaded = Runtime::load("model.txt", {.threads = 4});
//   if (!loaded.ok()) die(loaded.error().message);
//   Runtime rt = std::move(loaded).value();
//   std::vector<int> preds = rt.predict(test_features);   // fused word pass
//   int one = rt.predict_one(example_bits);               // scalar path
//
// Every path is bit-identical to the scalar PoetBin reference: predict()
// runs the fused bitsliced argmax (or, with fused_argmax = false, a
// materialized rinc_outputs + the scalar argmax loop), and predict_one()
// is the scalar per-example evaluation. For high-throughput concurrent
// predict_one traffic, wrap the Runtime in a serve::MicroBatcher
// (serve/micro_batcher.h), which packs requests into 64-wide words and
// dispatches them through this engine as one fused pass.
//
// Concurrency contract: one dataset-level call (predict / rinc_outputs /
// accuracy / retrain_output_layer) at a time per Runtime — the underlying
// BatchEngine is not re-entrant and aborts on overlapping passes.
// predict_one() is pure scalar evaluation over the model and may run
// concurrently with any *read-only* request (predict, rinc_outputs,
// accuracy, other predict_one calls) — but NOT with
// retrain_output_layer(), which rewrites the output-layer weights and
// codes in place. Use one Runtime per concurrent dataset stream, or a
// MicroBatcher, which serializes its dispatches.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_eval.h"
#include "core/poetbin.h"
#include "core/serialize.h"
#include "util/bit_matrix.h"
#include "util/word_backend.h"

namespace poetbin {

struct RuntimeOptions {
  // Worker threads for the persistent engine. 0 = hardware concurrency,
  // 1 = run requests inline on the calling thread (no pool).
  std::size_t threads = 0;
  // Force a specific SIMD word backend. Backend dispatch is process-global
  // (all backends are bit-identical, so this only changes speed): the
  // Runtime applies the override once at construction via
  // set_word_backend(), aborting if the backend is unavailable on this
  // build or CPU. nullopt keeps the CPUID-probed default (or whatever
  // POETBIN_FORCE_BACKEND pinned).
  std::optional<WordBackend> backend;
  // Fuse the output-layer argmax into the bitsliced word pass (no
  // materialized rinc_outputs matrix). Off = evaluate the RINC bank
  // word-parallel, then run the scalar argmax over the materialized bank —
  // same results bit for bit, useful for debugging the fused path.
  bool fused_argmax = true;
};

class Runtime {
 public:
  // Takes ownership of the model (PoetBin is a few KB of LUT tables; copy
  // or move one in) and spins up the persistent engine.
  explicit Runtime(PoetBin model, RuntimeOptions options = {});

  // Train-then-serve in one step: PoetBin::train with `config`, wrapped in
  // a Runtime. The engine is created after training (PoetBin::train has its
  // own distillation pool).
  static Runtime train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config,
                       RuntimeOptions options = {});

  // Deserialize a saved model (core/serialize.h) into a Runtime. The typed
  // error distinguishes a missing file from a version mismatch from corrupt
  // section contents (kind + message) — malformed bytes never abort, so a
  // serving worker survives a bad model on disk.
  using LoadResult = IoResult<Runtime>;
  static LoadResult load(const std::string& path, RuntimeOptions options = {});

  // Serialize the owned model; the error carries the failing path.
  IoStatus save(const std::string& path) const;

  Runtime(Runtime&&) = default;
  Runtime& operator=(Runtime&&) = default;

  const PoetBin& model() const { return model_; }
  const RuntimeOptions& options() const { return options_; }
  const BatchEngine& engine() const { return *engine_; }
  std::size_t threads() const { return engine_->n_threads(); }
  // The backend that was active when this Runtime resolved dispatch.
  WordBackend backend() const { return backend_; }

  // Dataset-level requests (one at a time per Runtime; see header comment).
  std::vector<int> predict(const BitMatrix& features) const;
  double accuracy(const BitMatrix& features,
                  const std::vector<int>& labels) const;
  BitMatrix rinc_outputs(const BitMatrix& features) const;

  // Scalar single-example request; safe concurrently with any read-only
  // request on this Runtime (see the concurrency contract above).
  int predict_one(const BitVector& example_bits) const;

  // Re-adapt the output layer to new labeled data without re-distilling the
  // RINC bank (the paper's A4 step), spreading classes over this engine.
  // Mutates the model: no other request (including predict_one) may
  // overlap with it.
  void retrain_output_layer(const BitMatrix& features,
                            const std::vector<int>& labels);

 private:
  PoetBin model_;
  RuntimeOptions options_;
  std::unique_ptr<BatchEngine> engine_;
  WordBackend backend_;
};

}  // namespace poetbin
