#include "serve/protocol.h"

#include <cstring>

namespace poetbin {
namespace wire {

namespace {

void put_u16(std::uint16_t v, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(v & 0xFF));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) v |= std::uint32_t{p[b]} << (8 * b);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= std::uint64_t{p[b]} << (8 * b);
  return v;
}

// Patches the length prefix once the payload size is known: every encoder
// reserves the 4 header bytes up front, appends the payload, then seals.
std::size_t seal_frame(std::size_t header_at, std::vector<std::uint8_t>* out) {
  const std::size_t payload = out->size() - header_at - kFrameHeaderSize;
  for (int b = 0; b < 4; ++b) {
    (*out)[header_at + b] =
        static_cast<std::uint8_t>(static_cast<std::uint32_t>(payload) >>
                                  (8 * b));
  }
  return out->size() - header_at;
}

std::size_t open_frame(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = out->size();
  out->resize(out->size() + kFrameHeaderSize);
  return header_at;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad-frame";
    case Status::kOversized: return "oversized";
    case Status::kWrongFeatureWidth: return "wrong-feature-width";
    case Status::kUnknownType: return "unknown-type";
    case Status::kEmptyInput: return "empty-input";
    case Status::kReloadFailed: return "reload-failed";
  }
  return "unknown";
}

std::size_t encode_predict_request(const BitVector& bits,
                                   std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kPredict));
  put_u32(static_cast<std::uint32_t>(bits.size()), out);
  // Pack LSB-first bytes straight out of the little-endian word layout.
  const std::size_t n_bytes = (bits.size() + 7) / 8;
  const std::uint64_t* words = bits.words();
  for (std::size_t j = 0; j < n_bytes; ++j) {
    out->push_back(
        static_cast<std::uint8_t>(words[j >> 3] >> ((j & 7) * 8)));
  }
  return seal_frame(header_at, out);
}

std::size_t encode_info_request(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kInfo));
  return seal_frame(header_at, out);
}

std::size_t encode_stats_request(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kStats));
  return seal_frame(header_at, out);
}

std::size_t encode_reload_request(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kReload));
  return seal_frame(header_at, out);
}

std::size_t encode_model_info_request(std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kModelInfo));
  return seal_frame(header_at, out);
}

std::size_t encode_predict_response(Status status, std::uint16_t prediction,
                                    std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kPredict));
  out->push_back(static_cast<std::uint8_t>(status));
  if (status == Status::kOk) put_u16(prediction, out);
  return seal_frame(header_at, out);
}

std::size_t encode_info_response(std::uint32_t n_features,
                                 std::uint32_t n_classes,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kInfo));
  out->push_back(static_cast<std::uint8_t>(Status::kOk));
  put_u32(n_features, out);
  put_u32(n_classes, out);
  return seal_frame(header_at, out);
}

std::size_t encode_stats_response(const ServeStats& stats,
                                  std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kStats));
  out->push_back(static_cast<std::uint8_t>(Status::kOk));
  put_u64(stats.requests, out);
  put_u64(stats.batches, out);
  put_u64(stats.timeouts, out);
  put_u64(stats.errors, out);
  put_u64(stats.connections, out);
  for (const std::uint64_t count : stats.window_fill) put_u64(count, out);
  // Cache counters ride at the end so pre-cache decoders that check the
  // old length still line up on everything before them.
  put_u64(stats.cache_hits, out);
  put_u64(stats.cache_misses, out);
  put_u64(stats.cache_inserts, out);
  put_u64(stats.cache_evictions, out);
  put_u64(stats.cache_stale, out);
  return seal_frame(header_at, out);
}

std::size_t encode_reload_response(Status status, std::uint64_t version,
                                   std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kReload));
  out->push_back(static_cast<std::uint8_t>(status));
  if (status == Status::kOk) put_u64(version, out);
  return seal_frame(header_at, out);
}

std::size_t encode_model_info_response(std::uint64_t version,
                                       std::uint8_t format,
                                       std::uint32_t n_features,
                                       std::uint32_t n_classes,
                                       const WireConvShape& conv,
                                       std::vector<std::uint8_t>* out) {
  const std::size_t header_at = open_frame(out);
  out->push_back(static_cast<std::uint8_t>(MsgType::kModelInfo));
  out->push_back(static_cast<std::uint8_t>(Status::kOk));
  put_u64(version, out);
  out->push_back(format);
  put_u32(n_features, out);
  put_u32(n_classes, out);
  // Conv shape rides at the end so pre-conv decoders that check the old
  // length still line up on everything before it.
  out->push_back(conv.has_conv);
  put_u32(conv.in_channels, out);
  put_u32(conv.in_height, out);
  put_u32(conv.in_width, out);
  put_u32(conv.out_channels, out);
  put_u32(conv.out_height, out);
  put_u32(conv.out_width, out);
  return seal_frame(header_at, out);
}

FrameResult decode_request(const std::uint8_t* buffer, std::size_t size,
                           std::size_t* offset, Request* request,
                           Status* error, bool* fatal) {
  *fatal = false;
  if (size - *offset < kFrameHeaderSize) return FrameResult::kNeedMore;
  const std::uint32_t length = get_u32(buffer + *offset);
  if (length > kMaxFramePayload) {
    // An absurd declared length cannot be skipped (the bytes may never
    // arrive) — the stream is poisoned; report and let the caller close.
    *error = Status::kOversized;
    *fatal = true;
    *offset = size;
    return FrameResult::kReject;
  }
  if (size - *offset - kFrameHeaderSize < length) return FrameResult::kNeedMore;
  const std::uint8_t* payload = buffer + *offset + kFrameHeaderSize;
  *offset += kFrameHeaderSize + length;  // frame consumed either way

  if (length < 1) {
    *error = Status::kBadFrame;
    return FrameResult::kReject;
  }
  const std::uint8_t type = payload[0];
  if (type == static_cast<std::uint8_t>(MsgType::kInfo) ||
      type == static_cast<std::uint8_t>(MsgType::kStats) ||
      type == static_cast<std::uint8_t>(MsgType::kReload) ||
      type == static_cast<std::uint8_t>(MsgType::kModelInfo)) {
    if (length != 1) {
      *error = Status::kBadFrame;
      return FrameResult::kReject;
    }
    request->type = static_cast<MsgType>(type);
    request->bits = BitVector();
    return FrameResult::kFrame;
  }
  if (type != static_cast<std::uint8_t>(MsgType::kPredict)) {
    *error = Status::kUnknownType;
    return FrameResult::kReject;
  }
  if (length < 1 + 4) {
    *error = Status::kBadFrame;
    return FrameResult::kReject;
  }
  const std::uint32_t n_bits = get_u32(payload + 1);
  if (n_bits == 0) {
    *error = Status::kEmptyInput;
    return FrameResult::kReject;
  }
  const std::size_t n_bytes = (std::size_t{n_bits} + 7) / 8;
  if (length != 1 + 4 + n_bytes) {
    *error = Status::kBadFrame;
    return FrameResult::kReject;
  }
  BitVector bits(n_bits);
  std::uint64_t* words = bits.words();
  for (std::size_t j = 0; j < n_bytes; ++j) {
    words[j >> 3] |= std::uint64_t{payload[1 + 4 + j]} << ((j & 7) * 8);
  }
  // Ignore stray padding bits past n_bits in the final byte: the packed
  // form addresses whole bytes, the BitVector invariant wants clean tails.
  words[bits.word_count() - 1] &= BitVector::tail_word_mask(n_bits);
  request->type = MsgType::kPredict;
  request->bits = std::move(bits);
  return FrameResult::kFrame;
}

FrameResult decode_response(const std::uint8_t* buffer, std::size_t size,
                            std::size_t* offset, Response* response) {
  if (size - *offset < kFrameHeaderSize) return FrameResult::kNeedMore;
  const std::uint32_t length = get_u32(buffer + *offset);
  if (length > kMaxFramePayload) {
    *offset = size;
    return FrameResult::kReject;
  }
  if (size - *offset - kFrameHeaderSize < length) return FrameResult::kNeedMore;
  const std::uint8_t* payload = buffer + *offset + kFrameHeaderSize;
  *offset += kFrameHeaderSize + length;

  if (length < 2) return FrameResult::kReject;
  response->type = static_cast<MsgType>(payload[0]);
  response->status = static_cast<Status>(payload[1]);
  if (response->status != Status::kOk) {
    return length == 2 ? FrameResult::kFrame : FrameResult::kReject;
  }
  switch (response->type) {
    case MsgType::kPredict:
      if (length != 2 + 2) return FrameResult::kReject;
      response->prediction = get_u16(payload + 2);
      return FrameResult::kFrame;
    case MsgType::kInfo:
      if (length != 2 + 4 + 4) return FrameResult::kReject;
      response->n_features = get_u32(payload + 2);
      response->n_classes = get_u32(payload + 2 + 4);
      return FrameResult::kFrame;
    case MsgType::kStats: {
      // Two body layouts are valid: the pre-cache one (5 + kFillBuckets
      // u64s) and the current one with 5 cache counters appended. The short
      // form decodes with the cache fields left at zero — explicit
      // version tolerance, not a sloppy prefix read: anything between or
      // beyond the two lengths is rejected.
      const std::size_t legacy = 2 + 8 * (5 + ServeStats::kFillBuckets);
      const std::size_t want = legacy + 8 * 5;
      if (length != want && length != legacy) return FrameResult::kReject;
      const std::uint8_t* p = payload + 2;
      response->stats = ServeStats();
      response->stats.requests = get_u64(p);
      response->stats.batches = get_u64(p + 8);
      response->stats.timeouts = get_u64(p + 16);
      response->stats.errors = get_u64(p + 24);
      response->stats.connections = get_u64(p + 32);
      for (std::size_t b = 0; b < ServeStats::kFillBuckets; ++b) {
        response->stats.window_fill[b] = get_u64(p + 40 + 8 * b);
      }
      if (length == want) {
        const std::uint8_t* c = p + 40 + 8 * ServeStats::kFillBuckets;
        response->stats.cache_hits = get_u64(c);
        response->stats.cache_misses = get_u64(c + 8);
        response->stats.cache_inserts = get_u64(c + 16);
        response->stats.cache_evictions = get_u64(c + 24);
        response->stats.cache_stale = get_u64(c + 32);
      }
      return FrameResult::kFrame;
    }
    case MsgType::kReload:
      if (length != 2 + 8) return FrameResult::kReject;
      response->model_version = get_u64(payload + 2);
      return FrameResult::kFrame;
    case MsgType::kModelInfo: {
      // Two body layouts are valid: the pre-conv one ending at n_classes
      // and the current one with the conv shape appended. The short form
      // decodes with the conv fields left at zero (dense), same explicit
      // version tolerance as kStats.
      const std::size_t legacy = 2 + 8 + 1 + 4 + 4;
      const std::size_t want = legacy + 1 + 6 * 4;
      if (length != want && length != legacy) return FrameResult::kReject;
      response->model_version = get_u64(payload + 2);
      response->model_format = payload[2 + 8];
      response->n_features = get_u32(payload + 2 + 8 + 1);
      response->n_classes = get_u32(payload + 2 + 8 + 1 + 4);
      response->conv = WireConvShape();
      if (length == want) {
        const std::uint8_t* c = payload + legacy;
        response->conv.has_conv = c[0];
        response->conv.in_channels = get_u32(c + 1);
        response->conv.in_height = get_u32(c + 5);
        response->conv.in_width = get_u32(c + 9);
        response->conv.out_channels = get_u32(c + 13);
        response->conv.out_height = get_u32(c + 17);
        response->conv.out_width = get_u32(c + 21);
      }
      return FrameResult::kFrame;
    }
  }
  return FrameResult::kReject;
}

}  // namespace wire
}  // namespace poetbin
