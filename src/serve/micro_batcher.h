// Micro-batching front end for concurrent single-example serving.
//
// The word engine evaluates 64 examples per word op, but a serving endpoint
// receives requests one example at a time. A MicroBatcher turns the
// offline-only batch advantage into a concurrent-serving primitive: it
// packs in-flight predict_one requests into one bitsliced BitMatrix and
// dispatches them through the wrapped Runtime as a single fused-argmax
// pass, bit-identical to calling PoetBin::predict on each example.
//
// Two entry points share one open batch window:
//
//   int cls = batcher.predict_one(bits);        // blocking, many threads
//   Ticket t = batcher.submit(bits);            // async; t.get() blocks
//
// Batching policy: a window closes (and dispatches) when it reaches
// max_batch examples, or when its oldest blocking request has waited
// max_wait. The first blocking request in a window is its *leader* — it
// arms the timeout; later requests just wait; whichever request observes
// the window full dispatches it inline. There is no dispatcher thread:
// submit()-only traffic dispatches when the window fills, on flush(), or
// at the latest when a Ticket::get() times out its window, so no request
// can strand.
//
// Lifetime: the caller's example bits must stay alive until the request's
// result is returned (predict_one) or Ticket::get() completes — the
// batcher stores pointers, not copies. Dispatches are serialized on an
// internal mutex (the Runtime's engine is not re-entrant), so the batcher
// may be shared freely across producer threads.
//
// Prediction cache: when the Runtime has one (RuntimeOptions::cache_bytes),
// both entry points probe it BEFORE joining a window — a hit skips the
// window entirely (predict_one returns immediately; submit hands back an
// already-resolved Ticket) — and a dispatched window inserts its results
// tagged with the model version that computed them. Hits are bit-identical
// to the fused pass by the cache's epoch-invalidation contract
// (serve/predict_cache.h). stats() folds the cache's counters into its
// snapshot, so one read tells the whole serving story.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/runtime.h"
#include "serve/serve_stats.h"
#include "util/bitvector.h"

namespace poetbin {

struct MicroBatcherOptions {
  // Window size in examples. 64 fills exactly one word of the bitsliced
  // pass; larger windows trade latency for fewer dispatches.
  std::size_t max_batch = 64;
  // How long a blocking request may wait for the window to fill before the
  // partial batch is dispatched anyway. 0 = dispatch immediately (blocking
  // requests never batch; submit() traffic still packs full windows).
  std::chrono::microseconds max_wait{200};
};

class MicroBatcher {
 public:
  // The Runtime must outlive the batcher (and every outstanding Ticket).
  explicit MicroBatcher(const Runtime& runtime,
                        MicroBatcherOptions options = {});
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Blocking: joins the open window and returns this example's class once
  // the window dispatches (full, or max_wait elapsed).
  int predict_one(const BitVector& example_bits);

  class Ticket;
  // Async: joins the open window and returns immediately. The window
  // dispatches inline (on the submitting thread) when it fills; otherwise
  // the result materializes on flush(), on a blocking request's timeout, or
  // when get() runs out its own max_wait.
  Ticket submit(const BitVector& example_bits);

  // Dispatches the open partial window, if any. Called by the destructor.
  void flush();

  // Snapshot of the serving counters (serve/serve_stats.h): requests
  // (cache hits included — every prediction returned counts), dispatched
  // windows, leader-timeout dispatches, the window-fill histogram, and the
  // Runtime cache's counters. Monotonic; racing reads see a consistent
  // snapshot. The network-layer fields (errors, connections) stay zero
  // here — the NetServer fills them in its own snapshot.
  ServeStats stats() const;

 private:
  struct Batch {
    std::vector<const BitVector*> examples;
    std::vector<int> results;
    bool closed = false;      // no longer accepting joins; a dispatch is owed
    bool done = false;        // results are valid
    bool has_leader = false;  // a blocking request has armed max_wait
    std::condition_variable cv;
  };

  // Joins (or opens) the current window. Returns the joined batch and the
  // caller's slot; closes + claims the window when this join fills it
  // (*dispatch_claimed). A `blocking` join becomes the window's leader
  // (*leader) when it is the first blocking request — submit() joins never
  // lead, so a blocking request arriving after async ones still arms the
  // max_wait timeout.
  std::shared_ptr<Batch> join(const BitVector& example_bits, bool blocking,
                              std::size_t* index, bool* dispatch_claimed,
                              bool* leader);
  // Marks `batch` closed and detaches it from the open slot. Returns true
  // when the caller claimed the (single) dispatch. Requires mu_.
  bool try_close(const std::shared_ptr<Batch>& batch);
  // Packs, predicts and publishes results for a closed batch. `timed_out`
  // marks a leader-timeout dispatch (a partial window that went out because
  // its oldest blocking request ran out of max_wait) for the stats.
  void dispatch(const std::shared_ptr<Batch>& batch, bool timed_out = false);
  // Blocks until `batch` is done, dispatching it on timeout if nobody else
  // has. Returns the result at `index`.
  int await(const std::shared_ptr<Batch>& batch, std::size_t index,
            bool leader);
  // Cache probe shared by both entry points. True = *prediction is the
  // served answer (bit-identical to the current version's predict) and the
  // request never joins a window.
  bool probe_cache(const BitVector& example_bits, int* prediction);

  const Runtime* runtime_;
  MicroBatcherOptions options_;

  mutable std::mutex mu_;   // guards open_, batch states and the stats
  std::mutex dispatch_mu_;  // serializes Runtime::predict calls
  std::shared_ptr<Batch> open_;
  ServeStats stats_;
  // Requests answered straight from the cache — kept out of mu_ so the
  // lock-free hit path stays lock-free; stats() folds them into requests.
  std::atomic<std::uint64_t> cache_hit_requests_{0};

  friend class Ticket;
};

// Handle to one submitted example. get() may be called once from any
// thread; the ticket (and the example bits it refers to) must not outlive
// the MicroBatcher. A cache hit hands back an already-resolved ticket
// (no batch behind it) whose get() returns immediately.
class MicroBatcher::Ticket {
 public:
  int get();

 private:
  friend class MicroBatcher;
  Ticket(MicroBatcher* parent, std::shared_ptr<Batch> batch, std::size_t index)
      : parent_(parent), batch_(std::move(batch)), index_(index) {}
  explicit Ticket(int resolved)
      : parent_(nullptr), index_(0), resolved_(resolved) {}

  MicroBatcher* parent_;
  std::shared_ptr<Batch> batch_;
  std::size_t index_;
  int resolved_ = 0;
};

}  // namespace poetbin
