// Analytical FPGA cost model reproducing the paper's Tables 3-7.
//
// The paper's methodology (§4.2): measure per-operation power on the same
// Spartan-6 device (Table 4), count the MAC operations of the replaced FC
// classifier (Table 5), and multiply by the clock period to get energy
// (Table 6); PoET-BiN itself is measured post-synthesis (Table 3) with LUT
// counts and latency in Table 7. We re-implement exactly that arithmetic.
// Only the *logic + signal* dynamic power enters the energy estimates, as
// the paper argues clock/IO/static are device constants.
//
// Calibration: the per-operation constants are the paper's own Table 4
// values; the per-LUT activity energy is calibrated on the paper's MNIST
// point and the latency model on the MNIST/SVHN points (see EXPERIMENTS.md
// for the validation against the remaining points).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace poetbin {

// ---------------------------------------------------------------- Table 4

struct FpgaOpPower {
  double clock = 0.0;   // W, dynamic clock-tree share
  double logic = 0.0;   // W
  double signal = 0.0;  // W
  double io = 0.0;      // W
  double static_power = 0.0;  // W

  double total() const { return clock + logic + signal + io + static_power; }
  // Power attributable to the computation itself (what Table 6 uses).
  double compute() const { return logic + signal; }
};

// Measured at 62.5 MHz on the Spartan-6 (paper Table 4).
FpgaOpPower op_power_mult16();
FpgaOpPower op_power_add16();
FpgaOpPower op_power_mult32();
FpgaOpPower op_power_add32();
FpgaOpPower op_power_mult_float();
FpgaOpPower op_power_add_float();

// ---------------------------------------------------------------- Table 5

// The classifier portion replaced by PoET-BiN: a stack of FC layers given
// by dims = {in, hidden..., out}; e.g. M1 = {512, 512, 10}.
struct ClassifierArch {
  std::string name;
  std::vector<std::size_t> dims;
};

ClassifierArch arch_m1();  // MNIST:    512-512-10
ClassifierArch arch_c1();  // CIFAR-10: 512-4096-4096-10
ClassifierArch arch_s1();  // SVHN:     512-2048-2048-10

struct OpCounts {
  std::size_t mults = 0;
  std::size_t adds = 0;
};

// One MAC (mult + add) per weight: sum_l dims[l] * dims[l+1].
OpCounts count_classifier_ops(const ClassifierArch& arch);

// Total neurons in the classifier's hidden+output layers (binary-network
// power is estimated per neuron in the paper).
std::size_t count_classifier_neurons(const ClassifierArch& arch);

// ---------------------------------------------------------------- Table 6

enum class Precision { kFloat32, kInt32, kInt16, kBinary1 };

const char* precision_name(Precision precision);

constexpr double kClockPeriod62_5MHz = 16e-9;  // s
constexpr double kClockPeriod100MHz = 10e-9;   // s

// Energy of one inference through the FC classifier at the given precision:
// ops x per-op compute power x clock period (the paper's single-cycle
// "all ops in parallel" convention). kBinary1 uses the binary-neuron model
// below instead of Table 4.
double classifier_energy_joules(const ClassifierArch& arch, Precision precision,
                                double clock_period_s = kClockPeriod62_5MHz);

// Paper: a 512-input binary neuron (XNOR array + adder tree + comparator)
// draws 26 mW of logic+signal power; we scale linearly with fan-in, which
// reproduces the paper's MNIST number exactly and keeps CIFAR/SVHN within
// the same order of magnitude (see EXPERIMENTS.md).
double binary_neuron_power_watts(std::size_t fan_in);

// ------------------------------------------------------------- Tables 3/7

struct PoetBinHwSpec {
  std::string name;
  std::size_t lut_inputs = 6;   // P
  std::size_t levels = 2;       // L
  std::size_t n_dts = 36;       // leaf DTs per RINC module
  std::size_t n_modules = 60;   // nc * P intermediate neurons
  std::size_t n_classes = 10;
  int qbits = 8;
  double clock_mhz = 100.0;
  // Fraction of 6-LUTs removed by synthesis (measured per dataset in the
  // paper; our prune_poetbin reproduces it from a trained model).
  double prune_fraction = 0.0;
};

// The three configurations of the paper's evaluation, including measured
// prune fractions (MNIST ~2%, CIFAR-10 ~36%, SVHN 0%).
PoetBinHwSpec hw_spec_mnist();
PoetBinHwSpec hw_spec_cifar10();
PoetBinHwSpec hw_spec_svhn();

// LUTs (module units) in one RINC module: sum_l ceil(n_dts / P^l) for
// l = 0..L (37 for MNIST's 32 DTs @ P=8; 43 for SVHN's 36 @ P=6).
std::size_t rinc_module_lut_units(const PoetBinHwSpec& spec);

// Whole-classifier 6-input LUT count after decomposition and pruning —
// the Table 7 "LUTs" row (2660 for SVHN, closed form checked in §4.3).
std::size_t poetbin_total_6luts(const PoetBinHwSpec& spec);

// Logic levels input->class-code on the critical path.
std::size_t poetbin_critical_path_levels(const PoetBinHwSpec& spec);

// Latency model: routing overhead + per-level delay, calibrated on the
// paper's MNIST and SVHN measurements.
double poetbin_latency_ns(const PoetBinHwSpec& spec);

// Dynamic (logic+signal+clock) power of the classifier at its clock —
// per-LUT activity energy calibrated on the paper's MNIST point.
double poetbin_dynamic_power_watts(const PoetBinHwSpec& spec);
double poetbin_static_power_watts();
double poetbin_total_power_watts(const PoetBinHwSpec& spec);

// Single-cycle inference energy: total power x clock period (Table 6 row).
double poetbin_energy_joules(const PoetBinHwSpec& spec);

}  // namespace poetbin
