// 8->6 input LUT decomposition and synthesizer-pruning model.
//
// Spartan-6 slices provide 6-input LUTs; the paper notes each 8-input LUT
// maps to four 6-input LUTs (plus dedicated mux resources that are not
// counted). It also reports that the Xilinx synthesizer removes LUTs whose
// MAT fanin weight is too small to ever flip the threshold (~36% of LUTs on
// CIFAR-10). `prune_rinc` reproduces that analysis exactly on a trained
// module: a MAT input is dead iff flipping it never changes the MAT output
// (MatModule::removable_inputs), in which case its entire child subtree is
// removed and the MAT shrinks.
#pragma once

#include <cstddef>

#include "core/poetbin.h"
#include "core/rinc.h"

namespace poetbin {

// 6-input-LUT cost of one a-input LUT: 1 for a <= 6, else 2^(a-6).
std::size_t six_lut_cost(std::size_t arity);

// Logic levels of one a-input LUT after decomposition: 1 for a <= 6, else 2
// (the mux stage after the four 6-LUTs adds one level).
std::size_t six_lut_levels(std::size_t arity);

struct PruneStats {
  std::size_t raw_luts = 0;      // module-unit LUTs before pruning
  std::size_t kept_luts = 0;     // after dead-fanin removal
  std::size_t raw_6luts = 0;     // after 8->6 decomposition, before pruning
  std::size_t kept_6luts = 0;    // after both

  double removed_fraction_6luts() const {
    return raw_6luts == 0
               ? 0.0
               : 1.0 - static_cast<double>(kept_6luts) /
                           static_cast<double>(raw_6luts);
  }
};

// Analyses one trained RINC module.
PruneStats prune_rinc(const RincModule& module);

// Whole classifier: all RINC modules plus the q x nc output-layer LUTs
// (which are never pruned — their fanins are live by construction).
PruneStats prune_poetbin(const PoetBin& model);

}  // namespace poetbin
