// Builds a LUT netlist from trained RincModule / PoetBin models.
//
// One netlist node per RINC-0 LUT and per MAT LUT, plus q code-bit LUTs per
// output neuron — exactly the structure the paper's VHDL generator emits.
#pragma once

#include <string>
#include <vector>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "hw/netlist.h"

namespace poetbin {

struct PoetBinNetlist {
  Netlist netlist;
  std::size_t n_features = 0;
  // class_code_bits[c][k] = node id of bit k (LSB first) of class c's
  // quantized activation code.
  std::vector<std::vector<std::size_t>> class_code_bits;

  // Simulates the netlist and arg-maxes the class codes (ties to the lower
  // class index, matching PoetBin::predict).
  int predict(const BitVector& feature_bits) const;
  std::vector<int> predict_dataset(const BitMatrix& features) const;
};

struct RincNetlist {
  Netlist netlist;
  std::size_t n_features = 0;
  std::size_t output_node = 0;

  bool eval(const BitVector& feature_bits) const;
};

// `n_features` fixes the primary-input width (the paper feeds 512 features
// through a shift register regardless of how many a module actually taps).
RincNetlist build_rinc_netlist(const RincModule& module, std::size_t n_features);

PoetBinNetlist build_poetbin_netlist(const PoetBin& model,
                                     std::size_t n_features);

}  // namespace poetbin
