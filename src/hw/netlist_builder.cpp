#include "hw/netlist_builder.h"

#include <string>

namespace poetbin {

namespace {

// Adds the module's LUTs to the netlist; returns the output node id.
// `input_nodes[f]` is the node carrying feature f.
std::size_t add_module(Netlist& netlist, const RincModule& module,
                       const std::vector<std::size_t>& input_nodes,
                       const std::string& prefix) {
  if (module.is_leaf()) {
    const Lut& lut = module.leaf_lut();
    std::vector<std::size_t> fanins;
    fanins.reserve(lut.arity());
    for (const auto f : lut.inputs()) {
      POETBIN_CHECK(f < input_nodes.size());
      fanins.push_back(input_nodes[f]);
    }
    return netlist.add_lut(std::move(fanins), lut.table(), prefix + "_dt");
  }
  std::vector<std::size_t> child_outputs;
  child_outputs.reserve(module.children().size());
  for (std::size_t c = 0; c < module.children().size(); ++c) {
    child_outputs.push_back(add_module(netlist, module.children()[c],
                                       input_nodes,
                                       prefix + "_c" + std::to_string(c)));
  }
  return netlist.add_lut(std::move(child_outputs), module.mat_lut().table(),
                         prefix + "_mat");
}

std::vector<std::size_t> add_primary_inputs(Netlist& netlist,
                                            std::size_t n_features) {
  std::vector<std::size_t> input_nodes;
  input_nodes.reserve(n_features);
  for (std::size_t f = 0; f < n_features; ++f) {
    input_nodes.push_back(netlist.add_input(f, "x" + std::to_string(f)));
  }
  return input_nodes;
}

}  // namespace

RincNetlist build_rinc_netlist(const RincModule& module, std::size_t n_features) {
  RincNetlist result;
  result.n_features = n_features;
  const auto input_nodes = add_primary_inputs(result.netlist, n_features);
  result.output_node = add_module(result.netlist, module, input_nodes, "rinc");
  result.netlist.mark_output(result.output_node);
  return result;
}

bool RincNetlist::eval(const BitVector& feature_bits) const {
  POETBIN_CHECK(feature_bits.size() == n_features);
  return netlist.simulate_outputs(feature_bits)[0];
}

PoetBinNetlist build_poetbin_netlist(const PoetBin& model,
                                     std::size_t n_features) {
  PoetBinNetlist result;
  result.n_features = n_features;
  Netlist& netlist = result.netlist;
  const auto input_nodes = add_primary_inputs(netlist, n_features);

  // RINC bank: one output node per intermediate neuron.
  std::vector<std::size_t> module_outputs;
  module_outputs.reserve(model.n_modules());
  for (std::size_t m = 0; m < model.n_modules(); ++m) {
    module_outputs.push_back(add_module(netlist, model.modules()[m], input_nodes,
                                        "rinc" + std::to_string(m)));
  }

  // Sparse output layer: q code-bit LUTs per class, each reading the class's
  // P module outputs.
  const int qbits = model.quant_bits();
  result.class_code_bits.resize(model.n_classes());
  for (std::size_t c = 0; c < model.n_classes(); ++c) {
    const SparseOutputNeuron& neuron = model.output_neurons()[c];
    std::vector<std::size_t> fanins;
    fanins.reserve(neuron.input_modules.size());
    for (const auto m : neuron.input_modules) {
      fanins.push_back(module_outputs[m]);
    }
    for (int k = 0; k < qbits; ++k) {
      BitVector table(neuron.codes.size());
      for (std::size_t combo = 0; combo < neuron.codes.size(); ++combo) {
        if ((neuron.codes[combo] >> k) & 1u) table.set(combo, true);
      }
      const std::size_t id = netlist.add_lut(
          fanins, std::move(table),
          "out" + std::to_string(c) + "_b" + std::to_string(k));
      result.class_code_bits[c].push_back(id);
      netlist.mark_output(id);
    }
  }
  return result;
}

int PoetBinNetlist::predict(const BitVector& feature_bits) const {
  POETBIN_CHECK(feature_bits.size() == n_features);
  const std::vector<bool> values = netlist.simulate(feature_bits);
  std::size_t best_class = 0;
  std::uint64_t best_code = 0;
  for (std::size_t c = 0; c < class_code_bits.size(); ++c) {
    std::uint64_t code = 0;
    for (std::size_t k = 0; k < class_code_bits[c].size(); ++k) {
      if (values[class_code_bits[c][k]]) code |= std::uint64_t{1} << k;
    }
    if (c == 0 || code > best_code) {
      best_code = code;
      best_class = c;
    }
  }
  return static_cast<int>(best_class);
}

std::vector<int> PoetBinNetlist::predict_dataset(const BitMatrix& features) const {
  // Word-parallel simulation: one pass over the netlist covers 64 examples
  // per word, then the class codes are decoded per example.
  const std::vector<BitVector> values = netlist.simulate_dataset(features);
  std::vector<int> out(features.rows(), 0);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    std::size_t best_class = 0;
    std::uint64_t best_code = 0;
    for (std::size_t c = 0; c < class_code_bits.size(); ++c) {
      std::uint64_t code = 0;
      for (std::size_t k = 0; k < class_code_bits[c].size(); ++k) {
        if (values[class_code_bits[c][k]].get(i)) code |= std::uint64_t{1} << k;
      }
      if (c == 0 || code > best_code) {
        best_code = code;
        best_class = c;
      }
    }
    out[i] = static_cast<int>(best_class);
  }
  return out;
}

}  // namespace poetbin
