#include "hw/memory_model.h"

#include <limits>

#include "util/check.h"

namespace poetbin {

std::uint64_t monolithic_table_bits(std::size_t n_inputs) {
  if (n_inputs >= 64) return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1} << n_inputs;
}

std::uint64_t rinc_table_bits(std::size_t lut_inputs, std::size_t levels,
                              std::size_t total_dts) {
  POETBIN_CHECK(lut_inputs >= 1 && lut_inputs < 24);
  // LUT units: sum over levels of ceil(dts / P^l) (matches
  // rinc_module_lut_units); full tree when total_dts == 0.
  std::uint64_t dts = total_dts;
  if (dts == 0) {
    dts = 1;
    for (std::size_t l = 0; l < levels; ++l) dts *= lut_inputs;
  }
  std::uint64_t units = 0;
  std::uint64_t group = 1;
  for (std::size_t l = 0; l <= levels; ++l) {
    units += (dts + group - 1) / group;
    group *= lut_inputs;
  }
  return units * (std::uint64_t{1} << lut_inputs);
}

std::uint64_t rinc_table_bits(const RincModule& module) {
  if (module.is_leaf()) return module.leaf_lut().table_size();
  std::uint64_t bits = module.mat_lut().table_size();
  for (const auto& child : module.children()) bits += rinc_table_bits(child);
  return bits;
}

std::uint64_t block_rams_required(std::uint64_t table_bits) {
  return (table_bits + kBlockRamBits - 1) / kBlockRamBits;
}

std::uint64_t rinc_input_capacity(std::size_t lut_inputs, std::size_t levels) {
  std::uint64_t capacity = 1;
  for (std::size_t l = 0; l <= levels; ++l) capacity *= lut_inputs;
  return capacity;
}

}  // namespace poetbin
