// Synthesis-style netlist optimization.
//
// Reproduces, at the netlist level, what the paper observes the Xilinx
// synthesizer doing to PoET-BiN designs (§4.3): LUT inputs whose value can
// never change the output (e.g. MAT fanins with negligible Adaboost weight)
// are disconnected, LUTs that collapse to wires or constants disappear, and
// logic no longer reachable from an output is dropped. The pass is purely
// structural — optimized netlists are verified bit-exact by tests and by
// `verify_equivalent`.
#pragma once

#include "hw/netlist.h"
#include "util/bit_matrix.h"

namespace poetbin {

struct NetlistOptStats {
  std::size_t luts_before = 0;
  std::size_t luts_after = 0;
  std::size_t inputs_disconnected = 0;  // removable LUT inputs dropped
  std::size_t constants_folded = 0;     // LUTs that became constants
  std::size_t wires_collapsed = 0;      // identity LUTs aliased away
  std::size_t dead_removed = 0;         // LUTs unreachable from outputs

  double removed_fraction() const {
    return luts_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(luts_after) /
                           static_cast<double>(luts_before);
  }
};

// Returns an equivalent netlist with the same primary inputs and the same
// number of outputs (in the same order).
Netlist optimize_netlist(const Netlist& input, NetlistOptStats* stats = nullptr);

// True iff the two netlists produce identical outputs on every row of
// `vectors` (a Monte-Carlo equivalence check; exhaustive for few inputs).
bool verify_equivalent(const Netlist& a, const Netlist& b,
                       const BitMatrix& vectors);

// True iff flipping address bit `input` never changes the lookup result.
bool lut_input_removable(const BitVector& table, std::size_t input);

}  // namespace poetbin
