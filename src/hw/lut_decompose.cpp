#include "hw/lut_decompose.h"

namespace poetbin {

std::size_t six_lut_cost(std::size_t arity) {
  if (arity <= 6) return 1;
  return std::size_t{1} << (arity - 6);
}

std::size_t six_lut_levels(std::size_t arity) { return arity <= 6 ? 1 : 2; }

namespace {

void prune_walk(const RincModule& module, bool alive, PruneStats& stats) {
  if (module.is_leaf()) {
    const std::size_t cost6 = six_lut_cost(module.leaf_lut().arity());
    stats.raw_luts += 1;
    stats.raw_6luts += cost6;
    if (alive) {
      stats.kept_luts += 1;
      stats.kept_6luts += cost6;
    }
    return;
  }

  const std::vector<bool> removable = module.mat().removable_inputs();
  std::size_t kept_fanins = 0;
  for (std::size_t c = 0; c < module.children().size(); ++c) {
    const bool child_alive = alive && !removable[c];
    if (child_alive) ++kept_fanins;
    prune_walk(module.children()[c], child_alive, stats);
  }

  const std::size_t raw_cost = six_lut_cost(module.children().size());
  stats.raw_luts += 1;
  stats.raw_6luts += raw_cost;
  if (alive) {
    // A MAT with all fanins dead degenerates to a constant (cost 0); with
    // exactly one live fanin it is a wire (cost 0); otherwise it shrinks to
    // the kept arity.
    if (kept_fanins >= 2) {
      stats.kept_luts += 1;
      stats.kept_6luts += six_lut_cost(kept_fanins);
    } else if (kept_fanins == 1) {
      // Wire: no LUT needed, child drives through.
    }
  }
}

}  // namespace

PruneStats prune_rinc(const RincModule& module) {
  PruneStats stats;
  prune_walk(module, /*alive=*/true, stats);
  return stats;
}

PruneStats prune_poetbin(const PoetBin& model) {
  PruneStats stats;
  for (const auto& module : model.modules()) {
    prune_walk(module, /*alive=*/true, stats);
  }
  const std::size_t output_luts =
      model.n_classes() * static_cast<std::size_t>(model.quant_bits());
  const std::size_t output_cost =
      output_luts * six_lut_cost(model.lut_inputs());
  stats.raw_luts += output_luts;
  stats.kept_luts += output_luts;
  stats.raw_6luts += output_cost;
  stats.kept_6luts += output_cost;
  return stats;
}

}  // namespace poetbin
