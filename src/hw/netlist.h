// LUT-netlist intermediate representation and bit-exact simulator.
//
// The netlist is what "ships to hardware": primary inputs (feature bits) and
// LUT nodes wired to earlier nodes. Node ids are topological by
// construction (a LUT may only reference already-created nodes), so
// simulation is a single forward pass. The paper verifies its FPGA
// implementation against PyTorch outputs in a generated testbench; our
// equivalent check simulates this netlist and compares with the C++ model
// bit-for-bit (see tests/netlist_test.cpp and examples/vhdl_export.cpp).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/bit_matrix.h"
#include "util/bitvector.h"
#include "util/check.h"

namespace poetbin {

struct NetlistNode {
  enum class Kind { kInput, kLut };

  Kind kind = Kind::kInput;
  // kInput: which bit of the primary input vector this node carries.
  std::size_t input_index = 0;
  // kLut: fanin node ids; address bit j comes from fanins[j].
  std::vector<std::size_t> fanins;
  // kLut: truth table of size 2^fanins.size().
  BitVector table;
  std::string name;
};

class Netlist {
 public:
  std::size_t add_input(std::size_t input_index, std::string name);
  std::size_t add_lut(std::vector<std::size_t> fanins, BitVector table,
                      std::string name);

  void mark_output(std::size_t node_id);

  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_inputs() const { return n_inputs_; }
  std::size_t n_luts() const { return nodes_.size() - n_inputs_; }
  const NetlistNode& node(std::size_t id) const { return nodes_.at(id); }
  const std::vector<std::size_t>& outputs() const { return outputs_; }

  // LUT levels on the longest input->output path (inputs are level 0).
  std::size_t depth() const;
  // Count of LUTs per arity (diagnostics / area model).
  std::map<std::size_t, std::size_t> arity_histogram() const;

  // Simulates the whole netlist for one primary-input assignment; returns
  // one value per node.
  std::vector<bool> simulate(const BitVector& input_bits) const;
  // Values of the marked outputs only, in mark order.
  std::vector<bool> simulate_outputs(const BitVector& input_bits) const;

  // Word-parallel simulation of all dataset rows at once: every node gets a
  // BitVector with one bit per example. LUTs are evaluated by Shannon
  // expansion over 64-example words (~64 rows per pass), which is what makes
  // whole-test-set hardware verification cheap. `features` must be
  // feature-major with at least max(input_index)+1 columns.
  std::vector<BitVector> simulate_dataset(const BitMatrix& features) const;
  // Output columns only (one BitVector of n_examples bits per output).
  std::vector<BitVector> simulate_dataset_outputs(const BitMatrix& features) const;

 private:
  std::vector<NetlistNode> nodes_;
  std::vector<std::size_t> outputs_;
  std::size_t n_inputs_ = 0;
};

}  // namespace poetbin
