#include "hw/netlist.h"

#include <algorithm>

namespace poetbin {

std::size_t Netlist::add_input(std::size_t input_index, std::string name) {
  POETBIN_CHECK_MSG(n_inputs_ == nodes_.size(),
                    "all primary inputs must be added before any LUT");
  NetlistNode node;
  node.kind = NetlistNode::Kind::kInput;
  node.input_index = input_index;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  ++n_inputs_;
  return nodes_.size() - 1;
}

std::size_t Netlist::add_lut(std::vector<std::size_t> fanins, BitVector table,
                             std::string name) {
  POETBIN_CHECK(table.size() == (std::size_t{1} << fanins.size()));
  for (const auto f : fanins) {
    POETBIN_CHECK_MSG(f < nodes_.size(), "fanin must reference an earlier node");
  }
  NetlistNode node;
  node.kind = NetlistNode::Kind::kLut;
  node.fanins = std::move(fanins);
  node.table = std::move(table);
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void Netlist::mark_output(std::size_t node_id) {
  POETBIN_CHECK(node_id < nodes_.size());
  outputs_.push_back(node_id);
}

std::size_t Netlist::depth() const {
  std::vector<std::size_t> level(nodes_.size(), 0);
  std::size_t deepest = 0;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const NetlistNode& node = nodes_[id];
    if (node.kind == NetlistNode::Kind::kInput) continue;
    std::size_t max_fanin_level = 0;
    for (const auto f : node.fanins) {
      max_fanin_level = std::max(max_fanin_level, level[f]);
    }
    level[id] = max_fanin_level + 1;
    deepest = std::max(deepest, level[id]);
  }
  return deepest;
}

std::map<std::size_t, std::size_t> Netlist::arity_histogram() const {
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& node : nodes_) {
    if (node.kind == NetlistNode::Kind::kLut) ++histogram[node.fanins.size()];
  }
  return histogram;
}

std::vector<bool> Netlist::simulate(const BitVector& input_bits) const {
  std::vector<bool> values(nodes_.size(), false);
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const NetlistNode& node = nodes_[id];
    if (node.kind == NetlistNode::Kind::kInput) {
      POETBIN_CHECK(node.input_index < input_bits.size());
      values[id] = input_bits.get(node.input_index);
    } else {
      std::size_t address = 0;
      for (std::size_t j = 0; j < node.fanins.size(); ++j) {
        if (values[node.fanins[j]]) address |= std::size_t{1} << j;
      }
      values[id] = node.table.get(address);
    }
  }
  return values;
}

namespace {

// Shannon-expansion evaluation of one 64-example word: recursively muxes the
// two half-tables on the highest remaining fanin's word.
std::uint64_t eval_lut_word(const BitVector& table, std::size_t offset,
                            std::size_t size,
                            const std::uint64_t* const* fanin_words,
                            std::size_t n_fanins, std::size_t word_index) {
  if (size == 1) return table.get(offset) ? ~0ULL : 0ULL;
  const std::size_t half = size / 2;
  const std::uint64_t low = eval_lut_word(table, offset, half, fanin_words,
                                          n_fanins - 1, word_index);
  const std::uint64_t high = eval_lut_word(table, offset + half, half,
                                           fanin_words, n_fanins - 1, word_index);
  const std::uint64_t select = fanin_words[n_fanins - 1][word_index];
  return (~select & low) | (select & high);
}

}  // namespace

std::vector<BitVector> Netlist::simulate_dataset(const BitMatrix& features) const {
  const std::size_t n = features.rows();
  std::vector<BitVector> values(nodes_.size());
  std::vector<const std::uint64_t*> fanin_words;
  const std::size_t n_words = (n + 63) / 64;

  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const NetlistNode& node = nodes_[id];
    if (node.kind == NetlistNode::Kind::kInput) {
      POETBIN_CHECK(node.input_index < features.cols());
      values[id] = features.column(node.input_index);
      continue;
    }
    values[id] = BitVector(n);
    if (node.fanins.empty()) {
      values[id].fill(node.table.get(0));
      continue;
    }
    fanin_words.clear();
    for (const auto fanin : node.fanins) {
      fanin_words.push_back(values[fanin].words());
    }
    std::uint64_t* out = values[id].words();
    for (std::size_t w = 0; w < n_words; ++w) {
      out[w] = eval_lut_word(node.table, 0, node.table.size(),
                             fanin_words.data(), node.fanins.size(), w);
    }
    // Mask the tail so popcounts on node columns stay meaningful.
    const std::size_t rem = n & 63;
    if (rem != 0 && n_words > 0) out[n_words - 1] &= (1ULL << rem) - 1;
  }
  return values;
}

std::vector<BitVector> Netlist::simulate_dataset_outputs(
    const BitMatrix& features) const {
  const std::vector<BitVector> values = simulate_dataset(features);
  std::vector<BitVector> out;
  out.reserve(outputs_.size());
  // Copy, not move: the same node may be marked as an output repeatedly.
  for (const auto id : outputs_) out.push_back(values[id]);
  return out;
}

std::vector<bool> Netlist::simulate_outputs(const BitVector& input_bits) const {
  const std::vector<bool> values = simulate(input_bits);
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto id : outputs_) out.push_back(values[id]);
  return out;
}

}  // namespace poetbin
