// Automatic VHDL generation — the paper's fifth contribution.
//
// Emits a synthesizable entity in which every netlist LUT becomes a
// constant std_logic_vector indexed by the concatenated fanin address
// (the canonical LUT inference idiom), plus a self-checking testbench that
// replays dataset vectors and asserts the expected class codes — the same
// FPGA-vs-PyTorch verification loop described in §4.2, with our netlist
// simulator supplying the golden outputs.
#pragma once

#include <string>

#include "hw/netlist_builder.h"
#include "util/bit_matrix.h"

namespace poetbin {

struct VhdlOptions {
  std::string entity_name = "poetbin_classifier";
  // Testbench: number of dataset rows to embed as check vectors.
  std::size_t testbench_vectors = 16;
};

// RTL for the classifier netlist: inputs x(F-1 downto 0), one q-bit code
// output per class.
std::string generate_vhdl(const PoetBinNetlist& model,
                          const VhdlOptions& options = {});

// RTL for a single RINC module (1-bit output).
std::string generate_rinc_vhdl(const RincNetlist& module,
                               const std::string& entity_name = "rinc_module");

// Self-checking testbench: instantiates the classifier entity and asserts
// the netlist-simulated codes for the first `options.testbench_vectors`
// rows of `features`.
std::string generate_testbench(const PoetBinNetlist& model,
                               const BitMatrix& features,
                               const VhdlOptions& options = {});

}  // namespace poetbin
