#include "hw/netlist_opt.h"

#include <algorithm>
#include <optional>

#include "util/check.h"

namespace poetbin {

bool lut_input_removable(const BitVector& table, std::size_t input) {
  const std::size_t stride = std::size_t{1} << input;
  POETBIN_CHECK(stride < table.size());
  for (std::size_t address = 0; address < table.size(); ++address) {
    if ((address & stride) != 0) continue;  // visit each pair once
    if (table.get(address) != table.get(address | stride)) return false;
  }
  return true;
}

namespace {

// Drops address bit `input` from a table where that bit is removable.
BitVector drop_input(const BitVector& table, std::size_t input) {
  const std::size_t stride = std::size_t{1} << input;
  BitVector reduced(table.size() / 2);
  std::size_t write = 0;
  for (std::size_t address = 0; address < table.size(); ++address) {
    if ((address & stride) != 0) continue;
    reduced.set(write++, table.get(address));
  }
  return reduced;
}

// Specialises a table to fanin `input` being stuck at `value`.
BitVector specialize_input(const BitVector& table, std::size_t input,
                           bool value) {
  const std::size_t stride = std::size_t{1} << input;
  BitVector reduced(table.size() / 2);
  std::size_t write = 0;
  for (std::size_t address = 0; address < table.size(); ++address) {
    if (((address & stride) != 0) != value) continue;
    reduced.set(write++, table.get(address));
  }
  return reduced;
}

// How each original node maps into the optimized netlist.
struct NodeMapping {
  enum class Kind { kNode, kConstant };
  Kind kind = Kind::kNode;
  std::size_t node_id = 0;  // id in the NEW netlist (kNode)
  bool value = false;       // kConstant
};

}  // namespace

Netlist optimize_netlist(const Netlist& input, NetlistOptStats* stats_out) {
  NetlistOptStats stats;
  stats.luts_before = input.n_luts();

  // Pass 1: mark nodes reachable from the outputs (dead-code elimination
  // works backwards; node ids are topological so a reverse sweep suffices).
  std::vector<bool> live(input.n_nodes(), false);
  for (const auto output : input.outputs()) live[output] = true;
  for (std::size_t id = input.n_nodes(); id-- > 0;) {
    if (!live[id]) continue;
    const NetlistNode& node = input.node(id);
    for (const auto fanin : node.fanins) live[fanin] = true;
  }

  Netlist optimized;
  std::vector<NodeMapping> mapping(input.n_nodes());

  // Primary inputs are always preserved (the hardware pinout is fixed).
  for (std::size_t id = 0; id < input.n_nodes(); ++id) {
    const NetlistNode& node = input.node(id);
    if (node.kind != NetlistNode::Kind::kInput) continue;
    mapping[id] = {NodeMapping::Kind::kNode,
                   optimized.add_input(node.input_index, node.name), false};
  }

  // Constant nodes are created lazily and shared.
  std::optional<std::size_t> constant_node[2];
  auto get_constant = [&](bool value) {
    auto& slot = constant_node[value ? 1 : 0];
    if (!slot.has_value()) {
      BitVector table(1);
      if (value) table.set(0, true);
      slot = optimized.add_lut({}, table, value ? "const1" : "const0");
    }
    return *slot;
  };

  for (std::size_t id = 0; id < input.n_nodes(); ++id) {
    const NetlistNode& node = input.node(id);
    if (node.kind != NetlistNode::Kind::kLut) continue;
    if (!live[id]) {
      ++stats.dead_removed;
      continue;
    }

    // Resolve fanins through the mapping, folding constant fanins into the
    // table and dropping removable inputs.
    BitVector table = node.table;
    std::vector<std::size_t> fanins;  // new-netlist ids
    fanins.reserve(node.fanins.size());
    // Track positions: rebuild iteratively. We fold one input at a time,
    // scanning from the highest index so earlier strides stay valid.
    std::vector<NodeMapping> resolved;
    resolved.reserve(node.fanins.size());
    for (const auto fanin : node.fanins) resolved.push_back(mapping[fanin]);

    // Fold constants (highest index first keeps lower strides intact).
    for (std::size_t j = resolved.size(); j-- > 0;) {
      if (resolved[j].kind != NodeMapping::Kind::kConstant) continue;
      table = specialize_input(table, j, resolved[j].value);
      resolved.erase(resolved.begin() + static_cast<long>(j));
      ++stats.constants_folded;
    }
    // Drop removable inputs.
    for (std::size_t j = resolved.size(); j-- > 0;) {
      if (table.size() <= 1) break;
      if (!lut_input_removable(table, j)) continue;
      table = drop_input(table, j);
      resolved.erase(resolved.begin() + static_cast<long>(j));
      ++stats.inputs_disconnected;
    }

    // Classify the residue.
    if (resolved.empty()) {
      POETBIN_CHECK(table.size() == 1);
      mapping[id] = {NodeMapping::Kind::kConstant, 0, table.get(0)};
      continue;
    }
    if (resolved.size() == 1 && table.size() == 2 && !table.get(0) &&
        table.get(1)) {
      // Identity LUT -> wire.
      mapping[id] = resolved[0];
      ++stats.wires_collapsed;
      continue;
    }

    for (const auto& fanin : resolved) {
      POETBIN_CHECK(fanin.kind == NodeMapping::Kind::kNode);
      fanins.push_back(fanin.node_id);
    }
    mapping[id] = {NodeMapping::Kind::kNode,
                   optimized.add_lut(std::move(fanins), std::move(table),
                                     node.name),
                   false};
  }

  // Outputs: constants and aliases materialise as needed.
  for (const auto output : input.outputs()) {
    const NodeMapping& mapped = mapping[output];
    if (mapped.kind == NodeMapping::Kind::kConstant) {
      optimized.mark_output(get_constant(mapped.value));
    } else {
      optimized.mark_output(mapped.node_id);
    }
  }

  stats.luts_after = optimized.n_luts();
  if (stats_out != nullptr) *stats_out = stats;
  return optimized;
}

bool verify_equivalent(const Netlist& a, const Netlist& b,
                       const BitMatrix& vectors) {
  POETBIN_CHECK(a.outputs().size() == b.outputs().size());
  for (std::size_t i = 0; i < vectors.rows(); ++i) {
    const BitVector row = vectors.row(i);
    if (a.simulate_outputs(row) != b.simulate_outputs(row)) return false;
  }
  return true;
}

}  // namespace poetbin
