#include "hw/power_model.h"

#include <cmath>

#include "hw/lut_decompose.h"
#include "util/check.h"

namespace poetbin {

// ---------------------------------------------------------------- Table 4

FpgaOpPower op_power_mult16() { return {0.001, 0.001, 0.000, 0.020, 0.036}; }
FpgaOpPower op_power_add16() { return {0.001, 0.000, 0.001, 0.024, 0.036}; }
FpgaOpPower op_power_mult32() { return {0.002, 0.001, 0.001, 0.035, 0.037}; }
FpgaOpPower op_power_add32() { return {0.001, 0.000, 0.002, 0.048, 0.037}; }
FpgaOpPower op_power_mult_float() { return {0.005, 0.006, 0.005, 0.046, 0.037}; }
FpgaOpPower op_power_add_float() { return {0.004, 0.003, 0.005, 0.034, 0.037}; }

// ---------------------------------------------------------------- Table 5

ClassifierArch arch_m1() { return {"MNIST", {512, 512, 10}}; }
ClassifierArch arch_c1() { return {"CIFAR-10", {512, 4096, 4096, 10}}; }
ClassifierArch arch_s1() { return {"SVHN", {512, 2048, 2048, 10}}; }

OpCounts count_classifier_ops(const ClassifierArch& arch) {
  POETBIN_CHECK(arch.dims.size() >= 2);
  OpCounts counts;
  for (std::size_t l = 0; l + 1 < arch.dims.size(); ++l) {
    counts.mults += arch.dims[l] * arch.dims[l + 1];
    counts.adds += arch.dims[l] * arch.dims[l + 1];
  }
  return counts;
}

std::size_t count_classifier_neurons(const ClassifierArch& arch) {
  std::size_t neurons = 0;
  for (std::size_t l = 1; l < arch.dims.size(); ++l) neurons += arch.dims[l];
  return neurons;
}

// ---------------------------------------------------------------- Table 6

const char* precision_name(Precision precision) {
  switch (precision) {
    case Precision::kFloat32: return "float32";
    case Precision::kInt32: return "int32";
    case Precision::kInt16: return "int16";
    case Precision::kBinary1: return "binary";
  }
  return "?";
}

double binary_neuron_power_watts(std::size_t fan_in) {
  // 26 mW measured for a 512-input binary neuron; XNOR array and adder tree
  // both scale linearly with fan-in.
  constexpr double kPowerAt512 = 0.026;
  return kPowerAt512 * static_cast<double>(fan_in) / 512.0;
}

double classifier_energy_joules(const ClassifierArch& arch, Precision precision,
                                double clock_period_s) {
  if (precision == Precision::kBinary1) {
    // Per-neuron bottom-up estimate, exactly the paper's §4.2 method.
    double power = 0.0;
    for (std::size_t l = 0; l + 1 < arch.dims.size(); ++l) {
      power += static_cast<double>(arch.dims[l + 1]) *
               binary_neuron_power_watts(arch.dims[l]);
    }
    return power * clock_period_s;
  }

  const OpCounts counts = count_classifier_ops(arch);
  FpgaOpPower mult;
  FpgaOpPower add;
  switch (precision) {
    case Precision::kFloat32:
      mult = op_power_mult_float();
      add = op_power_add_float();
      break;
    case Precision::kInt32:
      mult = op_power_mult32();
      add = op_power_add32();
      break;
    case Precision::kInt16:
      mult = op_power_mult16();
      add = op_power_add16();
      break;
    case Precision::kBinary1:
      POETBIN_CHECK(false);
  }
  const double power = static_cast<double>(counts.mults) * mult.compute() +
                       static_cast<double>(counts.adds) * add.compute();
  return power * clock_period_s;
}

// ------------------------------------------------------------- Tables 3/7

PoetBinHwSpec hw_spec_mnist() {
  // 80 modules x 32 DTs, P=8, RINC-2, 62.5 MHz; synthesis removed ~2.1% of
  // the decomposed LUTs (12160 raw -> 11899 reported).
  return {"MNIST", 8, 2, 32, 80, 10, 8, 62.5, 0.0215};
}

PoetBinHwSpec hw_spec_cifar10() {
  // 80 modules x 40 DTs, P=8, RINC-2, 62.5 MHz; ~36% removed (15040 -> 9650).
  return {"CIFAR-10", 8, 2, 40, 80, 10, 8, 62.5, 0.3584};
}

PoetBinHwSpec hw_spec_svhn() {
  // 60 modules x 36 DTs, P=6, RINC-2, 100 MHz; nothing removable (P=6 maps
  // 1:1 onto the hardware LUTs) -> the exact 2660 the paper hand-verifies.
  return {"SVHN", 6, 2, 36, 60, 10, 8, 100.0, 0.0};
}

std::size_t rinc_module_lut_units(const PoetBinHwSpec& spec) {
  std::size_t units = 0;
  std::size_t group = 1;  // P^l
  for (std::size_t l = 0; l <= spec.levels; ++l) {
    units += (spec.n_dts + group - 1) / group;  // ceil(n_dts / P^l)
    group *= spec.lut_inputs;
  }
  return units;
}

std::size_t poetbin_total_6luts(const PoetBinHwSpec& spec) {
  const std::size_t per_module =
      rinc_module_lut_units(spec) * six_lut_cost(spec.lut_inputs);
  const std::size_t output_luts = spec.n_classes *
                                  static_cast<std::size_t>(spec.qbits) *
                                  six_lut_cost(spec.lut_inputs);
  const double raw =
      static_cast<double>(per_module * spec.n_modules + output_luts);
  return static_cast<std::size_t>(std::llround(raw * (1.0 - spec.prune_fraction)));
}

std::size_t poetbin_critical_path_levels(const PoetBinHwSpec& spec) {
  // L+1 LUT stages through the RINC tree plus the output code LUT, each
  // costing 1 level at P<=6 and 2 levels after 8->6 decomposition.
  return (spec.levels + 2) * six_lut_levels(spec.lut_inputs);
}

double poetbin_latency_ns(const PoetBinHwSpec& spec) {
  // Affine fit to the paper's measurements: MNIST (8 levels, 9.11 ns) and
  // SVHN (4 levels, 5.85 ns); predicts CIFAR-10 at 9.11 ns vs 9.48 measured.
  constexpr double kRoutingOverheadNs = 2.59;
  constexpr double kPerLevelNs = 0.815;
  return kRoutingOverheadNs +
         kPerLevelNs * static_cast<double>(poetbin_critical_path_levels(spec));
}

double poetbin_dynamic_power_watts(const PoetBinHwSpec& spec) {
  // Per-LUT switching energy calibrated on the paper's MNIST measurement:
  // 0.468 W x 16 ns / 11899 LUTs = 629 fJ per LUT per cycle.
  constexpr double kLutEnergyPerCycle = 629e-15;
  const double period_s = 1e-6 / spec.clock_mhz;
  return static_cast<double>(poetbin_total_6luts(spec)) * kLutEnergyPerCycle /
         period_s;
}

double poetbin_static_power_watts() { return 0.043; }

double poetbin_total_power_watts(const PoetBinHwSpec& spec) {
  return poetbin_dynamic_power_watts(spec) + poetbin_static_power_watts();
}

double poetbin_energy_joules(const PoetBinHwSpec& spec) {
  const double period_s = 1e-6 / spec.clock_mhz;
  return poetbin_total_power_watts(spec) * period_s;
}

}  // namespace poetbin
