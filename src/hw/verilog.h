// Verilog-2001 emitter — companion to the paper's VHDL generator for flows
// that prefer Verilog (e.g. Yosys/nextpnr). Same netlist-in, RTL-out
// contract as hw/vhdl.h: every LUT becomes a localparam truth table indexed
// by the concatenated fanin address.
#pragma once

#include <string>

#include "hw/netlist_builder.h"

namespace poetbin {

struct VerilogOptions {
  std::string module_name = "poetbin_classifier";
};

std::string generate_verilog(const PoetBinNetlist& model,
                             const VerilogOptions& options = {});

std::string generate_rinc_verilog(const RincNetlist& module,
                                  const std::string& module_name = "rinc_module");

}  // namespace poetbin
