// Memory-block implementation model (§2.1.1).
//
// The paper notes a RINC-0 table can live in a memory block instead of a
// LUT, but a monolithic table for an N-input function needs 2^N bits — "a
// 30-input LUT already requires one gigabit". These helpers quantify that
// contrast: exponential monolithic cost vs the polynomial cost of the RINC
// decomposition, plus a BRAM-count model for mapping RINC tables onto
// fixed-size block RAMs (Spartan-6 RAMB16: 18 kbit).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rinc.h"

namespace poetbin {

// Bits needed for a single monolithic truth table over n_inputs variables.
// Saturates at uint64 max for n_inputs >= 64.
std::uint64_t monolithic_table_bits(std::size_t n_inputs);

// Total table bits of a RINC-L: one 2^P-bit table per LUT (leaf DTs and MAT
// modules alike), using the closed-form LUT count for a `total_dts` budget.
std::uint64_t rinc_table_bits(std::size_t lut_inputs, std::size_t levels,
                              std::size_t total_dts);
std::uint64_t rinc_table_bits(const RincModule& module);

// Spartan-6 block RAM capacity (RAMB16BWER, 18 kbit w/o parity = 16 kbit
// usable as a pure table).
constexpr std::uint64_t kBlockRamBits = 16 * 1024;

// BRAMs needed to host all of a module's tables, packing greedily.
std::uint64_t block_rams_required(std::uint64_t table_bits);

// Effective input capacity of a RINC-L (P^(L+1)).
std::uint64_t rinc_input_capacity(std::size_t lut_inputs, std::size_t levels);

}  // namespace poetbin
