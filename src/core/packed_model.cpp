#include "core/packed_model.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "boost/mat.h"
#include "dt/lut.h"
#include "util/bitvector.h"
#include "util/word_storage.h"

namespace poetbin {

namespace {

constexpr char kMagic[8] = {'P', 'o', 'E', 'T', 'B', 'i', 'N', 'P'};
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kNodeRecordBytes = 32;
constexpr std::size_t kPayloadAlignment = 64;
// Splat tables are additionally aligned to 8 words (64 bytes) inside the
// splat section so every mapped table starts on a cache line.
constexpr std::size_t kSplatAlignWords = 8;

// Section ids. The set is closed per version; unknown ids are rejected so
// a file cannot smuggle payload the checksum "covers" but no one reads.
// Version 1 files carry sections 1..11; version 2 adds kSecConvConfig.
enum SectionId : std::uint32_t {
  kSecConfig = 1,        // 8 u64 scalars (see pack_config)
  kSecQuantizer = 2,     // u64 bits + f32 min + f32 max bit patterns
  kSecNodes = 3,         // pre-order 32-byte node records
  kSecLeafInputs = 4,    // u64 feature indices, all leaves concatenated
  kSecMatWeights = 5,    // f64 MAT weights, all internal nodes concatenated
  kSecSplat = 6,         // u64 splat words, every LUT table (leaf + MAT)
  kSecOutputWiring = 7,  // u64 module indices, nc x P
  kSecOutputWeights = 8, // f32 bit patterns, nc x (P weights + bias)
  kSecOutputCodes = 9,   // u32 codes, nc x 2^P
  kSecCodePlanes = 10,   // u64 plane words, nc x n_planes x 2^P
  kSecTables = 11,       // compact truth-table bits, every node, pre-order
  kSecConvConfig = 12,   // 8 u64 conv scalars (v2); zero length = dense
};
constexpr std::uint32_t kSectionCount = 12;
constexpr std::uint32_t kSectionCountV1 = 11;

struct NodeRecord {
  std::uint32_t kind = 0;   // 0 = leaf, 1 = internal (MAT)
  std::uint32_t fanin = 0;  // leaf arity / MAT child count
  std::uint64_t splat_offset = 0;  // word offset of the table in kSecSplat
  std::uint64_t aux_offset = 0;    // leaf: word offset in kSecLeafInputs;
                                   // internal: element offset in kSecMatWeights
  std::uint64_t reserved = 0;
};

// --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------------------

const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t* table = crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- little-endian scalar plumbing ------------------------------------------

// The format is little-endian by declaration; on the (currently untargeted)
// big-endian host we reject files instead of byte-swapping.
bool host_is_little_endian() {
  return std::endian::native == std::endian::little;
}

template <typename T>
T load_scalar(const std::uint8_t* at) {
  T value;
  std::memcpy(&value, at, sizeof(T));
  return value;
}

template <typename T>
void append_scalar(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

void append_f32_bits(std::vector<std::uint8_t>& out, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  append_scalar(out, bits);
}

void append_f64_bits(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  append_scalar(out, bits);
}

float f32_from_bits(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

double f64_from_bits(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// --- writer -----------------------------------------------------------------

// Per-section byte buffers accumulated by the model walk, then laid out at
// aligned offsets behind the header + section table.
struct SectionBuffers {
  std::vector<std::uint8_t> payload[kSectionCount];
  std::vector<std::uint8_t>& of(SectionId id) { return payload[id - 1]; }
};

void append_splat_table(SectionBuffers& sections, const Lut& lut,
                        std::uint64_t* splat_offset_words) {
  std::vector<std::uint8_t>& splat = sections.of(kSecSplat);
  while ((splat.size() / sizeof(std::uint64_t)) % kSplatAlignWords != 0) {
    append_scalar<std::uint64_t>(splat, 0);
  }
  *splat_offset_words = splat.size() / sizeof(std::uint64_t);
  for (const std::uint64_t word : lut.splat_words()) {
    append_scalar(splat, word);
  }
  // The same table again, one BIT per entry, in kSecTables. The loader
  // builds the in-memory Lut from these few compact words so a fast load
  // never has to page the (64x larger) splat section in — the splats stay
  // cold until the first word-parallel eval faults them.
  std::vector<std::uint8_t>& tables = sections.of(kSecTables);
  const BitVector& table = lut.table();
  for (std::size_t w = 0; w < table.word_count(); ++w) {
    append_scalar(tables, table.words()[w]);
  }
}

void append_node_record(SectionBuffers& sections, const NodeRecord& record) {
  std::vector<std::uint8_t>& nodes = sections.of(kSecNodes);
  append_scalar(nodes, record.kind);
  append_scalar(nodes, record.fanin);
  append_scalar(nodes, record.splat_offset);
  append_scalar(nodes, record.aux_offset);
  append_scalar(nodes, record.reserved);
}

void pack_module(const RincModule& module, SectionBuffers& sections) {
  NodeRecord record;
  if (module.is_leaf()) {
    const Lut& lut = module.leaf_lut();
    record.kind = 0;
    record.fanin = static_cast<std::uint32_t>(lut.arity());
    record.aux_offset =
        sections.of(kSecLeafInputs).size() / sizeof(std::uint64_t);
    for (const std::size_t input : lut.inputs()) {
      append_scalar(sections.of(kSecLeafInputs),
                    static_cast<std::uint64_t>(input));
    }
    append_splat_table(sections, lut, &record.splat_offset);
    append_node_record(sections, record);
    return;
  }
  record.kind = 1;
  record.fanin = static_cast<std::uint32_t>(module.children().size());
  record.aux_offset =
      sections.of(kSecMatWeights).size() / sizeof(std::uint64_t);
  for (const double weight : module.mat().weights()) {
    append_f64_bits(sections.of(kSecMatWeights), weight);
  }
  append_splat_table(sections, module.mat_lut(), &record.splat_offset);
  append_node_record(sections, record);
  for (const RincModule& child : module.children()) {
    pack_module(child, sections);
  }
}

std::size_t count_nodes(const RincModule& module) {
  std::size_t total = 1;
  for (const RincModule& child : module.children()) {
    total += count_nodes(child);
  }
  return total;
}

// --- loader -----------------------------------------------------------------

// Load-failure carrier, converted to the IoResult error arm at the API
// boundary (same pattern as the text parser).
struct PackFailure {
  ModelIoError error;
};

[[noreturn]] void fail(ModelIoError::Kind kind, std::string message) {
  throw PackFailure{{kind, std::move(message)}};
}

void expect(bool condition, const char* message) {
  if (!condition) fail(ModelIoError::Kind::kCorruptSection, message);
}

// RAII read-only mapping of a whole file. Owned by a shared_ptr that the
// loaded model (and every copy of it) holds as its storage keepalive.
class PackedMapping {
 public:
  PackedMapping(const PackedMapping&) = delete;
  PackedMapping& operator=(const PackedMapping&) = delete;

  ~PackedMapping() {
    if (addr_ != MAP_FAILED) munmap(addr_, size_);
  }

  // Throws PackFailure (kFileNotFound / kCorruptSection) on failure.
  static std::shared_ptr<const PackedMapping> open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      fail(ModelIoError::Kind::kFileNotFound,
           "cannot open '" + path + "' for reading");
    }
    struct stat st = {};
    if (fstat(fd, &st) != 0 || st.st_size < 0) {
      close(fd);
      fail(ModelIoError::Kind::kFileNotFound, "cannot stat '" + path + "'");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size < kHeaderBytes) {
      close(fd);
      fail(ModelIoError::Kind::kCorruptSection,
           "'" + path + "' is too small to hold a packed-model header");
    }
    void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) {
      fail(ModelIoError::Kind::kCorruptSection, "cannot map '" + path + "'");
    }
    return std::shared_ptr<const PackedMapping>(new PackedMapping(addr, size));
  }

  const std::uint8_t* bytes() const {
    return static_cast<const std::uint8_t*>(addr_);
  }
  std::size_t size() const { return size_; }

 private:
  PackedMapping(void* addr, std::size_t size) : addr_(addr), size_(size) {}

  void* addr_ = MAP_FAILED;
  std::size_t size_ = 0;
};

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

// A validated window into one section: bounds-checked typed reads. Offsets
// are element offsets (of the accessor's type), not bytes.
struct SectionView {
  const std::uint8_t* base = nullptr;
  std::uint64_t length = 0;
  const char* name = "";

  std::uint64_t count_of(std::size_t element_bytes) const {
    return length / element_bytes;
  }
  void require_range(std::uint64_t first, std::uint64_t count,
                     std::size_t element_bytes) const {
    const std::uint64_t total = count_of(element_bytes);
    if (first > total || count > total - first) {
      fail(ModelIoError::Kind::kCorruptSection,
           std::string("reference beyond the end of the ") + name +
               " section");
    }
  }
  std::uint64_t u64_at(std::uint64_t index) const {
    require_range(index, 1, sizeof(std::uint64_t));
    return load_scalar<std::uint64_t>(base + index * sizeof(std::uint64_t));
  }
  std::uint32_t u32_at(std::uint64_t index) const {
    require_range(index, 1, sizeof(std::uint32_t));
    return load_scalar<std::uint32_t>(base + index * sizeof(std::uint32_t));
  }
  // Pointer to a validated word range (for mapping-backed WordStorage views;
  // the section offset is 64-byte aligned so word access is aligned).
  const std::uint64_t* words_at(std::uint64_t first,
                                std::uint64_t count) const {
    require_range(first, count, sizeof(std::uint64_t));
    return reinterpret_cast<const std::uint64_t*>(
        base + first * sizeof(std::uint64_t));
  }
};

struct PackedFile {
  std::shared_ptr<const PackedMapping> mapping;
  SectionView sections[kSectionCount];

  const SectionView& view(SectionId id) const { return sections[id - 1]; }
};

PackedFile parse_container(const std::string& path, PackedVerify verify) {
  if (!host_is_little_endian()) {
    fail(ModelIoError::Kind::kVersionMismatch,
         "packed models are little-endian; this host is not");
  }
  PackedFile file;
  file.mapping = PackedMapping::open(path);
  const std::uint8_t* bytes = file.mapping->bytes();
  const std::size_t size = file.mapping->size();

  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    fail(ModelIoError::Kind::kVersionMismatch,
         "'" + path + "' is not a packed poetbin model (bad magic)");
  }
  const auto version = load_scalar<std::uint32_t>(bytes + 8);
  if (version != 1 && version != kFormatVersion) {
    fail(ModelIoError::Kind::kVersionMismatch,
         "unsupported packed-model version " + std::to_string(version));
  }
  // Version 1 predates the conv-config section; its files carry 11
  // sections and parse as dense models (the conv view stays empty).
  const std::uint32_t expected_sections =
      version == 1 ? kSectionCountV1 : kSectionCount;
  expect(load_scalar<std::uint32_t>(bytes + 12) == kHeaderBytes,
         "unexpected header size");
  const auto section_count = load_scalar<std::uint32_t>(bytes + 16);
  const auto stored_crc = load_scalar<std::uint32_t>(bytes + 20);
  const auto stored_size = load_scalar<std::uint64_t>(bytes + 24);
  expect(stored_size == size, "header file size does not match the file");
  expect(section_count == expected_sections, "unexpected section count");
  const std::size_t table_end =
      kHeaderBytes + std::size_t{section_count} * kSectionEntryBytes;
  expect(table_end <= size, "section table runs past the end of the file");

  // The CRC pass reads the whole file — the single most expensive part of a
  // load — so kTrustChecksum skips it (serving loads trust the producer's
  // checksum; pack/unpack and the tests verify it).
  if (verify == PackedVerify::kFull) {
    const std::uint32_t actual_crc =
        crc32(bytes + kHeaderBytes, size - kHeaderBytes);
    if (actual_crc != stored_crc) {
      fail(ModelIoError::Kind::kChecksumMismatch,
           "packed-model checksum mismatch in '" + path + "'");
    }
  }

  bool present[kSectionCount] = {};
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry = bytes + kHeaderBytes + i * kSectionEntryBytes;
    const auto id = load_scalar<std::uint32_t>(entry);
    const auto offset = load_scalar<std::uint64_t>(entry + 8);
    const auto length = load_scalar<std::uint64_t>(entry + 16);
    expect(id >= 1 && id <= expected_sections, "unknown section id");
    expect(!present[id - 1], "duplicate section id");
    present[id - 1] = true;
    expect(offset % kPayloadAlignment == 0, "misaligned section offset");
    expect(offset >= table_end, "section overlaps the header");
    expect(offset <= size && length <= size - offset,
           "section runs past the end of the file");
    file.sections[id - 1] = SectionView{bytes + offset, length, ""};
  }
  static const char* kSectionNames[kSectionCount] = {
      "config",        "quantizer",      "nodes",       "leaf-inputs",
      "mat-weights",   "splat",          "output-wiring",
      "output-weights", "output-codes",  "code-planes", "tables",
      "conv-config"};
  for (std::uint32_t id = 1; id <= expected_sections; ++id) {
    expect(present[id - 1], "missing section");
  }
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    file.sections[id - 1].name = kSectionNames[id - 1];
  }
  return file;
}

// Pre-order node reader mirroring pack_module.
struct NodeReader {
  const SectionView& nodes;
  const SectionView& leaf_inputs;
  const SectionView& mat_weights;
  const SectionView& splat;
  const SectionView& tables;
  PackedVerify verify;
  std::uint64_t cursor = 0;
  std::uint64_t n_records = 0;
  std::uint64_t table_cursor = 0;  // word offset into kSecTables, pre-order

  NodeRecord next_record() {
    expect(cursor < n_records, "node tree walks past the node records");
    const std::uint8_t* at = nodes.base + cursor * kNodeRecordBytes;
    ++cursor;
    NodeRecord record;
    record.kind = load_scalar<std::uint32_t>(at);
    record.fanin = load_scalar<std::uint32_t>(at + 4);
    record.splat_offset = load_scalar<std::uint64_t>(at + 8);
    record.aux_offset = load_scalar<std::uint64_t>(at + 16);
    return record;
  }

  // Builds one node's truth table from the compact kSecTables bits and a
  // WordStorage view over its (bounds-checked, UNREAD) splat words. Keeping
  // the fast load off the splat section is the point of storing the table
  // twice: this touches a few words where the splats span pages. kFull
  // additionally reads the splat words and checks them against the table —
  // the purity the word kernels silently rely on.
  std::pair<WordStorage, BitVector> read_table(std::uint64_t offset,
                                               std::size_t arity) {
    const std::uint64_t n_entries = std::uint64_t{1} << arity;
    const std::uint64_t* splat_words = splat.words_at(offset, n_entries);
    const std::uint64_t n_words = (n_entries + 63) / 64;
    const std::uint64_t* table_words = tables.words_at(table_cursor, n_words);
    table_cursor += n_words;
    BitVector table(static_cast<std::size_t>(n_entries));
    std::memcpy(table.words(), table_words,
                static_cast<std::size_t>(n_words) * sizeof(std::uint64_t));
    expect(table.words()[table.word_count() - 1] ==
               (table.words()[table.word_count() - 1] &
                BitVector::tail_word_mask(table.size())),
           "table word has bits past the table size");
    if (verify == PackedVerify::kFull) {
      for (std::uint64_t a = 0; a < n_entries; ++a) {
        const std::uint64_t want =
            table.get(static_cast<std::size_t>(a)) ? ~std::uint64_t{0} : 0;
        expect(splat_words[a] == want,
               "splat words do not match the packed table bits");
      }
    }
    return {WordStorage(splat_words, static_cast<std::size_t>(n_entries)),
            std::move(table)};
  }

  RincModule load_node() {
    const NodeRecord record = next_record();
    if (record.kind == 0) {
      expect(record.fanin >= 1 && record.fanin <= 16, "bad leaf arity");
      const std::size_t arity = record.fanin;
      leaf_inputs.require_range(record.aux_offset, arity,
                                sizeof(std::uint64_t));
      std::vector<std::size_t> inputs(arity);
      for (std::size_t i = 0; i < arity; ++i) {
        const std::uint64_t input = leaf_inputs.u64_at(record.aux_offset + i);
        expect(input <= (std::uint64_t{1} << 32),
               "leaf input feature index implausibly large");
        inputs[i] = static_cast<std::size_t>(input);
      }
      auto [view, table] = read_table(record.splat_offset, arity);
      return RincModule::make_leaf(
          Lut(std::move(inputs), std::move(table), std::move(view)));
    }
    expect(record.kind == 1, "bad node kind");
    expect(record.fanin >= 1 && record.fanin <= 20, "bad node fanin");
    const std::size_t fanin = record.fanin;
    mat_weights.require_range(record.aux_offset, fanin,
                              sizeof(std::uint64_t));
    std::vector<double> weights(fanin);
    for (std::size_t i = 0; i < fanin; ++i) {
      weights[i] = f64_from_bits(mat_weights.u64_at(record.aux_offset + i));
    }
    auto [view, table] = read_table(record.splat_offset, fanin);
    std::vector<RincModule> children;
    children.reserve(fanin);
    for (std::size_t c = 0; c < fanin; ++c) {
      children.push_back(load_node());
    }
    for (const RincModule& child : children) {
      expect(child.level() == children.front().level(),
             "node children at mixed RINC levels");
    }
    MatModule mat(std::move(weights));
    // The stored MAT table must be the table the weights imply — eval reads
    // the mapped table while retrain/export read the weights, and the two
    // must never diverge. Re-deriving every table is 2^fanin x fanin float
    // work per internal node, so it rides the kFull depth.
    if (verify == PackedVerify::kFull) {
      const BitVector expected = mat.to_table();
      expect(table == expected, "MAT table does not match the MAT weights");
    }
    Lut mat_lut(std::vector<std::size_t>(fanin, 0), std::move(table),
                std::move(view));
    return RincModule::make_internal(std::move(children), std::move(mat),
                                     std::move(mat_lut));
  }
};

// A parsed packed file: the classifier plus, for conv files, the conv
// front end (which holds the mapping keepalive its LUT splats view).
struct ParsedPacked {
  PoetBin model;
  std::shared_ptr<const RincConvLayer> conv;  // null = dense model
};

ParsedPacked parse_packed(const std::string& path, PackedVerify verify) {
  PackedFile file = parse_container(path, verify);

  // config: 8 u64 scalars.
  const SectionView& config_sec = file.view(kSecConfig);
  expect(config_sec.length == 8 * sizeof(std::uint64_t),
         "config section has the wrong size");
  PoetBinConfig config;
  config.rinc.lut_inputs = static_cast<std::size_t>(config_sec.u64_at(0));
  config.rinc.levels = static_cast<std::size_t>(config_sec.u64_at(1));
  config.rinc.total_dts = static_cast<std::size_t>(config_sec.u64_at(2));
  config.n_classes = static_cast<std::size_t>(config_sec.u64_at(3));
  const std::uint64_t quant_bits = config_sec.u64_at(4);
  const std::uint64_t n_modules = config_sec.u64_at(5);
  const std::uint64_t n_nodes = config_sec.u64_at(6);
  const std::uint64_t n_planes = config_sec.u64_at(7);
  expect(config.rinc.lut_inputs >= 1 && config.rinc.lut_inputs <= 16,
         "config P out of range");
  expect(config.n_classes >= 1 && config.n_classes <= (std::size_t{1} << 20),
         "config class count out of range");
  expect(quant_bits >= 1 && quant_bits <= 24,
         "config quantizer bits out of range");
  config.output.quant_bits = static_cast<int>(quant_bits);
  expect(n_modules == config.n_classes * config.rinc.lut_inputs,
         "config module count does not match nc x P");
  expect(n_nodes >= n_modules, "config node count below the module count");
  expect(n_planes >= 1 && n_planes <= 32, "config plane count out of range");

  // quantizer: u64 bits + two f32 bit patterns.
  const SectionView& quant_sec = file.view(kSecQuantizer);
  expect(quant_sec.length == sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t),
         "quantizer section has the wrong size");
  QuantizerParams quantizer;
  expect(quant_sec.u64_at(0) == quant_bits, "quantizer/config bit mismatch");
  quantizer.bits = static_cast<int>(quant_bits);
  quantizer.min_value = f32_from_bits(quant_sec.u32_at(2));
  quantizer.max_value = f32_from_bits(quant_sec.u32_at(3));

  // conv config (version 2): 8 u64 scalars, or a zero-length section for a
  // dense model (version-1 files always land here with an empty view).
  // Every geometry contract RincConvLayer::from_parts would abort on is
  // replicated as a typed error first — corrupt bytes must never abort a
  // loading process.
  const SectionView& conv_sec = file.view(kSecConvConfig);
  const bool has_conv = conv_sec.length != 0;
  BinShape3 conv_in_shape;
  RincConvConfig conv_config;
  std::uint64_t n_conv_nodes = 0;
  if (has_conv) {
    expect(conv_sec.length == 8 * sizeof(std::uint64_t),
           "conv-config section has the wrong size");
    conv_in_shape.channels = static_cast<std::size_t>(conv_sec.u64_at(0));
    conv_in_shape.height = static_cast<std::size_t>(conv_sec.u64_at(1));
    conv_in_shape.width = static_cast<std::size_t>(conv_sec.u64_at(2));
    conv_config.out_channels = static_cast<std::size_t>(conv_sec.u64_at(3));
    conv_config.kernel = static_cast<std::size_t>(conv_sec.u64_at(4));
    conv_config.stride = static_cast<std::size_t>(conv_sec.u64_at(5));
    conv_config.padding = static_cast<std::size_t>(conv_sec.u64_at(6));
    n_conv_nodes = conv_sec.u64_at(7);
    const std::size_t dim_cap = std::size_t{1} << 16;
    expect(conv_in_shape.channels >= 1 && conv_in_shape.channels <= dim_cap &&
               conv_in_shape.height >= 1 && conv_in_shape.height <= dim_cap &&
               conv_in_shape.width >= 1 && conv_in_shape.width <= dim_cap,
           "conv input shape out of range");
    expect(conv_config.out_channels >= 1 &&
               conv_config.out_channels <= dim_cap,
           "conv output channel count out of range");
    expect(conv_config.kernel >= 1 && conv_config.kernel <= dim_cap,
           "conv kernel out of range");
    expect(conv_config.stride >= 1 && conv_config.stride <= dim_cap,
           "conv stride out of range");
    expect(conv_config.padding < conv_config.kernel,
           "conv padding must be smaller than the kernel");
    expect(conv_in_shape.height + 2 * conv_config.padding >=
                   conv_config.kernel &&
               conv_in_shape.width + 2 * conv_config.padding >=
                   conv_config.kernel,
           "conv kernel does not fit the padded frame");
    expect(n_conv_nodes >= conv_config.out_channels,
           "conv node count below the channel count");
  }

  // Whole-section splat purity scan (kFull only — it pages the biggest
  // section in): every word the kernels might read is a pure splat (0 or
  // ~0), padding included. A fast load trusts the checksummed producer and
  // leaves the splats untouched until the first word-parallel eval.
  const SectionView& splat_sec = file.view(kSecSplat);
  expect(splat_sec.length % sizeof(std::uint64_t) == 0,
         "splat section is not word-sized");
  if (verify == PackedVerify::kFull) {
    const std::uint64_t n_words = splat_sec.count_of(sizeof(std::uint64_t));
    const std::uint64_t* words = splat_sec.words_at(0, n_words);
    for (std::uint64_t w = 0; w < n_words; ++w) {
      expect(words[w] == 0 || words[w] == ~std::uint64_t{0},
             "splat word is not 0 or ~0");
    }
  }

  // Node trees, pre-order: one per classifier module, then (for conv
  // files) one per conv output channel, all in the same shared sections.
  // The config node count covers the classifier trees only.
  const SectionView& nodes_sec = file.view(kSecNodes);
  expect(nodes_sec.length == (n_nodes + n_conv_nodes) * kNodeRecordBytes,
         "nodes section size does not match the config node counts");
  const SectionView& tables_sec = file.view(kSecTables);
  expect(tables_sec.length % sizeof(std::uint64_t) == 0,
         "tables section is not word-sized");
  NodeReader reader{nodes_sec,  file.view(kSecLeafInputs),
                    file.view(kSecMatWeights), splat_sec,
                    tables_sec, verify,        0,
                    n_nodes + n_conv_nodes,    0};
  std::vector<RincModule> modules;
  modules.reserve(static_cast<std::size_t>(n_modules));
  for (std::uint64_t m = 0; m < n_modules; ++m) {
    modules.push_back(reader.load_node());
  }
  expect(reader.cursor == n_nodes,
         "classifier trees do not cover the config node count");
  std::vector<RincModule> conv_modules;
  if (has_conv) {
    const std::size_t patch_bits =
        conv_in_shape.channels * conv_config.kernel * conv_config.kernel;
    conv_modules.reserve(conv_config.out_channels);
    for (std::size_t channel = 0; channel < conv_config.out_channels;
         ++channel) {
      conv_modules.push_back(reader.load_node());
      for (const std::size_t feature :
           conv_modules.back().distinct_features()) {
        expect(feature < patch_bits,
               "conv channel module references a feature beyond the patch "
               "width");
      }
    }
  }
  expect(reader.cursor == n_nodes + n_conv_nodes,
         "node records left over after the module trees");
  expect(reader.table_cursor == tables_sec.count_of(sizeof(std::uint64_t)),
         "table words left over after the module trees");

  // Output layer.
  const std::size_t p = config.rinc.lut_inputs;
  const std::size_t n_combos = std::size_t{1} << p;
  const std::uint32_t levels = quantizer.levels();
  const SectionView& wiring_sec = file.view(kSecOutputWiring);
  const SectionView& weights_sec = file.view(kSecOutputWeights);
  const SectionView& codes_sec = file.view(kSecOutputCodes);
  expect(wiring_sec.length == config.n_classes * p * sizeof(std::uint64_t),
         "output wiring section has the wrong size");
  expect(weights_sec.length ==
             config.n_classes * (p + 1) * sizeof(std::uint32_t),
         "output weights section has the wrong size");
  expect(codes_sec.length == config.n_classes * n_combos * sizeof(std::uint32_t),
         "output codes section has the wrong size");

  std::vector<SparseOutputNeuron> output(config.n_classes);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    SparseOutputNeuron& neuron = output[c];
    neuron.input_modules.resize(p);
    neuron.weights.resize(p);
    neuron.codes.resize(n_combos);
    for (std::size_t i = 0; i < p; ++i) {
      const std::uint64_t module_index = wiring_sec.u64_at(c * p + i);
      expect(module_index < n_modules,
             "output wiring references a missing module");
      neuron.input_modules[i] = static_cast<std::size_t>(module_index);
      neuron.weights[i] = f32_from_bits(weights_sec.u32_at(c * (p + 1) + i));
    }
    neuron.bias = f32_from_bits(weights_sec.u32_at(c * (p + 1) + p));
    for (std::size_t a = 0; a < n_combos; ++a) {
      const std::uint32_t code = codes_sec.u32_at(c * n_combos + a);
      expect(code < levels, "output code beyond quantizer range");
      expect((static_cast<std::uint64_t>(code) >> n_planes) == 0,
             "output code has bits above the stored plane count");
      neuron.codes[a] = code;
    }
  }

  // Code bit-planes: must equal the splat of the stored codes bit for bit —
  // the fused argmax trusts them without looking at the codes again.
  const SectionView& planes_sec = file.view(kSecCodePlanes);
  const std::uint64_t n_plane_words =
      std::uint64_t{config.n_classes} * n_planes * n_combos;
  expect(planes_sec.length == n_plane_words * sizeof(std::uint64_t),
         "code-planes section has the wrong size");
  const std::uint64_t* plane_words = planes_sec.words_at(0, n_plane_words);
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    for (std::uint64_t q = 0; q < n_planes; ++q) {
      const std::uint64_t* plane =
          plane_words + (c * n_planes + q) * n_combos;
      for (std::size_t a = 0; a < n_combos; ++a) {
        const std::uint64_t want =
            (output[c].codes[a] >> q) & 1u ? ~std::uint64_t{0} : 0;
        expect(plane[a] == want, "code plane does not match the codes");
      }
    }
  }

  ParsedPacked parsed{
      PoetBin::from_parts(
          std::move(config), std::move(modules), std::move(output), quantizer,
          WordStorage(plane_words, static_cast<std::size_t>(n_plane_words)),
          static_cast<std::size_t>(n_planes), file.mapping),
      nullptr};
  if (has_conv) {
    // Every from_parts contract was expect()-checked above, so this cannot
    // abort on file contents. The layer keeps the mapping alive for the
    // conv LUT splats it views.
    parsed.conv = std::make_shared<const RincConvLayer>(
        RincConvLayer::from_parts(conv_in_shape, std::move(conv_config),
                                  std::move(conv_modules), file.mapping));
    expect(parsed.model.n_features() <= parsed.conv->output_shape().flat(),
           "classifier wired beyond the conv output width");
  }
  return parsed;
}

// Shared writer body: the classifier sections, plus (when `conv` is
// non-null) the conv-config section and the conv channel trees appended to
// the shared node/splat/table sections after the classifier trees.
IoStatus write_packed_common(const PoetBin& model, const RincConvLayer* conv,
                             const std::string& path) {
  if (!host_is_little_endian()) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "packed models are little-endian; this host is not"};
  }
  if (model.n_classes() == 0 ||
      model.n_modules() != model.n_classes() * model.lut_inputs()) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "refusing to pack an empty or inconsistent model"};
  }

  SectionBuffers sections;

  // config
  {
    std::vector<std::uint8_t>& config = sections.of(kSecConfig);
    std::uint64_t n_nodes = 0;
    for (const RincModule& module : model.modules()) {
      n_nodes += count_nodes(module);
    }
    const RincModule& first = model.modules().front();
    append_scalar<std::uint64_t>(config, model.lut_inputs());
    append_scalar<std::uint64_t>(config, first.level());
    append_scalar<std::uint64_t>(config, first.leaf_dt_count());
    append_scalar<std::uint64_t>(config, model.n_classes());
    append_scalar<std::uint64_t>(config,
                                 static_cast<std::uint64_t>(model.quant_bits()));
    append_scalar<std::uint64_t>(config, model.n_modules());
    append_scalar<std::uint64_t>(config, n_nodes);
    append_scalar<std::uint64_t>(config, model.code_plane_count());
  }

  // quantizer
  {
    const QuantizerParams& q = model.quantizer();
    std::vector<std::uint8_t>& quant = sections.of(kSecQuantizer);
    append_scalar<std::uint64_t>(quant, static_cast<std::uint64_t>(q.bits));
    append_f32_bits(quant, q.min_value);
    append_f32_bits(quant, q.max_value);
  }

  // nodes + leaf inputs + MAT weights + splat tables
  for (const RincModule& module : model.modules()) {
    pack_module(module, sections);
  }

  // conv config + channel trees (after the classifier trees, same
  // sections, same dual splat/compact table storage)
  if (conv != nullptr) {
    std::uint64_t n_conv_nodes = 0;
    for (const RincModule& module : conv->channel_modules()) {
      n_conv_nodes += count_nodes(module);
    }
    const BinShape3 shape = conv->input_shape();
    const RincConvConfig& cc = conv->config();
    std::vector<std::uint8_t>& conv_sec = sections.of(kSecConvConfig);
    append_scalar<std::uint64_t>(conv_sec, shape.channels);
    append_scalar<std::uint64_t>(conv_sec, shape.height);
    append_scalar<std::uint64_t>(conv_sec, shape.width);
    append_scalar<std::uint64_t>(conv_sec, cc.out_channels);
    append_scalar<std::uint64_t>(conv_sec, cc.kernel);
    append_scalar<std::uint64_t>(conv_sec, cc.stride);
    append_scalar<std::uint64_t>(conv_sec, cc.padding);
    append_scalar<std::uint64_t>(conv_sec, n_conv_nodes);
    for (const RincModule& module : conv->channel_modules()) {
      pack_module(module, sections);
    }
  }

  // output layer + code planes
  {
    const std::size_t p = model.lut_inputs();
    const std::size_t n_combos = std::size_t{1} << p;
    const std::size_t n_planes = model.code_plane_count();
    for (std::size_t c = 0; c < model.n_classes(); ++c) {
      const SparseOutputNeuron& neuron = model.output_neurons()[c];
      for (const std::size_t module_index : neuron.input_modules) {
        append_scalar<std::uint64_t>(sections.of(kSecOutputWiring),
                                     module_index);
      }
      for (const float weight : neuron.weights) {
        append_f32_bits(sections.of(kSecOutputWeights), weight);
      }
      append_f32_bits(sections.of(kSecOutputWeights), neuron.bias);
      for (const std::uint32_t code : neuron.codes) {
        append_scalar(sections.of(kSecOutputCodes), code);
      }
      for (std::size_t q = 0; q < n_planes; ++q) {
        const std::uint64_t* plane = model.code_plane(c, q);
        for (std::size_t a = 0; a < n_combos; ++a) {
          append_scalar(sections.of(kSecCodePlanes), plane[a]);
        }
      }
    }
  }

  // Lay the file out: header, section table, aligned payloads.
  std::vector<std::uint8_t> buffer(
      kHeaderBytes + kSectionCount * kSectionEntryBytes, 0);
  Section table[kSectionCount];
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    while (buffer.size() % kPayloadAlignment != 0) buffer.push_back(0);
    const std::vector<std::uint8_t>& payload =
        sections.of(static_cast<SectionId>(id));
    table[id - 1] = Section{buffer.size(), payload.size()};
    buffer.insert(buffer.end(), payload.begin(), payload.end());
  }
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    std::uint8_t* entry =
        buffer.data() + kHeaderBytes + (id - 1) * kSectionEntryBytes;
    std::memcpy(entry, &id, sizeof(id));
    std::memcpy(entry + 8, &table[id - 1].offset, sizeof(std::uint64_t));
    std::memcpy(entry + 16, &table[id - 1].length, sizeof(std::uint64_t));
  }

  std::memcpy(buffer.data(), kMagic, sizeof(kMagic));
  const std::uint32_t version = kFormatVersion;
  const std::uint32_t header_bytes = kHeaderBytes;
  const std::uint32_t section_count = kSectionCount;
  std::memcpy(buffer.data() + 8, &version, sizeof(version));
  std::memcpy(buffer.data() + 12, &header_bytes, sizeof(header_bytes));
  std::memcpy(buffer.data() + 16, &section_count, sizeof(section_count));
  const std::uint64_t file_size = buffer.size();
  std::memcpy(buffer.data() + 24, &file_size, sizeof(file_size));
  const std::uint32_t crc =
      crc32(buffer.data() + kHeaderBytes, buffer.size() - kHeaderBytes);
  std::memcpy(buffer.data() + 20, &crc, sizeof(crc));

  // Publish atomically: temp file + rename. Serving workers mmap the file
  // they loaded, and truncating a mapped inode in place SIGBUSes every
  // reader of its pages — the rename swaps the directory entry instead, so
  // live mappings keep the old inode and the next reload opens the new one.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "cannot open '" + temp + "' for writing"};
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  out.flush();
  out.close();
  if (!out) {
    std::remove(temp.c_str());
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "write to '" + temp + "' failed"};
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "cannot rename '" + temp + "' over '" + path + "'"};
  }
  return IoStatus();
}

// Cheap text sniff for read_model_file_any: true when the file's first
// token is the conv text header.
bool is_text_conv_model_file(const std::string& path) {
  std::ifstream in(path);
  std::string token;
  return static_cast<bool>(in >> token) && token == "poetbin-conv-model";
}

}  // namespace

const char* model_format_name(ModelFormat format) {
  switch (format) {
    case ModelFormat::kText: return "text";
    case ModelFormat::kPacked: return "packed";
  }
  return "unknown";
}

IoStatus write_packed_model_file(const PoetBin& model,
                                 const std::string& path) {
  return write_packed_common(model, nullptr, path);
}

IoStatus write_packed_conv_model_file(const ConvModel& model,
                                      const std::string& path) {
  if (model.conv.channel_modules().empty() ||
      model.conv.channel_modules().size() !=
          model.conv.config().out_channels) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "refusing to pack an empty or inconsistent conv "
                        "layer"};
  }
  if (model.classifier.n_features() > model.conv.output_shape().flat()) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "refusing to pack a conv model whose classifier is "
                        "wired beyond the conv output width"};
  }
  return write_packed_common(model.classifier, &model.conv, path);
}

IoResult<PoetBin> read_packed_model_file(const std::string& path,
                                         PackedVerify verify) {
  try {
    ParsedPacked parsed = parse_packed(path, verify);
    if (parsed.conv != nullptr) {
      return ModelIoError{
          ModelIoError::Kind::kIncompatibleModel,
          path + ": packed file holds a convolutional model; load it "
                 "through read_model_file_any"};
    }
    return std::move(parsed.model);
  } catch (const PackFailure& failure) {
    return ModelIoError{failure.error.kind,
                        path + ": " + failure.error.message};
  }
}

bool is_packed_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char head[sizeof(kMagic)] = {};
  if (!in.read(head, sizeof(head))) return false;
  return std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

IoResult<LoadedModel> read_model_file_any(const std::string& path,
                                          PackedVerify verify) {
  if (is_packed_model_file(path)) {
    try {
      ParsedPacked parsed = parse_packed(path, verify);
      return LoadedModel{std::move(parsed.model), ModelFormat::kPacked,
                         std::move(parsed.conv)};
    } catch (const PackFailure& failure) {
      return ModelIoError{failure.error.kind,
                          path + ": " + failure.error.message};
    }
  }
  if (is_text_conv_model_file(path)) {
    IoResult<ConvModel> conv = read_conv_model_file(path);
    if (!conv.ok()) return conv.error();
    ConvModel model = std::move(conv).value();
    return LoadedModel{
        std::move(model.classifier), ModelFormat::kText,
        std::make_shared<const RincConvLayer>(std::move(model.conv))};
  }
  IoResult<PoetBin> text = read_model_file(path);
  if (!text.ok()) return text.error();
  return LoadedModel{std::move(text).value(), ModelFormat::kText, nullptr};
}

}  // namespace poetbin
