#include "core/rinc_conv.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace poetbin {

namespace {

// Requires validate() to have passed.
BinShape3 conv_output_shape(BinShape3 in_shape, const RincConvConfig& config) {
  return {config.out_channels,
          (in_shape.height + 2 * config.padding - config.kernel) /
                  config.stride +
              1,
          (in_shape.width + 2 * config.padding - config.kernel) /
                  config.stride +
              1};
}

}  // namespace

void RincConvLayer::validate(BinShape3 in_shape,
                             const RincConvConfig& config) {
  POETBIN_CHECK_MSG(in_shape.channels > 0 && in_shape.height > 0 &&
                        in_shape.width > 0,
                    "conv input shape must have nonzero dims");
  POETBIN_CHECK_MSG(config.out_channels > 0,
                    "conv layer needs at least one output channel");
  POETBIN_CHECK_MSG(config.kernel > 0, "conv kernel must be nonzero");
  POETBIN_CHECK_MSG(config.stride > 0, "conv stride must be nonzero");
  POETBIN_CHECK_MSG(config.padding < config.kernel,
                    "conv padding must be smaller than the kernel (padding >= "
                    "kernel admits all-padding patches)");
  POETBIN_CHECK_MSG(in_shape.height + 2 * config.padding >= config.kernel,
                    "conv kernel taller than the padded frame");
  POETBIN_CHECK_MSG(in_shape.width + 2 * config.padding >= config.kernel,
                    "conv kernel wider than the padded frame");
}

RincConvLayer RincConvLayer::from_parts(
    BinShape3 in_shape, RincConvConfig config, std::vector<RincModule> modules,
    std::shared_ptr<const void> storage_keepalive) {
  validate(in_shape, config);
  POETBIN_CHECK_MSG(modules.size() == config.out_channels,
                    "conv layer needs one module per output channel");
  RincConvLayer layer;
  layer.in_shape_ = in_shape;
  layer.config_ = std::move(config);
  layer.out_shape_ = conv_output_shape(in_shape, layer.config_);
  layer.modules_ = std::move(modules);
  layer.storage_keepalive_ = std::move(storage_keepalive);
  for (const auto& module : layer.modules_) {
    for (std::size_t feature : module.distinct_features()) {
      POETBIN_CHECK_MSG(feature < layer.patch_bits(),
                        "conv channel module references a feature beyond the "
                        "patch width");
    }
  }
  return layer;
}

BitMatrix RincConvLayer::gather_patches(const BitMatrix& inputs) const {
  const std::size_t n = inputs.rows();
  const std::size_t out_h = out_shape_.height;
  const std::size_t out_w = out_shape_.width;
  const std::size_t in_h = in_shape_.height;
  const std::size_t in_w = in_shape_.width;
  const std::size_t plane = in_h * in_w;
  const std::size_t kernel = config_.kernel;

  BitMatrix patches(n * out_h * out_w, patch_bits());
  for (std::size_t example = 0; example < n; ++example) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const std::size_t row = (example * out_h + oy) * out_w + ox;
        std::size_t bit = 0;
        for (std::size_t c = 0; c < in_shape_.channels; ++c) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const long iy = static_cast<long>(oy * config_.stride + ky) -
                            static_cast<long>(config_.padding);
            for (std::size_t kx = 0; kx < kernel; ++kx, ++bit) {
              const long ix = static_cast<long>(ox * config_.stride + kx) -
                              static_cast<long>(config_.padding);
              if (iy < 0 || ix < 0 || iy >= static_cast<long>(in_h) ||
                  ix >= static_cast<long>(in_w)) {
                continue;  // zero padding
              }
              if (inputs.get(example,
                             c * plane + static_cast<std::size_t>(iy) * in_w +
                                 static_cast<std::size_t>(ix))) {
                patches.set(row, bit, true);
              }
            }
          }
        }
      }
    }
  }
  return patches;
}

RincConvLayer RincConvLayer::train(const BitMatrix& inputs, BinShape3 in_shape,
                                   const BitMatrix& targets,
                                   const RincConvConfig& config) {
  validate(in_shape, config);
  RincConvLayer layer;
  layer.in_shape_ = in_shape;
  layer.config_ = config;
  layer.out_shape_ = conv_output_shape(in_shape, config);

  const std::size_t n = inputs.rows();
  POETBIN_CHECK(inputs.cols() == in_shape.flat());
  POETBIN_CHECK(targets.rows() == n);
  POETBIN_CHECK_MSG(targets.cols() == layer.out_shape_.flat(),
                    "target maps must match the conv output shape");

  BitMatrix patches = layer.gather_patches(inputs);
  const std::size_t positions =
      layer.out_shape_.height * layer.out_shape_.width;

  // Deterministic subsample of patch rows if the pooled dataset is huge.
  // Hash-based selection: a fixed stride would alias with the spatial
  // position grid and bias the sample towards one image column.
  std::vector<std::size_t> rows;
  const std::size_t total = patches.rows();
  if (total > config.max_train_patches) {
    for (std::size_t r = 0; r < total; ++r) {
      std::uint64_t state = r ^ 0xc0ffee;
      if (splitmix64(state) % total < config.max_train_patches) {
        rows.push_back(r);
      }
    }
    POETBIN_CHECK(!rows.empty());
    patches = patches.select_rows(rows);
  }

  for (std::size_t channel = 0; channel < config.out_channels; ++channel) {
    // Targets for this channel, pooled over examples and positions in the
    // same order as the patch rows.
    BitVector channel_targets(total);
    for (std::size_t example = 0; example < n; ++example) {
      for (std::size_t p = 0; p < positions; ++p) {
        if (targets.get(example, channel * positions + p)) {
          channel_targets.set(example * positions + p, true);
        }
      }
    }
    if (!rows.empty()) {
      BitVector subsampled(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        subsampled.set(i, channel_targets.get(rows[i]));
      }
      channel_targets = std::move(subsampled);
    }
    layer.modules_.push_back(
        RincModule::train(patches, channel_targets, /*weights=*/{}, config.rinc));
  }
  return layer;
}

BitMatrix RincConvLayer::eval_dataset(const BitMatrix& inputs) const {
  POETBIN_CHECK(inputs.cols() == in_shape_.flat());
  const std::size_t n = inputs.rows();
  const std::size_t positions = out_shape_.height * out_shape_.width;
  const BitMatrix patches = gather_patches(inputs);

  BitMatrix out(n, out_shape_.flat());
  for (std::size_t channel = 0; channel < modules_.size(); ++channel) {
    const BitVector bits = modules_[channel].eval_dataset(patches);
    for (std::size_t example = 0; example < n; ++example) {
      for (std::size_t p = 0; p < positions; ++p) {
        if (bits.get(example * positions + p)) {
          out.set(example, channel * positions + p, true);
        }
      }
    }
  }
  return out;
}

std::size_t RincConvLayer::lut_count_per_position() const {
  std::size_t total = 0;
  for (const auto& module : modules_) total += module.lut_count();
  return total;
}

int ConvModel::predict(const BitVector& frame_bits) const {
  POETBIN_CHECK_MSG(frame_bits.size() == n_features(),
                    "frame bits must match the conv input shape");
  BitMatrix frame(1, frame_bits.size());
  for (std::size_t b = 0; b < frame_bits.size(); ++b) {
    if (frame_bits.get(b)) frame.set(0, b, true);
  }
  const BitMatrix conv_bits = conv.eval_dataset(frame);
  return classifier.predict(conv_bits.row(0));
}

std::vector<int> ConvModel::predict_dataset(const BitMatrix& frames) const {
  return classifier.predict_dataset(conv.eval_dataset(frames));
}

double RincConvLayer::fidelity(const BitMatrix& inputs,
                               const BitMatrix& targets) const {
  const BitMatrix predicted = eval_dataset(inputs);
  POETBIN_CHECK(predicted.rows() == targets.rows());
  POETBIN_CHECK(predicted.cols() == targets.cols());
  if (predicted.rows() == 0 || predicted.cols() == 0) return 1.0;
  std::size_t agree = 0;
  for (std::size_t c = 0; c < predicted.cols(); ++c) {
    agree += predicted.column(c).xnor_popcount(targets.column(c));
  }
  return static_cast<double>(agree) /
         static_cast<double>(predicted.rows() * predicted.cols());
}

}  // namespace poetbin
