// Plain-text serialization of trained models, with typed I/O errors.
//
// A trained PoET-BiN classifier is just LUT contents and wiring — a few
// kilobytes — so a human-readable line format is both debuggable and
// diff-friendly. The format is versioned; loaders validate structure and
// return a typed ModelIoError on malformed input rather than constructing
// broken models (or aborting the process, as earlier revisions did — a
// serving worker must survive a bad model file on disk).
//
//   poetbin-model v1
//   config <P> <L> <total_dts> <n_classes> <qbits>
//   quantizer <bits> <min> <max>
//   module <index>
//     leaf <arity> <input...> <table-bits>
//     node <fanin>   ... children follow depth-first ... <mat-table-bits>
//   output <class> <bias> <weight...> <codes...>
//
// A convolutional model (core/rinc_conv.h ConvModel) prepends a conv
// section and embeds the classifier verbatim (its own header included, so
// the dense parser reads it unchanged):
//
//   poetbin-conv-model v1
//   conv <in_c> <in_h> <in_w> <out_channels> <kernel> <stride> <padding>
//   channel <index>
//     leaf/node records, depth-first (same grammar as module bodies)
//   poetbin-model v1
//   ...
//
// Training-only knobs (the per-channel RincConfig, max_train_patches) are
// not serialized — a loaded layer carries the trained modules plus the
// geometry, which is everything inference needs.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "core/rinc_conv.h"
#include "util/check.h"

namespace poetbin {

// What went wrong in a model load/save. The kind is the dispatchable part
// (a rollout script retries kFileNotFound but pages on kCorruptSection);
// the message carries the human detail ("bad leaf arity", the path, ...).
struct ModelIoError {
  enum class Kind {
    kFileNotFound,       // path cannot be opened for reading
    kVersionMismatch,    // not a poetbin-model header / unsupported version
    kCorruptSection,     // structurally invalid section contents
    kWriteFailed,        // path cannot be opened/flushed for writing
    kChecksumMismatch,   // packed-file CRC does not match the payload
    kIncompatibleModel,  // valid model, but it cannot replace the one served
  };

  Kind kind = Kind::kCorruptSection;
  std::string message;
};

const char* model_io_error_kind_name(ModelIoError::Kind kind);

// expected-style carrier of a loaded T or a ModelIoError. Kept minimal on
// purpose (std::expected is C++23): value access on an error — or error
// access on a value — is a contract violation and aborts.
template <typename T>
class [[nodiscard]] IoResult {
 public:
  IoResult(T value) : state_(std::move(value)) {}
  IoResult(ModelIoError error) : state_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    POETBIN_CHECK_MSG(ok(), "IoResult::value() on an error result");
    return std::get<T>(state_);
  }
  const T& value() const& {
    POETBIN_CHECK_MSG(ok(), "IoResult::value() on an error result");
    return std::get<T>(state_);
  }
  T&& value() && {
    POETBIN_CHECK_MSG(ok(), "IoResult::value() on an error result");
    return std::get<T>(std::move(state_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  const ModelIoError& error() const {
    POETBIN_CHECK_MSG(!ok(), "IoResult::error() on a success result");
    return std::get<ModelIoError>(state_);
  }

 private:
  std::variant<T, ModelIoError> state_;
};

// Success-or-ModelIoError for operations with no payload (saves).
class [[nodiscard]] IoStatus {
 public:
  IoStatus() = default;  // success
  IoStatus(ModelIoError error) : failed_(true), error_(std::move(error)) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const ModelIoError& error() const {
    POETBIN_CHECK_MSG(failed_, "IoStatus::error() on a success status");
    return error_;
  }

 private:
  bool failed_ = false;
  ModelIoError error_;
};

void save_model(const PoetBin& model, std::ostream& out);

// Non-aborting parse: returns the model or a typed error
// (kVersionMismatch for a bad header, kCorruptSection for anything
// structurally wrong after it).
IoResult<PoetBin> read_model(std::istream& in);

// File wrappers. read_model_file adds kFileNotFound when the path cannot
// be opened; write_model_file reports kWriteFailed when it cannot be
// written or flushed.
IoResult<PoetBin> read_model_file(const std::string& path);
IoStatus write_model_file(const PoetBin& model, const std::string& path);

// Convolutional variants, same error contract: the conv geometry and every
// per-channel module are validated before construction, so corrupt bytes
// surface as typed errors, never as a from_parts abort.
void save_conv_model(const ConvModel& model, std::ostream& out);
IoResult<ConvModel> read_conv_model(std::istream& in);
IoResult<ConvModel> read_conv_model_file(const std::string& path);
IoStatus write_conv_model_file(const ConvModel& model,
                               const std::string& path);

}  // namespace poetbin
