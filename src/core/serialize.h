// Plain-text serialization of trained models.
//
// A trained PoET-BiN classifier is just LUT contents and wiring — a few
// kilobytes — so a human-readable line format is both debuggable and
// diff-friendly. The format is versioned; loaders validate structure and
// abort on malformed input rather than constructing broken models.
//
//   poetbin-model v1
//   config <P> <L> <total_dts> <n_classes> <qbits>
//   quantizer <bits> <min> <max>
//   module <index>
//     leaf <arity> <input...> <table-bits>
//     node <fanin>   ... children follow depth-first ... <mat-table-bits>
//   output <class> <bias> <weight...> <codes...>
#pragma once

#include <iosfwd>
#include <string>

#include "core/poetbin.h"
#include "core/rinc.h"

namespace poetbin {

void save_model(const PoetBin& model, std::ostream& out);
// Aborts (POETBIN_CHECK) on malformed input.
PoetBin load_model(std::istream& in);

// Convenience file wrappers; return false if the file cannot be opened.
bool save_model_file(const PoetBin& model, const std::string& path);
bool load_model_file(PoetBin& model, const std::string& path);

}  // namespace poetbin
