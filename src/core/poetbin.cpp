#include "core/poetbin.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/batch_eval.h"
#include "util/rng.h"

namespace poetbin {

float SparseOutputNeuron::activation(std::size_t combo) const {
  float acc = bias;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    if ((combo >> j) & 1) acc += weights[j];
  }
  return acc;
}

PoetBin PoetBin::train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config) {
  const std::size_t n = features.rows();
  POETBIN_CHECK(intermediate_targets.rows() == n);
  POETBIN_CHECK(labels.size() == n);
  const std::size_t n_intermediate = intermediate_targets.cols();
  POETBIN_CHECK_MSG(n_intermediate == config.n_classes * config.rinc.lut_inputs,
                    "intermediate layer must have nc x P neurons");

  PoetBin model;
  model.config_ = config;
  model.modules_.assign(n_intermediate, RincModule{});

  // Distil one RINC module per intermediate neuron. The problems are
  // independent, so one pool job per module is deterministic at any thread
  // count. Module-level parallelism already saturates the pool, so each
  // module trains with the single-thread word-parallel scans (engine
  // nullptr inside RincModule::train); the same engine is then reused for
  // the bitsliced rinc-output pass below.
  const BatchEngine engine(config.threads);
  engine.parallel_for(n_intermediate, [&](std::size_t j) {
    model.modules_[j] = RincModule::train(
        features, intermediate_targets.column(j), /*weights=*/{}, config.rinc);
  });
  if (config.verbose) {
    for (std::size_t j = 0; j < n_intermediate; ++j) {
      std::printf("  RINC %zu/%zu train_err=%.4f\n", j + 1, n_intermediate,
                  model.modules_[j].train_error());
    }
  }

  // The output layer retrains on the RINC bank's outputs; produce them with
  // the bitsliced batch engine (bit-identical to the scalar path).
  const BitMatrix rinc_bits = engine.rinc_outputs(model, features);
  model.retrain_output_layer(rinc_bits, labels);
  return model;
}

PoetBin PoetBin::from_parts(PoetBinConfig config,
                            std::vector<RincModule> modules,
                            std::vector<SparseOutputNeuron> output_neurons,
                            QuantizerParams quantizer) {
  POETBIN_CHECK(modules.size() ==
                config.n_classes * config.rinc.lut_inputs);
  POETBIN_CHECK(output_neurons.size() == config.n_classes);
  const std::size_t n_combos = std::size_t{1} << config.rinc.lut_inputs;
  for (const auto& neuron : output_neurons) {
    POETBIN_CHECK(neuron.input_modules.size() == config.rinc.lut_inputs);
    POETBIN_CHECK(neuron.weights.size() == config.rinc.lut_inputs);
    POETBIN_CHECK(neuron.codes.size() == n_combos);
    for (const auto m : neuron.input_modules) {
      POETBIN_CHECK(m < modules.size());
    }
    for (const auto code : neuron.codes) {
      POETBIN_CHECK(code < quantizer.levels());
    }
  }
  PoetBin model;
  model.config_ = std::move(config);
  model.modules_ = std::move(modules);
  model.output_ = std::move(output_neurons);
  model.quantizer_ = quantizer;
  return model;
}

BitMatrix PoetBin::rinc_outputs(const BitMatrix& features) const {
  BitMatrix out(features.rows(), modules_.size());
  for (std::size_t j = 0; j < modules_.size(); ++j) {
    out.column(j) = modules_[j].eval_dataset(features);
  }
  return out;
}

void PoetBin::retrain_output_layer(const BitMatrix& rinc_bits,
                                   const std::vector<int>& labels) {
  const std::size_t n = rinc_bits.rows();
  const std::size_t n_classes = config_.n_classes;
  const std::size_t p = config_.rinc.lut_inputs;
  const OutputLayerConfig& ocfg = config_.output;

  // Block wiring: output neuron c reads modules [c*P, (c+1)*P).
  output_.assign(n_classes, SparseOutputNeuron{});
  Rng rng(ocfg.seed);
  for (std::size_t c = 0; c < n_classes; ++c) {
    SparseOutputNeuron& neuron = output_[c];
    neuron.input_modules.resize(p);
    neuron.weights.resize(p);
    for (std::size_t j = 0; j < p; ++j) {
      neuron.input_modules[j] = c * p + j;
      neuron.weights[j] =
          static_cast<float>(rng.gaussian(0.0, std::sqrt(2.0 / p)));
    }
    neuron.bias = 0.0f;
  }

  // Pre-pack each example's P-bit combo per class (bits don't change during
  // output-layer training).
  std::vector<std::uint32_t> combos(n * n_classes, 0);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t j = 0; j < p; ++j) {
      const BitVector& column = rinc_bits.column(c * p + j);
      for (std::size_t i = 0; i < n; ++i) {
        if (column.get(i)) combos[i * n_classes + c] |= 1u << j;
      }
    }
  }

  // Full-batch gradient descent on the multi-class squared hinge, with
  // momentum and exponential LR decay. Each logit depends only on its own
  // P weights, so gradients stay block-local (the sparse wiring).
  std::vector<float> weight_velocity(n_classes * p, 0.0f);
  std::vector<float> bias_velocity(n_classes, 0.0f);
  double lr = ocfg.learning_rate;
  const float momentum = 0.9f;

  for (std::size_t epoch = 0; epoch < ocfg.epochs; ++epoch) {
    std::vector<float> weight_grad(n_classes * p, 0.0f);
    std::vector<float> bias_grad(n_classes, 0.0f);
    const float inv_n = 1.0f / static_cast<float>(n);

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < n_classes; ++c) {
        const std::uint32_t combo = combos[i * n_classes + c];
        const float logit = output_[c].activation(combo);
        const float target = (static_cast<std::size_t>(labels[i]) == c) ? 1.0f
                                                                        : -1.0f;
        const float hinge = 1.0f - target * logit;
        if (hinge <= 0.0f) continue;
        const float grad_logit = -2.0f * hinge * target * inv_n;
        bias_grad[c] += grad_logit;
        for (std::size_t j = 0; j < p; ++j) {
          if ((combo >> j) & 1) weight_grad[c * p + j] += grad_logit;
        }
      }
    }

    const float flr = static_cast<float>(lr);
    for (std::size_t c = 0; c < n_classes; ++c) {
      for (std::size_t j = 0; j < p; ++j) {
        float& vel = weight_velocity[c * p + j];
        vel = momentum * vel - flr * weight_grad[c * p + j];
        output_[c].weights[j] += vel;
      }
      float& bias_vel = bias_velocity[c];
      bias_vel = momentum * bias_vel - flr * bias_grad[c];
      output_[c].bias += bias_vel;
    }
    lr *= ocfg.lr_decay;
  }

  // Shared quantizer scale over all neurons' reachable activations so raw
  // codes are directly comparable in the hardware argmax.
  const std::size_t n_combos = std::size_t{1} << p;
  Matrix activations(n_classes, n_combos);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t combo = 0; combo < n_combos; ++combo) {
      activations(c, combo) = output_[c].activation(combo);
    }
  }
  quantizer_ = fit_quantizer(activations, config_.output.quant_bits);
  for (std::size_t c = 0; c < n_classes; ++c) {
    output_[c].codes.resize(n_combos);
    for (std::size_t combo = 0; combo < n_combos; ++combo) {
      output_[c].codes[combo] = quantize_value(activations(c, combo), quantizer_);
    }
  }
}

int PoetBin::predict(const BitVector& example_bits) const {
  std::size_t best_class = 0;
  std::uint32_t best_code = 0;
  for (std::size_t c = 0; c < output_.size(); ++c) {
    const SparseOutputNeuron& neuron = output_[c];
    std::size_t combo = 0;
    for (std::size_t j = 0; j < neuron.input_modules.size(); ++j) {
      if (modules_[neuron.input_modules[j]].eval(example_bits)) {
        combo |= std::size_t{1} << j;
      }
    }
    const std::uint32_t code = neuron.codes[combo];
    // Ties resolve to the lower class index, same rule as the comparator
    // tree the hardware would instantiate.
    if (c == 0 || code > best_code) {
      best_code = code;
      best_class = c;
    }
  }
  return static_cast<int>(best_class);
}

std::vector<int> PoetBin::predict_dataset(const BitMatrix& features) const {
  const std::size_t n = features.rows();
  const BitMatrix bits = rinc_outputs(features);
  std::vector<int> predictions(n, 0);
  const std::size_t p = config_.rinc.lut_inputs;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best_class = 0;
    std::uint32_t best_code = 0;
    for (std::size_t c = 0; c < output_.size(); ++c) {
      std::size_t combo = 0;
      for (std::size_t j = 0; j < p; ++j) {
        if (bits.get(i, output_[c].input_modules[j])) combo |= std::size_t{1} << j;
      }
      const std::uint32_t code = output_[c].codes[combo];
      if (c == 0 || code > best_code) {
        best_code = code;
        best_class = c;
      }
    }
    predictions[i] = static_cast<int>(best_class);
  }
  return predictions;
}

double PoetBin::accuracy(const BitMatrix& features,
                         const std::vector<int>& labels) const {
  const auto predictions = predict_dataset(features);
  POETBIN_CHECK(predictions.size() == labels.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) / labels.size();
}

double PoetBin::intermediate_fidelity(const BitMatrix& rinc_bits,
                                      const BitMatrix& teacher_bits) {
  POETBIN_CHECK(rinc_bits.rows() == teacher_bits.rows());
  POETBIN_CHECK(rinc_bits.cols() == teacher_bits.cols());
  if (rinc_bits.rows() == 0 || rinc_bits.cols() == 0) return 1.0;
  std::size_t agree = 0;
  for (std::size_t c = 0; c < rinc_bits.cols(); ++c) {
    agree += rinc_bits.column(c).xnor_popcount(teacher_bits.column(c));
  }
  return static_cast<double>(agree) /
         static_cast<double>(rinc_bits.rows() * rinc_bits.cols());
}

std::size_t PoetBin::lut_count() const {
  std::size_t total = 0;
  for (const auto& module : modules_) total += module.lut_count();
  total += output_.size() * static_cast<std::size_t>(config_.output.quant_bits);
  return total;
}

}  // namespace poetbin
