#include "core/poetbin.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "core/batch_eval.h"
#include "util/aligned_vector.h"
#include "util/rng.h"
#include "util/word_backend.h"

namespace poetbin {

float SparseOutputNeuron::activation(std::size_t combo) const {
  float acc = bias;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    if ((combo >> j) & 1) acc += weights[j];
  }
  return acc;
}

namespace {

// Every class label must name one of the nc output neurons. A negative or
// >= nc label used to flow through a std::size_t cast unvalidated, so the
// example silently trained against target -1 for *every* class (and a
// pathological label could never match); fail loudly instead, and before
// any distillation time is spent.
void check_labels(const std::vector<int>& labels, std::size_t n_classes) {
  for (const int label : labels) {
    POETBIN_CHECK_MSG(
        label >= 0 && static_cast<std::size_t>(label) < n_classes,
        "class label out of range [0, n_classes)");
  }
}

}  // namespace

PoetBin PoetBin::train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config) {
  const std::size_t n = features.rows();
  POETBIN_CHECK(intermediate_targets.rows() == n);
  POETBIN_CHECK(labels.size() == n);
  check_labels(labels, config.n_classes);
  const std::size_t n_intermediate = intermediate_targets.cols();
  POETBIN_CHECK_MSG(n_intermediate == config.n_classes * config.rinc.lut_inputs,
                    "intermediate layer must have nc x P neurons");

  PoetBin model;
  model.config_ = config;
  model.modules_.assign(n_intermediate, RincModule{});

  // Distil one RINC module per intermediate neuron. The problems are
  // independent, so one pool job per module is deterministic at any thread
  // count. Module-level parallelism already saturates the pool, so each
  // module trains with the single-thread word-parallel scans (engine
  // nullptr inside RincModule::train); the same engine is then reused for
  // the bitsliced rinc-output pass below.
  const BatchEngine engine(config.threads);
  engine.parallel_for(n_intermediate, [&](std::size_t j) {
    model.modules_[j] = RincModule::train(
        features, intermediate_targets.column(j), /*weights=*/{}, config.rinc);
  });
  if (config.verbose) {
    for (std::size_t j = 0; j < n_intermediate; ++j) {
      std::printf("  RINC %zu/%zu train_err=%.4f\n", j + 1, n_intermediate,
                  model.modules_[j].train_error());
    }
  }

  // The output layer retrains on the RINC bank's outputs; produce them with
  // the bitsliced batch engine (bit-identical to the scalar path), and
  // reuse the same engine to spread retraining across classes.
  const BitMatrix rinc_bits = engine.rinc_outputs(model, features);
  model.retrain_output_layer(rinc_bits, labels, &engine);
  return model;
}

PoetBin PoetBin::from_parts(PoetBinConfig config,
                            std::vector<RincModule> modules,
                            std::vector<SparseOutputNeuron> output_neurons,
                            QuantizerParams quantizer) {
  POETBIN_CHECK(modules.size() ==
                config.n_classes * config.rinc.lut_inputs);
  POETBIN_CHECK(output_neurons.size() == config.n_classes);
  const std::size_t n_combos = std::size_t{1} << config.rinc.lut_inputs;
  for (const auto& neuron : output_neurons) {
    POETBIN_CHECK(neuron.input_modules.size() == config.rinc.lut_inputs);
    POETBIN_CHECK(neuron.weights.size() == config.rinc.lut_inputs);
    POETBIN_CHECK(neuron.codes.size() == n_combos);
    for (const auto m : neuron.input_modules) {
      POETBIN_CHECK(m < modules.size());
    }
    for (const auto code : neuron.codes) {
      POETBIN_CHECK(code < quantizer.levels());
    }
  }
  PoetBin model;
  model.config_ = std::move(config);
  model.modules_ = std::move(modules);
  model.output_ = std::move(output_neurons);
  model.quantizer_ = quantizer;
  model.rebuild_code_planes();
  return model;
}

PoetBin PoetBin::from_parts(PoetBinConfig config,
                            std::vector<RincModule> modules,
                            std::vector<SparseOutputNeuron> output_neurons,
                            QuantizerParams quantizer,
                            WordStorage code_planes, std::size_t n_planes,
                            std::shared_ptr<const void> storage_keepalive) {
  PoetBin model;
  {
    // Reuse the first overload's structural validation, then replace the
    // heap planes it builds with the supplied (mapping-backed) ones.
    model = from_parts(std::move(config), std::move(modules),
                       std::move(output_neurons), quantizer);
  }
  POETBIN_CHECK_MSG(n_planes >= 1, "code planes need at least one plane");
  // Supplied planes must be at least as wide as the codes need (extra
  // all-zero high planes cannot change the MSB-first comparator) and sized
  // exactly; the packed loader additionally verifies their contents.
  POETBIN_CHECK_MSG(n_planes >= model.n_code_planes_,
                    "externally supplied code planes narrower than the codes");
  const std::size_t n_combos = std::size_t{1} << model.lut_inputs();
  POETBIN_CHECK(code_planes.size() ==
                model.output_.size() * n_planes * n_combos);
  model.code_planes_ = std::move(code_planes);
  model.n_code_planes_ = n_planes;
  model.storage_keepalive_ = std::move(storage_keepalive);
  return model;
}

std::size_t PoetBin::n_features() const {
  std::size_t n_features = 0;
  for (const auto& module : modules_) {
    for (const auto f : module.distinct_features()) {
      n_features = std::max(n_features, f + 1);
    }
  }
  return n_features;
}

void PoetBin::rebuild_code_planes() {
  // Planes always live on the heap after a rebuild: retraining a
  // mapping-backed model republishes its (new) output layer in owned
  // storage while the module LUTs keep viewing the mapping.
  const std::size_t p = config_.rinc.lut_inputs;
  const std::size_t n_combos = std::size_t{1} << p;
  std::uint32_t max_code = 1;
  for (const auto& neuron : output_) {
    for (const auto code : neuron.codes) max_code = std::max(max_code, code);
  }
  n_code_planes_ = static_cast<std::size_t>(std::bit_width(max_code));
  WordVec planes(output_.size() * n_code_planes_ * n_combos);
  for (std::size_t c = 0; c < output_.size(); ++c) {
    for (std::size_t plane = 0; plane < n_code_planes_; ++plane) {
      std::uint64_t* out = planes.data() + (c * n_code_planes_ + plane) * n_combos;
      for (std::size_t a = 0; a < n_combos; ++a) {
        out[a] = (output_[c].codes[a] >> plane) & 1u ? ~0ULL : 0ULL;
      }
    }
  }
  code_planes_ = WordStorage(std::move(planes));
}

BitMatrix PoetBin::rinc_outputs(const BitMatrix& features) const {
  BitMatrix out(features.rows(), modules_.size());
  for (std::size_t j = 0; j < modules_.size(); ++j) {
    out.column(j) = modules_[j].eval_dataset(features);
  }
  return out;
}

namespace {

// One class's momentum update for an epoch. Shared by the scalar and
// word-parallel paths — and kept out of line — so both compile to one
// instruction sequence: separately inlined copies could contract the
// multiply-adds differently and silently break their bit-identity.
[[gnu::noinline]] void momentum_step(SparseOutputNeuron& neuron,
                                     float* weight_velocity,
                                     float& bias_velocity,
                                     const float* weight_grad, float bias_grad,
                                     float momentum, float flr) {
  for (std::size_t j = 0; j < neuron.weights.size(); ++j) {
    float& vel = weight_velocity[j];
    vel = momentum * vel - flr * weight_grad[j];
    neuron.weights[j] += vel;
  }
  bias_velocity = momentum * bias_velocity - flr * bias_grad;
  neuron.bias += bias_velocity;
}

// Reference path: full-batch gradient descent on the multi-class squared
// hinge, one (example, class) pair at a time over pre-packed uint32 combos,
// with momentum and exponential LR decay. Each logit depends only on its
// own P weights, so gradients stay block-local (the sparse wiring). Kept
// verbatim as the oracle the word-parallel path must reproduce bit for bit
// (tests compare the trained neurons exactly).
void train_output_scalar(std::vector<SparseOutputNeuron>& output,
                         const BitMatrix& rinc_bits,
                         const std::vector<int>& labels, std::size_t n_classes,
                         std::size_t p, const OutputLayerConfig& ocfg) {
  const std::size_t n = rinc_bits.rows();

  // Pre-pack each example's P-bit combo per class (bits don't change during
  // output-layer training).
  std::vector<std::uint32_t> combos(n * n_classes, 0);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t j = 0; j < p; ++j) {
      const BitVector& column = rinc_bits.column(c * p + j);
      for (std::size_t i = 0; i < n; ++i) {
        if (column.get(i)) combos[i * n_classes + c] |= 1u << j;
      }
    }
  }

  std::vector<float> weight_velocity(n_classes * p, 0.0f);
  std::vector<float> bias_velocity(n_classes, 0.0f);
  double lr = ocfg.learning_rate;
  const float momentum = 0.9f;

  for (std::size_t epoch = 0; epoch < ocfg.epochs; ++epoch) {
    std::vector<float> weight_grad(n_classes * p, 0.0f);
    std::vector<float> bias_grad(n_classes, 0.0f);
    const float inv_n = 1.0f / static_cast<float>(n);

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < n_classes; ++c) {
        const std::uint32_t combo = combos[i * n_classes + c];
        const float logit = output[c].activation(combo);
        const float target = (static_cast<std::size_t>(labels[i]) == c) ? 1.0f
                                                                        : -1.0f;
        const float hinge = 1.0f - target * logit;
        if (hinge <= 0.0f) continue;
        const float grad_logit = -2.0f * hinge * target * inv_n;
        bias_grad[c] += grad_logit;
        for (std::size_t j = 0; j < p; ++j) {
          if ((combo >> j) & 1) weight_grad[c * p + j] += grad_logit;
        }
      }
    }

    const float flr = static_cast<float>(lr);
    for (std::size_t c = 0; c < n_classes; ++c) {
      momentum_step(output[c], weight_velocity.data() + c * p,
                    bias_velocity[c], weight_grad.data() + c * p, bias_grad[c],
                    momentum, flr);
    }
    lr *= ocfg.lr_decay;
  }
}

// Word-parallel output-layer retraining, bit-identical to the scalar
// oracle above. Three observations make that possible:
//
//  1. An example's logit, hinge and gradient for class c are functions of
//     its P-bit combo and its +-1 target alone, so the per-example float
//     math collapses into per-(combo, target) tables computed once per
//     class per epoch with the scalar path's exact expressions. Every
//     intermediate multiply is by +-1 or 2 — exact — so the rounding
//     points cannot shift between the two computation shapes.
//  2. "Is this example's hinge active" is therefore a boolean function of
//     the P input bits (one function per target sign), which
//     Shannon-reduces over the class's packed RINC columns with the same
//     ops.lut_reduce kernel the LUT layers use: the whole
//     activation/compare stage runs 64 examples per word op on the active
//     SIMD backend, and saturated examples cost nothing — late epochs
//     touch only the shrinking active set.
//  3. The gradient adds themselves are order-dependent float sums, so they
//     are NOT reassociated into popcount-weighted partial sums (the
//     backend bit-identity rule: only exact ops widen). The countr_zero
//     gather performs the table-gradient adds in ascending example order —
//     exactly the scalar accumulation sequence, minus the examples the
//     scalar loop also skips.
//
// Parallelism is across classes, not example chunks: gradients, velocities
// and weights are block-local per class (the sparse wiring), so per-class
// jobs share no float state and any thread count is bit-identical.
// Example-chunk partials would have to be reduced in float and could not
// match the scalar order.
void train_output_word_parallel(std::vector<SparseOutputNeuron>& output,
                                const BitMatrix& rinc_bits,
                                const std::vector<int>& labels,
                                std::size_t n_classes, std::size_t p,
                                const OutputLayerConfig& ocfg,
                                const BatchEngine* engine) {
  const std::size_t n = rinc_bits.rows();
  const std::size_t n_words = BitVector::words_needed(n);
  const std::uint64_t tail = BitVector::tail_word_mask(n);
  const std::size_t n_combos = std::size_t{1} << p;

  // Fixed for the whole retrain: each class's label mask words and packed
  // per-example table key — combo bits, plus the target sign at bit P so
  // one lookup resolves the gradient.
  std::vector<std::vector<std::uint32_t>> class_keys(n_classes);
  std::vector<WordVec> label_words(n_classes);
  for (std::size_t c = 0; c < n_classes; ++c) {
    auto& keys = class_keys[c];
    keys.assign(n, 0u);
    label_words[c].assign(n_words, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(labels[i]) == c) {
        keys[i] = static_cast<std::uint32_t>(n_combos);
        label_words[c][i >> 6] |= 1ULL << (i & 63);
      }
    }
    for (std::size_t j = 0; j < p; ++j) {
      const std::uint64_t* col = rinc_bits.column(c * p + j).words();
      const std::uint32_t bit = 1u << j;
      for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t m = col[w];
        if (w + 1 == n_words) m &= tail;  // tolerate dirty column tails
        const std::size_t row0 = w * 64;
        while (m != 0) {
          keys[row0 + static_cast<std::size_t>(std::countr_zero(m))] |= bit;
          m &= m - 1;
        }
      }
    }
  }

  std::vector<float> weight_velocity(n_classes * p, 0.0f);
  std::vector<float> bias_velocity(n_classes, 0.0f);
  double lr = ocfg.learning_rate;
  const float momentum = 0.9f;
  const float inv_n = 1.0f / static_cast<float>(n);
  const std::uint32_t combo_mask = static_cast<std::uint32_t>(n_combos - 1);
  const WordOps& ops = word_ops();

  for (std::size_t epoch = 0; epoch < ocfg.epochs; ++epoch) {
    const float flr = static_cast<float>(lr);
    auto train_class = [&](std::size_t c) {
      SparseOutputNeuron& neuron = output[c];
      // Reused per worker thread across epochs (the engine's pool persists).
      static thread_local std::vector<float> grad_table, weight_grad;
      static thread_local WordVec splat_pos, splat_neg, active_pos, active_neg;
      static thread_local std::vector<const std::uint64_t*> columns;
      grad_table.resize(2 * n_combos);
      splat_pos.resize(n_combos);
      splat_neg.resize(n_combos);
      active_pos.resize(n_words);
      active_neg.resize(n_words);
      columns.resize(p);

      // Per-combo logits, hinges and gradients with the scalar expression
      // sequence; `!(hinge <= 0)` mirrors the scalar `continue` predicate
      // exactly (including its NaN behaviour).
      for (std::size_t a = 0; a < n_combos; ++a) {
        const float logit = neuron.activation(a);
        const float pos_target = 1.0f;
        const float pos_hinge = 1.0f - pos_target * logit;
        splat_pos[a] = !(pos_hinge <= 0.0f) ? ~0ULL : 0ULL;
        grad_table[n_combos + a] = -2.0f * pos_hinge * pos_target * inv_n;
        const float neg_target = -1.0f;
        const float neg_hinge = 1.0f - neg_target * logit;
        splat_neg[a] = !(neg_hinge <= 0.0f) ? ~0ULL : 0ULL;
        grad_table[a] = -2.0f * neg_hinge * neg_target * inv_n;
      }

      for (std::size_t j = 0; j < p; ++j) {
        columns[j] = rinc_bits.column_words(c * p + j).data();
      }
      ops.lut_reduce(splat_pos.data(), p, columns.data(), /*base=*/0, 0,
                     n_words, active_pos.data());
      ops.lut_reduce(splat_neg.data(), p, columns.data(), /*base=*/0, 0,
                     n_words, active_neg.data());

      weight_grad.assign(p, 0.0f);
      float bias_grad = 0.0f;
      const std::uint32_t* keys = class_keys[c].data();
      const std::uint64_t* lbl = label_words[c].data();
      for (std::size_t w = 0; w < n_words; ++w) {
        // Active word for this class: positive-target activity where the
        // label matches, negative-target activity elsewhere. Tail bits
        // carry garbage combos; mask them out of the gather.
        std::uint64_t act =
            (active_pos[w] & lbl[w]) | (active_neg[w] & ~lbl[w]);
        if (w + 1 == n_words) act &= tail;
        const std::size_t row0 = w * 64;
        while (act != 0) {
          const std::size_t i =
              row0 + static_cast<std::size_t>(std::countr_zero(act));
          const std::uint32_t key = keys[i];
          const float g = grad_table[key];
          bias_grad += g;
          std::uint32_t combo = key & combo_mask;
          while (combo != 0) {
            weight_grad[static_cast<std::size_t>(std::countr_zero(combo))] +=
                g;
            combo &= combo - 1;
          }
          act &= act - 1;
        }
      }
      momentum_step(neuron, weight_velocity.data() + c * p, bias_velocity[c],
                    weight_grad.data(), bias_grad, momentum, flr);
    };
    if (engine != nullptr) {
      engine->parallel_for(n_classes, train_class);
    } else {
      for (std::size_t c = 0; c < n_classes; ++c) train_class(c);
    }
    lr *= ocfg.lr_decay;
  }
}

}  // namespace

void PoetBin::retrain_output_layer(const BitMatrix& rinc_bits,
                                   const std::vector<int>& labels,
                                   const BatchEngine* engine) {
  const std::size_t n = rinc_bits.rows();
  const std::size_t n_classes = config_.n_classes;
  const std::size_t p = config_.rinc.lut_inputs;
  const OutputLayerConfig& ocfg = config_.output;
  // A short bank used to throw from deep inside BitMatrix::column mid-pack;
  // validate the wiring contract up front with an actionable message.
  POETBIN_CHECK_MSG(rinc_bits.cols() >= n_classes * p,
                    "RINC output bank narrower than nc x P — output neuron c "
                    "reads columns [c*P, (c+1)*P)");
  POETBIN_CHECK_MSG(labels.size() == n, "one class label per RINC output row");
  check_labels(labels, n_classes);

  // Block wiring: output neuron c reads modules [c*P, (c+1)*P). Same RNG
  // draw order in both training paths.
  output_.assign(n_classes, SparseOutputNeuron{});
  Rng rng(ocfg.seed);
  for (std::size_t c = 0; c < n_classes; ++c) {
    SparseOutputNeuron& neuron = output_[c];
    neuron.input_modules.resize(p);
    neuron.weights.resize(p);
    for (std::size_t j = 0; j < p; ++j) {
      neuron.input_modules[j] = c * p + j;
      neuron.weights[j] =
          static_cast<float>(rng.gaussian(0.0, std::sqrt(2.0 / p)));
    }
    neuron.bias = 0.0f;
  }

  if (ocfg.word_parallel) {
    train_output_word_parallel(output_, rinc_bits, labels, n_classes, p, ocfg,
                               engine);
  } else {
    train_output_scalar(output_, rinc_bits, labels, n_classes, p, ocfg);
  }

  // Shared quantizer scale over all neurons' reachable activations so raw
  // codes are directly comparable in the hardware argmax.
  const std::size_t n_combos = std::size_t{1} << p;
  Matrix activations(n_classes, n_combos);
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t combo = 0; combo < n_combos; ++combo) {
      activations(c, combo) = output_[c].activation(combo);
    }
  }
  quantizer_ = fit_quantizer(activations, config_.output.quant_bits);
  for (std::size_t c = 0; c < n_classes; ++c) {
    output_[c].codes.resize(n_combos);
    for (std::size_t combo = 0; combo < n_combos; ++combo) {
      output_[c].codes[combo] = quantize_value(activations(c, combo), quantizer_);
    }
  }
  // The fused argmax reads the precomputed planes; keep them in sync with
  // the fresh codes (heap storage — a retrained mapping-backed model keeps
  // its module LUTs on the mapping but owns its new output layer).
  rebuild_code_planes();
}

int PoetBin::predict(const BitVector& example_bits) const {
  std::size_t best_class = 0;
  std::uint32_t best_code = 0;
  for (std::size_t c = 0; c < output_.size(); ++c) {
    const SparseOutputNeuron& neuron = output_[c];
    std::size_t combo = 0;
    for (std::size_t j = 0; j < neuron.input_modules.size(); ++j) {
      if (modules_[neuron.input_modules[j]].eval(example_bits)) {
        combo |= std::size_t{1} << j;
      }
    }
    const std::uint32_t code = neuron.codes[combo];
    // Ties resolve to the lower class index, same rule as the comparator
    // tree the hardware would instantiate.
    if (c == 0 || code > best_code) {
      best_code = code;
      best_class = c;
    }
  }
  return static_cast<int>(best_class);
}

std::vector<int> PoetBin::predict_dataset(const BitMatrix& features) const {
  return predict_from_rinc_bits(rinc_outputs(features));
}

std::vector<int> PoetBin::predict_from_rinc_bits(
    const BitMatrix& bits) const {
  const std::size_t n = bits.rows();
  const std::size_t p = config_.rinc.lut_inputs;
  POETBIN_CHECK_MSG(bits.cols() >= modules_.size(),
                    "RINC output bank must have one column per module");
  std::vector<int> predictions(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best_class = 0;
    std::uint32_t best_code = 0;
    for (std::size_t c = 0; c < output_.size(); ++c) {
      std::size_t combo = 0;
      for (std::size_t j = 0; j < p; ++j) {
        if (bits.get(i, output_[c].input_modules[j])) combo |= std::size_t{1} << j;
      }
      const std::uint32_t code = output_[c].codes[combo];
      if (c == 0 || code > best_code) {
        best_code = code;
        best_class = c;
      }
    }
    predictions[i] = static_cast<int>(best_class);
  }
  return predictions;
}

double prediction_accuracy(const std::vector<int>& predictions,
                           const std::vector<int>& labels) {
  POETBIN_CHECK(predictions.size() == labels.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) / labels.size();
}

double PoetBin::accuracy(const BitMatrix& features,
                         const std::vector<int>& labels) const {
  return prediction_accuracy(predict_dataset(features), labels);
}

double PoetBin::intermediate_fidelity(const BitMatrix& rinc_bits,
                                      const BitMatrix& teacher_bits) {
  POETBIN_CHECK(rinc_bits.rows() == teacher_bits.rows());
  POETBIN_CHECK(rinc_bits.cols() == teacher_bits.cols());
  if (rinc_bits.rows() == 0 || rinc_bits.cols() == 0) return 1.0;
  std::size_t agree = 0;
  for (std::size_t c = 0; c < rinc_bits.cols(); ++c) {
    agree += rinc_bits.column(c).xnor_popcount(teacher_bits.column(c));
  }
  return static_cast<double>(agree) /
         static_cast<double>(rinc_bits.rows() * rinc_bits.cols());
}

std::size_t PoetBin::lut_count() const {
  std::size_t total = 0;
  for (const auto& module : modules_) total += module.lut_count();
  total += output_.size() * static_cast<std::size_t>(config_.output.quant_bits);
  return total;
}

}  // namespace poetbin
