// RINC convolution — the paper's §6 future-work item ("in future work, we
// will implement the convolutional layers with RINC modules").
//
// A binarized conv layer maps a C x H x W binary feature map to out_c
// binary output maps, where each output bit is a boolean function of a
// C x k x k patch. That function is exactly a wide binary neuron, so it is
// distilled into one RINC module per *output channel* (weight sharing: the
// same module is applied at every spatial position, mirroring how a conv
// kernel is shared). Training pools the patches of all examples and all
// positions into one distillation dataset per channel.
//
// Inference has two paths: the scalar `eval_dataset` oracle (materializes
// one patch row per example x position) and the bitsliced
// `eval_dataset_batched`, which never materializes patches at all — each
// patch bit of each output position is just a *pointer* to the packed
// column words of the corresponding input feature (or to a shared zero
// buffer for padding), so the channel modules Shannon-reduce straight over
// the input columns, 64 examples per word op, on the active SIMD backend.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "util/bit_matrix.h"

namespace poetbin {

struct BinShape3 {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t flat() const { return channels * height * width; }
  bool operator==(const BinShape3&) const = default;
};

struct RincConvConfig {
  std::size_t out_channels = 8;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;  // out-of-frame bits read as 0
  RincConfig rinc;          // per-channel module shape
  // Cap on pooled (example x position) patch rows used for training each
  // channel's module; rows are subsampled deterministically beyond it.
  std::size_t max_train_patches = 200000;
};

class RincConvLayer {
 public:
  RincConvLayer() = default;

  // `inputs` holds n examples of in_shape.flat() bits each (channel-major);
  // `targets` holds the binarized teacher conv outputs, n examples of
  // out_channels * out_h * out_w bits (channel-major), where out_h/out_w
  // follow from kernel/stride/padding. The (in_shape, config) pair is
  // validated up front (see validate below) — malformed geometry aborts
  // with a named contract instead of failing deep inside patch gathering.
  static RincConvLayer train(const BitMatrix& inputs, BinShape3 in_shape,
                             const BitMatrix& targets,
                             const RincConvConfig& config);

  // Reconstruction from stored artefacts (deserialization, hand-built
  // layers in tests): validates the geometry, that `modules` holds exactly
  // config.out_channels entries, and that no module references a feature
  // at or beyond patch_bits(). `storage_keepalive`, when non-null, is held
  // for the layer's lifetime (packed-model loads pass the file mapping the
  // module LUT splats view).
  static RincConvLayer from_parts(
      BinShape3 in_shape, RincConvConfig config,
      std::vector<RincModule> modules,
      std::shared_ptr<const void> storage_keepalive = nullptr);

  // Aborts (POETBIN_CHECK) unless the geometry is servable: nonzero
  // in_shape dims, out_channels, kernel and stride; padding < kernel (a
  // padding of kernel or more would admit all-padding patches); and a
  // kernel that fits the padded frame.
  static void validate(BinShape3 in_shape, const RincConvConfig& config);

  BinShape3 input_shape() const { return in_shape_; }
  BinShape3 output_shape() const { return out_shape_; }
  const RincConvConfig& config() const { return config_; }
  std::size_t patch_bits() const {
    return in_shape_.channels * config_.kernel * config_.kernel;
  }

  // Applies the layer to n examples; returns n x out_shape().flat() bits.
  // Scalar reference path (the oracle for the bitsliced pass).
  BitMatrix eval_dataset(const BitMatrix& inputs) const;

  // Word-parallel layer application, bit-identical to eval_dataset at any
  // thread count and on every word backend. The im2col-style transpose is
  // done once per call as a (position x patch-bit) table of column-word
  // pointers — padding resolves to a shared zero buffer, so padding bits
  // are pre-masked by construction — and (channel x position x chunk) jobs
  // spread across the engine's pool, each writing disjoint words of the
  // output columns. Defined in core/batch_eval.cpp.
  BitMatrix eval_dataset_batched(const BitMatrix& inputs,
                                 const BatchEngine& engine) const;

  const std::vector<RincModule>& channel_modules() const { return modules_; }
  // LUTs for one instantiation of every channel module. In hardware the
  // modules are replicated per position (fully parallel single-cycle conv)
  // or time-multiplexed; both costs derive from this count.
  std::size_t lut_count_per_position() const;

  // Fraction of output bits matching the targets (distillation fidelity).
  double fidelity(const BitMatrix& inputs, const BitMatrix& targets) const;

 private:
  // Patch rows (one per example x position) for the whole dataset.
  BitMatrix gather_patches(const BitMatrix& inputs) const;

  BinShape3 in_shape_;
  BinShape3 out_shape_;
  RincConvConfig config_;
  std::vector<RincModule> modules_;  // one per output channel
  // Non-null when the module LUT tables view a packed-model mapping; keeps
  // the mapping alive for this layer and every copy of it.
  std::shared_ptr<const void> storage_keepalive_;
};

// A servable convolutional model: a RINC conv front end whose flattened
// output bits feed a standard PoetBin classifier. This is the unit the
// serializers, the packed format and the serving Runtime move around —
// `n_features()` is the *frame* width (C x H x W), what a client puts on
// the wire; the classifier's own feature indices address conv output bits.
struct ConvModel {
  RincConvLayer conv;
  PoetBin classifier;

  std::size_t n_features() const { return conv.input_shape().flat(); }
  std::size_t n_classes() const { return classifier.n_classes(); }

  // Scalar single-frame predict (the serving cache/fallback path).
  int predict(const BitVector& frame_bits) const;
  // Scalar dataset oracle: conv eval_dataset then classifier
  // predict_dataset.
  std::vector<int> predict_dataset(const BitMatrix& frames) const;
  // Fused word-parallel path, bit-identical to predict_dataset: bitsliced
  // conv pass, then the classifier's fused bitsliced argmax, both on the
  // same engine. Defined in core/batch_eval.cpp.
  std::vector<int> predict_dataset_batched(const BitMatrix& frames,
                                           const BatchEngine& engine) const;
};

}  // namespace poetbin
