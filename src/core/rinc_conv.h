// RINC convolution — the paper's §6 future-work item ("in future work, we
// will implement the convolutional layers with RINC modules").
//
// A binarized conv layer maps a C x H x W binary feature map to out_c
// binary output maps, where each output bit is a boolean function of a
// C x k x k patch. That function is exactly a wide binary neuron, so it is
// distilled into one RINC module per *output channel* (weight sharing: the
// same module is applied at every spatial position, mirroring how a conv
// kernel is shared). Training pools the patches of all examples and all
// positions into one distillation dataset per channel.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rinc.h"
#include "util/bit_matrix.h"

namespace poetbin {

struct BinShape3 {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t flat() const { return channels * height * width; }
  bool operator==(const BinShape3&) const = default;
};

struct RincConvConfig {
  std::size_t out_channels = 8;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;  // out-of-frame bits read as 0
  RincConfig rinc;          // per-channel module shape
  // Cap on pooled (example x position) patch rows used for training each
  // channel's module; rows are subsampled deterministically beyond it.
  std::size_t max_train_patches = 200000;
};

class RincConvLayer {
 public:
  RincConvLayer() = default;

  // `inputs` holds n examples of in_shape.flat() bits each (channel-major);
  // `targets` holds the binarized teacher conv outputs, n examples of
  // out_channels * out_h * out_w bits (channel-major), where out_h/out_w
  // follow from kernel/stride/padding.
  static RincConvLayer train(const BitMatrix& inputs, BinShape3 in_shape,
                             const BitMatrix& targets,
                             const RincConvConfig& config);

  BinShape3 input_shape() const { return in_shape_; }
  BinShape3 output_shape() const { return out_shape_; }
  std::size_t patch_bits() const {
    return in_shape_.channels * config_.kernel * config_.kernel;
  }

  // Applies the layer to n examples; returns n x out_shape().flat() bits.
  BitMatrix eval_dataset(const BitMatrix& inputs) const;

  const std::vector<RincModule>& channel_modules() const { return modules_; }
  // LUTs for one instantiation of every channel module. In hardware the
  // modules are replicated per position (fully parallel single-cycle conv)
  // or time-multiplexed; both costs derive from this count.
  std::size_t lut_count_per_position() const;

  // Fraction of output bits matching the targets (distillation fidelity).
  double fidelity(const BitMatrix& inputs, const BitMatrix& targets) const;

 private:
  // Patch rows (one per example x position) for the whole dataset.
  BitMatrix gather_patches(const BitMatrix& inputs) const;

  BinShape3 in_shape_;
  BinShape3 out_shape_;
  RincConvConfig config_;
  std::vector<RincModule> modules_;  // one per output channel
};

}  // namespace poetbin
