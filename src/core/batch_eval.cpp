#include "core/batch_eval.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "core/rinc_conv.h"
#include "util/aligned_vector.h"
#include "util/check.h"
#include "util/word_backend.h"

namespace poetbin {

namespace {

// All-ones in the positions a dataset of n_rows bits occupies within its
// last word (0 means the last word is full).
std::uint64_t tail_mask(std::size_t n_rows) {
  const std::size_t rem = n_rows & 63;
  return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
}

// Shared guts of the public word kernels once the splat table and the input
// word streams are resolved. `splat` is the LUT's precomputed splat words
// (Lut::splat_words — owned or viewing a packed-model mapping, so nothing
// is rebuilt per chunk). `columns[j]` must expose words
// [word_begin, word_end) of address bit j at offsets word_begin..; the
// kernels pass either BitMatrix column words (absolute indexing) or child
// scratch buffers (rebased to 0) through `base`. The Shannon reduction
// itself — the 2^P - 1 word muxes per output word — runs on the active SIMD
// word backend; only the dataset's last word needs the tail re-masked.
void reduce_words(const std::uint64_t* splat, std::size_t arity,
                  const std::vector<const std::uint64_t*>& columns,
                  std::size_t word_begin, std::size_t word_end,
                  std::size_t base, std::size_t n_rows, std::uint64_t* out) {
  word_ops().lut_reduce(splat, arity, columns.data(), base, word_begin,
                        word_end, out);
  const std::size_t last_word = BitVector::words_needed(n_rows);
  if (word_begin < word_end && word_end == last_word) {
    out[word_end - 1 - word_begin] &= tail_mask(n_rows);
  }
}

}  // namespace

void eval_lut_words(const Lut& lut, const BitMatrix& features,
                    std::size_t word_begin, std::size_t word_end,
                    std::uint64_t* out) {
  POETBIN_CHECK(word_begin <= word_end);
  POETBIN_CHECK(word_end <= features.word_count());
  const std::size_t arity = lut.arity();
  std::vector<const std::uint64_t*> columns(arity);
  for (std::size_t j = 0; j < arity; ++j) {
    POETBIN_CHECK(lut.inputs()[j] < features.cols());
    columns[j] = features.column_words(lut.inputs()[j]).data();
  }
  reduce_words(lut.splat_words().data(), arity, columns, word_begin, word_end,
               /*base=*/0, features.rows(), out);
}

void eval_rinc_words(const RincModule& module, const BitMatrix& features,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out) {
  if (module.is_leaf()) {
    eval_lut_words(module.leaf_lut(), features, word_begin, word_end, out);
    return;
  }
  const auto& children = module.children();
  const std::size_t n_words = word_end - word_begin;
  std::vector<WordVec> child_words(children.size());
  std::vector<const std::uint64_t*> columns(children.size());
  for (std::size_t c = 0; c < children.size(); ++c) {
    child_words[c].resize(n_words);
    eval_rinc_words(children[c], features, word_begin, word_end,
                    child_words[c].data());
    columns[c] = child_words[c].data();
  }
  // Child buffers are rebased to the chunk, hence base = word_begin.
  reduce_words(module.mat_lut().splat_words().data(), children.size(), columns,
               word_begin, word_end, word_begin, features.rows(), out);
}

void eval_rinc_patch_words(const RincModule& module,
                           const std::uint64_t* const* patch_columns,
                           std::size_t n_patch_bits, std::size_t n_rows,
                           std::size_t word_begin, std::size_t word_end,
                           std::uint64_t* out) {
  POETBIN_CHECK(word_begin <= word_end);
  POETBIN_CHECK(word_end <= BitVector::words_needed(n_rows));
  if (module.is_leaf()) {
    const Lut& lut = module.leaf_lut();
    const std::size_t arity = lut.arity();
    std::vector<const std::uint64_t*> columns(arity);
    for (std::size_t j = 0; j < arity; ++j) {
      POETBIN_CHECK(lut.inputs()[j] < n_patch_bits);
      columns[j] = patch_columns[lut.inputs()[j]];
    }
    reduce_words(lut.splat_words().data(), arity, columns, word_begin,
                 word_end, /*base=*/0, n_rows, out);
    return;
  }
  const auto& children = module.children();
  const std::size_t n_words = word_end - word_begin;
  std::vector<WordVec> child_words(children.size());
  std::vector<const std::uint64_t*> columns(children.size());
  for (std::size_t c = 0; c < children.size(); ++c) {
    child_words[c].resize(n_words);
    eval_rinc_patch_words(children[c], patch_columns, n_patch_bits, n_rows,
                          word_begin, word_end, child_words[c].data());
    columns[c] = child_words[c].data();
  }
  // Child buffers are rebased to the chunk, hence base = word_begin.
  reduce_words(module.mat_lut().splat_words().data(), children.size(), columns,
               word_begin, word_end, word_begin, n_rows, out);
}

BitVector Lut::eval_dataset_bitsliced(const BitMatrix& features) const {
  BitVector out(features.rows());
  eval_lut_words(*this, features, 0, features.word_count(), out.words());
  return out;
}

BitVector RincModule::eval_dataset_batched(const BitMatrix& features) const {
  BitVector out(features.rows());
  eval_rinc_words(*this, features, 0, features.word_count(), out.words());
  return out;
}

// ---------------------------------------------------------------------------
// BatchEngine
// ---------------------------------------------------------------------------

// Persistent worker pool. Each parallel_for publishes a job function and a
// shared atomic job counter; workers (and the calling thread) drain it,
// and the caller blocks until every worker has gone back to sleep.
class BatchEngine::ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_workers) {
    threads_.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  void run(std::size_t n_jobs, const std::function<void(std::size_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      n_jobs_ = n_jobs;
      // order: relaxed — published to the workers by the mu_ unlock +
      // generation bump below (mutex release/acquire), not by this store.
      next_job_.store(0, std::memory_order_relaxed);
      workers_active_ = threads_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    drain();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return workers_active_ == 0; });
    job_ = nullptr;
  }

 private:
  void drain() {
    for (;;) {
      // order: relaxed — only the atomicity of the claim matters; job_ and
      // n_jobs_ were published by the mutex handoff in run(), and each
      // claimed index is touched by exactly one thread.
      const std::size_t job = next_job_.fetch_add(1, std::memory_order_relaxed);
      if (job >= n_jobs_) return;
      (*job_)(job);
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--workers_active_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t n_jobs_ = 0;
  std::atomic<std::size_t> next_job_{0};
  std::size_t workers_active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

BatchEngine::BatchEngine(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads_ = n_threads;
  if (n_threads_ > 1) {
    // The calling thread participates in every parallel_for, so spawn one
    // fewer worker than the requested parallelism.
    pool_ = std::make_unique<ThreadPool>(n_threads_ - 1);
  }
}

BatchEngine::~BatchEngine() = default;

void BatchEngine::parallel_for(
    std::size_t n_jobs, const std::function<void(std::size_t)>& fn) const {
  if (pool_ == nullptr || n_jobs <= 1) {
    for (std::size_t job = 0; job < n_jobs; ++job) fn(job);
    return;
  }
  // The pool has one job slot; dispatching a second parallel_for while one
  // is in flight (from a job, or from another user thread) would corrupt it
  // silently. Fail fast instead. The flag is cleared by RAII so a throwing
  // job doesn't poison the engine for later (legal, sequential) calls.
  //
  // order: acquire on the exchange pairs with BusyReset's release below —
  // the lock-acquire half of a try-lock: when caller B's exchange reads the
  // false that caller A's reset stored, everything A's pass wrote (output
  // words included) happens-before B's pass. The flag is per-engine state,
  // so two engines on different Runtimes never contend here
  // (race_stress_test's TwoEnginesNeverFalseTripBusyGuard pins that down).
  POETBIN_CHECK_MSG(!busy_.exchange(true, std::memory_order_acquire),
                    "BatchEngine is not re-entrant: parallel_for called while "
                    "another parallel_for on the same engine is in flight; "
                    "use one engine per concurrent dataset pass");
  struct BusyReset {
    std::atomic<bool>* flag;
    // order: release is the unlock half of the handoff — it publishes this
    // pass's writes to the next exchange-acquire on the same engine.
    ~BusyReset() { flag->store(false, std::memory_order_release); }
  } reset{&busy_};  // busy_ is mutable, so &busy_ is non-const here
  pool_->run(n_jobs, fn);
}

namespace {

struct WordChunks {
  std::size_t n_words = 0;
  std::size_t chunk_words = 0;
  std::size_t n_chunks = 0;
};

// Word-aligned chunking of the example range: a few chunks per thread for
// load balance, but no smaller than 16 words (1024 examples) so per-chunk
// setup (table splatting, child buffers) stays amortized.
WordChunks chunk_words(std::size_t n_words, std::size_t n_threads) {
  WordChunks chunks;
  chunks.n_words = n_words;
  if (n_words == 0) return chunks;
  const std::size_t target = std::max<std::size_t>(1, 4 * n_threads);
  chunks.chunk_words = std::max<std::size_t>(16, (n_words + target - 1) / target);
  chunks.n_chunks = (n_words + chunks.chunk_words - 1) / chunks.chunk_words;
  return chunks;
}

}  // namespace

BitVector BatchEngine::eval_dataset(const RincModule& module,
                                    const BitMatrix& features) const {
  BitVector out(features.rows());
  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(chunks.n_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunks.chunk_words;
    const std::size_t end = std::min(chunks.n_words, begin + chunks.chunk_words);
    eval_rinc_words(module, features, begin, end, out.words() + begin);
  });
  return out;
}

BitMatrix BatchEngine::rinc_outputs(const PoetBin& model,
                                    const BitMatrix& features) const {
  const auto& modules = model.modules();
  BitMatrix out(features.rows(), modules.size());
  // One job per (module, chunk): module count alone (nc x P) can be smaller
  // than the pool on large machines, and a single huge module should still
  // spread across threads.
  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(modules.size() * chunks.n_chunks, [&](std::size_t job) {
    const std::size_t m = job / chunks.n_chunks;
    const std::size_t chunk = job % chunks.n_chunks;
    const std::size_t begin = chunk * chunks.chunk_words;
    const std::size_t end = std::min(chunks.n_words, begin + chunks.chunk_words);
    eval_rinc_words(modules[m], features, begin, end,
                    out.column(m).words() + begin);
  });
  return out;
}

std::vector<int> BatchEngine::predict_dataset(const PoetBin& model,
                                              const BitMatrix& features) const {
  const std::size_t n = features.rows();
  const auto& neurons = model.output_neurons();
  std::vector<int> predictions(n, 0);
  // With zero or one output neuron every example is class 0 (the scalar
  // argmax initializes to class 0), and there is nothing to compare.
  if (n == 0 || neurons.size() <= 1) return predictions;

  const auto& modules = model.modules();
  const std::size_t p = model.lut_inputs();
  const std::size_t n_combos = std::size_t{1} << p;

  // Code bit-planes: each plane of each neuron's code is a boolean
  // function of its P input bits, so it Shannon-reduces with the same word
  // kernel as the LUT layers — the argmax becomes pure word ops. The model
  // holds the planes precomputed (PoetBin::code_plane), owned on the heap
  // or viewing a packed-model mapping; nothing is splatted per call.
  for (const auto& neuron : neurons) {
    POETBIN_CHECK(neuron.input_modules.size() == p);
    POETBIN_CHECK(neuron.codes.size() == n_combos);
  }
  const std::size_t n_planes = model.code_plane_count();
  POETBIN_CHECK_MSG(n_planes >= 1, "model has no code planes");
  const std::size_t n_class_planes =
      static_cast<std::size_t>(std::bit_width(neurons.size() - 1));

  const WordOps& ops = word_ops();
  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(chunks.n_chunks, [&](std::size_t chunk) {
    const std::size_t word_begin = chunk * chunks.chunk_words;
    const std::size_t word_end =
        std::min(chunks.n_words, word_begin + chunks.chunk_words);
    const std::size_t n_chunk = word_end - word_begin;

    // Chunk-sized word buffers, reused across chunks per worker thread: the
    // RINC bank's outputs, the candidate/best code planes and the class
    // index planes all stay cache-resident — predict never materializes an
    // n-row intermediate matrix.
    static thread_local WordVec module_words, cand, best, cls;
    static thread_local std::vector<const std::uint64_t*> columns;
    static thread_local std::vector<std::uint64_t*> cand_ptrs, best_ptrs,
        cls_ptrs;
    module_words.resize(modules.size() * n_chunk);
    cand.resize(n_planes * n_chunk);
    best.resize(n_planes * n_chunk);
    cls.assign(n_class_planes * n_chunk, 0);
    columns.resize(p);
    cand_ptrs.resize(n_planes);
    best_ptrs.resize(n_planes);
    cls_ptrs.resize(n_class_planes);
    for (std::size_t plane = 0; plane < n_planes; ++plane) {
      cand_ptrs[plane] = cand.data() + plane * n_chunk;
      best_ptrs[plane] = best.data() + plane * n_chunk;
    }
    for (std::size_t q = 0; q < n_class_planes; ++q) {
      cls_ptrs[q] = cls.data() + q * n_chunk;
    }

    for (std::size_t m = 0; m < modules.size(); ++m) {
      eval_rinc_words(modules[m], features, word_begin, word_end,
                      module_words.data() + m * n_chunk);
    }

    for (std::size_t c = 0; c < neurons.size(); ++c) {
      for (std::size_t j = 0; j < p; ++j) {
        columns[j] =
            module_words.data() + neurons[c].input_modules[j] * n_chunk;
      }
      // Class 0 seeds the running best directly; later classes reduce into
      // the candidate planes and run the bitsliced comparator. Bits beyond
      // n in the dataset's last word carry garbage codes, but the
      // extraction below never reads them.
      std::uint64_t* const* out_ptrs = c == 0 ? best_ptrs.data()
                                              : cand_ptrs.data();
      for (std::size_t plane = 0; plane < n_planes; ++plane) {
        ops.lut_reduce(model.code_plane(c, plane), p, columns.data(),
                       word_begin, word_begin, word_end, out_ptrs[plane]);
      }
      if (c != 0) {
        ops.argmax_update(cand_ptrs.data(), best_ptrs.data(), n_planes,
                          cls_ptrs.data(), n_class_planes,
                          static_cast<std::uint32_t>(c), n_chunk);
      }
    }

    // Un-slice the class-index planes into per-example predictions.
    for (std::size_t w = 0; w < n_chunk; ++w) {
      const std::size_t row0 = (word_begin + w) * 64;
      const std::size_t rows = std::min<std::size_t>(64, n - row0);
      for (std::size_t q = 0; q < n_class_planes; ++q) {
        const std::uint64_t plane_bits = cls[q * n_chunk + w];
        for (std::size_t i = 0; i < rows; ++i) {
          predictions[row0 + i] |=
              static_cast<int>((plane_bits >> i) & 1u) << q;
        }
      }
    }
  });
  return predictions;
}

double BatchEngine::accuracy(const PoetBin& model, const BitMatrix& features,
                             const std::vector<int>& labels) const {
  return prediction_accuracy(predict_dataset(model, features), labels);
}

// --- PoetBin conveniences (declared in poetbin.h) --------------------------

BitMatrix PoetBin::rinc_outputs_batched(const BitMatrix& features,
                                        const BatchEngine& engine) const {
  return engine.rinc_outputs(*this, features);
}

std::vector<int> PoetBin::predict_dataset_batched(
    const BitMatrix& features, const BatchEngine& engine) const {
  return engine.predict_dataset(*this, features);
}

double PoetBin::accuracy_batched(const BitMatrix& features,
                                 const std::vector<int>& labels,
                                 const BatchEngine& engine) const {
  return engine.accuracy(*this, features, labels);
}

// --- RincConvLayer / ConvModel (declared in core/rinc_conv.h) --------------

BitMatrix RincConvLayer::eval_dataset_batched(const BitMatrix& inputs,
                                              const BatchEngine& engine) const {
  POETBIN_CHECK(inputs.cols() == in_shape_.flat());
  const std::size_t n = inputs.rows();
  const std::size_t positions = out_shape_.height * out_shape_.width;
  const std::size_t n_bits = patch_bits();
  BitMatrix out(n, out_shape_.flat());
  if (n == 0 || modules_.empty()) return out;

  // One shared all-zero column backs every padding bit of every position:
  // "padding bits pre-masked" is simply reading packed zeros.
  const WordVec zeros(inputs.word_count(), 0);

  // The im2col transpose as pointers instead of copied bits:
  // table[p * n_bits + j] is the packed input column behind patch bit j of
  // output position p (same c -> ky -> kx bit order as gather_patches).
  std::vector<const std::uint64_t*> table(positions * n_bits);
  const std::size_t in_h = in_shape_.height;
  const std::size_t in_w = in_shape_.width;
  const std::size_t plane = in_h * in_w;
  const std::size_t kernel = config_.kernel;
  for (std::size_t oy = 0; oy < out_shape_.height; ++oy) {
    for (std::size_t ox = 0; ox < out_shape_.width; ++ox) {
      const std::size_t p = oy * out_shape_.width + ox;
      std::size_t bit = 0;
      for (std::size_t c = 0; c < in_shape_.channels; ++c) {
        for (std::size_t ky = 0; ky < kernel; ++ky) {
          const long iy = static_cast<long>(oy * config_.stride + ky) -
                          static_cast<long>(config_.padding);
          for (std::size_t kx = 0; kx < kernel; ++kx, ++bit) {
            const long ix = static_cast<long>(ox * config_.stride + kx) -
                            static_cast<long>(config_.padding);
            const bool in_frame = iy >= 0 && ix >= 0 &&
                                  iy < static_cast<long>(in_h) &&
                                  ix < static_cast<long>(in_w);
            table[p * n_bits + bit] =
                in_frame ? inputs
                               .column_words(c * plane +
                                             static_cast<std::size_t>(iy) *
                                                 in_w +
                                             static_cast<std::size_t>(ix))
                               .data()
                         : zeros.data();
          }
        }
      }
    }
  }

  // One job per (channel, position, chunk): each writes a disjoint word
  // range of one output column, so any thread count is race-free and
  // bit-identical (word kernels are exact).
  const WordChunks chunks =
      chunk_words(inputs.word_count(), engine.n_threads());
  engine.parallel_for(
      modules_.size() * positions * chunks.n_chunks, [&](std::size_t job) {
        const std::size_t channel = job / (positions * chunks.n_chunks);
        const std::size_t rest = job % (positions * chunks.n_chunks);
        const std::size_t p = rest / chunks.n_chunks;
        const std::size_t chunk = rest % chunks.n_chunks;
        const std::size_t begin = chunk * chunks.chunk_words;
        const std::size_t end =
            std::min(chunks.n_words, begin + chunks.chunk_words);
        eval_rinc_patch_words(
            modules_[channel], table.data() + p * n_bits, n_bits, n, begin,
            end, out.column(channel * positions + p).words() + begin);
      });
  return out;
}

std::vector<int> ConvModel::predict_dataset_batched(
    const BitMatrix& frames, const BatchEngine& engine) const {
  // Two sequential passes on one engine (parallel_for is not re-entrant,
  // but back-to-back calls are the intended use).
  return engine.predict_dataset(classifier,
                                conv.eval_dataset_batched(frames, engine));
}

}  // namespace poetbin
