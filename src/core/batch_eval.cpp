#include "core/batch_eval.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace poetbin {

namespace {

// All-ones in the positions a dataset of n_rows bits occupies within its
// last word (0 means the last word is full).
std::uint64_t tail_mask(std::size_t n_rows) {
  const std::size_t rem = n_rows & 63;
  return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
}

// Truth table splatted to one word per entry: splat[a] is ~0 when
// table[a] is set. The Shannon reduction below consumes these constants.
std::vector<std::uint64_t> splat_table(const BitVector& table) {
  std::vector<std::uint64_t> splat(table.size());
  for (std::size_t a = 0; a < table.size(); ++a) {
    splat[a] = table.get(a) ? ~0ULL : 0ULL;
  }
  return splat;
}

// One word of LUT output from P input words: iteratively Shannon-reduce the
// splatted table over address bit 0, then 1, ... Each step is the bitwise
// mux f0 ^ ((f0 ^ f1) & x) applied to adjacent half-tables, so the whole
// evaluation is 2^P - 1 word muxes and touches no per-example state.
// `scratch` must hold at least 2^(P-1) words (unused when P == 0).
std::uint64_t shannon_reduce(const std::uint64_t* splat, std::size_t arity,
                             const std::uint64_t* in, std::uint64_t* scratch) {
  if (arity == 0) return splat[0];
  std::size_t half = std::size_t{1} << (arity - 1);
  const std::uint64_t x0 = in[0];
  for (std::size_t k = 0; k < half; ++k) {
    const std::uint64_t f0 = splat[2 * k];
    const std::uint64_t f1 = splat[2 * k + 1];
    scratch[k] = f0 ^ ((f0 ^ f1) & x0);
  }
  for (std::size_t j = 1; j < arity; ++j) {
    half >>= 1;
    const std::uint64_t x = in[j];
    for (std::size_t k = 0; k < half; ++k) {
      const std::uint64_t f0 = scratch[2 * k];
      const std::uint64_t f1 = scratch[2 * k + 1];
      scratch[k] = f0 ^ ((f0 ^ f1) & x);
    }
  }
  return scratch[0];
}

// Shared guts of the public word kernels once the splat table and the input
// word streams are resolved. `columns[j]` must expose words
// [word_begin, word_end) of address bit j at offsets word_begin..; the
// kernels pass either BitMatrix column words (absolute indexing) or child
// scratch buffers (rebased to 0) through `base`.
void reduce_words(const std::vector<std::uint64_t>& splat, std::size_t arity,
                  const std::vector<const std::uint64_t*>& columns,
                  std::size_t word_begin, std::size_t word_end,
                  std::size_t base, std::size_t n_rows, std::uint64_t* out) {
  std::vector<std::uint64_t> scratch(splat.size() / 2 + 1);
  std::vector<std::uint64_t> in(arity);
  const std::size_t last_word = BitVector::words_needed(n_rows);
  for (std::size_t w = word_begin; w < word_end; ++w) {
    for (std::size_t j = 0; j < arity; ++j) in[j] = columns[j][w - base];
    std::uint64_t word = shannon_reduce(splat.data(), arity, in.data(),
                                        scratch.data());
    if (w + 1 == last_word) word &= tail_mask(n_rows);
    out[w - word_begin] = word;
  }
}

}  // namespace

void eval_lut_words(const Lut& lut, const BitMatrix& features,
                    std::size_t word_begin, std::size_t word_end,
                    std::uint64_t* out) {
  POETBIN_CHECK(word_begin <= word_end);
  POETBIN_CHECK(word_end <= features.word_count());
  const std::size_t arity = lut.arity();
  std::vector<const std::uint64_t*> columns(arity);
  for (std::size_t j = 0; j < arity; ++j) {
    POETBIN_CHECK(lut.inputs()[j] < features.cols());
    columns[j] = features.column_words(lut.inputs()[j]).data();
  }
  reduce_words(splat_table(lut.table()), arity, columns, word_begin, word_end,
               /*base=*/0, features.rows(), out);
}

void eval_rinc_words(const RincModule& module, const BitMatrix& features,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out) {
  if (module.is_leaf()) {
    eval_lut_words(module.leaf_lut(), features, word_begin, word_end, out);
    return;
  }
  const auto& children = module.children();
  const std::size_t n_words = word_end - word_begin;
  std::vector<std::vector<std::uint64_t>> child_words(children.size());
  std::vector<const std::uint64_t*> columns(children.size());
  for (std::size_t c = 0; c < children.size(); ++c) {
    child_words[c].resize(n_words);
    eval_rinc_words(children[c], features, word_begin, word_end,
                    child_words[c].data());
    columns[c] = child_words[c].data();
  }
  // Child buffers are rebased to the chunk, hence base = word_begin.
  reduce_words(splat_table(module.mat_lut().table()), children.size(), columns,
               word_begin, word_end, word_begin, features.rows(), out);
}

BitVector Lut::eval_dataset_bitsliced(const BitMatrix& features) const {
  BitVector out(features.rows());
  eval_lut_words(*this, features, 0, features.word_count(), out.words());
  return out;
}

BitVector RincModule::eval_dataset_batched(const BitMatrix& features) const {
  BitVector out(features.rows());
  eval_rinc_words(*this, features, 0, features.word_count(), out.words());
  return out;
}

// ---------------------------------------------------------------------------
// BatchEngine
// ---------------------------------------------------------------------------

// Persistent worker pool. Each parallel_for publishes a job function and a
// shared atomic job counter; workers (and the calling thread) drain it,
// and the caller blocks until every worker has gone back to sleep.
class BatchEngine::ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_workers) {
    threads_.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  void run(std::size_t n_jobs, const std::function<void(std::size_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      n_jobs_ = n_jobs;
      next_job_.store(0, std::memory_order_relaxed);
      workers_active_ = threads_.size();
      ++generation_;
    }
    cv_work_.notify_all();
    drain();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return workers_active_ == 0; });
    job_ = nullptr;
  }

 private:
  void drain() {
    for (;;) {
      const std::size_t job = next_job_.fetch_add(1, std::memory_order_relaxed);
      if (job >= n_jobs_) return;
      (*job_)(job);
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--workers_active_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t n_jobs_ = 0;
  std::atomic<std::size_t> next_job_{0};
  std::size_t workers_active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

BatchEngine::BatchEngine(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads_ = n_threads;
  if (n_threads_ > 1) {
    // The calling thread participates in every parallel_for, so spawn one
    // fewer worker than the requested parallelism.
    pool_ = std::make_unique<ThreadPool>(n_threads_ - 1);
  }
}

BatchEngine::~BatchEngine() = default;

void BatchEngine::parallel_for(
    std::size_t n_jobs, const std::function<void(std::size_t)>& fn) const {
  if (pool_ == nullptr || n_jobs <= 1) {
    for (std::size_t job = 0; job < n_jobs; ++job) fn(job);
    return;
  }
  pool_->run(n_jobs, fn);
}

namespace {

struct WordChunks {
  std::size_t n_words = 0;
  std::size_t chunk_words = 0;
  std::size_t n_chunks = 0;
};

// Word-aligned chunking of the example range: a few chunks per thread for
// load balance, but no smaller than 16 words (1024 examples) so per-chunk
// setup (table splatting, child buffers) stays amortized.
WordChunks chunk_words(std::size_t n_words, std::size_t n_threads) {
  WordChunks chunks;
  chunks.n_words = n_words;
  if (n_words == 0) return chunks;
  const std::size_t target = std::max<std::size_t>(1, 4 * n_threads);
  chunks.chunk_words = std::max<std::size_t>(16, (n_words + target - 1) / target);
  chunks.n_chunks = (n_words + chunks.chunk_words - 1) / chunks.chunk_words;
  return chunks;
}

}  // namespace

BitVector BatchEngine::eval_dataset(const RincModule& module,
                                    const BitMatrix& features) const {
  BitVector out(features.rows());
  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(chunks.n_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunks.chunk_words;
    const std::size_t end = std::min(chunks.n_words, begin + chunks.chunk_words);
    eval_rinc_words(module, features, begin, end, out.words() + begin);
  });
  return out;
}

BitMatrix BatchEngine::rinc_outputs(const PoetBin& model,
                                    const BitMatrix& features) const {
  const auto& modules = model.modules();
  BitMatrix out(features.rows(), modules.size());
  // One job per (module, chunk): module count alone (nc x P) can be smaller
  // than the pool on large machines, and a single huge module should still
  // spread across threads.
  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(modules.size() * chunks.n_chunks, [&](std::size_t job) {
    const std::size_t m = job / chunks.n_chunks;
    const std::size_t chunk = job % chunks.n_chunks;
    const std::size_t begin = chunk * chunks.chunk_words;
    const std::size_t end = std::min(chunks.n_words, begin + chunks.chunk_words);
    eval_rinc_words(modules[m], features, begin, end,
                    out.column(m).words() + begin);
  });
  return out;
}

std::vector<int> BatchEngine::predict_dataset(const PoetBin& model,
                                              const BitMatrix& features) const {
  const std::size_t n = features.rows();
  const BitMatrix bits = rinc_outputs(model, features);
  std::vector<int> predictions(n, 0);
  const auto& neurons = model.output_neurons();
  const std::size_t p = model.lut_inputs();

  const WordChunks chunks = chunk_words(features.word_count(), n_threads_);
  parallel_for(chunks.n_chunks, [&](std::size_t chunk) {
    const std::size_t word_begin = chunk * chunks.chunk_words;
    const std::size_t word_end =
        std::min(chunks.n_words, word_begin + chunks.chunk_words);
    // Per class: gather the P child words, transpose them into 64 packed
    // combos, then run the quantized-code argmax per example.
    std::vector<std::uint32_t> combos(64);
    for (std::size_t w = word_begin; w < word_end; ++w) {
      const std::size_t row0 = w * 64;
      const std::size_t rows = std::min<std::size_t>(64, n - row0);
      std::vector<std::uint32_t> best_code(rows, 0);
      std::vector<int> best_class(rows, 0);
      for (std::size_t c = 0; c < neurons.size(); ++c) {
        std::fill(combos.begin(), combos.begin() + rows, 0);
        for (std::size_t j = 0; j < p; ++j) {
          const std::uint64_t word =
              bits.column_words(neurons[c].input_modules[j])[w];
          for (std::size_t i = 0; i < rows; ++i) {
            combos[i] |= static_cast<std::uint32_t>((word >> i) & 1) << j;
          }
        }
        for (std::size_t i = 0; i < rows; ++i) {
          const std::uint32_t code = neurons[c].codes[combos[i]];
          // Ties resolve to the lower class index, matching the scalar
          // comparator-tree rule.
          if (c == 0 || code > best_code[i]) {
            best_code[i] = code;
            best_class[i] = static_cast<int>(c);
          }
        }
      }
      for (std::size_t i = 0; i < rows; ++i) {
        predictions[row0 + i] = best_class[i];
      }
    }
  });
  return predictions;
}

double BatchEngine::accuracy(const PoetBin& model, const BitMatrix& features,
                             const std::vector<int>& labels) const {
  const auto predictions = predict_dataset(model, features);
  POETBIN_CHECK(predictions.size() == labels.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) / labels.size();
}

// --- PoetBin conveniences (declared in poetbin.h) --------------------------

BitMatrix PoetBin::rinc_outputs_batched(const BitMatrix& features,
                                        std::size_t n_threads) const {
  return BatchEngine(n_threads).rinc_outputs(*this, features);
}

std::vector<int> PoetBin::predict_dataset_batched(const BitMatrix& features,
                                                  std::size_t n_threads) const {
  return BatchEngine(n_threads).predict_dataset(*this, features);
}

double PoetBin::accuracy_batched(const BitMatrix& features,
                                 const std::vector<int>& labels,
                                 std::size_t n_threads) const {
  return BatchEngine(n_threads).accuracy(*this, features, labels);
}

}  // namespace poetbin
