#include "core/rinc.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace poetbin {

namespace {

// P^l with overflow guard (arities and levels are tiny).
std::size_t ipow(std::size_t base, std::size_t exponent) {
  std::size_t result = 1;
  for (std::size_t i = 0; i < exponent; ++i) {
    POETBIN_CHECK(result <= (static_cast<std::size_t>(-1) / base));
    result *= base;
  }
  return result;
}

}  // namespace

std::size_t full_rinc_lut_count(std::size_t lut_inputs, std::size_t levels) {
  // sum_{l=0..L} P^l
  std::size_t total = 0;
  for (std::size_t l = 0; l <= levels; ++l) total += ipow(lut_inputs, l);
  return total;
}

RincModule RincModule::make_leaf(Lut lut) {
  RincModule module;
  module.leaf_ = std::move(lut);
  return module;
}

RincModule RincModule::make_internal(std::vector<RincModule> children,
                                     MatModule mat) {
  Lut mat_lut(std::vector<std::size_t>(mat.arity(), 0), mat.to_table());
  return make_internal(std::move(children), std::move(mat),
                       std::move(mat_lut));
}

RincModule RincModule::make_internal(std::vector<RincModule> children,
                                     MatModule mat, Lut mat_lut) {
  POETBIN_CHECK(!children.empty());
  POETBIN_CHECK(mat.arity() == children.size());
  POETBIN_CHECK_MSG(mat_lut.arity() == mat.arity(),
                    "prebuilt MAT LUT arity must match the MAT fanin");
  const std::size_t child_level = children.front().level();
  for (const auto& child : children) {
    POETBIN_CHECK_MSG(child.level() == child_level,
                      "RINC children must share a level");
  }
  RincModule module;
  module.children_ = std::move(children);
  module.mat_ = std::move(mat);
  module.mat_lut_ = std::move(mat_lut);
  return module;
}

RincModule RincModule::train(const BitMatrix& features, const BitVector& targets,
                             std::span<const double> weights,
                             const RincConfig& config,
                             const BatchEngine* engine) {
  POETBIN_CHECK(config.lut_inputs >= 2);
  const std::size_t max_dts = ipow(config.lut_inputs, config.levels);
  std::size_t budget = config.total_dts == 0 ? max_dts : config.total_dts;
  POETBIN_CHECK_MSG(budget <= max_dts,
                    "total_dts exceeds P^L; increase levels or lut_inputs");
  return train_impl(features, targets, weights, config, config.levels, budget,
                    engine);
}

RincModule RincModule::train_impl(const BitMatrix& features,
                                  const BitVector& targets,
                                  std::span<const double> weights,
                                  const RincConfig& config, std::size_t level,
                                  std::size_t dt_budget,
                                  const BatchEngine* engine) {
  RincModule module;
  const std::size_t n = features.rows();

  if (level == 0) {
    LevelDtConfig dt_config;
    dt_config.n_inputs = config.lut_inputs;
    dt_config.word_parallel = config.word_parallel_training;
    LevelDtResult fit =
        train_level_dt(features, targets, weights, dt_config, engine);
    module.leaf_ = std::move(fit.lut);
    module.train_error_ = fit.weighted_error;
    return module;
  }

  // Distribute the leaf budget over at most P children, P^(level-1) at a time.
  const std::size_t child_capacity = ipow(config.lut_inputs, level - 1);
  const std::size_t n_children = std::min(
      config.lut_inputs, (dt_budget + child_capacity - 1) / child_capacity);
  POETBIN_CHECK(n_children >= 1);

  AdaboostConfig boost_config = config.adaboost;
  boost_config.n_rounds = n_children;
  boost_config.word_parallel = config.word_parallel_training;

  std::size_t remaining = dt_budget;
  auto train_weak = [&](std::span<const double> round_weights,
                        std::size_t round) -> BitVector {
    (void)round;
    const std::size_t child_budget = std::min(child_capacity, remaining);
    POETBIN_CHECK(child_budget >= 1);
    remaining -= child_budget;
    RincModule child = train_impl(features, targets, round_weights, config,
                                  level - 1, child_budget, engine);
    // The weak learner's dataset pass rides the bitsliced inference path
    // when word-parallel training is on (bit-identical per PR 1's tests).
    BitVector predictions = config.word_parallel_training
                                ? child.eval_dataset_batched(features)
                                : child.eval_dataset(features);
    module.children_.push_back(std::move(child));
    return predictions;
  };

  AdaboostResult boosted =
      run_adaboost(targets, train_weak, boost_config, weights);
  module.mat_ = boosted.mat;
  // The MAT LUT's "inputs" are child-module outputs, not feature indices;
  // index slots are zero-filled and only the table is meaningful.
  module.mat_lut_ = Lut(std::vector<std::size_t>(module.mat_.arity(), 0),
                        module.mat_.to_table());
  module.train_error_ = boosted.train_error;

  // Unweighted check against the boosted predictions: eval() must agree.
  POETBIN_CHECK(module.children_.size() == n_children);
  (void)n;
  return module;
}

std::size_t RincModule::level() const {
  if (is_leaf()) return 0;
  return 1 + children_.front().level();
}

const Lut& RincModule::leaf_lut() const {
  POETBIN_CHECK_MSG(is_leaf(), "leaf_lut() on an internal RINC module");
  return leaf_;
}

const MatModule& RincModule::mat() const {
  POETBIN_CHECK_MSG(!is_leaf(), "mat() on a RINC-0 module");
  return mat_;
}

const Lut& RincModule::mat_lut() const {
  POETBIN_CHECK_MSG(!is_leaf(), "mat_lut() on a RINC-0 module");
  return mat_lut_;
}

bool RincModule::eval(const BitVector& example_bits) const {
  if (is_leaf()) return leaf_.eval(example_bits);
  std::size_t combo = 0;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].eval(example_bits)) combo |= std::size_t{1} << i;
  }
  return mat_lut_.lookup(combo);
}

BitVector RincModule::eval_dataset(const BitMatrix& features) const {
  if (is_leaf()) return leaf_.eval_dataset(features);
  const std::size_t n = features.rows();
  std::vector<BitVector> child_bits;
  child_bits.reserve(children_.size());
  for (const auto& child : children_) {
    child_bits.push_back(child.eval_dataset(features));
  }
  BitVector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t combo = 0;
    for (std::size_t c = 0; c < child_bits.size(); ++c) {
      if (child_bits[c].get(i)) combo |= std::size_t{1} << c;
    }
    if (mat_lut_.lookup(combo)) out.set(i, true);
  }
  return out;
}

std::size_t RincModule::lut_count() const {
  if (is_leaf()) return 1;
  std::size_t total = 1;  // this module's MAT LUT
  for (const auto& child : children_) total += child.lut_count();
  return total;
}

std::size_t RincModule::leaf_dt_count() const {
  if (is_leaf()) return 1;
  std::size_t total = 0;
  for (const auto& child : children_) total += child.leaf_dt_count();
  return total;
}

std::size_t RincModule::depth_in_luts() const {
  if (is_leaf()) return 1;
  std::size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child.depth_in_luts());
  }
  return 1 + deepest;
}

void RincModule::collect_features(std::vector<bool>& seen,
                                  std::size_t n_features) const {
  if (is_leaf()) {
    for (const auto f : leaf_.inputs()) {
      POETBIN_CHECK(f < n_features);
      seen[f] = true;
    }
    return;
  }
  for (const auto& child : children_) child.collect_features(seen, n_features);
}

std::vector<std::size_t> RincModule::distinct_features() const {
  // Upper-bound the feature index space by scanning leaves first.
  std::size_t max_feature = 0;
  for (const auto* lut : leaf_luts()) {
    for (const auto f : lut->inputs()) max_feature = std::max(max_feature, f);
  }
  std::vector<bool> seen(max_feature + 1, false);
  collect_features(seen, max_feature + 1);
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < seen.size(); ++f) {
    if (seen[f]) out.push_back(f);
  }
  return out;
}

void RincModule::collect_leaves(std::vector<const Lut*>& out) const {
  if (is_leaf()) {
    out.push_back(&leaf_);
    return;
  }
  for (const auto& child : children_) child.collect_leaves(out);
}

std::vector<const Lut*> RincModule::leaf_luts() const {
  std::vector<const Lut*> out;
  collect_leaves(out);
  return out;
}

}  // namespace poetbin
