#include "core/serialize.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include <unistd.h>

namespace poetbin {

namespace {

// Internal parse-failure carrier. The parser fails via exception so the
// recursive-descent module loader stays readable; read_model converts it
// into the IoResult error arm at the single API boundary.
struct ParseFailure {
  ModelIoError error;
};

[[noreturn]] void fail(ModelIoError::Kind kind, std::string message) {
  throw ParseFailure{{kind, std::move(message)}};
}

void expect(bool condition, const char* message) {
  if (!condition) fail(ModelIoError::Kind::kCorruptSection, message);
}

std::string bits_to_string(const BitVector& bits) {
  return bits.to_string();  // bit 0 first
}

BitVector bits_from_string(const std::string& text) {
  BitVector bits(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    expect(text[i] == '0' || text[i] == '1',
           "malformed bit string in model file");
    if (text[i] == '1') bits.set(i, true);
  }
  return bits;
}

void save_module(const RincModule& module, std::ostream& out) {
  if (module.is_leaf()) {
    const Lut& lut = module.leaf_lut();
    out << "leaf " << lut.arity();
    for (const auto input : lut.inputs()) out << ' ' << input;
    out << ' ' << bits_to_string(lut.table()) << '\n';
    return;
  }
  out << "node " << module.children().size();
  for (const auto weight : module.mat().weights()) out << ' ' << weight;
  out << '\n';
  for (const auto& child : module.children()) save_module(child, out);
}

RincModule load_module(std::istream& in) {
  std::string kind;
  expect(static_cast<bool>(in >> kind), "truncated model file");
  if (kind == "leaf") {
    std::size_t arity = 0;
    expect(static_cast<bool>(in >> arity), "truncated leaf record");
    expect(arity >= 1 && arity <= 16, "bad leaf arity");
    std::vector<std::size_t> inputs(arity);
    for (auto& input : inputs) {
      expect(static_cast<bool>(in >> input), "truncated leaf inputs");
    }
    std::string table_text;
    expect(static_cast<bool>(in >> table_text), "truncated leaf table");
    expect(table_text.size() == (std::size_t{1} << arity),
           "leaf table size mismatch");
    return RincModule::make_leaf(
        Lut(std::move(inputs), bits_from_string(table_text)));
  }
  expect(kind == "node", "expected 'leaf' or 'node'");
  std::size_t fanin = 0;
  expect(static_cast<bool>(in >> fanin), "truncated node record");
  expect(fanin >= 1 && fanin <= 20, "bad node fanin");
  std::vector<double> weights(fanin);
  for (auto& weight : weights) {
    expect(static_cast<bool>(in >> weight), "truncated node weights");
  }
  std::vector<RincModule> children;
  children.reserve(fanin);
  for (std::size_t c = 0; c < fanin; ++c) children.push_back(load_module(in));
  // make_internal aborts on mixed child levels (a builder-contract check);
  // reject them here so a corrupt file surfaces as an error, not an abort.
  for (const auto& child : children) {
    expect(child.level() == children.front().level(),
           "node children at mixed RINC levels");
  }
  return RincModule::make_internal(std::move(children),
                                   MatModule(std::move(weights)));
}

// The whole parser body; throws ParseFailure on any structural problem.
// Every check that PoetBin::from_parts (or a constructor downstream) would
// abort on is replicated here first, so corrupt bytes can never abort a
// loading process.
PoetBin parse_model(std::istream& in) {
  std::string token;
  std::string version;
  if (!(in >> token >> version) || token != "poetbin-model") {
    fail(ModelIoError::Kind::kVersionMismatch,
         "unrecognised model file header (expected 'poetbin-model v1')");
  }
  if (version != "v1") {
    fail(ModelIoError::Kind::kVersionMismatch,
         "unsupported model format version '" + version + "'");
  }

  PoetBinConfig config;
  std::size_t levels = 0;
  std::size_t total_dts = 0;
  expect(static_cast<bool>(in >> token) && token == "config",
         "expected 'config' section");
  expect(static_cast<bool>(in >> config.rinc.lut_inputs >> levels >>
                           total_dts >> config.n_classes >>
                           config.output.quant_bits),
         "truncated config section");
  config.rinc.levels = levels;
  config.rinc.total_dts = total_dts;
  expect(config.rinc.lut_inputs >= 1 && config.rinc.lut_inputs <= 16,
         "config P out of range");
  expect(config.n_classes >= 1 && config.n_classes <= (std::size_t{1} << 20),
         "config class count out of range");
  expect(config.output.quant_bits >= 1 && config.output.quant_bits <= 24,
         "config quantizer bits out of range");

  QuantizerParams quantizer;
  expect(static_cast<bool>(in >> token) && token == "quantizer",
         "expected 'quantizer' section");
  expect(static_cast<bool>(in >> quantizer.bits >> quantizer.min_value >>
                           quantizer.max_value),
         "truncated quantizer section");
  expect(quantizer.bits == config.output.quant_bits,
         "quantizer/config bit mismatch");

  const std::size_t n_modules = config.n_classes * config.rinc.lut_inputs;
  std::vector<RincModule> modules;
  modules.reserve(n_modules);
  for (std::size_t m = 0; m < n_modules; ++m) {
    std::size_t index = 0;
    expect(static_cast<bool>(in >> token >> index) && token == "module" &&
               index == m,
           "module records out of order");
    modules.push_back(load_module(in));
  }

  std::vector<SparseOutputNeuron> output(config.n_classes);
  const std::size_t n_combos = std::size_t{1} << config.rinc.lut_inputs;
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    std::size_t index = 0;
    SparseOutputNeuron& neuron = output[c];
    expect(static_cast<bool>(in >> token >> index >> neuron.bias) &&
               token == "output" && index == c,
           "output records out of order");
    neuron.input_modules.resize(config.rinc.lut_inputs);
    neuron.weights.resize(config.rinc.lut_inputs);
    neuron.codes.resize(n_combos);
    for (auto& m : neuron.input_modules) {
      expect(static_cast<bool>(in >> m), "truncated output wiring");
      expect(m < n_modules, "output wiring references a missing module");
    }
    for (auto& w : neuron.weights) {
      expect(static_cast<bool>(in >> w), "truncated output weights");
    }
    for (auto& code : neuron.codes) {
      expect(static_cast<bool>(in >> code), "truncated output codes");
      expect(code < quantizer.levels(), "output code beyond quantizer range");
    }
  }

  return PoetBin::from_parts(std::move(config), std::move(modules),
                             std::move(output), quantizer);
}

// Conv parser body: conv geometry + per-channel modules, then the embedded
// classifier via parse_model (the dense grammar, header included). Every
// check RincConvLayer::from_parts / PoetBin::from_parts would abort on is
// replicated here as a typed error first.
ConvModel parse_conv_model(std::istream& in) {
  std::string token;
  std::string version;
  if (!(in >> token >> version) || token != "poetbin-conv-model") {
    fail(ModelIoError::Kind::kVersionMismatch,
         "unrecognised conv model file header (expected "
         "'poetbin-conv-model v1')");
  }
  if (version != "v1") {
    fail(ModelIoError::Kind::kVersionMismatch,
         "unsupported conv model format version '" + version + "'");
  }

  BinShape3 in_shape;
  RincConvConfig config;
  expect(static_cast<bool>(in >> token) && token == "conv",
         "expected 'conv' section");
  expect(static_cast<bool>(in >> in_shape.channels >> in_shape.height >>
                           in_shape.width >> config.out_channels >>
                           config.kernel >> config.stride >> config.padding),
         "truncated conv section");
  const std::size_t dim_cap = std::size_t{1} << 16;
  expect(in_shape.channels >= 1 && in_shape.channels <= dim_cap &&
             in_shape.height >= 1 && in_shape.height <= dim_cap &&
             in_shape.width >= 1 && in_shape.width <= dim_cap,
         "conv input shape out of range");
  expect(config.out_channels >= 1 && config.out_channels <= dim_cap,
         "conv output channel count out of range");
  expect(config.kernel >= 1 && config.kernel <= dim_cap,
         "conv kernel out of range");
  expect(config.stride >= 1 && config.stride <= dim_cap,
         "conv stride out of range");
  expect(config.padding < config.kernel,
         "conv padding must be smaller than the kernel");
  expect(in_shape.height + 2 * config.padding >= config.kernel &&
             in_shape.width + 2 * config.padding >= config.kernel,
         "conv kernel does not fit the padded frame");

  const std::size_t patch_bits =
      in_shape.channels * config.kernel * config.kernel;
  std::vector<RincModule> modules;
  modules.reserve(config.out_channels);
  for (std::size_t channel = 0; channel < config.out_channels; ++channel) {
    std::size_t index = 0;
    expect(static_cast<bool>(in >> token >> index) && token == "channel" &&
               index == channel,
           "channel records out of order");
    modules.push_back(load_module(in));
    for (const std::size_t feature : modules.back().distinct_features()) {
      expect(feature < patch_bits,
             "conv channel module references a feature beyond the patch "
             "width");
    }
  }

  ConvModel model;
  model.conv =
      RincConvLayer::from_parts(in_shape, std::move(config), std::move(modules));
  model.classifier = parse_model(in);
  expect(model.classifier.n_features() <= model.conv.output_shape().flat(),
         "classifier wired beyond the conv output width");
  return model;
}

// Atomic text publish shared by the file writers: write a same-directory
// temp file and rename it over `path`. A concurrent reader — including a
// serve --watch poll racing the push — sees the complete old file or the
// complete new one, never a truncated half-write, and any live mmap of the
// old inode stays valid.
template <typename WriteBody>
IoStatus write_text_model_file(const std::string& path,
                               const WriteBody& write_body) {
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(temp);
  if (!out) {
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "cannot open '" + temp + "' for writing"};
  }
  write_body(out);
  out.flush();
  out.close();
  if (!out) {
    std::remove(temp.c_str());
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "write to '" + temp + "' failed"};
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return ModelIoError{ModelIoError::Kind::kWriteFailed,
                        "cannot rename '" + temp + "' over '" + path + "'"};
  }
  return IoStatus();
}

}  // namespace

const char* model_io_error_kind_name(ModelIoError::Kind kind) {
  switch (kind) {
    case ModelIoError::Kind::kFileNotFound: return "file-not-found";
    case ModelIoError::Kind::kVersionMismatch: return "version-mismatch";
    case ModelIoError::Kind::kCorruptSection: return "corrupt-section";
    case ModelIoError::Kind::kWriteFailed: return "write-failed";
    case ModelIoError::Kind::kChecksumMismatch: return "checksum-mismatch";
    case ModelIoError::Kind::kIncompatibleModel: return "incompatible-model";
  }
  return "unknown";
}

void save_model(const PoetBin& model, std::ostream& out) {
  out << "poetbin-model v1\n";
  out << "config " << model.lut_inputs() << ' '
      << (model.modules().empty() ? 0 : model.modules().front().level()) << ' '
      << (model.modules().empty() ? 0 : model.modules().front().leaf_dt_count())
      << ' ' << model.n_classes() << ' ' << model.quant_bits() << '\n';
  const QuantizerParams& q = model.quantizer();
  out << "quantizer " << q.bits << ' ' << q.min_value << ' ' << q.max_value
      << '\n';
  for (std::size_t m = 0; m < model.n_modules(); ++m) {
    out << "module " << m << '\n';
    save_module(model.modules()[m], out);
  }
  for (std::size_t c = 0; c < model.n_classes(); ++c) {
    const SparseOutputNeuron& neuron = model.output_neurons()[c];
    out << "output " << c << ' ' << neuron.bias;
    for (const auto module_index : neuron.input_modules) {
      out << ' ' << module_index;
    }
    for (const auto weight : neuron.weights) out << ' ' << weight;
    for (const auto code : neuron.codes) out << ' ' << code;
    out << '\n';
  }
}

IoResult<PoetBin> read_model(std::istream& in) {
  try {
    return parse_model(in);
  } catch (const ParseFailure& failure) {
    return failure.error;
  }
}

IoResult<PoetBin> read_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return ModelIoError{ModelIoError::Kind::kFileNotFound,
                        "cannot open '" + path + "' for reading"};
  }
  IoResult<PoetBin> result = read_model(in);
  if (!result.ok()) {
    return ModelIoError{result.error().kind,
                        path + ": " + result.error().message};
  }
  return result;
}

IoStatus write_model_file(const PoetBin& model, const std::string& path) {
  return write_text_model_file(
      path, [&](std::ostream& out) { save_model(model, out); });
}

void save_conv_model(const ConvModel& model, std::ostream& out) {
  const BinShape3 shape = model.conv.input_shape();
  const RincConvConfig& config = model.conv.config();
  out << "poetbin-conv-model v1\n";
  out << "conv " << shape.channels << ' ' << shape.height << ' '
      << shape.width << ' ' << config.out_channels << ' ' << config.kernel
      << ' ' << config.stride << ' ' << config.padding << '\n';
  const auto& modules = model.conv.channel_modules();
  for (std::size_t channel = 0; channel < modules.size(); ++channel) {
    out << "channel " << channel << '\n';
    save_module(modules[channel], out);
  }
  save_model(model.classifier, out);
}

IoResult<ConvModel> read_conv_model(std::istream& in) {
  try {
    return parse_conv_model(in);
  } catch (const ParseFailure& failure) {
    return failure.error;
  }
}

IoResult<ConvModel> read_conv_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return ModelIoError{ModelIoError::Kind::kFileNotFound,
                        "cannot open '" + path + "' for reading"};
  }
  IoResult<ConvModel> result = read_conv_model(in);
  if (!result.ok()) {
    return ModelIoError{result.error().kind,
                        path + ": " + result.error().message};
  }
  return result;
}

IoStatus write_conv_model_file(const ConvModel& model,
                               const std::string& path) {
  return write_text_model_file(
      path, [&](std::ostream& out) { save_conv_model(model, out); });
}

}  // namespace poetbin
