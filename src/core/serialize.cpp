#include "core/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace poetbin {

namespace {

std::string bits_to_string(const BitVector& bits) {
  return bits.to_string();  // bit 0 first
}

BitVector bits_from_string(const std::string& text) {
  BitVector bits(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    POETBIN_CHECK_MSG(text[i] == '0' || text[i] == '1',
                      "malformed bit string in model file");
    if (text[i] == '1') bits.set(i, true);
  }
  return bits;
}

void save_module(const RincModule& module, std::ostream& out) {
  if (module.is_leaf()) {
    const Lut& lut = module.leaf_lut();
    out << "leaf " << lut.arity();
    for (const auto input : lut.inputs()) out << ' ' << input;
    out << ' ' << bits_to_string(lut.table()) << '\n';
    return;
  }
  out << "node " << module.children().size();
  for (const auto weight : module.mat().weights()) out << ' ' << weight;
  out << '\n';
  for (const auto& child : module.children()) save_module(child, out);
}

RincModule load_module(std::istream& in) {
  std::string kind;
  POETBIN_CHECK_MSG(static_cast<bool>(in >> kind), "truncated model file");
  if (kind == "leaf") {
    std::size_t arity = 0;
    POETBIN_CHECK(static_cast<bool>(in >> arity));
    POETBIN_CHECK_MSG(arity >= 1 && arity <= 16, "bad leaf arity");
    std::vector<std::size_t> inputs(arity);
    for (auto& input : inputs) POETBIN_CHECK(static_cast<bool>(in >> input));
    std::string table_text;
    POETBIN_CHECK(static_cast<bool>(in >> table_text));
    POETBIN_CHECK_MSG(table_text.size() == (std::size_t{1} << arity),
                      "leaf table size mismatch");
    return RincModule::make_leaf(
        Lut(std::move(inputs), bits_from_string(table_text)));
  }
  POETBIN_CHECK_MSG(kind == "node", "expected 'leaf' or 'node'");
  std::size_t fanin = 0;
  POETBIN_CHECK(static_cast<bool>(in >> fanin));
  POETBIN_CHECK_MSG(fanin >= 1 && fanin <= 20, "bad node fanin");
  std::vector<double> weights(fanin);
  for (auto& weight : weights) POETBIN_CHECK(static_cast<bool>(in >> weight));
  std::vector<RincModule> children;
  children.reserve(fanin);
  for (std::size_t c = 0; c < fanin; ++c) children.push_back(load_module(in));
  return RincModule::make_internal(std::move(children),
                                   MatModule(std::move(weights)));
}

}  // namespace

void save_model(const PoetBin& model, std::ostream& out) {
  out << "poetbin-model v1\n";
  out << "config " << model.lut_inputs() << ' '
      << (model.modules().empty() ? 0 : model.modules().front().level()) << ' '
      << (model.modules().empty() ? 0 : model.modules().front().leaf_dt_count())
      << ' ' << model.n_classes() << ' ' << model.quant_bits() << '\n';
  const QuantizerParams& q = model.quantizer();
  out << "quantizer " << q.bits << ' ' << q.min_value << ' ' << q.max_value
      << '\n';
  for (std::size_t m = 0; m < model.n_modules(); ++m) {
    out << "module " << m << '\n';
    save_module(model.modules()[m], out);
  }
  for (std::size_t c = 0; c < model.n_classes(); ++c) {
    const SparseOutputNeuron& neuron = model.output_neurons()[c];
    out << "output " << c << ' ' << neuron.bias;
    for (const auto module_index : neuron.input_modules) {
      out << ' ' << module_index;
    }
    for (const auto weight : neuron.weights) out << ' ' << weight;
    for (const auto code : neuron.codes) out << ' ' << code;
    out << '\n';
  }
}

PoetBin load_model(std::istream& in) {
  std::string token;
  std::string version;
  POETBIN_CHECK(static_cast<bool>(in >> token >> version));
  POETBIN_CHECK_MSG(token == "poetbin-model" && version == "v1",
                    "unrecognised model file header");

  PoetBinConfig config;
  std::size_t levels = 0;
  std::size_t total_dts = 0;
  POETBIN_CHECK(static_cast<bool>(in >> token));
  POETBIN_CHECK(token == "config");
  POETBIN_CHECK(static_cast<bool>(
      in >> config.rinc.lut_inputs >> levels >> total_dts >>
      config.n_classes >> config.output.quant_bits));
  config.rinc.levels = levels;
  config.rinc.total_dts = total_dts;

  QuantizerParams quantizer;
  POETBIN_CHECK(static_cast<bool>(in >> token));
  POETBIN_CHECK(token == "quantizer");
  POETBIN_CHECK(static_cast<bool>(
      in >> quantizer.bits >> quantizer.min_value >> quantizer.max_value));
  POETBIN_CHECK_MSG(quantizer.bits == config.output.quant_bits,
                    "quantizer/config bit mismatch");

  const std::size_t n_modules = config.n_classes * config.rinc.lut_inputs;
  std::vector<RincModule> modules;
  modules.reserve(n_modules);
  for (std::size_t m = 0; m < n_modules; ++m) {
    std::size_t index = 0;
    POETBIN_CHECK(static_cast<bool>(in >> token >> index));
    POETBIN_CHECK_MSG(token == "module" && index == m,
                      "module records out of order");
    modules.push_back(load_module(in));
  }

  std::vector<SparseOutputNeuron> output(config.n_classes);
  const std::size_t n_combos = std::size_t{1} << config.rinc.lut_inputs;
  for (std::size_t c = 0; c < config.n_classes; ++c) {
    std::size_t index = 0;
    SparseOutputNeuron& neuron = output[c];
    POETBIN_CHECK(static_cast<bool>(in >> token >> index >> neuron.bias));
    POETBIN_CHECK_MSG(token == "output" && index == c,
                      "output records out of order");
    neuron.input_modules.resize(config.rinc.lut_inputs);
    neuron.weights.resize(config.rinc.lut_inputs);
    neuron.codes.resize(n_combos);
    for (auto& m : neuron.input_modules) POETBIN_CHECK(static_cast<bool>(in >> m));
    for (auto& w : neuron.weights) POETBIN_CHECK(static_cast<bool>(in >> w));
    for (auto& code : neuron.codes) POETBIN_CHECK(static_cast<bool>(in >> code));
  }

  return PoetBin::from_parts(std::move(config), std::move(modules),
                             std::move(output), quantizer);
}

bool save_model_file(const PoetBin& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_model(model, out);
  return static_cast<bool>(out);
}

bool load_model_file(PoetBin& model, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  model = load_model(in);
  return true;
}

}  // namespace poetbin
