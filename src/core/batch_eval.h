// Word-parallel (bitsliced) batch inference.
//
// BitMatrix stores a dataset feature-major as packed uint64 columns, so a
// P-input LUT can be evaluated for 64 examples at once: Shannon-expand the
// truth table over the P selected column *words* with pure AND/OR/XOR/NOT —
// no per-example address assembly. A RINC/MAT hierarchy is then a DAG of
// such word ops, and a whole dataset pass is an embarrassingly parallel
// loop over word indices, which BatchEngine chunks across a thread pool.
//
// Word kernels (`eval_lut_words`, `eval_rinc_words`) are exposed for tests
// and for callers that manage their own parallelism; everything else goes
// through `Lut::eval_dataset_bitsliced`, `RincModule::eval_dataset_batched`
// or a BatchEngine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/poetbin.h"
#include "core/rinc.h"
#include "dt/lut.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"

namespace poetbin {

// Evaluates `lut` for the 64-example blocks [64*word_begin, 64*word_end) of
// `features`, writing one packed output word per block to `out` (which must
// hold word_end - word_begin words). If the range covers the dataset's last
// word, bits beyond features.rows() are zeroed.
void eval_lut_words(const Lut& lut, const BitMatrix& features,
                    std::size_t word_begin, std::size_t word_end,
                    std::uint64_t* out);

// Same contract for a whole RINC hierarchy: children are evaluated into
// word buffers and the MAT LUT combines them with word ops.
void eval_rinc_words(const RincModule& module, const BitMatrix& features,
                     std::size_t word_begin, std::size_t word_end,
                     std::uint64_t* out);

// Same contract over a *virtual* feature matrix given as column-word
// pointers: patch bit j resolves to patch_columns[j], absolute-indexed
// packed words (word w holds examples [64w, 64w + 64)) — a real input
// column, or a shared all-zero buffer for conv padding bits. This is what
// lets RincConvLayer::eval_dataset_batched skip the im2col materialization:
// the transpose is a pointer table, not a copied patch matrix.
void eval_rinc_patch_words(const RincModule& module,
                           const std::uint64_t* const* patch_columns,
                           std::size_t n_patch_bits, std::size_t n_rows,
                           std::size_t word_begin, std::size_t word_end,
                           std::uint64_t* out);

// Multithreaded batch driver. Owns a persistent pool of worker threads and
// chunks the example range (in whole words) across them. All eval methods
// return bit-identical results to the scalar paths; the pool is not
// re-entrant (one dataset pass at a time per engine — enforced by a cheap
// in-use check that aborts on overlapping parallel_for calls).
//
// predict_dataset fuses the output-layer argmax into the word pass: per
// chunk it evaluates the RINC bank into cache-resident word buffers,
// Shannon-reduces each output neuron's quantized code into bit-planes, and
// runs a bitsliced MSB-first comparator across classes — no per-example
// combo assembly, no materialized rinc_outputs matrix. Word kernels run on
// the active SIMD backend (util/word_backend.h).
class BatchEngine {
 public:
  // 0 = std::thread::hardware_concurrency(); 1 = run inline, no workers.
  explicit BatchEngine(std::size_t n_threads = 0);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  std::size_t n_threads() const { return n_threads_; }

  // Bitsliced equivalents of the scalar dataset paths.
  BitVector eval_dataset(const RincModule& module,
                         const BitMatrix& features) const;
  BitMatrix rinc_outputs(const PoetBin& model, const BitMatrix& features) const;
  std::vector<int> predict_dataset(const PoetBin& model,
                                   const BitMatrix& features) const;
  double accuracy(const PoetBin& model, const BitMatrix& features,
                  const std::vector<int>& labels) const;

  // Runs fn(job) for job in [0, n_jobs) on the pool plus the calling
  // thread. Exposed for callers with custom per-chunk work.
  void parallel_for(std::size_t n_jobs,
                    const std::function<void(std::size_t)>& fn) const;

 private:
  class ThreadPool;

  std::size_t n_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when n_threads_ == 1
  // Set while a parallel_for is dispatched to the pool; overlapping use
  // (from a job or from another thread) is a contract violation and aborts.
  mutable std::atomic<bool> busy_{false};
};

}  // namespace poetbin
